(* Benchmark harness.

   Part 1 — bechamel micro-benchmarks of every layer: the B+tree gap map
   (against the reference implementation, across fanouts), the range lock
   manager, representative operations, whole directory-suite operations per
   configuration, the baselines, and the availability analysis. One
   Test.make per paper table/figure wraps a scaled-down generation of that
   table so regressions in any experiment's pipeline show up as timing
   changes.

   Part 2 — the actual reproduction: prints every table and figure of the
   paper's evaluation (Figures 14 and 15), plus the ablations DESIGN.md
   commits to (quorum stability, availability, per-operation message costs,
   concurrency, locality, crash timeline), at full paper parameters.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Repdir_key
open Repdir_quorum

let cfg_322 = Config.simple ~n:3 ~r:2 ~w:2

(* --- gap map micro-benchmarks -------------------------------------------------- *)

module Btree = Repdir_gapmap.Btree
module Reference = Repdir_gapmap.Reference

let filled_btree ~branching n =
  let g = Btree.create_with ~branching () in
  for i = 0 to n - 1 do
    Btree.insert g (Key.of_int (2 * i)) 1 "v"
  done;
  g

let filled_reference n =
  let g = Reference.create () in
  for i = 0 to n - 1 do
    Reference.insert g (Key.of_int (2 * i)) 1 "v"
  done;
  g

let bench_btree_lookup ~branching n =
  let g = filled_btree ~branching n in
  let rng = Repdir_util.Rng.create 1L in
  Test.make
    ~name:(Printf.sprintf "btree(b=%d)/lookup/%d" branching n)
    (Staged.stage (fun () ->
         ignore
           (Btree.lookup g (Repdir_key.Bound.Key (Key.of_int (Repdir_util.Rng.int rng (2 * n)))))))

let bench_reference_lookup n =
  let g = filled_reference n in
  let rng = Repdir_util.Rng.create 1L in
  Test.make
    ~name:(Printf.sprintf "reference/lookup/%d" n)
    (Staged.stage (fun () ->
         ignore
           (Reference.lookup g
              (Repdir_key.Bound.Key (Key.of_int (Repdir_util.Rng.int rng (2 * n)))))))

let bench_btree_insert_coalesce ~branching n =
  let g = filled_btree ~branching n in
  let i = ref 0 in
  Test.make
    ~name:(Printf.sprintf "btree(b=%d)/insert+coalesce/%d" branching n)
    (Staged.stage (fun () ->
         (* Insert a fresh odd key, then coalesce it away between its even
            neighbours: a steady-state churn cycle. *)
         let k = (2 * (!i mod (n - 1))) + 1 in
         incr i;
         Btree.insert g (Key.of_int k) 3 "v";
         ignore
           (Btree.coalesce g
              ~lo:(Repdir_key.Bound.Key (Key.of_int (k - 1)))
              ~hi:(Repdir_key.Bound.Key (Key.of_int (k + 1)))
              4)))

let bench_btree_digest ~branching n =
  let g = filled_btree ~branching n in
  Test.make
    ~name:(Printf.sprintf "btree(b=%d)/digest-root/%d" branching n)
    (Staged.stage (fun () ->
         ignore (Btree.digest_range g ~lo:Repdir_key.Bound.Low ~hi:Repdir_key.Bound.High)))

(* --- lock manager --------------------------------------------------------------- *)

let bench_lock_acquire_release () =
  let open Repdir_lock in
  let m = Lock_manager.create () in
  let iv = Repdir_key.Bound.Interval.point (Repdir_key.Bound.Key "k") in
  let txn = ref 0 in
  Test.make ~name:"lock/acquire+release"
    (Staged.stage (fun () ->
         incr txn;
         (match Lock_manager.acquire m ~txn:!txn Mode.Rep_modify iv ~on_grant:ignore with
         | Lock_manager.Granted -> ()
         | Lock_manager.Waiting | Lock_manager.Deadlock _ -> assert false);
         Lock_manager.release_all m ~txn:!txn))

(* --- representative operations ---------------------------------------------------- *)

let bench_rep_insert_coalesce () =
  let open Repdir_rep in
  let rep = Rep.create ~name:"bench" () in
  let txn0 = 1 in
  for i = 0 to 199 do
    Rep.insert rep ~txn:txn0 (Key.of_int (2 * i)) 1 "v"
  done;
  Rep.commit rep ~txn:txn0;
  let t = ref 1 in
  Test.make ~name:"rep/txn(insert+coalesce)"
    (Staged.stage (fun () ->
         incr t;
         let txn = !t in
         let k = (2 * (txn mod 199)) + 1 in
         Rep.insert rep ~txn (Key.of_int k) 3 "v";
         ignore
           (Rep.coalesce rep ~txn
              ~lo:(Repdir_key.Bound.Key (Key.of_int (k - 1)))
              ~hi:(Repdir_key.Bound.Key (Key.of_int (k + 1)))
              4);
         Rep.commit rep ~txn))

let bench_rep_insert_coalesce_leased () =
  (* Same churn cycle with the lease machinery armed: every op renews a
     sliding deadline through no-op timers, isolating the bookkeeping cost
     leases add to the hot path. *)
  let open Repdir_rep in
  let timers = { Rep.now = (fun () -> 0.0); after = (fun _ _ -> ()) } in
  let rep = Rep.create ~timers ~lease:1.0e9 ~name:"bench-leased" () in
  let txn0 = 1 in
  for i = 0 to 199 do
    Rep.insert rep ~txn:txn0 (Key.of_int (2 * i)) 1 "v"
  done;
  Rep.commit rep ~txn:txn0;
  let t = ref 1 in
  Test.make ~name:"rep/txn(insert+coalesce)+lease"
    (Staged.stage (fun () ->
         incr t;
         let txn = !t in
         let k = (2 * (txn mod 199)) + 1 in
         Rep.insert rep ~txn (Key.of_int k) 3 "v";
         ignore
           (Rep.coalesce rep ~txn
              ~lo:(Repdir_key.Bound.Key (Key.of_int (k - 1)))
              ~hi:(Repdir_key.Bound.Key (Key.of_int (k + 1)))
              4);
         Rep.commit rep ~txn))

(* --- whole-suite operations --------------------------------------------------------- *)

let make_suite ?two_phase ?batching ?group_commit ?recorder ~config ~entries () =
  let open Repdir_rep in
  let open Repdir_core in
  let n = Config.n_reps config in
  let reps =
    Array.init n (fun i ->
        let name = Printf.sprintf "r%d" i in
        match group_commit with
        | None -> Rep.create ~name ()
        | Some w ->
            (* Synchronous timers: the group-commit window fires immediately,
               so the serial benchmark exercises the leader path (arm, fire,
               sync, settle) without blocking on a real clock. *)
            let timers = { Rep.now = (fun () -> 0.0); after = (fun _ k -> k ()) } in
            Rep.create ~timers ~group_commit:w ~name ())
  in
  let suite =
    Suite.create ?two_phase ?batching ?recorder ~config ~transport:(Transport.local reps)
      ~txns:(Repdir_txn.Txn.Manager.create ())
      ()
  in
  for i = 0 to entries - 1 do
    match Suite.insert suite (Key.of_int i) "v" with
    | Ok () -> ()
    | Error `Already_present -> assert false
  done;
  suite

let bench_suite_lookup ~config =
  let open Repdir_core in
  let suite = make_suite ~config ~entries:100 () in
  let rng = Repdir_util.Rng.create 3L in
  Test.make
    ~name:(Printf.sprintf "suite(%s)/lookup" (Config.to_string config))
    (Staged.stage (fun () ->
         ignore (Suite.lookup suite (Key.of_int (Repdir_util.Rng.int rng 100)))))

let bench_suite_insert_delete ?two_phase ?batching ?group_commit ?recorder ?(tag = "")
    ~config () =
  let open Repdir_core in
  let suite = make_suite ?two_phase ?batching ?group_commit ?recorder ~config ~entries:100 () in
  let i = ref 0 in
  Test.make
    ~name:(Printf.sprintf "suite(%s)/insert+delete%s" (Config.to_string config) tag)
    (Staged.stage (fun () ->
         incr i;
         let k = Key.of_int (1000 + (!i mod 100)) in
         (match Suite.insert suite k "v" with Ok () -> () | Error `Already_present -> ());
         ignore (Suite.delete suite k)))

(* The auditor-overhead A/B: the same two-phase insert+delete churn with a
   history recorder attached. Recording must stay cheap enough to leave on
   for every nemesis campaign — the smoke gate holds it under 10%. The
   recorder keeps its bounded window and feeds a sink, like an audited run;
   the virtual clock is a monotone counter so interval stamps cost what they
   cost in the simulator (a closure call), not a syscall. *)
let bench_suite_insert_delete_audited ~config () =
  let clock = ref 0.0 in
  let recorder =
    Repdir_audit.History.recorder ~client:0
      ~now:(fun () ->
        clock := !clock +. 1.0;
        !clock)
      ()
  in
  Repdir_audit.History.set_sink recorder ignore;
  bench_suite_insert_delete ~two_phase:true ~recorder ~tag:"+2pc+audit" ~config ()

(* --- baselines ------------------------------------------------------------------------ *)

let bench_file_voting_modify () =
  let open Repdir_baselines in
  let fv = File_voting.create ~config:cfg_322 () in
  for i = 0 to 99 do
    ignore (File_voting.insert fv (Key.of_int i) "v")
  done;
  let i = ref 0 in
  Test.make ~name:"baseline/file-voting/update@100"
    (Staged.stage (fun () ->
         incr i;
         ignore (File_voting.update fv (Key.of_int (!i mod 100)) "v'")))

let bench_availability () =
  let votes = [| 3; 2; 2; 1; 1 |] in
  Test.make ~name:"availability/exact-dp(5 reps)"
    (Staged.stage (fun () ->
         ignore (Availability.quorum_probability ~votes ~quorum:5 ~p_up:0.9)))

(* --- one scaled-down Test per paper table/figure -------------------------------------- *)

let bench_tables =
  [
    Test.make ~name:"table/figure14(1 config, 300 ops)"
      (Staged.stage (fun () ->
           ignore
             (Repdir_harness.Experiment.run ~config:cfg_322 ~n_entries:100 ~ops:300 ())));
    Test.make ~name:"table/figure15(100 entries, 300 ops)"
      (Staged.stage (fun () ->
           ignore
             (Repdir_harness.Experiment.run ~config:cfg_322 ~n_entries:100 ~ops:300 ())));
    Test.make ~name:"table/quorum-stability(300 ops)"
      (Staged.stage (fun () ->
           ignore
             (Repdir_harness.Experiment.run ~picker:(Picker.Fixed [| 0; 1; 2 |])
                ~config:cfg_322 ~n_entries:100 ~ops:300 ())));
    Test.make ~name:"table/availability(exact)"
      (Staged.stage (fun () -> ignore (Repdir_harness.Figures.availability ())));
    Test.make ~name:"table/messages(200 ops)"
      (Staged.stage (fun () ->
           ignore (Repdir_harness.Figures.messages ~ops:200 ~entries:50 ())));
    Test.make ~name:"table/concurrency(1 cell, t=100)"
      (Staged.stage (fun () ->
           ignore
             (Repdir_harness.Concurrency.run ~duration:100.0
                ~scheme:Repdir_harness.Concurrency.Gap ~clients:2 ~config:cfg_322 ())));
    Test.make ~name:"table/locality(400 ops)"
      (Staged.stage (fun () -> ignore (Repdir_harness.Locality.run ~ops:400 ())));
    Test.make ~name:"table/faults(20 ops/phase)"
      (Staged.stage (fun () -> ignore (Repdir_harness.Faults.run ~ops_per_phase:20 ())));
    Test.make ~name:"table/latency(200 ops)"
      (Staged.stage (fun () ->
           ignore (Repdir_harness.Latency.run ~ops:200 ~config:cfg_322 ())));
    Test.make ~name:"table/space(500 ops)"
      (Staged.stage (fun () ->
           ignore (Repdir_harness.Figures.space_and_traffic ~ops:500 ~entries:50 ())));
    Test.make ~name:"table/sync-convergence(1 seed)"
      (Staged.stage (fun () -> ignore (Repdir_harness.Anti_entropy.convergence ())));
  ]

(* --- runner ---------------------------------------------------------------------------- *)

(* One result row per benchmark: the OLS time-per-run estimate plus latency
   percentiles over bechamel's raw samples (each sample's time divided by its
   iteration count). Rows feed both the on-screen table and BENCH_pr3.json. *)
type bench_row = { name : string; ns : float; p50 : float; p90 : float; p99 : float }

let pretty_ns ns =
  if Float.is_nan ns then "-"
  else if ns >= 1.0e9 then Printf.sprintf "%.2f s" (ns /. 1.0e9)
  else if ns >= 1.0e6 then Printf.sprintf "%.2f ms" (ns /. 1.0e6)
  else if ns >= 1.0e3 then Printf.sprintf "%.2f us" (ns /. 1.0e3)
  else Printf.sprintf "%.0f ns" ns

let run_benchmarks tests ~quota =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None ~stabilize:false () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"repdir" ~fmt:"%s %s" tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let label = Measure.label Instance.monotonic_clock in
  let percentiles name =
    match Hashtbl.find_opt raw name with
    | None -> (nan, nan, nan)
    | Some (b : Benchmark.t) ->
        let xs =
          Array.to_list b.Benchmark.lr
          |> List.filter_map (fun m ->
                 let runs = Measurement_raw.run m in
                 if runs <= 0.0 then None
                 else Some (Measurement_raw.get ~label m /. runs))
          |> Array.of_list
        in
        Array.sort compare xs;
        let n = Array.length xs in
        let pct p =
          if n = 0 then nan
          else xs.(max 0 (min (n - 1) (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1)))
        in
        (pct 50.0, pct 90.0, pct 99.0)
  in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some [ ns ] -> ns | Some _ | None -> nan
        in
        let p50, p90, p99 = percentiles name in
        { name; ns; p50; p90; p99 } :: acc)
      results []
    |> List.sort compare
  in
  let table =
    Repdir_util.Table.create ~header:[ "benchmark"; "time/run"; "p50"; "p99" ] ()
  in
  List.iter
    (fun r ->
      Repdir_util.Table.add_row table [ r.name; pretty_ns r.ns; pretty_ns r.p50; pretty_ns r.p99 ])
    rows;
  Repdir_util.Table.print table;
  rows

(* --- machine-readable summary --------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json ~path ?(counters = []) rows =
  let oc = open_out path in
  let num ns = if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns in
  let ops ns =
    if Float.is_nan ns || ns <= 0.0 then "null" else Printf.sprintf "%.1f" (1.0e9 /. ns)
  in
  output_string oc "{\n  \"schema\": \"repdir-bench/1\",\n  \"benchmarks\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"ns_per_op\": %s, \"ops_per_sec\": %s, \"p50_ns\": %s, \
         \"p90_ns\": %s, \"p99_ns\": %s}%s\n"
        (json_escape r.name) (num r.ns) (ops r.ns) (num r.p50) (num r.p90) (num r.p99)
        (if i = last then "" else ","))
    rows;
  output_string oc "  ],\n  \"counters\": [\n";
  let last = List.length counters - 1 in
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"value\": %.2f}%s\n" (json_escape name) v
        (if i = last then "" else ","))
    counters;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s (%d benchmarks, %d counters)\n%!" path (List.length rows)
    (List.length counters)

let section title = Printf.printf "\n==== %s ====\n\n%!" title

(* --- messages-per-op counters (measured, not timed) ----------------------------- *)

(* True wire messages per operation at 3-2-2 under two-phase commit,
   unbatched vs batched: the before/after for the batching layer, recorded
   next to the timing rows so one BENCH file carries both. *)
let message_counters ?(ops = 2_000) () =
  let per batching =
    Repdir_harness.Figures.messages_per_op ~ops ~two_phase:true ~batching ~config:cfg_322 ()
  in
  let unbatched = per false in
  let batched = per true in
  List.concat_map
    (fun (kind, m) ->
      [
        (Printf.sprintf "messages(3-2-2)/%s+2pc" kind, m);
        (Printf.sprintf "messages(3-2-2)/%s+2pc+batch" kind, List.assoc kind batched);
      ])
    unbatched

let print_counters counters =
  let table = Repdir_util.Table.create ~header:[ "counter"; "msgs/op" ] () in
  List.iter
    (fun (n, v) -> Repdir_util.Table.add_row table [ n; Printf.sprintf "%.2f" v ])
    counters;
  Repdir_util.Table.print table

(* --- version-validated client cache: bytes/op and latency ------------------------ *)

(* The cache's savings are wire bytes, and the simulator charges latency per
   message, not per byte — so the A/B below measures estimated bytes on the
   wire directly (Transport.bytes_count) and, for a latency headline, reports
   a modeled p50 on top of the virtual one: virtual latency plus bytes/op at
   a stated byte budget of [bytes_per_unit] wire bytes per virtual time unit
   (~100 KB/s if one unit is a millisecond). Both figures are labelled for
   what they are.

   The workload is the cache's home turf, deliberately: a single client,
   two-phase + batched, ~90/10 read/write over a preloaded working set of
   64-byte values, measured after one warming pass. Write-heavy or cold
   workloads pay for validation without reaping hits — the QCheck
   differential covers those for correctness; this bench gates the read-path
   economics. *)

type cache_run = {
  k_ops : int;
  k_bytes_per_op : float;
  k_vmean : float;  (* virtual time units, successful measured ops *)
  k_vp50 : float;
  k_vp90 : float;
  k_vp99 : float;
  k_hit_rate : float;  (* nan with the cache off *)
}

let cache_phase ?(seed = 1983L) ?(keys = 40) ?(ops = 2_000) ~cache () =
  let module Sim = Repdir_sim.Sim in
  let module Sim_world = Repdir_harness.Sim_world in
  let open Repdir_core in
  let module Rng = Repdir_util.Rng in
  let world = Sim_world.create ~seed ~two_phase:true ~n_clients:1 ~config:cfg_322 () in
  let sim = Sim_world.sim world in
  let client_cache = if cache then Some (Repdir_cache.Cache.create ()) else None in
  let suite = Sim_world.suite_for_client ~batching:true ?cache:client_cache world 0 in
  let transport = Suite.transport suite in
  let value i = Printf.sprintf "%064d" i in
  let rng = Rng.create (Int64.add seed 100L) in
  let lats = ref [] in
  let bytes_start = ref 0 in
  Sim.spawn sim (fun () ->
      for i = 0 to keys - 1 do
        match Suite.insert suite (Key.of_int i) (value i) with
        | Ok () -> ()
        | Error `Already_present -> assert false
      done;
      (* One warming pass: the steady state being measured is a working set
         the client has already seen, not a cold start. The identical pass
         runs cache-off too, so the measured windows stay comparable. *)
      for i = 0 to keys - 1 do
        ignore (Suite.lookup suite (Key.of_int i) : (_ * string) option)
      done;
      bytes_start := transport.Transport.bytes_count;
      for op = 1 to ops do
        let k = Key.of_int (Rng.int rng keys) in
        let write = Rng.int rng 10 = 0 in
        let t0 = Sim.now sim in
        (if write then ignore (Suite.update suite k (value op) : (unit, _) result)
         else ignore (Suite.lookup suite k : (_ * string) option));
        lats := (Sim.now sim -. t0) :: !lats
      done);
  Sim.run sim;
  let bytes = transport.Transport.bytes_count - !bytes_start in
  let a = Array.of_list !lats in
  Array.sort compare a;
  let n = Array.length a in
  let pct p = if n = 0 then nan else a.(min (n - 1) (n * p / 100)) in
  let mean =
    if n = 0 then nan else Array.fold_left ( +. ) 0.0 a /. float_of_int n
  in
  {
    k_ops = n;
    k_bytes_per_op = (if n = 0 then nan else float_of_int bytes /. float_of_int n);
    k_vmean = mean;
    k_vp50 = pct 50;
    k_vp90 = pct 90;
    k_vp99 = pct 99;
    k_hit_rate =
      (match client_cache with
      | None -> nan
      | Some c -> Repdir_cache.Cache.hit_rate c);
  }

(* Modeled p50: the virtual p50 plus the measured bytes/op at the stated
   byte budget. The virtual component is identical machinery either way;
   only the byte term separates the arms. *)
let cache_bytes_per_unit = 100.0

let cache_modeled_p50 r = r.k_vp50 +. (r.k_bytes_per_op /. cache_bytes_per_unit)

let cache_bench ?(out = "BENCH_pr9.json") () =
  section
    "Version-validated client cache: bytes/op A/B (3-2-2, 2pc+batch, 90/10 reads, 64B \
     values)";
  let off = cache_phase ~cache:false () in
  let on = cache_phase ~cache:true () in
  let ratio = on.k_bytes_per_op /. off.k_bytes_per_op in
  let line tag r =
    Printf.printf
      "%-10s %6.1f bytes/op  virtual p50 %.2fu p90 %.2fu p99 %.2fu  modeled p50 %.2fu%s\n"
      tag r.k_bytes_per_op r.k_vp50 r.k_vp90 r.k_vp99 (cache_modeled_p50 r)
      (if Float.is_nan r.k_hit_rate then ""
       else Printf.sprintf "  hit-rate %.1f%%" (100.0 *. r.k_hit_rate))
  in
  line "cache off:" off;
  line "cache on:" on;
  Printf.printf "bytes/op with cache: %.0f%% of uncached (gate: <= 60%%)\n"
    (100.0 *. ratio);
  Printf.printf
    "modeled p50 (virtual + bytes at %.0f B/u): %.2fu cached vs %.2fu uncached (gate: \
     improved)\n%!"
    cache_bytes_per_unit (cache_modeled_p50 on) (cache_modeled_p50 off);
  let vrow tag r =
    {
      name = Printf.sprintf "cache/%s op-latency (virtual, 1u=1ms)" tag;
      ns = r.k_vmean *. 1.0e6;
      p50 = r.k_vp50 *. 1.0e6;
      p90 = r.k_vp90 *. 1.0e6;
      p99 = r.k_vp99 *. 1.0e6;
    }
  in
  write_bench_json ~path:out
    ~counters:
      [
        ("cache/off bytes-per-op", off.k_bytes_per_op);
        ("cache/on bytes-per-op", on.k_bytes_per_op);
        ("cache/on-vs-off bytes pct", 100.0 *. ratio);
        ("cache/on hit-rate pct", 100.0 *. on.k_hit_rate);
        ("cache/off modeled-p50 (1u=1ms, 100B-per-u)", cache_modeled_p50 off);
        ("cache/on modeled-p50 (1u=1ms, 100B-per-u)", cache_modeled_p50 on);
      ]
    [ vrow "off" off; vrow "on" on ];
  let failed = ref false in
  if Float.is_nan ratio || ratio > 0.60 then begin
    Printf.eprintf "cache bench FAIL: cached bytes/op %.0f%% of uncached > 60%%\n%!"
      (100.0 *. ratio);
    failed := true
  end;
  if not (cache_modeled_p50 on < cache_modeled_p50 off) then begin
    Printf.eprintf "cache bench FAIL: modeled p50 not improved (%.2fu vs %.2fu)\n%!"
      (cache_modeled_p50 on) (cache_modeled_p50 off);
    failed := true
  end;
  if !failed then exit 1;
  Printf.printf "cache bench OK\n%!"

(* --- CI smoke -------------------------------------------------------------------- *)

(* Fast regression gate: the batched two-phase path must not be slower than
   the unbatched one, batching must cut true messages per insert and per
   delete at 3-2-2 by at least half, history recording (the consistency
   auditor's hook in every suite operation) must cost under 10%, and the
   version-validated client cache must not send MORE bytes than the uncached
   path on its home read-heavy workload. The timing rows and counters land
   in BENCH_pr8_smoke.json (earlier PRs wrote this file as BENCH_pr6.json —
   see EXPERIMENTS.md on the numbering drift). *)
let smoke ?(out = "BENCH_pr8_smoke.json") () =
  section "Bench smoke";
  let rows =
    run_benchmarks ~quota:0.3
      [
        bench_suite_insert_delete ~two_phase:true ~tag:"+2pc" ~config:cfg_322 ();
        bench_suite_insert_delete ~two_phase:true ~batching:true ~tag:"+2pc+batch"
          ~config:cfg_322 ();
        bench_suite_insert_delete_audited ~config:cfg_322 ();
      ]
  in
  let ns name =
    match List.find_opt (fun r -> r.name = "repdir " ^ name) rows with
    | Some r -> r.ns
    | None -> nan
  in
  let unbatched_ns = ns "suite(3-2-2)/insert+delete+2pc" in
  let batched_ns = ns "suite(3-2-2)/insert+delete+2pc+batch" in
  let audited_ns = ns "suite(3-2-2)/insert+delete+2pc+audit" in
  let counters = message_counters () in
  let v name = List.assoc name counters in
  let ratio kind =
    v (Printf.sprintf "messages(3-2-2)/%s+2pc" kind)
    /. v (Printf.sprintf "messages(3-2-2)/%s+2pc+batch" kind)
  in
  let audit_overhead = (audited_ns /. unbatched_ns -. 1.0) *. 100.0 in
  let cache_off = cache_phase ~ops:300 ~cache:false () in
  let cache_on = cache_phase ~ops:300 ~cache:true () in
  Printf.printf "\n2pc insert+delete ns/op: unbatched %.0f, batched %.0f, audited %.0f\n"
    unbatched_ns batched_ns audited_ns;
  Printf.printf "msgs/op reduction: insert %.2fx, delete %.2fx\n" (ratio "insert")
    (ratio "delete");
  Printf.printf "auditor recording overhead: %+.1f%%\n" audit_overhead;
  Printf.printf "cache bytes/op (read-heavy): on %.1f vs off %.1f\n%!"
    cache_on.k_bytes_per_op cache_off.k_bytes_per_op;
  write_bench_json ~path:out
    ~counters:
      (counters
      @ [
          ("audit/recording-overhead-pct", audit_overhead);
          ("cache/off bytes-per-op", cache_off.k_bytes_per_op);
          ("cache/on bytes-per-op", cache_on.k_bytes_per_op);
        ])
    rows;
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  check
    ((not (Float.is_nan unbatched_ns))
    && (not (Float.is_nan batched_ns))
    && batched_ns <= unbatched_ns *. 1.10)
    (Printf.sprintf "batched 2PC slower than unbatched: %.0f ns vs %.0f ns" batched_ns
       unbatched_ns);
  check (ratio "insert" >= 2.0)
    (Printf.sprintf "insert msgs/op reduction %.2fx < 2x" (ratio "insert"));
  check (ratio "delete" >= 2.0)
    (Printf.sprintf "delete msgs/op reduction %.2fx < 2x" (ratio "delete"));
  check
    ((not (Float.is_nan audited_ns)) && audited_ns <= unbatched_ns *. 1.10)
    (Printf.sprintf "history recording overhead over 10%%: %.0f ns vs %.0f ns" audited_ns
       unbatched_ns);
  check
    ((not (Float.is_nan cache_on.k_bytes_per_op))
    && cache_on.k_bytes_per_op <= cache_off.k_bytes_per_op)
    (Printf.sprintf "cached read path sent more bytes/op than uncached: %.1f vs %.1f"
       cache_on.k_bytes_per_op cache_off.k_bytes_per_op);
  match !failures with
  | [] -> Printf.printf "smoke OK\n%!"
  | fs ->
      List.iter (fun m -> Printf.eprintf "smoke FAIL: %s\n%!" m) fs;
      exit 1

let full ?(out = "BENCH_pr4.json") () =
  section "Micro-benchmarks (bechamel, time per run)";
  let micro_rows =
    run_benchmarks ~quota:0.25
      [
        bench_reference_lookup 1_000;
        bench_btree_lookup ~branching:8 1_000;
        bench_btree_lookup ~branching:32 1_000;
        bench_btree_lookup ~branching:128 1_000;
        bench_btree_lookup ~branching:32 100_000;
        bench_btree_insert_coalesce ~branching:32 1_000;
        bench_btree_digest ~branching:32 1_000;
        bench_btree_digest ~branching:32 100_000;
        bench_lock_acquire_release ();
        bench_rep_insert_coalesce ();
        bench_rep_insert_coalesce_leased ();
        bench_suite_lookup ~config:cfg_322;
        bench_suite_insert_delete ~config:cfg_322 ();
        (* One-phase vs presumed-abort two-phase commit on the same
           workload: the 2PC delta is the prepare round + the coordinator's
           forced decision log write. *)
        bench_suite_insert_delete ~two_phase:true ~tag:"+2pc" ~config:cfg_322 ();
        (* The batching A/B: one message per representative per round, the
           prepare piggybacked on the final work round, commit notices riding
           on later calls — and, in the last row, WAL group commit on top. *)
        bench_suite_insert_delete ~two_phase:true ~batching:true ~tag:"+2pc+batch"
          ~config:cfg_322 ();
        bench_suite_insert_delete ~two_phase:true ~batching:true ~group_commit:0.001
          ~tag:"+2pc+groupcommit" ~config:cfg_322 ();
        bench_suite_lookup ~config:(Config.simple ~n:5 ~r:3 ~w:3);
        bench_suite_insert_delete ~config:(Config.simple ~n:5 ~r:3 ~w:3) ();
        bench_file_voting_modify ();
        bench_availability ();
      ]
  in

  section "Per-table pipeline benchmarks (scaled-down, bechamel)";
  let table_rows = run_benchmarks ~quota:0.5 bench_tables in
  section "Messages per operation (3-2-2, 2pc, unbatched vs batched)";
  let counters = message_counters () in
  print_counters counters;
  write_bench_json ~path:out ~counters (micro_rows @ table_rows);

  (* ---- full reproductions, paper parameters ---- *)
  let module F = Repdir_harness.Figures in
  section "Figure 14 — deletion statistics across configurations (~100 entries, 10k ops)";
  Repdir_util.Table.print (F.figure14 ());

  section "Figure 15 — detailed statistics for 3-2-2 suites (100k ops per size)";
  Repdir_util.Table.print (F.figure15 ());

  section "Ablation (§5) — random vs stable write quorums (3-2-2, 10k ops)";
  Repdir_util.Table.print (F.quorum_stability ());

  section "Availability — exact read/write quorum availability";
  Repdir_util.Table.print (F.availability ());

  section "Messages — calls and true wire messages per operation";
  Repdir_util.Table.print (F.messages ());

  section "Concurrency (§2) — gap-versioned vs single-version, 3-2-2";
  Repdir_util.Table.print
    (Repdir_harness.Concurrency.table ~duration:1000.0 ~config:cfg_322 ());

  section "Figure 16 — locality quorums on a 4-2-3 suite";
  Repdir_util.Table.print (Repdir_harness.Locality.table ());

  section "Crash/recovery timeline (3-2-2, discrete-event simulation)";
  Repdir_util.Table.print (Repdir_harness.Faults.table ());

  section "Latency (§5) — sequential vs parallel quorum RPCs, 3-2-2";
  Repdir_util.Table.print (Repdir_harness.Latency.table ~config:cfg_322 ());

  section "Latency (§5) — sequential vs parallel quorum RPCs, 5-3-3";
  Repdir_util.Table.print
    (Repdir_harness.Latency.table ~config:(Config.simple ~n:5 ~r:3 ~w:3) ());

  section "Space and write traffic vs baselines (identical churn)";
  Repdir_util.Table.print (Repdir_harness.Figures.space_and_traffic ());

  section "Skewed access (§2) — gap-scheme throughput under Zipf popularity, 8 clients";
  Repdir_util.Table.print
    (Repdir_harness.Concurrency.skew_table ~duration:1000.0 ~config:cfg_322 ());

  section "Batching (§4) — representative calls per delete vs chain depth";
  Repdir_util.Table.print (Repdir_harness.Figures.batching ());

  print_newline ()

(* --- membership: throughput during a live join ----------------------------------- *)

(* Ops completed per unit of virtual time in steady state versus while a
   live join is in flight, on the fault-free reconfiguration world (the
   nemesis campaign measures safety under faults; this measures what the
   join protocol itself costs bystander traffic). The joiner catches up
   through pairwise anti-entropy sessions, so client operations only stall
   for the short whole-directory converge session that gates the promotion
   — the gate below holds the cost to at most half the steady-state
   throughput at the default workload. *)
let reconfig ?(out = "BENCH_pr7.json") () =
  section "Membership: ops during a live join vs steady state (virtual time)";
  let _outcome, r = Repdir_harness.Nemesis.run_reconfig ~faults:false ~join_at:400.0 () in
  let per100 ops span = if span <= 0.0 then nan else 100.0 *. float_of_int ops /. span in
  let steady = per100 r.Repdir_harness.Nemesis.steady_ops r.Repdir_harness.Nemesis.steady_span in
  let during =
    per100 r.Repdir_harness.Nemesis.during_join_ops r.Repdir_harness.Nemesis.during_join_span
  in
  let ratio = during /. steady in
  Printf.printf
    "steady-state:  %d ops / %.0fu  = %.2f ops/100u\nduring-join:   %d ops / %.0fu  = %.2f \
     ops/100u\nratio: %.0f%% (join completed: %b)\n%!"
    r.Repdir_harness.Nemesis.steady_ops r.Repdir_harness.Nemesis.steady_span steady
    r.Repdir_harness.Nemesis.during_join_ops r.Repdir_harness.Nemesis.during_join_span during
    (100.0 *. ratio)
    (r.Repdir_harness.Nemesis.joined_at <> None);
  write_bench_json ~path:out
    ~counters:
      [
        ("reconfig/steady-state ops-per-100u", steady);
        ("reconfig/during-join ops-per-100u", during);
        ("reconfig/during-join-vs-steady pct", 100.0 *. ratio);
      ]
    [];
  if r.Repdir_harness.Nemesis.joined_at = None then begin
    Printf.eprintf "reconfig bench FAIL: the join did not complete\n%!";
    exit 1
  end;
  if Float.is_nan ratio || ratio < 0.5 then begin
    Printf.eprintf "reconfig bench FAIL: during-join throughput %.0f%% of steady < 50%%\n%!"
      (100.0 *. ratio);
    exit 1
  end;
  Printf.printf "reconfig bench OK\n%!"

(* --- horizontal sharding: scaling and during-split goodput ----------------------- *)

(* Uniform goodput of a [groups]-group sharded deployment under a client
   population that saturates a single group. Every representative runs a
   deliberately tight admission cap standing in for per-node service
   capacity, so a single group's throughput is pinned at its capacity and
   aggregate throughput can only grow by adding groups — the property the
   shard layer exists to buy. The same seeds, clients and key space are used
   at every group count; only the shard map differs. *)
let shard_scaling_phase ?(seed = 1983L) ?(duration = 600.0) ?(warmup = 100.0) ~groups
    ~clients () =
  let module Sim = Repdir_sim.Sim in
  let module Shard_world = Repdir_harness.Shard_world in
  let module Router = Repdir_shard.Router in
  let module Shard_map = Repdir_shard.Shard_map in
  let module Rep = Repdir_rep.Rep in
  let module Key = Repdir_key.Key in
  let open Repdir_core in
  let module Rng = Repdir_util.Rng in
  let key_space = 64 in
  let admission = { Rep.window = 10.0; cap = 8; shed_at = 1_000 } in
  let world =
    Shard_world.create ~seed ~rpc_timeout:10.0 ~rpc_attempts:4 ~rpc_backoff:2.0
      ~two_phase:true ~n_clients:clients ~lease:60.0 ~admission ~config:cfg_322 ~groups ()
  in
  let sim = Shard_world.sim world in
  let cuts =
    List.init (groups - 1) (fun i -> Key.of_int ((i + 1) * key_space / groups))
  in
  let map = Shard_map.initial ~cuts in
  let routers = Array.init clients (fun c -> Shard_world.router_for_client world c ~map) in
  let ok = ref 0 in
  for c = 0 to clients - 1 do
    let rng = Rng.create (Int64.add seed (Int64.of_int (100 + c))) in
    let retry_rng = Rng.create (Int64.add seed (Int64.of_int (200 + c))) in
    let router = routers.(c) in
    let one_op () =
      let key = Key.of_int (Rng.int rng key_space) in
      let value = Printf.sprintf "c%d-%f" c (Sim.now sim) in
      let kind = Rng.int rng 4 in
      let t0 = Sim.now sim in
      match
        Suite.with_retries ~attempts:4 ~backoff:2.0 ~sleep:(Sim.sleep sim) ~rng:retry_rng
          (fun () ->
            match kind with
            | 0 -> ignore (Router.lookup router key : (_ * string) option)
            | 1 -> ignore (Router.insert router key value : (unit, _) result)
            | 2 -> ignore (Router.update router key value : (unit, _) result)
            | _ -> ignore (Router.delete router key : Suite.delete_report))
      with
      | () -> if t0 >= warmup then incr ok
      | exception (Suite.Unavailable _ | Repdir_txn.Txn.Abort _) -> ()
    in
    Sim.spawn sim (fun () ->
        while Sim.now sim < duration do
          one_op ();
          Sim.sleep sim (Rng.exponential rng ~mean:4.0)
        done)
  done;
  Sim.run sim;
  100.0 *. float_of_int !ok /. (duration -. warmup)

(* Two gates: a 4-group deployment must carry >= 2.5x the uniform goodput of
   a single group at the same offered load, and a live range migration
   (fault-free split campaign) must keep bystander goodput at >= 50% of
   steady state — writes to the moving slice are refused while it is frozen,
   so this bounds what the freeze window costs the workload overall. *)
let shard_bench ?(out = "BENCH_pr10.json") () =
  section "Horizontal sharding: throughput scaling and during-split goodput (virtual time)";
  let clients = 24 in
  let g1 = shard_scaling_phase ~groups:1 ~clients () in
  let g4 = shard_scaling_phase ~groups:4 ~clients () in
  let scale = g4 /. g1 in
  Printf.printf
    "uniform goodput, %d clients: 1 group %.1f ops/100u, 4 groups %.1f ops/100u (%.2fx)\n%!"
    clients g1 g4 scale;
  let _outcome, r = Repdir_harness.Nemesis.run_shard ~faults:false () in
  let per100 ops span = if span <= 0.0 then nan else 100.0 *. float_of_int ops /. span in
  let steady =
    per100 r.Repdir_harness.Nemesis.split_steady_ops r.Repdir_harness.Nemesis.split_steady_span
  in
  let during =
    per100 r.Repdir_harness.Nemesis.during_split_ops r.Repdir_harness.Nemesis.during_split_span
  in
  let ratio = during /. steady in
  Printf.printf
    "split: steady %.1f ops/100u, during the migration %.1f ops/100u (%.0f%%; flip \
     completed: %b)\n%!"
    steady during (100.0 *. ratio)
    (r.Repdir_harness.Nemesis.flipped_at <> None);
  write_bench_json ~path:out
    ~counters:
      [
        ("shard/1-group goodput ops-per-100u", g1);
        ("shard/4-group goodput ops-per-100u", g4);
        ("shard/4-group-vs-1-group scale", scale);
        ("shard/split steady ops-per-100u", steady);
        ("shard/during-split ops-per-100u", during);
        ("shard/during-split-vs-steady pct", 100.0 *. ratio);
      ]
    [];
  let failed = ref false in
  if r.Repdir_harness.Nemesis.flipped_at = None then begin
    Printf.eprintf "shard bench FAIL: the split did not complete\n%!";
    failed := true
  end;
  if Float.is_nan scale || scale < 2.5 then begin
    Printf.eprintf "shard bench FAIL: 4-group goodput %.2fx single group < 2.5x\n%!" scale;
    failed := true
  end;
  if Float.is_nan ratio || ratio < 0.5 then begin
    Printf.eprintf "shard bench FAIL: during-split goodput %.0f%% of steady < 50%%\n%!"
      (100.0 *. ratio);
    failed := true
  end;
  if !failed then exit 1;
  Printf.printf "shard bench OK\n%!"

(* --- overload and gray failure: goodput and tail-latency gates ------------------- *)

(* Three phases on identically-seeded simulated worlds, all with the full
   robustness stack armed (admission control, operation deadlines, retry
   budgets, health-ordered quorums, hedged reads):

     A. steady state  — the baseline goodput and fault-free p99 latency;
     B. 2x offered    — twice the client population. Admission pushback and
        retry budgets must keep goodput from collapsing: the gate holds it
        at >= 60% of steady state;
     C. one gray rep  — representative 0 answers ~10x slow (links spiked,
        never down). Health scoring must steer quorums away and hedging
        must cover the residual exposure: the gate holds the p99 at <= 3x
        the fault-free p99.

   Latency is virtual time from a client starting an operation to its
   completion, successful operations only; the first [warmup] time units are
   excluded from the statistics (but not from the run) so the health tables
   score on warm data and phase C measures detection steady state, not the
   cold start the hedge exists to bound. *)

type overload_phase = {
  ph_goodput : float;  (* successful ops per 100 time units, post-warmup *)
  ph_mean : float;  (* mean op latency, successful post-warmup ops *)
  ph_p50 : float;
  ph_p90 : float;
  ph_p99 : float;  (* p99 op latency, successful post-warmup ops *)
  ph_attempted : int;
  ph_succeeded : int;
  ph_written_off : int;  (* operations abandoned as unavailable/expired *)
  ph_hedged : int;
  ph_overload_rejects : int;
  ph_shed_rejects : int;
}

let overload_phase ?(seed = 1983L) ?(duration = 800.0) ?(warmup = 100.0) ~clients ~gray
    () =
  let module Sim = Repdir_sim.Sim in
  let module Net = Repdir_sim.Net in
  let module Sim_world = Repdir_harness.Sim_world in
  let module Rep = Repdir_rep.Rep in
  let open Repdir_core in
  let module Rng = Repdir_util.Rng in
  let config = cfg_322 in
  let n = Config.n_reps config in
  let world =
    Sim_world.create ~seed ~rpc_timeout:10.0 ~rpc_attempts:4 ~rpc_backoff:2.0
      ~two_phase:true ~n_clients:clients ~lease:60.0 ~admission:Rep.default_admission
      ~config ()
  in
  let sim = Sim_world.sim world in
  let health = Picker.Health.create ~n () in
  let suites =
    Array.init clients (fun c ->
        Sim_world.suite_for_client
          ~picker:(Picker.Healthy health)
          ~health ~op_deadline:30.0 ~hedge:2.0 world c)
  in
  if gray then begin
    (* Representative 0 stays up and answers — every message touching it is
       just ~10x slower than the exponential mean. A crash would be easy;
       this is the gray case. *)
    let net = Sim_world.net world in
    let slow = { Net.no_faults with spike = 1.0; spike_factor = 10.0 } in
    for j = 0 to Net.n_nodes net - 1 do
      if j <> 0 then Net.set_link_faults net 0 j slow
    done
  end;
  let budgets = Array.init clients (fun _ -> Suite.Retry_budget.create ()) in
  let attempted = ref 0 and succeeded = ref 0 and written_off = ref 0 in
  let lats = ref [] in
  let measured_ok = ref 0 in
  let key_space = 30 in
  for c = 0 to clients - 1 do
    let rng = Rng.create (Int64.add seed (Int64.of_int (100 + c))) in
    let retry_rng = Rng.create (Int64.add seed (Int64.of_int (200 + c))) in
    let suite = suites.(c) in
    let one_op () =
      incr attempted;
      let key = Key.of_int (Rng.int rng key_space) in
      let value = Printf.sprintf "c%d-v%d-%f" c !attempted (Sim.now sim) in
      let kind = Rng.int rng 4 in
      let t0 = Sim.now sim in
      match
        Suite.with_retries ~attempts:4 ~backoff:2.0 ~budget:budgets.(c)
          ~sleep:(Sim.sleep sim) ~rng:retry_rng (fun () ->
            match kind with
            | 0 -> ignore (Suite.lookup suite key : (_ * string) option)
            | 1 -> ignore (Suite.insert suite key value : (unit, _) result)
            | 2 -> ignore (Suite.update suite key value : (unit, _) result)
            | _ -> ignore (Suite.delete suite key : Suite.delete_report))
      with
      | () ->
          incr succeeded;
          if t0 >= warmup then begin
            lats := (Sim.now sim -. t0) :: !lats;
            incr measured_ok
          end
      | exception (Suite.Unavailable _ | Suite.Deadline_exceeded _ | Repdir_txn.Txn.Abort _)
        ->
          incr written_off
    in
    Sim.spawn sim (fun () ->
        while Sim.now sim < duration do
          one_op ();
          Sim.sleep sim (Rng.exponential rng ~mean:4.0)
        done)
  done;
  Sim.run sim;
  let a = Array.of_list !lats in
  Array.sort compare a;
  let n_lat = Array.length a in
  let pct p = if n_lat = 0 then nan else a.(min (n_lat - 1) (n_lat * p / 100)) in
  let mean =
    if n_lat = 0 then nan else Array.fold_left ( +. ) 0.0 a /. float_of_int n_lat
  in
  let sum f =
    Array.fold_left (fun acc r -> acc + f (Rep.counters r)) 0 (Sim_world.reps world)
  in
  {
    ph_goodput = 100.0 *. float_of_int !measured_ok /. (duration -. warmup);
    ph_mean = mean;
    ph_p50 = pct 50;
    ph_p90 = pct 90;
    ph_p99 = pct 99;
    ph_attempted = !attempted;
    ph_succeeded = !succeeded;
    ph_written_off = !written_off;
    ph_hedged = Array.fold_left (fun acc s -> acc + Suite.hedged_count s) 0 suites;
    ph_overload_rejects = sum (fun c -> c.Repdir_rep.Rep.overload_rejects);
    ph_shed_rejects = sum (fun c -> c.Repdir_rep.Rep.shed_rejects);
  }

let overload ?(out = "BENCH_pr8.json") () =
  section "Overload and gray failure: goodput and tail latency (virtual time)";
  let steady = overload_phase ~clients:4 ~gray:false () in
  let doubled = overload_phase ~clients:8 ~gray:false () in
  let gray = overload_phase ~clients:4 ~gray:true () in
  let goodput_ratio = doubled.ph_goodput /. steady.ph_goodput in
  let p99_ratio = gray.ph_p99 /. steady.ph_p99 in
  let line tag p =
    Printf.printf
      "%-12s goodput %6.2f ops/100u  p50 %5.2f p90 %5.2f p99 %6.2f u  (ok %d/%d, written \
       off %d, hedged %d, overload rejects %d, shed %d)\n"
      tag p.ph_goodput p.ph_p50 p.ph_p90 p.ph_p99 p.ph_succeeded p.ph_attempted
      p.ph_written_off p.ph_hedged p.ph_overload_rejects p.ph_shed_rejects
  in
  line "steady:" steady;
  line "2x offered:" doubled;
  line "gray rep0:" gray;
  Printf.printf "goodput under 2x offered: %.0f%% of steady (gate: >= 60%%)\n"
    (100.0 *. goodput_ratio);
  Printf.printf "p99 with one gray rep: %.2fx fault-free (gate: <= 3x)\n%!" p99_ratio;
  (* Benchmark rows for the JSON: per-phase operation latency, virtual time
     units reported as if one unit were a millisecond so the shared schema's
     ns fields stay meaningful; the name says so. *)
  let vrow tag p =
    {
      name = Printf.sprintf "overload/%s op-latency (virtual, 1u=1ms)" tag;
      ns = p.ph_mean *. 1.0e6;
      p50 = p.ph_p50 *. 1.0e6;
      p90 = p.ph_p90 *. 1.0e6;
      p99 = p.ph_p99 *. 1.0e6;
    }
  in
  write_bench_json ~path:out
    ~counters:
      [
        ("overload/steady goodput ops-per-100u", steady.ph_goodput);
        ("overload/2x-offered goodput ops-per-100u", doubled.ph_goodput);
        ("overload/2x-offered-vs-steady pct", 100.0 *. goodput_ratio);
        ("overload/steady p99 latency", steady.ph_p99);
        ("overload/gray-rep p99 latency", gray.ph_p99);
        ("overload/gray-vs-steady p99 ratio", p99_ratio);
        ("overload/gray hedged ops", float_of_int gray.ph_hedged);
        ("overload/2x overload rejects", float_of_int doubled.ph_overload_rejects);
        ("overload/2x shed rejects", float_of_int doubled.ph_shed_rejects);
      ]
    [ vrow "steady" steady; vrow "2x-offered" doubled; vrow "gray-rep0" gray ];
  let failed = ref false in
  if Float.is_nan goodput_ratio || goodput_ratio < 0.6 then begin
    Printf.eprintf "overload bench FAIL: goodput under 2x offered load %.0f%% of steady < 60%%\n%!"
      (100.0 *. goodput_ratio);
    failed := true
  end;
  if Float.is_nan p99_ratio || p99_ratio > 3.0 then begin
    Printf.eprintf "overload bench FAIL: gray-replica p99 %.2fx fault-free > 3x\n%!" p99_ratio;
    failed := true
  end;
  if !failed then exit 1;
  Printf.printf "overload bench OK\n%!"

let arg_value flag argv =
  let n = Array.length argv in
  let rec go i =
    if i >= n - 1 then None else if argv.(i) = flag then Some argv.(i + 1) else go (i + 1)
  in
  go 0

let () =
  let out = arg_value "--out" Sys.argv in
  if Array.exists (( = ) "--smoke") Sys.argv then smoke ?out ()
  else if Array.exists (( = ) "--reconfig") Sys.argv then reconfig ?out ()
  else if Array.exists (( = ) "--overload") Sys.argv then overload ?out ()
  else if Array.exists (( = ) "--cache") Sys.argv then cache_bench ?out ()
  else if Array.exists (( = ) "--shard") Sys.argv then shard_bench ?out ()
  else full ?out ()
