(* Chaos test: several concurrent clients run atomic two-key transactions
   against a 3-2-2 suite on the simulator while a fault injector crashes and
   recovers representatives (at most one down at a time, so quorums remain
   collectible). With two-phase commit, every transaction must be
   all-or-nothing despite crashes landing between the phases: after the dust
   settles, each pair of keys is either fully present with matching tags or
   fully absent. Clients retry on deadlock aborts and unavailability through
   [Suite.with_retries] — re-running the same pair after an aborted attempt
   is safe precisely because aborts roll everything back. *)

open Repdir_txn
open Repdir_sim
open Repdir_quorum
open Repdir_core
open Repdir_harness

let run_chaos ~seed ~duration ~clients =
  let config = Config.simple ~n:3 ~r:2 ~w:2 in
  let world =
    Sim_world.create ~seed:(Int64.of_int seed) ~two_phase:true ~rpc_timeout:60.0
      ~n_clients:clients ~config ()
  in
  let sim = Sim_world.sim world in
  let committed_pairs : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let committed = ref 0 and retried = ref 0 in
  (* Clients: insert a unique (a-tag, b-tag) pair atomically, occasionally
     delete a previously committed pair (also atomically). *)
  for c = 0 to clients - 1 do
    let suite = Sim_world.suite_for_client ~seed:(Int64.of_int ((c * 131) + 7)) world c in
    let rng = Repdir_util.Rng.create (Int64.of_int ((c * 17) + seed)) in
    let counter = ref 0 in
    Sim.spawn sim (fun () ->
        while Sim.now sim < duration do
          incr counter;
          let tag = Printf.sprintf "c%d-%d" c !counter in
          let ka = "a-" ^ tag and kb = "b-" ^ tag in
          match
            Suite.with_retries ~attempts:4 ~backoff:5.0
              ~sleep:(fun d ->
                incr retried;
                Sim.sleep sim d)
              ~rng
              (fun () ->
                Suite.with_txn suite (fun txn ->
                    (match Suite.insert ~txn suite ka tag with
                    | Ok () -> ()
                    | Error `Already_present -> failwith "duplicate pair key");
                    match Suite.insert ~txn suite kb tag with
                    | Ok () -> ()
                    | Error `Already_present -> failwith "duplicate pair key"))
          with
          | () ->
              incr committed;
              Hashtbl.replace committed_pairs tag tag
          | exception (Txn.Abort _ | Suite.Unavailable _) ->
              (* Even the last attempt failed: abandon this pair and move on
                 after a breather. *)
              incr retried;
              Sim.sleep sim (Repdir_util.Rng.exponential rng ~mean:5.0)
        done)
  done;
  (* Fault injector: one representative down at a time, repeatedly. *)
  Sim.spawn sim (fun () ->
      let rng = Repdir_util.Rng.create (Int64.of_int (seed + 999)) in
      while Sim.now sim < duration do
        let victim = Repdir_util.Rng.int rng 3 in
        Sim_world.crash_rep world victim;
        Sim.sleep sim (20.0 +. Repdir_util.Rng.float rng 30.0);
        Sim_world.recover_rep world victim;
        Sim.sleep sim (10.0 +. Repdir_util.Rng.float rng 20.0)
      done;
      (* Heal everything at the end. *)
      for i = 0 to 2 do
        if Repdir_rep.Rep.is_crashed (Sim_world.reps world).(i) then
          Sim_world.recover_rep world i
      done);
  Sim.run sim;
  (* Post-mortem from a fresh client view: every committed pair is fully
     present with matching values; a transaction that was *reported*
     committed must never be half-applied. *)
  let verifier = Sim_world.suite_for_client ~seed:424L world 0 in
  let violations = ref 0 in
  let checked = ref 0 in
  Sim.spawn sim (fun () ->
      Hashtbl.iter
        (fun tag _ ->
          incr checked;
          let a = Suite.lookup verifier ("a-" ^ tag) in
          let b = Suite.lookup verifier ("b-" ^ tag) in
          match (a, b) with
          | Some (_, va), Some (_, vb) when String.equal va tag && String.equal vb tag -> ()
          | _ -> incr violations)
        committed_pairs);
  Sim.run sim;
  (!committed, !retried, !checked, !violations)

let test_chaos_atomic_pairs () =
  let committed, _retried, checked, violations = run_chaos ~seed:11 ~duration:600.0 ~clients:3 in
  Alcotest.(check bool) "made progress under faults" true (committed > 5);
  Alcotest.(check int) "every committed pair checked" committed checked;
  Alcotest.(check int) "no atomicity violations" 0 violations

let test_chaos_many_seeds () =
  List.iter
    (fun seed ->
      let committed, _, _, violations = run_chaos ~seed ~duration:300.0 ~clients:2 in
      Alcotest.(check int) (Printf.sprintf "seed %d violations" seed) 0 violations;
      Alcotest.(check bool) (Printf.sprintf "seed %d progress" seed) true (committed > 0))
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "atomic pairs under crash churn" `Quick test_chaos_atomic_pairs;
          Alcotest.test_case "five seeds" `Slow test_chaos_many_seeds;
        ] );
    ]
