(* Tests for dynamic membership: record serialization, joint-consensus
   transition validation, representative epoch fencing (WAL durability and
   checkpoint restore), suite-level joint quorum collection with
   epoch-naming failures, and the end-to-end reconfiguration campaign. *)

open Repdir_key
open Repdir_rep
open Repdir_quorum
open Repdir_core
open Repdir_harness
module Member = Repdir_member.Member

let cfg votes r w = Config.make_exn ~votes ~read_quorum:r ~write_quorum:w

(* The campaign's starting point: the paper's 3-2-2 suite plus a zero-vote
   slot waiting to join. *)
let seed_record () =
  Member.initial
    ~config:(cfg [| 1; 1; 1; 0 |] 2 2)
    ~roster:[| Member.Active; Member.Active; Member.Active; Member.Joining |]

let record_t = Alcotest.testable Member.pp Member.equal

(* --- the distinguished key ---------------------------------------------------- *)

let test_key_sorts_first () =
  (* Workload generators draw zero-padded integer keys and random
     lowercase-alphabetic keys; the membership entry must sort before both
     so range scans over workload data never straddle it by accident. *)
  Alcotest.(check bool) "before integer keys" true (Key.compare Member.key (Key.of_int 0) < 0);
  Alcotest.(check bool) "before alphabetic keys" true (Key.compare Member.key "a" < 0)

(* --- serialization ------------------------------------------------------------- *)

let gen_record =
  let open QCheck.Gen in
  let gen_view ~epoch n =
    list_repeat n (int_range 0 3) >>= fun raw_votes ->
    list_repeat n (int_range 0 2) >>= fun raw_status ->
    let status = function 0 -> Member.Active | 1 -> Member.Joining | _ -> Member.Retired in
    let roster = Array.of_list (List.map status raw_status) in
    (* Slot 0 stays active so the view has votes at all; Joining/Retired
       slots must hold zero, everyone else at least one. *)
    roster.(0) <- Member.Active;
    let votes =
      Array.of_list
        (List.mapi
           (fun i v -> match roster.(i) with Member.Active -> max 1 v | _ -> 0)
           raw_votes)
    in
    let total = Array.fold_left ( + ) 0 votes in
    let w = (total / 2) + 1 in
    let r = total + 1 - w in
    match Member.make_view ~epoch ~config:(cfg votes r w) ~roster with
    | Ok v -> return v
    | Error e -> failwith e
  in
  int_range 3 5 >>= fun n ->
  small_nat >>= fun epoch ->
  bool >>= fun joint ->
  if joint then
    gen_view ~epoch n >>= fun old_view ->
    gen_view ~epoch:(epoch + 1) n >>= fun new_view ->
    return (Member.Joint (old_view, new_view))
  else gen_view ~epoch n >>= fun v -> return (Member.Stable v)

let roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:200
    (QCheck.make gen_record)
    (fun r ->
      (match Member.decode (Member.encode r) with
      | Ok r' -> Member.equal r r'
      | Error _ -> false)
      && Member.encode r = Member.encode r)

let test_decode_rejects_garbage () =
  (match Member.decode "" with Ok _ -> Alcotest.fail "empty accepted" | Error _ -> ());
  (match Member.decode "not a record" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  try
    ignore (Member.decode_exn "x");
    Alcotest.fail "decode_exn did not raise"
  with Invalid_argument _ -> ()

(* --- transitions ---------------------------------------------------------------- *)

let test_join_then_finish () =
  let r0 = seed_record () in
  Alcotest.(check int) "initial epoch" 0 (Member.epoch_of r0);
  let joint =
    match Member.join r0 ~slot:3 ~votes:1 ~read_quorum:2 ~write_quorum:3 with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "joint epoch" 1 (Member.epoch_of joint);
  (match joint with
  | Member.Joint (old_view, new_view) ->
      Alcotest.(check int) "old epoch kept" 0 old_view.Member.epoch;
      Alcotest.(check int) "joiner votes" 1 (Config.votes_of new_view.Member.config 3);
      Alcotest.(check bool) "joiner active" true (new_view.Member.roster.(3) = Member.Active);
      Alcotest.(check int) "two governing views" 2 (List.length (Member.views joint));
      (* An operation under the joint record needs a quorum in both views. *)
      let targets = Member.targets joint ~read:false in
      Alcotest.(check (list int)) "write quorums, oldest first" [ 2; 3 ]
        (List.map snd targets)
  | Member.Stable _ -> Alcotest.fail "join must produce a joint record");
  let stable =
    match Member.finish_change joint with Ok r -> r | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "stable epoch" 2 (Member.epoch_of stable);
  match stable with
  | Member.Stable v ->
      Alcotest.(check int) "one governing view" 1 (List.length (Member.views stable));
      Alcotest.(check int) "four voters" 4 (Config.total_votes v.Member.config)
  | Member.Joint _ -> Alcotest.fail "finish must produce a stable record"

let test_retire () =
  let r0 = seed_record () in
  let r2 =
    match Member.join r0 ~slot:3 ~votes:1 ~read_quorum:2 ~write_quorum:3 with
    | Ok j -> ( match Member.finish_change j with Ok s -> s | Error e -> Alcotest.fail e)
    | Error e -> Alcotest.fail e
  in
  let joint =
    match Member.retire r2 ~slot:0 ~read_quorum:2 ~write_quorum:2 with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (match joint with
  | Member.Joint (_, new_view) ->
      Alcotest.(check int) "retiree drained" 0 (Config.votes_of new_view.Member.config 0);
      Alcotest.(check bool) "retiree fenced" true (new_view.Member.roster.(0) = Member.Retired)
  | Member.Stable _ -> Alcotest.fail "retire must produce a joint record");
  let stable =
    match Member.finish_change joint with Ok r -> r | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "final epoch" 4 (Member.epoch_of stable)

let test_transition_validation () =
  let r0 = seed_record () in
  let joint =
    match Member.join r0 ~slot:3 ~votes:1 ~read_quorum:2 ~write_quorum:3 with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (* One change at a time: a joint record refuses another begin_change. *)
  (match Member.join joint ~slot:3 ~votes:2 ~read_quorum:2 ~write_quorum:4 with
  | Ok _ -> Alcotest.fail "begin_change on a joint record accepted"
  | Error _ -> ());
  (* finish_change needs a change in flight. *)
  (match Member.finish_change r0 with
  | Ok _ -> Alcotest.fail "finish_change on a stable record accepted"
  | Error _ -> ());
  (* Joining a slot that is not waiting, or with quorums violating the
     paper's intersection constraints, is rejected. *)
  (match Member.join r0 ~slot:0 ~votes:2 ~read_quorum:2 ~write_quorum:3 with
  | Ok _ -> Alcotest.fail "join of an active slot accepted"
  | Error _ -> ());
  (match Member.join r0 ~slot:3 ~votes:1 ~read_quorum:1 ~write_quorum:1 with
  | Ok _ -> Alcotest.fail "non-intersecting quorums accepted"
  | Error _ -> ());
  (* A roster/view mismatch is rejected at make_view. *)
  match
    Member.make_view ~epoch:1
      ~config:(cfg [| 1; 1; 1; 1 |] 2 3)
      ~roster:[| Member.Active; Member.Active; Member.Active; Member.Joining |]
  with
  | Ok _ -> Alcotest.fail "joining slot with votes accepted"
  | Error _ -> ()

(* --- representative fencing ------------------------------------------------------ *)

let test_fencing_basics () =
  let r = Rep.create ~name:"r" () in
  Alcotest.(check int) "fresh epoch" 0 (Rep.epoch r);
  let record = Member.encode (seed_record ()) in
  Alcotest.(check bool) "install 1" true (Rep.install_epoch r ~epoch:1 ~record);
  Alcotest.(check int) "epoch 1" 1 (Rep.epoch r);
  Alcotest.(check (option string)) "record kept" (Some record) (Rep.membership r);
  (* Monotone: an older installation acknowledges (the fence is already at
     least this new) but changes nothing. *)
  Alcotest.(check bool) "older acked" true (Rep.install_epoch r ~epoch:0 ~record:"old");
  Alcotest.(check int) "still 1" 1 (Rep.epoch r);
  Alcotest.(check (option string)) "record unchanged" (Some record) (Rep.membership r);
  (* The fence accepts current and newer callers, rejects stale ones, and
     the rejection carries the newer record for adoption. *)
  Rep.fence_check r ~epoch:1;
  Rep.fence_check r ~epoch:7;
  match Rep.fence_check r ~epoch:0 with
  | () -> Alcotest.fail "stale epoch accepted"
  | exception Rep.Stale_epoch { epoch; record = carried; _ } ->
      Alcotest.(check int) "carries newer epoch" 1 epoch;
      Alcotest.check record_t "carries the record" (seed_record ())
        (Member.decode_exn carried)

let test_fencing_survives_crash_and_checkpoint () =
  let r = Rep.create ~name:"r" () in
  let record = Member.encode (seed_record ()) in
  ignore (Rep.install_epoch r ~epoch:2 ~record : bool);
  Rep.crash r;
  Rep.recover r;
  Alcotest.(check int) "epoch after recovery" 2 (Rep.epoch r);
  Alcotest.(check (option string)) "record after recovery" (Some record) (Rep.membership r);
  (* A checkpoint truncates the log; the epoch must ride the checkpoint. *)
  Rep.checkpoint r;
  Rep.crash r;
  Rep.recover r;
  Alcotest.(check int) "epoch after checkpointed recovery" 2 (Rep.epoch r);
  Alcotest.(check (option string)) "record after checkpointed recovery" (Some record)
    (Rep.membership r)

(* --- suite-level joint collection ------------------------------------------------ *)

let joint_world () =
  let reps = Array.init 4 (fun i -> Rep.create ~name:(Printf.sprintf "rep%d" i) ()) in
  let record =
    match Member.join (seed_record ()) ~slot:3 ~votes:1 ~read_quorum:2 ~write_quorum:3 with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let txns = Repdir_txn.Txn.Manager.create () in
  let suite =
    Suite.create
      ~picker:(Picker.Fixed [| 0; 1; 2; 3 |])
      ~config:(Member.current record).Member.config
      ~membership:record ~transport:(Transport.local reps) ~txns ()
  in
  (reps, suite)

let test_joint_write_covers_both_views () =
  let reps, suite = joint_world () in
  (match Suite.insert suite "k" "v" with
  | Ok () -> ()
  | Error `Already_present -> Alcotest.fail "k should be insertable");
  (* With the fixed preference order, the old view's write quorum is
     {0, 1} (2 of 3 votes) and the new view's is {0, 1, 2} (3 of 4): the
     entry must land on the union and may skip representative 3. *)
  let has i = List.exists (fun (k, _, _) -> k = "k") (Rep.entries reps.(i)) in
  Alcotest.(check bool) "rep0 wrote" true (has 0);
  Alcotest.(check bool) "rep1 wrote" true (has 1);
  Alcotest.(check bool) "rep2 wrote" true (has 2);
  Alcotest.(check bool) "rep3 skipped" false (has 3)

let test_unavailable_names_the_failing_epoch () =
  let reps, suite = joint_world () in
  (* Killing representatives 2 and 3 leaves the old view's write quorum
     satisfiable ({0, 1}) but not the new view's (3 votes from {0, 1}):
     the failure must name the view that could not be collected. *)
  Rep.crash reps.(2);
  Rep.crash reps.(3);
  match Suite.insert suite "k" "v" with
  | Ok () | Error `Already_present -> Alcotest.fail "no quorum yet the write went through"
  | exception Suite.Unavailable msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) ("names epoch 1: " ^ msg) true (contains msg "epoch 1")

(* --- the end-to-end campaign ------------------------------------------------------ *)

(* The fault-free variant of the acceptance run: a live join to four
   representatives and a retire back to three under client traffic with the
   auditor on. The faulted variant is exercised by `repdir reconfig` in CI
   (it takes minutes of virtual time). *)
let test_reconfig_fault_free () =
  let outcome, report = Nemesis.run_reconfig ~faults:false () in
  Alcotest.(check bool) "join completed" true (report.Nemesis.joined_at <> None);
  Alcotest.(check bool) "retire completed" true (report.Nemesis.retired_at <> None);
  Alcotest.(check bool) "digest gate held" true report.Nemesis.digest_gate_ok;
  Alcotest.(check int) "final epoch" 4 report.Nemesis.final_epoch;
  Alcotest.(check int) "no violations" 0 (Nemesis.total_violations outcome);
  Alcotest.(check int) "no orphan locks" 0 outcome.Nemesis.orphan_locks;
  Alcotest.(check int) "no open in-doubt" 0 outcome.Nemesis.indoubt_open

let () =
  Alcotest.run "member"
    [
      ( "record",
        [
          Alcotest.test_case "key sorts first" `Quick test_key_sorts_first;
          QCheck_alcotest.to_alcotest roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick test_decode_rejects_garbage;
        ] );
      ( "transitions",
        [
          Alcotest.test_case "join then finish" `Quick test_join_then_finish;
          Alcotest.test_case "retire" `Quick test_retire;
          Alcotest.test_case "validation" `Quick test_transition_validation;
        ] );
      ( "fencing",
        [
          Alcotest.test_case "basics" `Quick test_fencing_basics;
          Alcotest.test_case "survives crash and checkpoint" `Quick
            test_fencing_survives_crash_and_checkpoint;
        ] );
      ( "suite",
        [
          Alcotest.test_case "joint write covers both views" `Quick
            test_joint_write_covers_both_views;
          Alcotest.test_case "unavailable names the epoch" `Quick
            test_unavailable_names_the_failing_epoch;
        ] );
      ( "campaign",
        [ Alcotest.test_case "fault-free join and retire" `Slow test_reconfig_fault_free ] );
    ]
