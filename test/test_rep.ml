(* Tests for the directory representative: Figure 6 operation semantics with
   locking, rollback on abort, crash recovery from the write-ahead log
   (including a randomized equivalence property), checkpointing, and the
   waiter/deadlock integration used by the simulator. *)

open Repdir_key
open Repdir_txn
open Repdir_rep
open Repdir_gapmap.Gapmap_intf

let new_rep ?waiter ?lock_group () = Rep.create ?waiter ?lock_group ~name:"r" ()

let seeded () =
  let r = new_rep () in
  Rep.insert r ~txn:1 "b" 1 "vb";
  Rep.insert r ~txn:1 "d" 1 "vd";
  Rep.insert r ~txn:1 "f" 1 "vf";
  Rep.commit r ~txn:1;
  r

let keys r = List.map (fun (k, _, _) -> k) (Rep.entries r)

(* --- operation semantics ----------------------------------------------------------- *)

let test_lookup_present_and_absent () =
  let r = seeded () in
  (match Rep.lookup r ~txn:2 (Bound.Key "d") with
  | Present { version; value } ->
      Alcotest.(check int) "version" 1 version;
      Alcotest.(check string) "value" "vd" value
  | Absent _ -> Alcotest.fail "d must be present");
  (match Rep.lookup r ~txn:2 (Bound.Key "c") with
  | Absent { gap_version } -> Alcotest.(check int) "gap version" 0 gap_version
  | Present _ -> Alcotest.fail "c must be absent");
  Rep.commit r ~txn:2

let test_predecessor_successor () =
  let r = seeded () in
  let p = Rep.predecessor r ~txn:2 (Bound.Key "d") in
  Alcotest.(check string) "pred of d" "b" (Bound.to_string p.key);
  let s = Rep.successor r ~txn:2 (Bound.Key "d") in
  Alcotest.(check string) "succ of d" "f" (Bound.to_string s.key);
  let s2 = Rep.successor r ~txn:2 (Bound.Key "f") in
  Alcotest.(check string) "succ of last" "HIGH" (Bound.to_string s2.key);
  Rep.commit r ~txn:2

let test_coalesce_returns_count () =
  let r = seeded () in
  let removed = Rep.coalesce r ~txn:2 ~lo:(Bound.Key "b") ~hi:(Bound.Key "f") 2 in
  Alcotest.(check int) "one entry between" 1 removed;
  Rep.commit r ~txn:2;
  Alcotest.(check (list string)) "d gone" [ "b"; "f" ] (keys r)

let test_coalesce_missing_endpoint_error () =
  let r = seeded () in
  (try
     ignore (Rep.coalesce r ~txn:2 ~lo:(Bound.Key "a") ~hi:(Bound.Key "f") 2);
     Alcotest.fail "missing endpoint accepted"
   with Missing_endpoint _ -> ());
  Rep.abort r ~txn:2

let test_predecessor_chain () =
  let r = seeded () in
  let chain = Rep.predecessor_chain r ~txn:2 (Bound.Key "f") ~depth:3 in
  Alcotest.(check (list string)) "three predecessors, descending"
    [ "d"; "b"; "LOW" ]
    (List.map (fun (n : Repdir_gapmap.Gapmap_intf.neighbor) -> Bound.to_string n.key) chain);
  (* Chain stops at LOW even if depth allows more. *)
  let short = Rep.predecessor_chain r ~txn:2 (Bound.Key "d") ~depth:5 in
  Alcotest.(check (list string)) "stops at LOW" [ "b"; "LOW" ]
    (List.map (fun (n : Repdir_gapmap.Gapmap_intf.neighbor) -> Bound.to_string n.key) short);
  Rep.commit r ~txn:2

let test_successor_chain () =
  let r = seeded () in
  let chain = Rep.successor_chain r ~txn:2 (Bound.Key "b") ~depth:3 in
  Alcotest.(check (list string)) "successors ascending" [ "d"; "f"; "HIGH" ]
    (List.map (fun (n : Repdir_gapmap.Gapmap_intf.neighbor) -> Bound.to_string n.key) chain);
  Rep.commit r ~txn:2

let test_chain_gap_versions () =
  (* Each chain element carries the version of the gap on its walk side. *)
  let r = seeded () in
  ignore (Rep.coalesce r ~txn:2 ~lo:(Bound.Key "b") ~hi:(Bound.Key "d") 7);
  Rep.commit r ~txn:2;
  let chain = Rep.predecessor_chain r ~txn:3 (Bound.Key "f") ~depth:2 in
  (match chain with
  | [ d; b ] ->
      Alcotest.(check int) "gap after d" 0 d.Repdir_gapmap.Gapmap_intf.gap_version;
      Alcotest.(check int) "gap after b (coalesced)" 7 b.Repdir_gapmap.Gapmap_intf.gap_version
  | _ -> Alcotest.fail "expected two elements");
  Rep.commit r ~txn:3

(* --- rollback ------------------------------------------------------------------------ *)

let test_abort_rolls_back_insert () =
  let r = seeded () in
  Rep.insert r ~txn:2 "c" 2 "vc";
  Alcotest.(check (list string)) "visible before abort" [ "b"; "c"; "d"; "f" ] (keys r);
  Rep.abort r ~txn:2;
  Alcotest.(check (list string)) "gone after abort" [ "b"; "d"; "f" ] (keys r)

let test_abort_rolls_back_update () =
  let r = seeded () in
  Rep.insert r ~txn:2 "d" 5 "changed";
  Rep.abort r ~txn:2;
  match Rep.lookup r ~txn:3 (Bound.Key "d") with
  | Present { version; value } ->
      Alcotest.(check int) "old version" 1 version;
      Alcotest.(check string) "old value" "vd" value
  | Absent _ -> Alcotest.fail "d lost"

let test_abort_rolls_back_coalesce () =
  let r = seeded () in
  let before_gaps = Rep.gaps r in
  ignore (Rep.coalesce r ~txn:2 ~lo:Bound.Low ~hi:Bound.High 7);
  Alcotest.(check int) "all removed" 0 (List.length (Rep.entries r));
  Rep.abort r ~txn:2;
  Alcotest.(check (list string)) "entries restored" [ "b"; "d"; "f" ] (keys r);
  Alcotest.(check bool) "gap versions restored" true (Rep.gaps r = before_gaps)

let test_abort_mixed_operations () =
  let r = seeded () in
  let before_entries = Rep.entries r and before_gaps = Rep.gaps r in
  Rep.insert r ~txn:2 "c" 2 "vc";
  ignore (Rep.coalesce r ~txn:2 ~lo:(Bound.Key "c") ~hi:(Bound.Key "f") 3);
  Rep.insert r ~txn:2 "e" 4 "ve";
  Rep.insert r ~txn:2 "b" 5 "vb'";
  Rep.abort r ~txn:2;
  Alcotest.(check bool) "entries restored exactly" true (Rep.entries r = before_entries);
  Alcotest.(check bool) "gaps restored exactly" true (Rep.gaps r = before_gaps)

(* --- locking --------------------------------------------------------------------------- *)

let test_strict_2pl_blocks_conflicting_txn () =
  (* With the default no-waiter, a conflicting acquisition fails loudly —
     proving the lock is actually held to commit. *)
  let r = seeded () in
  Rep.insert r ~txn:2 "c" 2 "vc";
  (try
     ignore (Rep.lookup r ~txn:3 (Bound.Key "c"));
     Alcotest.fail "conflicting lookup proceeded without waiting"
   with Failure _ -> ());
  Rep.commit r ~txn:2;
  (* After commit the lock is free. *)
  (match Rep.lookup r ~txn:3 (Bound.Key "c") with
  | Present _ -> ()
  | Absent _ -> Alcotest.fail "c must be present");
  Rep.commit r ~txn:3

let test_waiter_is_used_for_blocking () =
  let pending = ref None in
  let waiter register =
    (* Record the wake-up and pretend to block; the test fires it later. *)
    register (fun () -> ());
    pending := Some ()
  in
  let r = new_rep ~waiter () in
  Rep.insert r ~txn:1 "k" 1 "v";
  ignore (Rep.lookup r ~txn:2 (Bound.Key "k"));
  Alcotest.(check bool) "waiter invoked" true (!pending <> None);
  Alcotest.(check int) "lock wait counted" 1 (Rep.counters r).Rep.lock_waits

let test_deadlock_raises_txn_abort () =
  let group = Repdir_lock.Lock_manager.new_group () in
  let waiter register = register (fun () -> ()) in
  let a = new_rep ~waiter ~lock_group:group () in
  let b = new_rep ~waiter ~lock_group:group () in
  (* txn 1 writes at a, txn 2 writes at b; then each requests the other's
     key — the second request must abort with a deadlock. *)
  Rep.insert a ~txn:1 "k" 1 "v";
  Rep.insert b ~txn:2 "k" 1 "v";
  ignore (Rep.insert b ~txn:1 "k" 2 "v") (* txn1 now waits at b *);
  try
    Rep.insert a ~txn:2 "k" 2 "v";
    Alcotest.fail "expected deadlock abort"
  with Txn.Abort (Txn.Deadlock cycle) ->
    Alcotest.(check bool) "cycle has both txns" true (List.mem 1 cycle && List.mem 2 cycle)

(* --- crash and recovery ------------------------------------------------------------------ *)

let test_crash_blocks_operations () =
  let r = seeded () in
  Rep.crash r;
  Alcotest.(check bool) "crashed" true (Rep.is_crashed r);
  (try
     ignore (Rep.lookup r ~txn:2 (Bound.Key "b"));
     Alcotest.fail "operation on crashed rep"
   with Rep.Crashed _ -> ());
  Rep.recover r;
  match Rep.lookup r ~txn:3 (Bound.Key "b") with
  | Present _ -> ()
  | Absent _ -> Alcotest.fail "state lost after recovery"

let test_recovery_replays_committed_only () =
  let r = seeded () in
  Rep.insert r ~txn:2 "x" 9 "uncommitted";
  Rep.crash r;
  Rep.recover r;
  Alcotest.(check (list string)) "uncommitted insert discarded" [ "b"; "d"; "f" ] (keys r)

let test_recovery_preserves_gap_versions () =
  let r = seeded () in
  ignore (Rep.coalesce r ~txn:2 ~lo:(Bound.Key "b") ~hi:(Bound.Key "f") 6);
  Rep.commit r ~txn:2;
  let gaps_before = Rep.gaps r in
  Rep.crash r;
  Rep.recover r;
  Alcotest.(check bool) "gaps identical" true (Rep.gaps r = gaps_before)

let test_checkpoint_truncates_and_preserves () =
  let r = seeded () in
  let wal_before = Rep.wal_length r in
  Rep.checkpoint r;
  Alcotest.(check bool) "wal truncated" true (Rep.wal_length r <= wal_before);
  let entries_before = Rep.entries r and gaps_before = Rep.gaps r in
  Rep.crash r;
  Rep.recover r;
  Alcotest.(check bool) "entries preserved" true (Rep.entries r = entries_before);
  Alcotest.(check bool) "gaps preserved" true (Rep.gaps r = gaps_before)

let test_checkpoint_rejected_with_active_txn () =
  let r = seeded () in
  Rep.insert r ~txn:2 "x" 2 "v";
  try
    Rep.checkpoint r;
    Alcotest.fail "checkpoint with active txn accepted"
  with Invalid_argument _ -> Rep.abort r ~txn:2

(* Property: random committed history interleaved with crashes, recoveries
   and checkpoints always recovers to exactly the committed state. *)
let recovery_equivalence =
  QCheck.Test.make ~name:"crash recovery preserves committed state" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Repdir_util.Rng.create (Int64.of_int seed) in
      let r = new_rep () in
      let next_txn = ref 0 and next_version = ref 1 in
      let committed_entries = ref [] and committed_gaps = ref (Rep.gaps r) in
      for _step = 1 to 40 do
        match Repdir_util.Rng.int rng 10 with
        | 0 ->
            Rep.crash r;
            Rep.recover r;
            if Rep.entries r <> !committed_entries || Rep.gaps r <> !committed_gaps then
              failwith "recovery diverged"
        | 1 ->
            Rep.checkpoint r;
            Rep.crash r;
            Rep.recover r;
            if Rep.entries r <> !committed_entries then failwith "checkpoint diverged"
        | n ->
            incr next_txn;
            let txn = !next_txn in
            let commit = n < 8 in
            let ops = 1 + Repdir_util.Rng.int rng 3 in
            for _ = 1 to ops do
              let v = !next_version in
              incr next_version;
              if Repdir_util.Rng.bool rng then
                Rep.insert r ~txn (Key.of_int (Repdir_util.Rng.int rng 15)) v "x"
              else begin
                let bounds =
                  Array.of_list
                    (Bound.Low :: Bound.High
                    :: List.map (fun (k, _, _) -> Bound.Key k) (Rep.entries r))
                in
                let a = Repdir_util.Rng.pick rng bounds
                and b = Repdir_util.Rng.pick rng bounds in
                let lo, hi = if Bound.compare a b <= 0 then (a, b) else (b, a) in
                if Bound.compare lo hi < 0 then ignore (Rep.coalesce r ~txn ~lo ~hi v)
              end
            done;
            if commit then begin
              Rep.commit r ~txn;
              committed_entries := Rep.entries r;
              committed_gaps := Rep.gaps r
            end
            else begin
              Rep.abort r ~txn;
              if Rep.entries r <> !committed_entries || Rep.gaps r <> !committed_gaps then
                failwith "abort did not restore committed state"
            end
      done;
      true)

(* --- batched execution ---------------------------------------------------------------------- *)

let test_execute_runs_ops_in_order () =
  let r = seeded () in
  (* The batch mixes reads and writes; later ops must observe earlier ones
     (the lookup of "c" sees the insert two slots before it). *)
  match
    Rep.execute r ~txn:2
      [
        Rep.B_lookup (Bound.Key "d");
        Rep.B_insert ("c", 2, "vc");
        Rep.B_lookup (Bound.Key "c");
        Rep.B_coalesce (Bound.Key "c", Bound.Key "f", 3);
        Rep.B_prepare 7;
      ]
  with
  | [
   Rep.R_lookup (Present { version = 1; value = "vd" });
   Rep.R_unit;
   Rep.R_lookup (Present { version = 2; value = "vc" });
   Rep.R_removed 1;
   Rep.R_unit;
  ] ->
      (* The piggybacked prepare is a real vote: the transaction is
         prepared, so commit applies it. The coalesce saw the batch's own
         insert of "c" as its endpoint and removed "d" between c and f. *)
      Rep.commit r ~txn:2;
      Alcotest.(check (list string)) "batch effects committed" [ "b"; "c"; "f" ] (keys r);
      Alcotest.(check int) "batch counted once" 1 (Rep.counters r).Rep.batches;
      Alcotest.(check int) "all ops counted" 5 (Rep.counters r).Rep.batch_ops
  | _ -> Alcotest.fail "unexpected batch results"

let test_insert_if_absent_semantics () =
  let r = seeded () in
  (match
     Rep.execute r ~txn:2
       [ Rep.B_insert_if_absent ("b", 5, "clobber"); Rep.B_insert_if_absent ("c", 1, "vc") ]
   with
  | [ Rep.R_inserted false; Rep.R_inserted true ] -> ()
  | _ -> Alcotest.fail "unexpected insert-if-absent results");
  Rep.commit r ~txn:2;
  (* The present key kept its original version and value. *)
  match Rep.lookup r ~txn:3 (Bound.Key "b") with
  | Present { version = 1; value = "vb" } -> Rep.commit r ~txn:3
  | _ -> Alcotest.fail "present key was clobbered"

let test_finish_readonly_grant_and_refuse () =
  let r = seeded () in
  (* A pure reader is released in-round: locks drain, no outcome recorded. *)
  ignore (Rep.lookup r ~txn:2 (Bound.Key "b"));
  Alcotest.(check bool) "reader released" true (Rep.finish_readonly r ~txn:2);
  Alcotest.(check int) "locks drained" 0 (Rep.locks_held r);
  Alcotest.(check bool) "no outcome recorded" true (Rep.outcome_of r 2 = `Unknown);
  (* A transaction that wrote here must be refused. *)
  Rep.insert r ~txn:3 "x" 2 "v";
  Alcotest.(check bool) "writer refused" false (Rep.finish_readonly r ~txn:3);
  Rep.abort r ~txn:3;
  (* A prepared transaction holds a binding vote — also refused. *)
  ignore (Rep.lookup r ~txn:4 (Bound.Key "b"));
  Rep.prepare r ~txn:4 ~coord:1;
  Alcotest.(check bool) "prepared refused" false (Rep.finish_readonly r ~txn:4);
  Rep.commit r ~txn:4

let test_deliver_notices_idempotent () =
  let r = seeded () in
  Rep.insert r ~txn:5 "x" 2 "v";
  Rep.prepare r ~txn:5 ~coord:1;
  Rep.insert r ~txn:6 "y" 2 "v";
  (* Duplicate and contradictory-after-settled notices are no-ops. *)
  Rep.deliver_notices r
    [ Rep.N_commit 5; Rep.N_abort 6; Rep.N_commit 5; Rep.N_abort 5 ];
  Alcotest.(check bool) "commit applied" true
    (List.exists (fun (k, _, _) -> k = "x") (Rep.entries r));
  Alcotest.(check bool) "abort applied" false
    (List.exists (fun (k, _, _) -> k = "y") (Rep.entries r));
  Alcotest.(check int) "locks drained" 0 (Rep.locks_held r);
  Alcotest.(check bool) "outcomes settled" true
    (Rep.outcome_of r 5 = `Committed && Rep.outcome_of r 6 = `Aborted);
  Alcotest.(check int) "notices counted" 4 (Rep.counters r).Rep.notices_applied

(* --- counters ------------------------------------------------------------------------------ *)

let test_counters () =
  let r = seeded () in
  let c = Rep.counters r in
  let inserts0 = c.Rep.inserts in
  ignore (Rep.lookup r ~txn:2 (Bound.Key "b"));
  ignore (Rep.predecessor r ~txn:2 (Bound.Key "d"));
  ignore (Rep.successor r ~txn:2 (Bound.Key "d"));
  Rep.insert r ~txn:2 "z" 2 "v";
  ignore (Rep.coalesce r ~txn:2 ~lo:(Bound.Key "f") ~hi:Bound.High 3);
  Rep.commit r ~txn:2;
  Alcotest.(check int) "lookups" 1 c.Rep.lookups;
  Alcotest.(check int) "predecessors" 1 c.Rep.predecessors;
  Alcotest.(check int) "successors" 1 c.Rep.successors;
  Alcotest.(check int) "inserts" (inserts0 + 1) c.Rep.inserts;
  Alcotest.(check int) "coalesces" 1 c.Rep.coalesces

let () =
  Alcotest.run "rep"
    [
      ( "operations",
        [
          Alcotest.test_case "lookup present/absent" `Quick test_lookup_present_and_absent;
          Alcotest.test_case "predecessor/successor" `Quick test_predecessor_successor;
          Alcotest.test_case "coalesce count" `Quick test_coalesce_returns_count;
          Alcotest.test_case "coalesce missing endpoint" `Quick
            test_coalesce_missing_endpoint_error;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "predecessor chain" `Quick test_predecessor_chain;
          Alcotest.test_case "successor chain" `Quick test_successor_chain;
          Alcotest.test_case "chain gap versions" `Quick test_chain_gap_versions;
        ] );
      ( "batched-execution",
        [
          Alcotest.test_case "execute runs ops in order" `Quick test_execute_runs_ops_in_order;
          Alcotest.test_case "insert-if-absent semantics" `Quick
            test_insert_if_absent_semantics;
          Alcotest.test_case "finish-readonly grant/refuse" `Quick
            test_finish_readonly_grant_and_refuse;
          Alcotest.test_case "notices are idempotent" `Quick test_deliver_notices_idempotent;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "abort insert" `Quick test_abort_rolls_back_insert;
          Alcotest.test_case "abort update" `Quick test_abort_rolls_back_update;
          Alcotest.test_case "abort coalesce" `Quick test_abort_rolls_back_coalesce;
          Alcotest.test_case "abort mixed ops" `Quick test_abort_mixed_operations;
        ] );
      ( "locking",
        [
          Alcotest.test_case "strict 2PL to commit" `Quick test_strict_2pl_blocks_conflicting_txn;
          Alcotest.test_case "waiter used for blocking" `Quick test_waiter_is_used_for_blocking;
          Alcotest.test_case "cross-rep deadlock aborts" `Quick test_deadlock_raises_txn_abort;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash blocks operations" `Quick test_crash_blocks_operations;
          Alcotest.test_case "replays committed only" `Quick test_recovery_replays_committed_only;
          Alcotest.test_case "preserves gap versions" `Quick test_recovery_preserves_gap_versions;
          Alcotest.test_case "checkpoint truncates + preserves" `Quick
            test_checkpoint_truncates_and_preserves;
          Alcotest.test_case "checkpoint needs quiescence" `Quick
            test_checkpoint_rejected_with_active_txn;
          QCheck_alcotest.to_alcotest recovery_equivalence;
        ] );
    ]
