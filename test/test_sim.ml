(* Tests for the discrete-event simulator: deterministic ordering, process
   sleep/suspend semantics, network failure rules, and RPC behaviour. *)

open Repdir_sim

(* --- heap ----------------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:3.0 ~seq:1 "c";
  Heap.push h ~time:1.0 ~seq:2 "a";
  Heap.push h ~time:2.0 ~seq:3 "b";
  Heap.push h ~time:1.0 ~seq:1 "a0";
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, x) ->
        order := x :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time then seq order" [ "a0"; "a"; "b"; "c" ] (List.rev !order)

let test_heap_random_soak () =
  let rng = Repdir_util.Rng.create 7L in
  let h = Heap.create () in
  for i = 0 to 999 do
    Heap.push h ~time:(Repdir_util.Rng.float rng 100.0) ~seq:i i
  done;
  let prev = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Heap.pop h with
    | Some (time, _, _) ->
        Alcotest.(check bool) "non-decreasing" true (time >= !prev);
        prev := time;
        incr count;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all popped" 1000 !count

(* --- core simulator ---------------------------------------------------------------- *)

let test_sleep_ordering () =
  let sim = Sim.create () in
  let trace = ref [] in
  let log fmt = Printf.ksprintf (fun s -> trace := s :: !trace) fmt in
  Sim.spawn sim (fun () ->
      log "p1 start %.1f" (Sim.now sim);
      Sim.sleep sim 5.0;
      log "p1 wake %.1f" (Sim.now sim));
  Sim.spawn sim (fun () ->
      log "p2 start %.1f" (Sim.now sim);
      Sim.sleep sim 2.0;
      log "p2 wake %.1f" (Sim.now sim));
  Sim.run sim;
  Alcotest.(check (list string)) "interleaving by virtual time"
    [ "p1 start 0.0"; "p2 start 0.0"; "p2 wake 2.0"; "p1 wake 5.0" ]
    (List.rev !trace)

let test_spawn_at () =
  let sim = Sim.create () in
  let seen = ref 0.0 in
  Sim.spawn sim ~at:7.5 (fun () -> seen := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 0.0)) "spawn time honored" 7.5 !seen

let test_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.at sim (float_of_int i) (fun () -> incr count)
  done;
  Sim.run ~until:5.0 sim;
  Alcotest.(check int) "only events <= until" 5 !count;
  Sim.run sim;
  Alcotest.(check int) "rest run afterwards" 10 !count

let test_no_scheduling_into_past () =
  let sim = Sim.create () in
  Sim.at sim 10.0 (fun () ->
      Alcotest.check_raises "past scheduling rejected"
        (Invalid_argument "Sim: scheduling into the virtual past") (fun () ->
          Sim.at sim 5.0 ignore));
  Sim.run sim

let test_suspend_resume () =
  let sim = Sim.create () in
  let waker = ref (fun () -> ()) in
  let state = ref "init" in
  Sim.spawn sim (fun () ->
      state := "suspended";
      Sim.suspend sim (fun wake -> waker := wake);
      state := Printf.sprintf "resumed at %.1f" (Sim.now sim));
  Sim.at sim 3.0 (fun () -> !waker ());
  Sim.run sim;
  Alcotest.(check string) "resumed at waker's time" "resumed at 3.0" !state

let test_suspend_double_wake_harmless () =
  let sim = Sim.create () in
  let waker = ref (fun () -> ()) in
  let resumes = ref 0 in
  Sim.spawn sim (fun () ->
      Sim.suspend sim (fun wake -> waker := wake);
      incr resumes);
  Sim.at sim 1.0 (fun () ->
      !waker ();
      !waker ());
  Sim.at sim 2.0 (fun () -> !waker ());
  Sim.run sim;
  Alcotest.(check int) "resumed exactly once" 1 !resumes

let test_determinism () =
  let run () =
    let sim = Sim.create ~seed:99L () in
    let trace = ref [] in
    for i = 1 to 5 do
      Sim.spawn sim (fun () ->
          let d = Repdir_util.Rng.float (Sim.rng sim) 10.0 in
          Sim.sleep sim d;
          trace := (i, Sim.now sim) :: !trace)
    done;
    Sim.run sim;
    !trace
  in
  Alcotest.(check bool) "identical traces" true (run () = run ())

(* --- network -------------------------------------------------------------------------- *)

let fixed_latency d _rng = d

let test_net_delivery () =
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.5) () in
  let delivered = ref (-1.0) in
  Sim.spawn sim (fun () -> Net.send net ~src:0 ~dst:1 (fun () -> delivered := Sim.now sim));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "after latency" 1.5 !delivered

let test_net_crash_drops () =
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.0) () in
  let delivered = ref false in
  Net.crash net 1;
  Sim.spawn sim (fun () -> Net.send net ~src:0 ~dst:1 (fun () -> delivered := true));
  Sim.run sim;
  Alcotest.(check bool) "dropped" false !delivered;
  Alcotest.(check int) "counted" 1 (Net.messages_dropped net)

let test_net_crash_at_delivery_time () =
  (* Node up at send time but down at delivery: message still lost. *)
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 2.0) () in
  let delivered = ref false in
  Sim.spawn sim (fun () -> Net.send net ~src:0 ~dst:1 (fun () -> delivered := true));
  Sim.at sim 1.0 (fun () -> Net.crash net 1);
  Sim.run sim;
  Alcotest.(check bool) "dropped mid-flight" false !delivered

let test_net_recover () =
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.0) () in
  let delivered = ref false in
  Net.crash net 1;
  Net.recover net 1;
  Sim.spawn sim (fun () -> Net.send net ~src:0 ~dst:1 (fun () -> delivered := true));
  Sim.run sim;
  Alcotest.(check bool) "delivered after recovery" true !delivered

let test_net_partition () =
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:4 ~latency:(fixed_latency 1.0) () in
  Net.partition net [ 0; 1 ] [ 2; 3 ];
  let cross = ref false and within = ref false in
  Sim.spawn sim (fun () ->
      Net.send net ~src:0 ~dst:2 (fun () -> cross := true);
      Net.send net ~src:0 ~dst:1 (fun () -> within := true));
  Sim.run sim;
  Alcotest.(check bool) "cross-partition dropped" false !cross;
  Alcotest.(check bool) "within-partition delivered" true !within;
  Net.heal_partition net;
  Sim.spawn sim (fun () -> Net.send net ~src:0 ~dst:2 (fun () -> cross := true));
  Sim.run sim;
  Alcotest.(check bool) "delivered after heal" true !cross

(* --- rpc ---------------------------------------------------------------------------------- *)

let test_rpc_roundtrip () =
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.0) () in
  let result = ref (Error Rpc.Timeout) in
  let finished_at = ref nan in
  Sim.spawn sim (fun () ->
      result := Rpc.call net ~src:0 ~dst:1 ~timeout:10.0 (fun () -> 6 * 7);
      finished_at := Sim.now sim);
  Sim.run sim;
  (match !result with
  | Ok v -> Alcotest.(check int) "value" 42 v
  | Error Rpc.Timeout -> Alcotest.fail "unexpected timeout");
  Alcotest.(check (float 1e-9)) "round trip took 2 latencies" 2.0 !finished_at

let test_rpc_timeout_on_crashed_server () =
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.0) () in
  Net.crash net 1;
  let result = ref (Ok 0) in
  Sim.spawn sim (fun () ->
      result := Rpc.call net ~src:0 ~dst:1 ~timeout:5.0 (fun () -> 1));
  Sim.run sim;
  (match !result with
  | Error Rpc.Timeout -> ()
  | Ok _ -> Alcotest.fail "expected timeout");
  Alcotest.(check (float 1e-9)) "timed out at deadline" 5.0 (Sim.now sim)

exception Server_boom

let test_rpc_server_exception_propagates () =
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.0) () in
  let observed = ref false in
  Sim.spawn sim (fun () ->
      try ignore (Rpc.call net ~src:0 ~dst:1 ~timeout:10.0 (fun () -> raise Server_boom))
      with Server_boom -> observed := true);
  Sim.run sim;
  Alcotest.(check bool) "exception re-raised at caller" true !observed

let test_rpc_late_reply_dropped () =
  (* Server takes longer than the timeout: the caller gets Timeout and the
     late reply must not corrupt anything. *)
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.0) () in
  let result = ref (Ok 0) in
  Sim.spawn sim (fun () ->
      result := Rpc.call net ~src:0 ~dst:1 ~timeout:3.0 (fun () ->
          Sim.sleep sim 10.0;
          1));
  Sim.run sim;
  match !result with
  | Error Rpc.Timeout -> ()
  | Ok _ -> Alcotest.fail "expected timeout"

let test_rpc_blocking_server () =
  (* The server handler suspends and is woken by a third party; the caller
     waits through it. *)
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.0) () in
  let waker = ref (fun () -> ()) in
  let result = ref (Error Rpc.Timeout) in
  Sim.spawn sim (fun () ->
      result := Rpc.call net ~src:0 ~dst:1 ~timeout:100.0 (fun () ->
          Sim.suspend sim (fun wake -> waker := wake);
          Sim.now sim));
  Sim.at sim 50.0 (fun () -> !waker ());
  Sim.run sim;
  match !result with
  | Ok t -> Alcotest.(check (float 1e-9)) "server resumed at 50" 50.0 t
  | Error Rpc.Timeout -> Alcotest.fail "should not time out"

(* --- at-most-once dedup cache -------------------------------------------------------- *)

let test_at_most_once_cache_stays_bounded () =
  (* A long retry-heavy run: a quarter of all messages take far longer than
     the RPC timeout, so clients retransmit constantly and every completed
     call leaves a cached reply behind. The cache must stay at its cap (plus
     in-flight slack) instead of growing with server lifetime. *)
  let sim = Sim.create ~seed:11L () in
  let latency rng = if Repdir_util.Rng.float rng 1.0 < 0.25 then 40.0 else 1.0 in
  let net = Net.create sim ~n_nodes:2 ~latency () in
  let server = Rpc.server ~cap:32 ~ttl:60.0 () in
  let jitter = Repdir_util.Rng.create 3L in
  let calls = 400 in
  let completed = ref 0 in
  let retries = ref 0 in
  let max_entries = ref 0 in
  Sim.spawn sim (fun () ->
      for i = 1 to calls do
        (match
           Rpc.call_at_most_once net ~src:0 ~dst:1 ~server ~timeout:5.0 ~attempts:4
             ~backoff:1.0 ~rng:jitter
             ~on_retry:(fun () -> incr retries)
             (fun () -> i)
         with
        | Ok r -> if r = i then incr completed
        | Error Rpc.Timeout -> ());
        max_entries := max !max_entries (Rpc.server_entries server)
      done);
  Sim.run sim;
  Alcotest.(check bool) "run was retry-heavy" true (!retries > 50);
  Alcotest.(check bool)
    (Printf.sprintf "most calls complete (%d/%d)" !completed calls)
    true
    (!completed > calls * 3 / 4);
  (* Without eviction the table would hold one entry per completed call
     (hundreds); with it, the completed-entry FIFO never exceeds the cap and
     only in-flight duplicates ride on top. *)
  Alcotest.(check bool)
    (Printf.sprintf "cache bounded (peak %d)" !max_entries)
    true
    (!max_entries <= 32 + 8);
  Alcotest.(check bool) "eviction actually ran" true (Rpc.server_entries server <= 32 + 8)

let test_at_most_once_ttl_boundary () =
  (* Pin the TTL eviction boundary exactly: a cached reply with finish time
     [f] is dropped by a request arriving at [f +. ttl] — AT the boundary,
     not strictly after it — and kept by one arriving any earlier. Fixed
     latency 1.0 and no faults make every arrival time exact: a call sent at
     [s] arrives (and its handler finishes) at [s +. 1]. *)
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.0) () in
  let server = Rpc.server ~cap:100 ~ttl:10.0 () in
  let entries = ref [] in
  let call () =
    match
      Rpc.call_at_most_once net ~src:0 ~dst:1 ~server ~timeout:5.0 (fun () -> ())
    with
    | Ok () -> entries := Rpc.server_entries server :: !entries
    | Error Rpc.Timeout -> Alcotest.fail "no faults, yet a call timed out"
  in
  Sim.spawn sim (fun () ->
      (* A finishes at 1, B at 6, C at 10.9. *)
      call ();
      Sim.sleep sim 3.0 (* now 5.0 *);
      call ();
      Sim.sleep sim 2.9 (* now 9.9 *);
      (* C arrives at 10.9, a hair before A's boundary 1 + 10 = 11: nothing
         may be evicted yet. *)
      call ();
      Sim.sleep sim 3.1 (* now 15.0 *);
      (* D arrives at exactly B's boundary 6 + 10 = 16: A (long stale) and B
         (stale AT the boundary) go; C (10.9 + 10 > 16) stays. Oldest-first:
         a newest-first sweep would stop at C and keep all three. *)
      call ());
  Sim.run sim;
  Alcotest.(check (list int))
    "entries after each call (newest first)" [ 2; 3; 2; 1 ] !entries

let test_at_most_once_cap_boundary () =
  (* Pin the cap boundary: the completed-entry FIFO holds at most [cap]
     entries plus the one the current arrival just pushed, and every call
     still executes exactly once (eviction re-opens the re-execution window
     but never corrupts live dedup state). *)
  let sim = Sim.create () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fixed_latency 1.0) () in
  let server = Rpc.server ~cap:2 ~ttl:1e6 () in
  let execs = Array.make 5 0 in
  let entries = ref [] in
  Sim.spawn sim (fun () ->
      for i = 0 to 4 do
        (match
           Rpc.call_at_most_once net ~src:0 ~dst:1 ~server ~timeout:5.0 (fun () ->
               execs.(i) <- execs.(i) + 1)
         with
        | Ok () -> entries := Rpc.server_entries server :: !entries
        | Error Rpc.Timeout -> Alcotest.fail "no faults, yet a call timed out");
        Sim.sleep sim 3.0
      done);
  Sim.run sim;
  (* Arrival k (k >= 3) first evicts down to the cap, then pushes itself:
     the cache plateaus at cap + 1 and (with the oldest-first order proven
     by the TTL test) the survivors are always the newest entries. *)
  Alcotest.(check (list int))
    "entries after each call (newest first)" [ 3; 3; 3; 2; 1 ] !entries;
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "call %d ran once" i) 1 n)
    execs

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "random soak" `Quick test_heap_random_soak;
        ] );
      ( "core",
        [
          Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
          Alcotest.test_case "spawn at" `Quick test_spawn_at;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "no past scheduling" `Quick test_no_scheduling_into_past;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "double wake harmless" `Quick test_suspend_double_wake_harmless;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "crash drops" `Quick test_net_crash_drops;
          Alcotest.test_case "crash at delivery" `Quick test_net_crash_at_delivery_time;
          Alcotest.test_case "recover" `Quick test_net_recover;
          Alcotest.test_case "partition" `Quick test_net_partition;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "timeout on crashed server" `Quick
            test_rpc_timeout_on_crashed_server;
          Alcotest.test_case "server exception propagates" `Quick
            test_rpc_server_exception_propagates;
          Alcotest.test_case "late reply dropped" `Quick test_rpc_late_reply_dropped;
          Alcotest.test_case "blocking server" `Quick test_rpc_blocking_server;
          Alcotest.test_case "dedup TTL-expiry boundary" `Quick
            test_at_most_once_ttl_boundary;
          Alcotest.test_case "dedup capacity boundary" `Quick
            test_at_most_once_cap_boundary;
          Alcotest.test_case "dedup cache stays bounded" `Quick
            test_at_most_once_cache_stays_bounded;
        ] );
    ]
