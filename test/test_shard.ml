(* Tests for horizontal sharding: the epoch-stamped shard map, the client
   router over multi-group worlds (differentially against the single-group
   seed suite), cross-shard two-phase commit, fence adoption, and the
   end-to-end split campaign. *)

open Repdir_key
open Repdir_quorum
open Repdir_shard
open Repdir_harness
module Suite = Repdir_core.Suite
module Rep = Repdir_rep.Rep
module Sim = Repdir_sim.Sim

let cfg = Config.simple ~n:3 ~r:2 ~w:2

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let get_ok = function Ok m -> m | Error e -> Alcotest.fail e

(* --- the shard map ---------------------------------------------------------------- *)

let test_map_initial_and_find () =
  let m = Shard_map.initial ~cuts:[ Key.of_int 10; Key.of_int 20 ] in
  Alcotest.(check int) "epoch" 0 (Shard_map.epoch_of m);
  Alcotest.(check int) "shards" 3 (Shard_map.n_shards m);
  Alcotest.(check int) "groups" 3 (Shard_map.n_groups m);
  Alcotest.(check int) "low key" 0 (Shard_map.find m (Bound.key (Key.of_int 3)));
  Alcotest.(check int) "cut owns upper" 1 (Shard_map.find m (Bound.key (Key.of_int 10)));
  Alcotest.(check int) "interior" 1 (Shard_map.find m (Bound.key (Key.of_int 19)));
  Alcotest.(check int) "last" 2 (Shard_map.find m (Bound.key (Key.of_int 20)));
  Alcotest.(check int) "LOW" 0 (Shard_map.find m Bound.Low);
  Alcotest.(check int) "HIGH" 2 (Shard_map.find m Bound.High)

let test_map_split_and_land () =
  let m0 = Shard_map.initial ~cuts:[] in
  let m1 = get_ok (Shard_map.begin_split m0 ~shard:0 ~at:(Key.of_int 12) ~to_g:1) in
  Alcotest.(check int) "epoch 1" 1 (Shard_map.epoch_of m1);
  Alcotest.(check bool) "in flight" true (Shard_map.in_flight m1);
  (match Shard_map.begin_move m1 ~shard:0 ~to_g:1 with
  | Ok _ -> Alcotest.fail "second migration accepted while one is in flight"
  | Error _ -> ());
  let m2 = get_ok (Shard_map.finish_move m1 ~shard:1) in
  Alcotest.(check int) "epoch 2" 2 (Shard_map.epoch_of m2);
  Alcotest.(check bool) "landed" false (Shard_map.in_flight m2);
  Alcotest.(check int) "upper serves on group 1" 1
    (match Shard_map.state_of m2 ~shard:1 with Shard_map.Serving g -> g | _ -> -1);
  List.iter
    (fun m ->
      match Shard_map.decode (Shard_map.encode m) with
      | Ok m' -> Alcotest.(check bool) "roundtrip" true (Shard_map.equal m m')
      | Error e -> Alcotest.fail e)
    [ m0; m1; m2 ]

let roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:200
    QCheck.(small_list small_nat)
    (fun ks ->
      let cuts =
        List.sort_uniq compare (List.filter (fun k -> k > 0) ks)
        |> List.map Key.of_int
      in
      let m = Shard_map.initial ~cuts in
      (* walk it through a split and a landing too, when it has room *)
      let ms =
        match Shard_map.begin_split m ~shard:0 ~at:(Key.of_int 0) ~to_g:99 with
        | Error _ -> [ m ]
        | Ok m1 -> (
            match Shard_map.finish_move m1 ~shard:1 with
            | Error _ -> [ m; m1 ]
            | Ok m2 -> [ m; m1; m2 ])
      in
      List.for_all
        (fun m ->
          match Shard_map.decode (Shard_map.encode m) with
          | Ok m' -> Shard_map.equal m m'
          | Error _ -> false)
        ms)

let test_decode_rejects_garbage () =
  List.iter
    (fun s ->
      match Shard_map.decode s with
      | Ok _ -> Alcotest.failf "decoded %S" s
      | Error _ -> ())
    [ ""; "nonsense"; "M|"; "M|x|+:0"; "M|1|"; "M|1|k41,0;k41,1"; "S|0|1,1,1|2|2|AAAA" ]

(* --- differential: sharded router vs the single-group seed suite ------------------- *)

(* The same operation sequence runs against a sharded deployment's router
   and a plain single-group world's suite; every response must agree. Keys
   live in [0, 30); boundary probes around each cut straddle the seams. *)

type op =
  | L of int
  | I of int * string
  | U of int * string
  | D of int
  | N of int
  | P of int
  | F
  | La

let apply ~lookup ~insert ~update ~delete ~next ~prev ~first ~last op =
  let entry = function
    | Some (k, _, v) -> Printf.sprintf "%s=%s" (Key.to_string k) v
    | None -> "none"
  in
  match op with
  | L k -> (
      match lookup (Key.of_int k) with Some (_, v) -> "some " ^ v | None -> "none")
  | I (k, v) -> (
      match insert (Key.of_int k) v with Ok () -> "ok" | Error `Already_present -> "dup")
  | U (k, v) -> (
      match update (Key.of_int k) v with Ok () -> "ok" | Error `Not_present -> "absent")
  | D k -> string_of_bool (delete (Key.of_int k)).Suite.was_present
  | N k -> entry (next (Key.of_int k))
  | P k -> entry (prev (Key.of_int k))
  | F -> entry (first ())
  | La -> entry (last ())

let run_sharded ~cuts ops =
  let groups = List.length cuts + 1 in
  let world = Shard_world.create ~seed:11L ~config:cfg ~groups () in
  let router = Shard_world.router_for_client world 0 ~map:(Shard_map.initial ~cuts) in
  let sim = Shard_world.sim world in
  let out = ref [] in
  Sim.spawn sim (fun () ->
      List.iter
        (fun op ->
          out :=
            apply op ~lookup:(Router.lookup router) ~insert:(Router.insert router)
              ~update:(Router.update router) ~delete:(Router.delete router)
              ~next:(Router.next router) ~prev:(Router.prev router)
              ~first:(fun () -> Router.first router)
              ~last:(fun () -> Router.last router)
            :: !out)
        ops);
  Sim.run sim;
  List.rev !out

let run_seed ops =
  let world = Sim_world.create ~seed:11L ~two_phase:true ~config:cfg () in
  let suite = Sim_world.suite_for_client world 0 in
  let sim = Sim_world.sim world in
  let out = ref [] in
  Sim.spawn sim (fun () ->
      List.iter
        (fun op ->
          out :=
            apply op ~lookup:(Suite.lookup suite) ~insert:(Suite.insert suite)
              ~update:(Suite.update suite) ~delete:(Suite.delete suite)
              ~next:(Suite.next suite) ~prev:(Suite.prev suite)
              ~first:(fun () -> Suite.first suite)
              ~last:(fun () -> Suite.last suite)
            :: !out)
        ops);
  Sim.run sim;
  List.rev !out

let boundary_probes cuts =
  List.concat_map
    (fun c -> [ N (c - 1); N c; P c; P (c + 1); L c; I (c, "cut"); N (c - 1); D c ])
    cuts
  @ [ F; La ]

let gen_ops =
  QCheck.Gen.(
    let key = int_bound 29 in
    let op =
      frequency
        [
          (3, map (fun k -> L k) key);
          (3, map2 (fun k v -> I (k, "i" ^ string_of_int v)) key small_nat);
          (2, map2 (fun k v -> U (k, "u" ^ string_of_int v)) key small_nat);
          (2, map (fun k -> D k) key);
          (2, map (fun k -> N k) key);
          (2, map (fun k -> P k) key);
          (1, return F);
          (1, return La);
        ]
    in
    list_size (int_range 20 60) op)

let differential name cut_ints =
  let cuts = List.map Key.of_int cut_ints in
  QCheck.Test.make ~name ~count:12 (QCheck.make gen_ops) (fun ops ->
      let ops = ops @ boundary_probes cut_ints in
      run_sharded ~cuts ops = run_seed ops)

let diff_two_shards = differential "2 shards agree with seed" [ 15 ]
let diff_four_shards = differential "4 shards agree with seed" [ 8; 15; 22 ]

(* --- cross-shard transactions ------------------------------------------------------ *)

let test_cross_shard_txn_atomic () =
  let world = Shard_world.create ~seed:5L ~config:cfg ~groups:2 () in
  let router =
    Shard_world.router_for_client world 0 ~map:(Shard_map.initial ~cuts:[ Key.of_int 15 ])
  in
  let sim = Shard_world.sim world in
  Sim.spawn sim (fun () ->
      Router.with_txn router (fun txn ->
          ignore (Router.insert ~txn router (Key.of_int 3) "low" : (unit, _) result);
          ignore (Router.insert ~txn router (Key.of_int 20) "high" : (unit, _) result));
      Alcotest.(check bool) "low landed" true (Router.mem router (Key.of_int 3));
      Alcotest.(check bool) "high landed" true (Router.mem router (Key.of_int 20));
      (try
         Router.with_txn router (fun txn ->
             ignore (Router.insert ~txn router (Key.of_int 4) "low" : (unit, _) result);
             ignore (Router.insert ~txn router (Key.of_int 21) "high" : (unit, _) result);
             failwith "client changed its mind")
       with Failure _ -> ());
      Alcotest.(check bool) "low rolled back" false (Router.mem router (Key.of_int 4));
      Alcotest.(check bool) "high rolled back" false (Router.mem router (Key.of_int 21)));
  Sim.run sim

(* --- shard-epoch fencing ------------------------------------------------------------ *)

let test_fence_adopts_newer_map () =
  let world = Shard_world.create ~seed:6L ~config:cfg ~groups:2 () in
  let m0 = Shard_map.initial ~cuts:[ Key.of_int 15 ] in
  let router = Shard_world.router_for_client world 0 ~map:m0 in
  let sim = Shard_world.sim world in
  (* A newer, landed map installed on every representative behind the
     router's back (it re-cuts a range the test never touches): the next
     operation is fenced, adopts the carried record, and retries through to
     success. *)
  let m1 = get_ok (Shard_map.begin_split m0 ~shard:0 ~at:(Key.of_int 8) ~to_g:1) in
  let m2 = get_ok (Shard_map.finish_move m1 ~shard:1) in
  for g = 0 to 1 do
    Array.iter
      (fun rep ->
        Alcotest.(check bool) "installed" true
          (Rep.install_shard_epoch rep ~epoch:(Shard_map.epoch_of m2)
             ~record:(Shard_map.encode m2)))
      (Shard_world.group_reps world g)
  done;
  Sim.spawn sim (fun () ->
      Alcotest.(check int) "router still at epoch 0" 0 (Router.epoch router);
      (match Router.insert router (Key.of_int 3) "v1" with
      | Ok () -> ()
      | Error `Already_present -> Alcotest.fail "fresh key already present");
      Alcotest.(check int) "router adopted epoch 2" 2 (Router.epoch router);
      match Router.lookup router (Key.of_int 3) with
      | Some (_, v) -> Alcotest.(check string) "readable after adoption" "v1" v
      | None -> Alcotest.fail "write lost across adoption");
  Sim.run sim

let test_moving_slice_refuses_writes () =
  let world = Shard_world.create ~seed:8L ~config:cfg ~groups:2 () in
  let sim = Shard_world.sim world in
  let m0 = Shard_map.initial ~cuts:[] in
  let m1 = get_ok (Shard_map.begin_split m0 ~shard:0 ~at:(Key.of_int 15) ~to_g:1) in
  let writer = Shard_world.router_for_client world 0 ~map:m0 in
  let reader = Shard_world.router_for_client world 0 ~map:m1 in
  Sim.spawn sim (fun () ->
      ignore (Router.insert writer (Key.of_int 20) "frozen" : (unit, _) result);
      (* reads of the moving slice keep flowing from the source group *)
      (match Router.lookup reader (Key.of_int 20) with
      | Some (_, v) -> Alcotest.(check string) "read from source" "frozen" v
      | None -> Alcotest.fail "entry invisible during migration");
      (* writes to it are refused until the flip, naming the shard *)
      match Router.insert reader (Key.of_int 21) "x" with
      | Ok () | Error _ -> Alcotest.fail "write to a moving range went through"
      | exception Suite.Unavailable msg ->
          Alcotest.(check bool) ("names migration: " ^ msg) true (contains msg "migrating"));
  Sim.run sim

let test_unavailable_names_the_shard () =
  let world = Shard_world.create ~seed:7L ~config:cfg ~groups:2 () in
  let router =
    Shard_world.router_for_client world 0 ~map:(Shard_map.initial ~cuts:[ Key.of_int 15 ])
  in
  let sim = Shard_world.sim world in
  for i = 0 to 2 do
    Shard_world.crash_rep world ~g:1 i
  done;
  Sim.spawn sim (fun () ->
      match Router.insert router (Key.of_int 20) "v" with
      | Ok () | Error _ -> Alcotest.fail "no quorum yet the write went through"
      | exception Suite.Unavailable msg ->
          Alcotest.(check bool) ("names group 1: " ^ msg) true (contains msg "group 1"));
  Sim.run sim

(* --- the end-to-end campaign ------------------------------------------------------- *)

(* The fault-free variants of the acceptance run: a live split to a fresh
   group under client traffic, audited (two clients) and model-checked (one
   client). The faulted variant is exercised by `repdir shard` in CI (it
   takes minutes of virtual time). *)
let check_split_report (outcome, report) =
  Alcotest.(check bool) "flip completed" true (report.Nemesis.flipped_at <> None);
  Alcotest.(check bool) "slice gate held" true report.Nemesis.shard_gate_ok;
  Alcotest.(check int) "final shard epoch" 2 report.Nemesis.final_shard_epoch;
  Alcotest.(check bool) "epoch agreed" true report.Nemesis.epoch_agreed;
  Alcotest.(check int) "no violations" 0 (Nemesis.total_violations outcome);
  Alcotest.(check int) "no orphan locks" 0 outcome.Nemesis.orphan_locks;
  Alcotest.(check int) "no open in-doubt" 0 outcome.Nemesis.indoubt_open

let test_split_campaign_audited () = check_split_report (Nemesis.run_shard ~faults:false ())

let test_split_campaign_model_checked () =
  check_split_report (Nemesis.run_shard ~faults:false ~clients:1 ~audit:false ~duration:900.0 ())

let () =
  Alcotest.run "shard"
    [
      ( "map",
        [
          Alcotest.test_case "initial and find" `Quick test_map_initial_and_find;
          Alcotest.test_case "split and land" `Quick test_map_split_and_land;
          QCheck_alcotest.to_alcotest roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick test_decode_rejects_garbage;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest diff_two_shards;
          QCheck_alcotest.to_alcotest diff_four_shards;
        ] );
      ( "router",
        [
          Alcotest.test_case "cross-shard txn atomic" `Quick test_cross_shard_txn_atomic;
          Alcotest.test_case "fence adopts newer map" `Quick test_fence_adopts_newer_map;
          Alcotest.test_case "moving slice refuses writes" `Quick
            test_moving_slice_refuses_writes;
          Alcotest.test_case "unavailable names the shard" `Quick
            test_unavailable_names_the_shard;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "fault-free split, audited" `Slow test_split_campaign_audited;
          Alcotest.test_case "fault-free split, model-checked" `Slow
            test_split_campaign_model_checked;
        ] );
    ]
