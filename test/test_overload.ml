(* Overload and gray-failure robustness: the client-side retry bounds
   (deadline, budget), representative-side admission control and deadline
   pushback, health-scored quorum selection with hedged reads, and the
   bounded dedup cache under concurrent in-flight retries. *)

open Repdir_key
open Repdir_sim
open Repdir_core
open Repdir_harness
module Config = Repdir_quorum.Config
module Picker = Repdir_quorum.Picker
module Rep = Repdir_rep.Rep
module Rng = Repdir_util.Rng

let cfg_322 = Config.simple ~n:3 ~r:2 ~w:2

(* --- with_retries: wall-clock and budget bounds -------------------------------- *)

let test_with_retries_default_deadline_bounds_sleep () =
  (* Regression for the unbounded-wall-clock hazard: exponential backoff with
     a generous attempt count used to sleep for 2^k-ish times the backoff.
     The default deadline caps *cumulative* sleep at 48 x backoff no matter
     how many attempts remain. *)
  let slept = ref 0.0 in
  let calls = ref 0 in
  let rng = Rng.create 5L in
  (match
     Suite.with_retries ~attempts:50 ~backoff:1.0
       ~sleep:(fun d -> slept := !slept +. d)
       ~rng
       (fun () ->
         incr calls;
         raise (Suite.Unavailable "perma"))
   with
  | () -> Alcotest.fail "permanently unavailable operation succeeded"
  | exception Suite.Unavailable _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "cumulative sleep %.1f bounded by 48 x backoff" !slept)
    true (!slept <= 48.0);
  Alcotest.(check bool)
    (Printf.sprintf "gave up long before 50 attempts (made %d)" !calls)
    true
    (!calls < 10)

let test_with_retries_explicit_deadline () =
  let slept = ref 0.0 in
  (match
     Suite.with_retries ~attempts:50 ~backoff:1.0 ~deadline:5.0
       ~sleep:(fun d -> slept := !slept +. d)
       (fun () -> raise (Suite.Unavailable "perma"))
   with
  | () -> Alcotest.fail "unexpected success"
  | exception Suite.Unavailable _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "cumulative sleep %.1f within the explicit deadline" !slept)
    true (!slept <= 5.0);
  Alcotest.check_raises "non-positive deadline rejected"
    (Invalid_argument "Suite.with_retries: deadline must be positive") (fun () ->
      Suite.with_retries ~deadline:0.0 (fun () -> ()))

let test_with_retries_budget_spend_and_earn () =
  (* An empty bucket turns retries off: every retry buys one token, so a
     budget with one spare token allows exactly one retry. *)
  let budget = Suite.Retry_budget.create ~cap:1.0 ~earn:0.5 () in
  let calls = ref 0 in
  (match
     Suite.with_retries ~attempts:5 ~backoff:0.001 ~budget (fun () ->
         incr calls;
         raise (Suite.Unavailable "perma"))
   with
  | () -> Alcotest.fail "unexpected success"
  | exception Suite.Unavailable _ -> ());
  Alcotest.(check int) "one initial call plus the single budgeted retry" 2 !calls;
  Alcotest.(check bool) "budget exhausted" true (Suite.Retry_budget.tokens budget < 1.0);
  (* Success earns a fraction back. *)
  Suite.with_retries ~budget (fun () -> ());
  Alcotest.(check (float 1e-9)) "success earned 0.5 tokens back" 0.5
    (Suite.Retry_budget.tokens budget)

(* --- representative admission control and deadline pushback -------------------- *)

let clocked_rep ?admission name =
  let clock = ref 0.0 in
  let timers = { Rep.now = (fun () -> !clock); after = (fun _ _ -> ()) } in
  (Rep.create ~timers ?admission ~name (), clock)

let test_admission_cap_and_window () =
  let adm = { Rep.window = 10.0; cap = 5; shed_at = 4 } in
  let rep, clock = clocked_rep ~admission:adm "r0" in
  let probe = Bound.Key (Key.of_int 1) in
  for i = 1 to 5 do
    ignore (Rep.lookup rep ~txn:(900 + i) probe : Repdir_gapmap.Gapmap_intf.lookup)
  done;
  Alcotest.(check int) "window holds the admitted arrivals" 5 (Rep.admission_depth rep);
  Alcotest.check_raises "arrival at the cap is pushed back" (Rep.Overloaded "r0")
    (fun () -> ignore (Rep.lookup rep ~txn:906 probe));
  Alcotest.(check int) "overload reject counted" 1 (Rep.counters rep).Rep.overload_rejects;
  (* The window slides: once the old arrivals age out, work is admitted
     again. *)
  clock := 10.0;
  ignore (Rep.lookup rep ~txn:907 probe : Repdir_gapmap.Gapmap_intf.lookup);
  Alcotest.(check int) "stale arrivals pruned, fresh one admitted" 1
    (Rep.admission_depth rep)

let test_admission_sheds_maintenance_first () =
  let adm = { Rep.window = 10.0; cap = 8; shed_at = 3 } in
  let rep, _clock = clocked_rep ~admission:adm "r0" in
  let probe = Bound.Key (Key.of_int 1) in
  for i = 1 to 3 do
    ignore (Rep.lookup rep ~txn:(900 + i) probe : Repdir_gapmap.Gapmap_intf.lookup)
  done;
  (* From shed_at up, maintenance work (keepalives, anti-entropy) is refused
     while quorum-critical operations still get in. *)
  Alcotest.check_raises "keepalive shed by the breaker" (Rep.Overloaded "r0") (fun () ->
      Rep.keepalive rep ~txn:904);
  Alcotest.(check int) "shed counted separately" 1 (Rep.counters rep).Rep.shed_rejects;
  ignore (Rep.lookup rep ~txn:905 probe : Repdir_gapmap.Gapmap_intf.lookup);
  Alcotest.(check int) "critical work admitted past shed_at" 4 (Rep.admission_depth rep)

let test_reject_expired () =
  let rep, clock = clocked_rep "r0" in
  clock := 5.0;
  Rep.reject_expired rep ~deadline:5.0;
  (* A deadline AT the clock is still live; one strictly behind it is not. *)
  (match Rep.reject_expired rep ~deadline:4.0 with
  | () -> Alcotest.fail "expired deadline accepted"
  | exception Rep.Deadline_exceeded _ -> ());
  Alcotest.(check int) "expiry counted" 1 (Rep.counters rep).Rep.expired_rejects

let test_suite_treats_overloaded_rep_as_unavailable () =
  (* Saturate one representative's admission window, then run suite lookups:
     the Overloaded pushback must read as a non-quorum-eligible member — the
     operation completes on the other two — not as an error. *)
  let adm = { Rep.window = 1.0e9; cap = 4; shed_at = 4 } in
  let clock = ref 0.0 in
  let timers = { Rep.now = (fun () -> !clock); after = (fun _ _ -> ()) } in
  let reps =
    Array.init 3 (fun i ->
        let name = Printf.sprintf "r%d" i in
        if i = 0 then Rep.create ~timers ~admission:adm ~name () else Rep.create ~name ())
  in
  let suite =
    Suite.create ~seed:7L ~config:cfg_322 ~transport:(Transport.local reps)
      ~txns:(Repdir_txn.Txn.Manager.create ())
      ()
  in
  (match Suite.insert suite (Key.of_int 1) "v" with
  | Ok () -> ()
  | Error `Already_present -> Alcotest.fail "fresh key already present");
  (* Fill r0's window with direct reads (the huge window never slides). *)
  let probe = Bound.Key (Key.of_int 9) in
  while Rep.admission_depth reps.(0) < adm.cap do
    ignore (Rep.lookup reps.(0) ~txn:999 probe : Repdir_gapmap.Gapmap_intf.lookup)
  done;
  for _ = 1 to 20 do
    match Suite.lookup suite (Key.of_int 1) with
    | Some (_, v) -> Alcotest.(check string) "value survives r0's overload" "v" v
    | None -> Alcotest.fail "entry unreadable while only r0 is overloaded"
  done;
  Alcotest.(check bool) "r0 actually pushed back" true
    ((Rep.counters reps.(0)).Rep.overload_rejects > 0)

(* --- health scores and the Healthy picker -------------------------------------- *)

let test_health_outlier_detection () =
  let h = Picker.Health.create ~n:3 () in
  for _ = 1 to 5 do
    Picker.Health.observe h 0 ~latency:10.0 ~ok:true;
    Picker.Health.observe h 1 ~latency:1.0 ~ok:true;
    Picker.Health.observe h 2 ~latency:1.2 ~ok:true
  done;
  Alcotest.(check bool) "slow rep flagged" true (Picker.Health.outlier h 0);
  Alcotest.(check bool) "healthy reps not flagged" false
    (Picker.Health.outlier h 1 || Picker.Health.outlier h 2);
  (* Outcome-based flagging needs no peer baseline. *)
  let h2 = Picker.Health.create ~n:3 () in
  for _ = 1 to 5 do
    Picker.Health.observe h2 1 ~latency:1.0 ~ok:false
  done;
  Alcotest.(check bool) "failing rep flagged on ok-rate alone" true
    (Picker.Health.outlier h2 1)

let test_health_suspect_early_warning () =
  (* One sample each is enough for the pairwise early warning — the window
     where a turning-gray replica is not yet flaggable but hedging should
     already cover it. *)
  let h = Picker.Health.create ~n:3 () in
  Picker.Health.observe h 0 ~latency:12.0 ~ok:true;
  Picker.Health.observe h 2 ~latency:1.0 ~ok:true;
  Alcotest.(check bool) "not yet an outlier (too few samples)" false
    (Picker.Health.outlier h 0);
  Alcotest.(check bool) "already suspect next to the fast spare" true
    (Picker.Health.suspect h 0 ~against:2);
  Alcotest.(check bool) "the fast spare is not suspect" false
    (Picker.Health.suspect h 2 ~against:0);
  Alcotest.(check bool) "no samples, no suspicion" false
    (Picker.Health.suspect h 1 ~against:2)

let test_healthy_picker_avoids_gray_rep () =
  let h = Picker.Health.create ~n:3 () in
  for _ = 1 to 6 do
    Picker.Health.observe h 0 ~latency:20.0 ~ok:true;
    Picker.Health.observe h 1 ~latency:1.0 ~ok:true;
    Picker.Health.observe h 2 ~latency:1.0 ~ok:true
  done;
  let rng = Rng.create 11L in
  let everyone _ = true in
  for _ = 1 to 100 do
    match
      Picker.read_quorum (Picker.Healthy h) rng cfg_322 ~available:everyone
    with
    | Some q ->
        Alcotest.(check bool) "gray rep never picked while spares have the votes" false
          (Array.exists (Int.equal 0) q)
    | None -> Alcotest.fail "quorum unattainable with everyone available"
  done;
  (* Demoted, never excluded: when the healthy population cannot muster the
     votes, the walk falls through to the gray member. *)
  (match
     Picker.read_quorum (Picker.Healthy h) rng cfg_322 ~available:(fun i -> i <> 1)
   with
  | Some q ->
      Alcotest.(check bool) "gray rep used when the votes require it" true
        (Array.exists (Int.equal 0) q)
  | None -> Alcotest.fail "quorum unattainable with two reps available")

let test_hedge_delay_floor_and_p99 () =
  let h = Picker.Health.create ~n:3 () in
  Alcotest.(check (float 1e-9)) "floor before any samples" 2.5
    (Picker.Health.hedge_delay ~floor:2.5 h);
  for _ = 1 to 20 do
    Picker.Health.observe h 1 ~latency:4.0 ~ok:true;
    Picker.Health.observe h 2 ~latency:4.0 ~ok:true
  done;
  let d = Picker.Health.hedge_delay ~floor:1.0 h in
  Alcotest.(check (float 1e-9)) "p99-derived delay once the ring fills" 4.0 d

(* --- gray failure end to end ---------------------------------------------------- *)

let slow_links world ~victim ~factor =
  let net = Sim_world.net world in
  let slow = { Net.no_faults with spike = 1.0; spike_factor = factor } in
  for j = 0 to Net.n_nodes net - 1 do
    if j <> victim then Net.set_link_faults net victim j slow
  done

let run_ops sim suite ~ops ~retry_rng k =
  let succeeded = ref 0 and failed = ref 0 in
  Sim.spawn sim (fun () ->
      for i = 1 to ops do
        (match
           Suite.with_retries ~attempts:4 ~backoff:2.0 ~sleep:(Sim.sleep sim)
             ~rng:retry_rng (fun () -> k i)
         with
        | () -> incr succeeded
        | exception (Suite.Unavailable _ | Suite.Deadline_exceeded _) -> incr failed);
        Sim.sleep sim 2.0
      done);
  Sim.run sim;
  ignore (suite : Suite.t);
  (!succeeded, !failed)

let test_random_picker_terminates_with_slow_rep () =
  (* A slow-but-alive representative must not hang the uniform-random
     baseline: every operation still terminates (success or a clean
     write-off), and most succeed — slow is not crashed. *)
  let world =
    Sim_world.create ~seed:21L ~rpc_timeout:10.0 ~rpc_attempts:4 ~rpc_backoff:2.0
      ~two_phase:true ~config:cfg_322 ()
  in
  slow_links world ~victim:0 ~factor:8.0;
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client world 0 in
  let retry_rng = Rng.create 22L in
  let ops = 25 in
  let succeeded, failed =
    run_ops sim suite ~ops ~retry_rng (fun i ->
        let key = Key.of_int (i mod 10) in
        ignore (Suite.insert suite key "v" : (unit, _) result);
        ignore (Suite.lookup suite key : (_ * string) option))
  in
  Alcotest.(check int) "every operation terminated" ops (succeeded + failed);
  Alcotest.(check bool)
    (Printf.sprintf "most operations succeeded (%d/%d)" succeeded ops)
    true
    (succeeded > ops / 2)

let test_healthy_picker_and_hedging_under_gray_rep () =
  (* The full robustness stack against one gray representative: health
     scoring must steer quorums off the victim in steady state, and during
     the detection lag the suspect-based hedge must fire at least once. *)
  let world =
    Sim_world.create ~seed:21L ~rpc_timeout:10.0 ~rpc_attempts:4 ~rpc_backoff:2.0
      ~two_phase:true ~admission:Rep.default_admission ~config:cfg_322 ()
  in
  (* Factor 3 sits right at the outlier boundary: slow enough to hurt, mild
     enough that the flag flickers — exactly the regime where the
     suspect-based hedge carries the load. *)
  slow_links world ~victim:0 ~factor:3.0;
  let sim = Sim_world.sim world in
  let health = Picker.Health.create ~n:3 () in
  let suite =
    Sim_world.suite_for_client
      ~picker:(Picker.Healthy health)
      ~health ~op_deadline:30.0 ~hedge:1.0 world 0
  in
  let retry_rng = Rng.create 22L in
  let ops = 40 in
  let succeeded, failed =
    run_ops sim suite ~ops ~retry_rng (fun i ->
        let key = Key.of_int (i mod 10) in
        ignore (Suite.insert suite key "v" : (unit, _) result);
        ignore (Suite.lookup suite key : (_ * string) option))
  in
  Alcotest.(check int) "every operation terminated" ops (succeeded + failed);
  Alcotest.(check bool)
    (Printf.sprintf "workload survived the gray rep (%d/%d)" succeeded ops)
    true
    (succeeded > (ops * 3) / 4);
  Alcotest.(check bool) "victim was sampled" true (Picker.Health.samples health 0 > 0);
  Alcotest.(check bool)
    (Printf.sprintf "hedge fired during the detection lag (%d)" (Suite.hedged_count suite))
    true
    (Suite.hedged_count suite > 0)

(* --- dedup cache: in-flight entries at the cap ---------------------------------- *)

let test_dedup_inflight_exceeds_cap_uneviced () =
  (* Exactly cap + 1 concurrent retried requests: in-flight entries are not
     evictable (only completed replies age out), so the cache briefly holds
     cap + 1 entries, every handler still runs exactly once despite the
     retransmissions, and every call completes. *)
  let sim = Sim.create ~seed:13L () in
  let net = Net.create sim ~n_nodes:2 ~latency:(fun _ -> 1.0) () in
  let cap = 2 in
  let server = Rpc.server ~cap ~ttl:1.0e6 () in
  let calls = cap + 1 in
  let execs = Array.make calls 0 in
  let completed = ref 0 in
  let peak = ref 0 in
  let jitter = Rng.create 3L in
  for i = 0 to calls - 1 do
    Sim.spawn sim (fun () ->
        match
          Rpc.call_at_most_once net ~src:0 ~dst:1 ~server ~timeout:5.0 ~attempts:5
            ~backoff:1.0 ~rng:jitter
            ~on_retry:(fun () -> peak := max !peak (Rpc.server_entries server))
            (fun () ->
              execs.(i) <- execs.(i) + 1;
              (* Outlast several client timeouts so retransmissions pile onto
                 the in-flight entry. *)
              Sim.sleep sim 12.0)
        with
        | Ok () -> incr completed
        | Error Rpc.Timeout -> Alcotest.fail "in-flight call timed out for good")
  done;
  Sim.run sim;
  Alcotest.(check int) "all cap+1 concurrent calls completed" calls !completed;
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "handler %d ran once" i) 1 n)
    execs;
  Alcotest.(check bool)
    (Printf.sprintf "in-flight entries rode above the cap (peak %d)" !peak)
    true
    (!peak = calls);
  (* Once everything completed, the next arrival enforces the cap again. *)
  Sim.spawn sim (fun () ->
      match Rpc.call_at_most_once net ~src:0 ~dst:1 ~server ~timeout:5.0 (fun () -> ()) with
      | Ok () -> ()
      | Error Rpc.Timeout -> Alcotest.fail "trailing call timed out");
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "cache back under the cap (+1 arrival): %d"
       (Rpc.server_entries server))
    true
    (Rpc.server_entries server <= cap + 1)

(* --- audited robustness plans ---------------------------------------------------- *)

let test_robust_plans_audited_clean () =
  List.iter
    (fun plan ->
      let o = Nemesis.run_plan ~seed:42L ~audit:true plan in
      let label what = Printf.sprintf "%s: %s" o.Nemesis.plan what in
      Alcotest.(check int) (label "zero violations") 0 (Nemesis.total_violations o);
      Alcotest.(check bool) (label "made progress") true (o.Nemesis.succeeded > 0);
      Alcotest.(check int) (label "no orphaned locks") 0 o.Nemesis.orphan_locks;
      Alcotest.(check int) (label "no open in-doubt txns") 0 o.Nemesis.indoubt_open)
    [
      Nemesis.slow_replica ~n:3 ~duration:400.0 ~seed:42L;
      Nemesis.retry_storm ~n:3 ~duration:400.0 ~seed:42L;
    ]

let () =
  Alcotest.run "overload"
    [
      ( "with_retries",
        [
          Alcotest.test_case "default deadline bounds cumulative sleep" `Quick
            test_with_retries_default_deadline_bounds_sleep;
          Alcotest.test_case "explicit deadline honoured" `Quick
            test_with_retries_explicit_deadline;
          Alcotest.test_case "retry budget spends and earns" `Quick
            test_with_retries_budget_spend_and_earn;
        ] );
      ( "admission",
        [
          Alcotest.test_case "cap rejection and sliding window" `Quick
            test_admission_cap_and_window;
          Alcotest.test_case "maintenance shed before critical" `Quick
            test_admission_sheds_maintenance_first;
          Alcotest.test_case "expired deadlines refused" `Quick test_reject_expired;
          Alcotest.test_case "overloaded rep is non-quorum-eligible" `Quick
            test_suite_treats_overloaded_rep_as_unavailable;
        ] );
      ( "health",
        [
          Alcotest.test_case "outlier detection" `Quick test_health_outlier_detection;
          Alcotest.test_case "suspect early warning" `Quick
            test_health_suspect_early_warning;
          Alcotest.test_case "healthy picker avoids gray rep" `Quick
            test_healthy_picker_avoids_gray_rep;
          Alcotest.test_case "hedge delay floor and p99" `Quick
            test_hedge_delay_floor_and_p99;
        ] );
      ( "gray failure",
        [
          Alcotest.test_case "random picker terminates with a slow rep" `Quick
            test_random_picker_terminates_with_slow_rep;
          Alcotest.test_case "healthy picker and hedging under a gray rep" `Quick
            test_healthy_picker_and_hedging_under_gray_rep;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "cap+1 in-flight retried requests" `Quick
            test_dedup_inflight_exceeds_cap_uneviced;
        ] );
      ( "nemesis",
        [
          Alcotest.test_case "robust plans audited clean" `Quick
            test_robust_plans_audited_clean;
        ] );
    ]
