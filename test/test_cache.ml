(* Tests for the version-validated client cache: LRU mechanics, the
   commit-time write-through discipline, epoch flushing, stale-cache
   correction across clients, and the central property — a suite with a
   cache attached is observationally indistinguishable from one without,
   while sending strictly fewer payload bytes on read-heavy workloads. *)

open Repdir_key
open Repdir_txn
open Repdir_rep
open Repdir_quorum
open Repdir_core
module Cache = Repdir_cache.Cache
module Member = Repdir_member.Member

(* --- LRU unit tests ------------------------------------------------------------ *)

let entry v value = Cache.Entry { version = v; value }
let gap v = Cache.Gap { version = v }
let key i = Bound.Key (Key.of_int i)

let test_lru_eviction () =
  let c = Cache.create ~capacity:3 () in
  Cache.store c ~epoch:0 (key 1) (entry 1 "a");
  Cache.store c ~epoch:0 (key 2) (entry 1 "b");
  Cache.store c ~epoch:0 (key 3) (entry 1 "c");
  (* Touch 1 so 2 becomes the eviction candidate. *)
  ignore (Cache.find c ~epoch:0 (key 1));
  Cache.store c ~epoch:0 (key 4) (entry 1 "d");
  Alcotest.(check int) "capacity bound" 3 (Cache.length c);
  Alcotest.(check bool) "1 survives (recently used)" true
    (Cache.find c ~epoch:0 (key 1) <> None);
  Alcotest.(check bool) "2 evicted (coldest)" true (Cache.find c ~epoch:0 (key 2) = None);
  Alcotest.(check int) "one eviction" 1 (Cache.counters c).Cache.evictions

let test_store_overwrites () =
  let c = Cache.create ~capacity:2 () in
  Cache.store c ~epoch:0 (key 1) (entry 1 "a");
  Cache.store c ~epoch:0 (key 1) (entry 2 "a'");
  Alcotest.(check int) "no duplicate line" 1 (Cache.length c);
  match Cache.find c ~epoch:0 (key 1) with
  | Some (Cache.Entry { version; value }) ->
      Alcotest.(check int) "version bumped" 2 version;
      Alcotest.(check string) "value replaced" "a'" value
  | _ -> Alcotest.fail "line missing after overwrite"

let test_invalidate_range_strict () =
  let c = Cache.create () in
  List.iter (fun i -> Cache.store c ~epoch:0 (key i) (entry 1 "v")) [ 1; 2; 3; 4; 5 ];
  (* Strictly inside (2, 4): only key 3 dies; the endpoints survive. *)
  Cache.invalidate_range c ~lo:(key 2) ~hi:(key 4);
  Alcotest.(check bool) "3 dropped" true (Cache.find c ~epoch:0 (key 3) = None);
  Alcotest.(check bool) "2 kept" true (Cache.find c ~epoch:0 (key 2) <> None);
  Alcotest.(check bool) "4 kept" true (Cache.find c ~epoch:0 (key 4) <> None);
  (* Sentinel-bounded range drops everything strictly between. *)
  Cache.invalidate_range c ~lo:Bound.Low ~hi:Bound.High;
  Alcotest.(check int) "all inside (LOW, HIGH) dropped" 0 (Cache.length c)

let test_epoch_flush () =
  let c = Cache.create () in
  Cache.store c ~epoch:0 (key 1) (gap 3);
  Alcotest.(check bool) "visible at its epoch" true (Cache.find c ~epoch:0 (key 1) <> None);
  Alcotest.(check bool) "epoch change flushes" true (Cache.find c ~epoch:1 (key 1) = None);
  Alcotest.(check int) "flush counted" 1 (Cache.counters c).Cache.flushes;
  Alcotest.(check int) "epoch adopted" 1 (Cache.epoch c);
  (* Same epoch again: no further flush. *)
  Cache.store c ~epoch:1 (key 1) (gap 4);
  ignore (Cache.find c ~epoch:1 (key 1));
  Alcotest.(check int) "no spurious flush" 1 (Cache.counters c).Cache.flushes

(* --- suite-level fixtures ------------------------------------------------------- *)

type world = {
  reps : Rep.t array;
  transport : Transport.t;
  txns : Txn.Manager.t;
  config : Config.t;
}

let make_world ?(n = 3) ?(r = 2) ?(w = 2) () =
  let reps = Array.init n (fun i -> Rep.create ~name:(Printf.sprintf "rep%d" i) ()) in
  {
    reps;
    transport = Transport.local reps;
    txns = Txn.Manager.create ();
    config = Config.simple ~n ~r ~w;
  }

let cached_suite ?seed ?two_phase ?batching world =
  let cache = Cache.create () in
  let suite =
    Suite.create ?seed ?two_phase ?batching ~cache ~picker:Picker.Random
      ~config:world.config ~transport:world.transport ~txns:world.txns ()
  in
  (suite, cache)

(* --- write-through at commit ---------------------------------------------------- *)

let test_write_through_on_commit () =
  let world = make_world () in
  let suite, cache = cached_suite world in
  (match Suite.insert suite "k" "v1" with Ok () -> () | Error _ -> Alcotest.fail "insert");
  (* The committed write installed the line; the next lookup validates it
     without fetching the payload. *)
  (match Cache.find cache ~epoch:0 (Bound.Key "k") with
  | Some (Cache.Entry { value = "v1"; _ }) -> ()
  | _ -> Alcotest.fail "commit did not install the written entry");
  (match Suite.lookup suite "k" with
  | Some (_, "v1") -> ()
  | _ -> Alcotest.fail "cached lookup wrong");
  Alcotest.(check int) "validated hit" 1 (Cache.counters cache).Cache.hits

let test_aborted_txn_never_populates () =
  let world = make_world () in
  let suite, cache = cached_suite world in
  (try
     Suite.with_txn suite (fun txn ->
         (match Suite.insert ~txn suite "doomed" "v" with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "insert in txn");
         raise Exit)
   with Exit -> ());
  Alcotest.(check bool) "aborted write left no line" true
    (Cache.find cache ~epoch:0 (Bound.Key "doomed") = None);
  (* And the directory agrees. *)
  Alcotest.(check bool) "key absent" false (Suite.mem suite "doomed")

let test_delete_invalidates_range () =
  let world = make_world () in
  let suite, cache = cached_suite world in
  List.iter
    (fun (k, v) ->
      match Suite.insert suite k v with Ok () -> () | Error _ -> Alcotest.fail "insert")
    [ ("a", "va"); ("b", "vb"); ("c", "vc") ];
  ignore (Suite.lookup suite "b");
  let report = Suite.delete suite "b" in
  Alcotest.(check bool) "was present" true report.Suite.was_present;
  (match Cache.find cache ~epoch:0 (Bound.Key "b") with
  | Some (Cache.Gap _) | None -> ()
  | Some (Cache.Entry _) -> Alcotest.fail "deleted key still cached as present");
  (* Absent answers are served from the gap tag — still correct. *)
  Alcotest.(check bool) "b gone" false (Suite.mem suite "b");
  Alcotest.(check bool) "a stays" true (Suite.mem suite "a")

let test_membership_change_flushes () =
  let world = make_world () in
  let roster = Array.make 3 Member.Active in
  let m0 = Member.initial ~config:world.config ~roster in
  let cache = Cache.create () in
  let suite =
    Suite.create ~cache ~membership:m0 ~picker:Picker.Random ~config:world.config
      ~transport:world.transport ~txns:world.txns ()
  in
  (match Suite.insert suite "k" "v" with Ok () -> () | Error _ -> Alcotest.fail "insert");
  Alcotest.(check bool) "line cached under epoch 0" true (Cache.length cache > 0);
  let v1 =
    match Member.make_view ~epoch:1 ~config:world.config ~roster with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  Suite.set_membership suite (Member.Stable v1);
  Alcotest.(check int) "epoch advance flushed the cache" 0 (Cache.length cache);
  Alcotest.(check int) "cache adopted the epoch" 1 (Cache.epoch cache);
  (* Reads under the new epoch still work (miss, repopulate). *)
  match Suite.lookup suite "k" with
  | Some (_, "v") -> ()
  | _ -> Alcotest.fail "lookup after epoch change"

(* A membership adopted between an operation and its commit: cache lines
   staged under the old epoch were proven current only against old-view
   quorums, so commit must drop them rather than install them as if they
   had been learned under the new epoch (which would let them survive the
   flush sync_epoch guarantees). *)
let test_mid_txn_epoch_change_drops_staged () =
  let world = make_world () in
  let roster = Array.make 3 Member.Active in
  let m0 = Member.initial ~config:world.config ~roster in
  let cache = Cache.create () in
  let suite =
    Suite.create ~cache ~membership:m0 ~picker:Picker.Random ~config:world.config
      ~transport:world.transport ~txns:world.txns ()
  in
  (match Suite.insert suite "k" "v" with Ok () -> () | Error _ -> Alcotest.fail "insert");
  Cache.flush cache;
  let v1 =
    match Member.make_view ~epoch:1 ~config:world.config ~roster with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  Suite.with_txn suite (fun txn ->
      (* Misses the flushed cache, so a fresh line is staged under epoch 0. *)
      (match Suite.lookup ~txn suite "k" with
      | Some (_, "v") -> ()
      | _ -> Alcotest.fail "lookup in txn");
      Suite.set_membership suite (Member.Stable v1));
  Alcotest.(check int) "old-epoch staged line dropped at commit" 0 (Cache.length cache);
  Alcotest.(check int) "cache on the new epoch" 1 (Cache.epoch cache);
  (* The key still reads correctly under the new view (miss, repopulate). *)
  match Suite.lookup suite "k" with
  | Some (_, "v") -> ()
  | _ -> Alcotest.fail "lookup after mid-txn epoch change"

(* A deliberately stale cache: client A caches a line, client B (same world,
   own cache) updates the key behind A's back. A's next read must validate,
   detect the version mismatch, and return B's value. *)
let test_stale_cache_corrected_across_clients () =
  let world = make_world () in
  let sa, ca = cached_suite ~seed:1L world in
  let sb, _cb = cached_suite ~seed:2L world in
  (match Suite.insert sa "k" "old" with Ok () -> () | Error _ -> Alcotest.fail "insert");
  (match Suite.update sb "k" "new" with Ok () -> () | Error _ -> Alcotest.fail "update");
  (match Suite.lookup sa "k" with
  | Some (_, "new") -> ()
  | Some (_, v) -> Alcotest.fail (Printf.sprintf "stale value served: %s" v)
  | None -> Alcotest.fail "key lost");
  Alcotest.(check int) "mismatch detected" 1 (Cache.counters ca).Cache.mismatches;
  (* The corrected line now validates clean. *)
  (match Suite.lookup sa "k" with
  | Some (_, "new") -> ()
  | _ -> Alcotest.fail "corrected line wrong");
  Alcotest.(check int) "subsequent hit" 1 (Cache.counters ca).Cache.hits

(* --- differential: caching is observationally equivalent ------------------------ *)

(* Mirror of test_suite's batching differential: the same workload script
   drives a cached and an uncached world; every observable result and the
   final contents must coincide, and the cached world must not send *more*
   bytes. Quorum choices are deliberately not synchronized. *)
let run_cache_differential ~two_phase ~batching ~seed ~ops () =
  let mk cached =
    let world = make_world () in
    let cache = if cached then Some (Cache.create ()) else None in
    let suite =
      Suite.create ~two_phase ~batching ?cache
        ~seed:(Int64.of_int ((seed * 11) + if cached then 1 else 2))
        ~picker:Picker.Random ~config:world.config ~transport:world.transport
        ~txns:world.txns ()
    in
    (world, suite)
  in
  let world_a, sa = mk false in
  let world_b, sb = mk true in
  let rng = Repdir_util.Rng.create (Int64.of_int seed) in
  let universe = Array.init 16 (fun i -> Key.of_int i) in
  let fail step fmt =
    Printf.ksprintf (fun msg -> failwith (Printf.sprintf "step %d: %s" step msg)) fmt
  in
  for step = 1 to ops do
    match Repdir_util.Rng.int rng 8 with
    | 0 ->
        let k = Repdir_util.Rng.pick rng universe in
        let v = Printf.sprintf "v%d" step in
        let r s = match Suite.insert s k v with Ok () -> true | Error `Already_present -> false in
        if r sa <> r sb then fail step "insert %s diverged" k
    | 1 ->
        let k = Repdir_util.Rng.pick rng universe in
        let v = Printf.sprintf "u%d" step in
        let r s = match Suite.update s k v with Ok () -> true | Error `Not_present -> false in
        if r sa <> r sb then fail step "update %s diverged" k
    | 2 ->
        let k = Repdir_util.Rng.pick rng universe in
        let r s = (Suite.delete s k).Suite.was_present in
        if r sa <> r sb then fail step "delete %s diverged" k
    | 3 ->
        let k = Repdir_util.Rng.pick rng universe in
        let r s = Suite.next s k in
        if r sa <> r sb then fail step "next %s diverged" k
    | 4 ->
        let k1 = Repdir_util.Rng.pick rng universe in
        let k2 = Repdir_util.Rng.pick rng universe in
        let v = Printf.sprintf "t%d" step in
        let r s =
          Suite.with_txn s (fun txn ->
              let inserted =
                match Suite.insert ~txn s k1 v with Ok () -> true | Error _ -> false
              in
              let looked = Option.map snd (Suite.lookup ~txn s k2) in
              let deleted = (Suite.delete ~txn s k2).Suite.was_present in
              (inserted, looked, deleted))
        in
        if r sa <> r sb then fail step "transaction (%s, %s) diverged" k1 k2
    | 5 ->
        (* Forced abort: staged cache lines must be dropped with the txn. *)
        let k = Repdir_util.Rng.pick rng universe in
        let r s =
          try
            Suite.with_txn s (fun txn ->
                ignore (Suite.insert ~txn s k "doomed");
                raise Exit)
          with Exit -> ()
        in
        r sa;
        r sb
    | _ ->
        (* Read-heavy bias: two lookup arms out of eight. *)
        let k = Repdir_util.Rng.pick rng universe in
        let r s = Option.map snd (Suite.lookup s k) in
        if r sa <> r sb then fail step "lookup %s diverged" k
  done;
  if batching then begin
    Suite.flush_notices sa;
    Suite.flush_notices sb;
    if Suite.pending_notice_count sb <> 0 then failwith "notices did not drain"
  end;
  if Suite.to_alist sa <> Suite.to_alist sb then failwith "final contents diverged";
  Array.iter
    (fun world ->
      Array.iter
        (fun rep ->
          (match Rep.check_invariants rep with Ok () -> () | Error e -> failwith e);
          if Rep.locks_held rep <> 0 then
            failwith (Printf.sprintf "%s leaked locks" (Rep.name rep));
          if Rep.in_doubt_count rep <> 0 then
            failwith (Printf.sprintf "%s left transactions in doubt" (Rep.name rep)))
        world.reps)
    [| world_a; world_b |]
(* No byte assertion here: with tiny values and adversarial write-heavy
   scripts a cold cache's validate-then-fetch can cost more than it saves.
   The byte win is a read-heavy-workload property, checked deterministically
   below and gated in the benchmark. *)

(* The headline number, deterministically: warm reads of realistic values
   must shed the payload from the quorum — at least the 40% bytes/op cut the
   benchmark gates on, here on pure re-reads. *)
let test_read_heavy_byte_savings () =
  let run cached =
    let world = make_world () in
    let cache = if cached then Some (Cache.create ()) else None in
    (* Batching is the realistic operating mode: the read-only release rides
       in-round, so a warm read is pure validation traffic. *)
    let suite =
      Suite.create ?cache ~batching:true ~seed:7L ~picker:Picker.Random
        ~config:world.config ~transport:world.transport ~txns:world.txns ()
    in
    let value = String.make 64 'x' in
    for i = 0 to 9 do
      match Suite.insert suite (Key.of_int i) value with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "insert"
    done;
    let before = world.transport.Transport.bytes_count in
    for _round = 1 to 20 do
      for i = 0 to 9 do
        ignore (Suite.lookup suite (Key.of_int i))
      done
    done;
    world.transport.Transport.bytes_count - before
  in
  let uncached = run false and cached = run true in
  if float_of_int cached > 0.6 *. float_of_int uncached then
    Alcotest.fail
      (Printf.sprintf "cached read path sent %d bytes vs %d uncached (want <= 60%%)"
         cached uncached)

let cache_differential ~name ~two_phase ~batching =
  QCheck.Test.make ~name ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      run_cache_differential ~two_phase ~batching ~seed ~ops:60 ();
      true)

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction;
          Alcotest.test_case "store overwrites" `Quick test_store_overwrites;
          Alcotest.test_case "invalidate_range strict bounds" `Quick
            test_invalidate_range_strict;
          Alcotest.test_case "epoch flush" `Quick test_epoch_flush;
        ] );
      ( "write-through",
        [
          Alcotest.test_case "installed at commit" `Quick test_write_through_on_commit;
          Alcotest.test_case "aborted txn never populates" `Quick
            test_aborted_txn_never_populates;
          Alcotest.test_case "delete invalidates the coalesced range" `Quick
            test_delete_invalidates_range;
          Alcotest.test_case "membership change flushes" `Quick
            test_membership_change_flushes;
          Alcotest.test_case "mid-txn epoch change drops staged lines" `Quick
            test_mid_txn_epoch_change_drops_staged;
          Alcotest.test_case "stale cache corrected across clients" `Quick
            test_stale_cache_corrected_across_clients;
        ] );
      ( "bytes",
        [
          Alcotest.test_case "warm reads shed >= 40% of bytes" `Quick
            test_read_heavy_byte_savings;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest
            (cache_differential ~name:"cached == uncached (single-phase)"
               ~two_phase:false ~batching:false);
          QCheck_alcotest.to_alcotest
            (cache_differential ~name:"cached == uncached (two-phase commit)"
               ~two_phase:true ~batching:false);
          QCheck_alcotest.to_alcotest
            (cache_differential ~name:"cached == uncached (batching + two-phase)"
               ~two_phase:true ~batching:true);
        ] );
    ]
