(* Seeded regression scenarios for the nemesis fault-injection layer: the
   standard campaigns must run to completion with zero sequential-model
   violations, runs must be bit-reproducible from the seed, and asymmetric
   partitions must degrade exactly as the quorum arithmetic predicts. *)

open Repdir_sim
open Repdir_core
open Repdir_harness
module Config = Repdir_quorum.Config

(* --- standard campaigns ------------------------------------------------------------ *)

let check_campaign ~seed outcomes =
  Alcotest.(check int)
    (Printf.sprintf "seed %Ld: five plans" seed)
    5 (List.length outcomes);
  List.iter
    (fun o ->
      let label what = Printf.sprintf "seed %Ld, %s: %s" seed o.Nemesis.plan what in
      Alcotest.(check int) (label "zero violations") 0 o.Nemesis.violations;
      Alcotest.(check bool) (label "made progress") true (o.Nemesis.succeeded > 0);
      Alcotest.(check int) (label "full final sweep") 30 o.Nemesis.final_keys_checked;
      (* The termination protocol — not a power cycle — must account for
         every transaction: no lock manager holds residue at quiesce and
         nothing is left in doubt. *)
      Alcotest.(check int) (label "no orphaned locks") 0 o.Nemesis.orphan_locks;
      Alcotest.(check int) (label "no open in-doubt txns") 0 o.Nemesis.indoubt_open)
    outcomes

let test_standard_plans_no_violations () =
  check_campaign ~seed:42L (Nemesis.run_all ~seed:42L ())

let test_more_seeds () =
  (* Seeds that historically exposed real holes: lost unforced log suffixes
     slipping past the prepare vote (1, 7) and a mid-transaction restart
     re-executing an op against an amnesiac representative (1983). *)
  let repaired = ref 0 in
  List.iter
    (fun seed ->
      let outcomes = Nemesis.run_all ~seed () in
      check_campaign ~seed outcomes;
      List.iter (fun o -> repaired := !repaired + o.Nemesis.wal_records_repaired) outcomes)
    [ 1L; 7L; 1983L ];
  Alcotest.(check bool) "torn-WAL campaigns scrubbed records" true (!repaired > 0)

let test_bit_reproducible () =
  let run () = Nemesis.run_all ~seed:9L ~duration:600.0 () in
  let a = run () and b = run () in
  (* Structural equality over the whole outcome record — including the
     simulator event count, which fingerprints the entire execution. *)
  Alcotest.(check bool) "identical outcome records" true (a = b);
  List.iter
    (fun o -> Alcotest.(check int) (o.Nemesis.plan ^ ": no violations") 0 o.Nemesis.violations)
    a

let test_coordinator_crash_resolves_everything () =
  (* Regression seeds for the prepare/decide window: the client (who is the
     coordinator) is repeatedly cut off from every representative for short
     windows, stranding participants mid-protocol — some prepared (in
     doubt), some not (lease-expired). With NO power cycle, every stranded
     transaction must terminate on its own: zero model violations, every
     lock manager drained, nothing left in doubt. *)
  let stranded = ref 0 in
  List.iter
    (fun seed ->
      let o =
        Nemesis.run_plan ~seed
          (Nemesis.coordinator_crash ~n:3 ~duration:1000.0 ~seed)
      in
      let label what = Printf.sprintf "seed %Ld: %s" seed what in
      Alcotest.(check int) (label "zero violations") 0 o.Nemesis.violations;
      Alcotest.(check bool) (label "made progress") true (o.Nemesis.succeeded > 0);
      Alcotest.(check int) (label "no orphaned locks") 0 o.Nemesis.orphan_locks;
      Alcotest.(check int) (label "no open in-doubt txns") 0 o.Nemesis.indoubt_open;
      stranded :=
        !stranded + o.Nemesis.leases_expired + o.Nemesis.indoubt_by_coordinator
        + o.Nemesis.indoubt_by_peer + o.Nemesis.indoubt_recovered)
    [ 42L; 7L; 1983L ];
  (* The campaign must actually exercise the termination machinery — a run
     that never strands a transaction proves nothing. *)
  Alcotest.(check bool) "campaign stranded transactions" true (!stranded > 0)

let test_plans_are_pure_functions_of_seed () =
  let p1 = Nemesis.crash_storm ~n:3 ~duration:500.0 ~seed:13L in
  let p2 = Nemesis.crash_storm ~n:3 ~duration:500.0 ~seed:13L in
  let p3 = Nemesis.crash_storm ~n:3 ~duration:500.0 ~seed:14L in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check bool) "different seed, different plan" false (p1 = p3)

(* --- asymmetric partition ----------------------------------------------------------- *)

(* A 3-1-3 suite with the client cut off from one representative: every read
   quorum (one representative) is still collectible, but no write quorum
   (all three) is. Reads must keep working, writes must fail cleanly, and
   healing must reveal no split-brain — the failed writes left no trace. *)
let test_asymmetric_partition () =
  let config = Config.simple ~n:3 ~r:1 ~w:3 in
  let world = Sim_world.create ~seed:5L ~rpc_timeout:10.0 ~two_phase:true ~config () in
  let sim = Sim_world.sim world in
  let net = Sim_world.net world in
  let suite = Sim_world.suite_for_client world 0 in
  let client = 3 (* the client node follows the representatives *) in
  let expect_value label expected =
    match Suite.lookup suite "k" with
    | Some (_, v) -> Alcotest.(check string) label expected v
    | None -> Alcotest.fail (label ^ ": entry missing")
  in
  Sim.spawn sim (fun () ->
      (match Suite.insert suite "k" "v0" with
      | Ok () -> ()
      | Error `Already_present -> Alcotest.fail "fresh key already present");
      Net.set_link net client 2 false;
      (* Reads: a single-representative quorum avoids (or excludes after a
         timeout) the unreachable one. *)
      expect_value "read during partition" "v0";
      (match Suite.update suite "k" "v1" with
      | exception Suite.Unavailable _ -> ()
      | Ok () -> Alcotest.fail "write succeeded without a write quorum"
      | Error `Not_present -> Alcotest.fail "entry vanished");
      Net.set_link net client 2 true;
      (* The aborted write left no trace at any representative. *)
      expect_value "no split-brain after heal" "v0";
      (match Suite.update suite "k" "v2" with
      | Ok () -> ()
      | Error `Not_present -> Alcotest.fail "entry vanished after heal"
      | exception Suite.Unavailable msg -> Alcotest.fail ("write after heal: " ^ msg));
      expect_value "write quorum restored" "v2");
  Sim.run sim

let () =
  Alcotest.run "nemesis"
    [
      ( "campaigns",
        [
          Alcotest.test_case "standard plans, zero violations" `Quick
            test_standard_plans_no_violations;
          Alcotest.test_case "regression seeds" `Quick test_more_seeds;
          Alcotest.test_case "bit-reproducible" `Quick test_bit_reproducible;
          Alcotest.test_case "coordinator crash resolves everything" `Quick
            test_coordinator_crash_resolves_everything;
          Alcotest.test_case "plans are pure functions of seed" `Quick
            test_plans_are_pure_functions_of_seed;
        ] );
      ( "partitions",
        [ Alcotest.test_case "asymmetric client partition" `Quick test_asymmetric_partition ] );
    ]
