(* Tests for the anti-entropy subsystem: digest agreement between the two
   gap-map implementations, digest/state equivalence, version-monotone merge
   safety and idempotence, cross-implementation pairwise convergence, the
   representative-level WAL/undo integration of [apply_range], and the
   partition-then-heal convergence campaign. *)

open Repdir_key
open Repdir_gapmap
open Repdir_rep
open Repdir_harness
module G = Gapmap
module Rng = Repdir_util.Rng

let keyspace = 40

(* --- divergent-history generator ------------------------------------------------ *)

(* Random mutations drawing versions from a shared monotone counter, so two
   histories built from a common prefix never reuse a version for different
   state — exactly the property quorum intersection gives real
   representatives, and the precondition for the merge's tie handling. *)
module Mutator (M : Gapmap_intf.S) = struct
  let version_at m k =
    match M.lookup m (Bound.Key k) with
    | Gapmap_intf.Present { version; _ } -> version
    | Gapmap_intf.Absent { gap_version } -> gap_version

  let op m rng ver =
    let fresh () =
      incr ver;
      !ver
    in
    match Rng.int rng 8 with
    | 0 | 1 | 2 | 3 | 4 ->
        let v = fresh () in
        M.insert m (Key.of_int (Rng.int rng keyspace)) v (Printf.sprintf "v%d" v)
    | 5 | 6 -> (
        (* Delete a random entry the way the suite does: coalesce between its
           neighbours with a fresh (dominating) version. *)
        match M.entries m with
        | [] ->
            let v = fresh () in
            M.insert m (Key.of_int (Rng.int rng keyspace)) v (Printf.sprintf "v%d" v)
        | es ->
            let k, _, _ = List.nth es (Rng.int rng (List.length es)) in
            let lo = (M.predecessor m (Bound.Key k)).key in
            let hi = (M.successor m (Bound.Key k)).key in
            ignore (M.coalesce m ~lo ~hi (fresh ())))
    | _ ->
        (* Raise a random gap's version, as coalescing an empty range does. *)
        let es = M.entries m in
        let bounds = Bound.Low :: List.map (fun (k, _, _) -> Bound.Key k) es in
        let b = List.nth bounds (Rng.int rng (List.length bounds)) in
        M.set_gap_after m b (fresh ())

  let run m rng ver n =
    for _ = 1 to n do
      op m rng ver
    done

  let build ~seed ~ops =
    let m = M.create () in
    let ver = ref 0 in
    run m (Rng.create seed) ver ops;
    (m, ver)
end

module MR = Mutator (G.Reference)
module MB = Mutator (G.Btree)

(* Reference and btree driven through the identical op sequence. *)
let build_pair ~seed ~ops =
  let r, _ = MR.build ~seed ~ops in
  let b, _ = MB.build ~seed ~ops in
  (r, b)

let check_inv name = function Ok () -> () | Error e -> Alcotest.failf "%s: %s" name e

(* --- digest agreement between implementations ----------------------------------- *)

let random_bound rng =
  match Rng.int rng 6 with
  | 0 -> Bound.Low
  | 1 -> Bound.High
  | _ -> Bound.Key (Key.of_int (Rng.int rng keyspace))

let impl_agreement =
  QCheck.Test.make ~name:"reference and btree agree on digests/transfers" ~count:60
    QCheck.(pair (int_bound 100_000) (int_bound 200))
    (fun (seed, ops) ->
      let seed = Int64.of_int seed in
      let r, b = build_pair ~seed ~ops in
      check_inv "reference" (G.Reference.check_invariants r);
      check_inv "btree" (G.Btree.check_invariants b);
      let dr = G.Reference.digest_range r ~lo:Bound.Low ~hi:Bound.High in
      let db = G.Btree.digest_range b ~lo:Bound.Low ~hi:Bound.High in
      if dr <> db then
        QCheck.Test.fail_reportf "root digests differ: %a vs %a" Gapmap_intf.pp_digest dr
          Gapmap_intf.pp_digest db;
      let rng = Rng.create (Int64.add seed 77L) in
      for _ = 1 to 12 do
        let x = random_bound rng and y = random_bound rng in
        if Bound.compare x y <> 0 then begin
          let lo = Bound.min x y and hi = Bound.max x y in
          let dr = G.Reference.digest_range r ~lo ~hi in
          let db = G.Btree.digest_range b ~lo ~hi in
          if dr <> db then
            QCheck.Test.fail_reportf "digest(%a,%a) differs" Bound.pp lo Bound.pp hi;
          if G.Reference.pull_range r ~lo ~hi <> G.Btree.pull_range b ~lo ~hi then
            QCheck.Test.fail_reportf "pull_range(%a,%a) differs" Bound.pp lo Bound.pp hi;
          if
            G.Reference.split_range r ~lo ~hi ~arity:4
            <> G.Btree.split_range b ~lo ~hi ~arity:4
          then QCheck.Test.fail_reportf "split_range(%a,%a) differs" Bound.pp lo Bound.pp hi
        end
      done;
      true)

(* --- digest/state equivalence ---------------------------------------------------- *)

let root d = G.Btree.digest_range d ~lo:Bound.Low ~hi:Bound.High

let test_digest_is_a_function_of_state () =
  (* Same final state reached along different histories must digest equally. *)
  let m1 = G.Btree.create () in
  G.Btree.insert m1 "a" 1 "va";
  G.Btree.insert m1 "b" 2 "vb";
  let m2 = G.Btree.create () in
  G.Btree.insert m2 "b" 2 "vb";
  G.Btree.insert m2 "a" 1 "va";
  Alcotest.(check bool) "insert order invisible" true (root m1 = root m2);
  (* A gap version set by coalesce and by set_gap_after is the same state. *)
  let m3 = G.Btree.create () in
  G.Btree.insert m3 "a" 1 "va";
  G.Btree.insert m3 "c" 1 "vc";
  let m4 = G.Btree.create () in
  G.Btree.insert m4 "a" 1 "va";
  G.Btree.insert m4 "c" 1 "vc";
  ignore (G.Btree.coalesce m3 ~lo:(Bound.Key "a") ~hi:(Bound.Key "c") 5);
  G.Btree.set_gap_after m4 (Bound.Key "a") 5;
  Alcotest.(check bool) "coalesce vs set_gap_after invisible" true (root m3 = root m4)

let test_digest_sensitivity () =
  let seed = 2718L and ops = 150 in
  let fresh () = fst (MB.build ~seed ~ops) in
  let base = root (fresh ()) in
  let m = fresh () in
  Alcotest.(check bool) "identical rebuild digests equally" true (root m = base);
  let k, v, value =
    match G.Btree.entries m with e :: _ -> e | [] -> Alcotest.fail "empty build"
  in
  let mutated name f =
    let m = fresh () in
    f m;
    Alcotest.(check bool) (name ^ " changes the digest") true (root m <> base)
  in
  mutated "entry version bump" (fun m -> G.Btree.insert m k (v + 1000) value);
  mutated "value change only" (fun m -> G.Btree.insert m k v (value ^ "!"));
  mutated "gap raise" (fun m -> G.Btree.set_gap_after m Bound.Low 9999);
  mutated "fresh insert" (fun m -> G.Btree.insert m (Key.of_int 999) 1 "x");
  mutated "entry removal" (fun m -> ignore (G.Btree.remove m k))

(* --- merge safety ----------------------------------------------------------------- *)

(* A common prefix of [base] ops, then [da] ops only A sees, then [db] ops
   only B sees (strictly later versions) — two replicas diverged by a
   partition. A is the reference map, B the btree, so every merge test also
   exercises cross-implementation transfers. *)
let diverged ~seed ~base ~da ~db =
  let a, _ = MR.build ~seed ~ops:base in
  let b, ver = MB.build ~seed ~ops:base in
  MR.run a (Rng.create (Int64.add seed 1L)) ver da;
  MB.run b (Rng.create (Int64.add seed 2L)) ver db;
  (a, b)

let probe_keys = List.init (keyspace + 3) Key.of_int

let merge_monotone =
  QCheck.Test.make ~name:"apply_transfer is version-monotone and idempotent" ~count:60
    QCheck.(triple (int_bound 100_000) (int_bound 120) (pair (int_bound 25) (int_bound 25)))
    (fun (seed, base, (da, db)) ->
      let a, b = diverged ~seed:(Int64.of_int seed) ~base ~da ~db in
      let before = List.map (fun k -> (k, MR.version_at a k)) probe_keys in
      let tr = G.Btree.pull_range b ~lo:Bound.Low ~hi:Bound.High in
      ignore (G.Reference.apply_transfer a tr);
      check_inv "reference after merge" (G.Reference.check_invariants a);
      List.iter
        (fun (k, v0) ->
          let v1 = MR.version_at a k in
          let vp = MB.version_at b k in
          if v1 < v0 then
            QCheck.Test.fail_reportf "version lowered at %a: %d -> %d" Key.pp k v0 v1;
          if v1 > max v0 vp then
            QCheck.Test.fail_reportf "version fabricated at %a: %d > max(%d,%d)" Key.pp k
              v1 v0 vp)
        before;
      (* Idempotence: re-planning the same transfer finds nothing to do. *)
      let plan = G.Reference.plan_transfer a tr in
      if plan.Gapmap_intf.ops <> [] then
        QCheck.Test.fail_reportf "second plan not empty: %d ops"
          (List.length plan.Gapmap_intf.ops);
      true)

(* Replicated-history generator: one linear history of suite-style writes,
   each applied to a random subset of two replicas — the way quorum writes
   (w < n) scatter state in the real system. Both replicas embed in the
   same serialization, so almost all pairs merge to exact equality; the
   exception is a delete whose endpoint repair skips a replica's *stale*
   copy of the endpoint (mirroring Figure 13, which only repairs members
   that lack the key), which can make the pair's pointwise max demand a
   gap boundary at a key with no entry — unrepresentable, so the merge
   stabilizes with dominated ghosts instead. [pairwise_convergence] below
   accepts exactly that fixpoint and nothing weaker. *)
let replicated_pair ~seed ~ops =
  let rng = Rng.create seed in
  let f = G.Reference.create () in
  let a = G.Reference.create () and b = G.Btree.create () in
  let ver = ref 0 in
  let fresh () =
    incr ver;
    !ver
  in
  for _ = 1 to ops do
    let to_a, to_b =
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 -> (true, true)
      | 5 | 6 -> (true, false)
      | 7 | 8 -> (false, true)
      | _ -> (false, false) (* only the third representative saw this one *)
    in
    let k = Key.of_int (Rng.int rng keyspace) in
    match Rng.int rng 3 with
    | 0 | 1 ->
        (* Insert-or-update at the next version (Figure 9). *)
        let v = fresh () in
        let value = Printf.sprintf "v%d" v in
        G.Reference.insert f k v value;
        if to_a then G.Reference.insert a k v value;
        if to_b then G.Btree.insert b k v value
    | _ ->
        (* Delete: coalesce between k's real neighbours with a dominating
           version, first repairing endpoint entries the replica lacks
           (Figures 12/13). *)
        let pred = (G.Reference.predecessor f (Bound.Key k)).key in
        let succ = (G.Reference.successor f (Bound.Key k)).key in
        let repair bound =
          match bound with
          | Bound.Key p -> (
              match G.Reference.lookup f bound with
              | Gapmap_intf.Present { version; value } -> [ (p, version, value) ]
              | Gapmap_intf.Absent _ -> [])
          | Bound.Low | Bound.High -> []
        in
        let copies = repair pred @ repair succ in
        let v = fresh () in
        ignore (G.Reference.coalesce f ~lo:pred ~hi:succ v);
        if to_a then begin
          List.iter
            (fun (p, pv, pval) ->
              if not (G.Reference.mem a p) then G.Reference.insert a p pv pval)
            copies;
          ignore (G.Reference.coalesce a ~lo:pred ~hi:succ v)
        end;
        if to_b then begin
          List.iter
            (fun (p, pv, pval) -> if not (G.Btree.mem b p) then G.Btree.insert b p pv pval)
            copies;
          ignore (G.Btree.coalesce b ~lo:pred ~hi:succ v)
        end
  done;
  (a, b)

(* Bidirectional anti-entropy over replicated histories reaches a *stable
   safe fixpoint* in a bounded number of rounds. Usually that fixpoint is
   exact equality, but not always: the suite's delete (Figure 13) only
   repairs endpoint copies a member *lacks*, so a member holding a stale
   copy of the endpoint gets coalesced around it, and the pair's pointwise
   max can demand a gap-version boundary at a key with no entry — a state
   no gap map can represent. The merge then correctly refuses to fabricate
   coverage and parks the difference as mutually dominated ghosts: both
   directions' plans stay empty, and every one-sided entry sits strictly
   below the other side's gap version at that key. *)
let pairwise_convergence =
  QCheck.Test.make ~name:"bidirectional sync reaches a stable safe fixpoint" ~count:120
    QCheck.(pair (int_bound 100_000) (int_bound 200))
    (fun (seed, ops) ->
      let a, b = replicated_pair ~seed:(Int64.of_int seed) ~ops in
      let full_a () = G.Reference.pull_range a ~lo:Bound.Low ~hi:Bound.High in
      let full_b () = G.Btree.pull_range b ~lo:Bound.Low ~hi:Bound.High in
      let equal () =
        G.Reference.digest_range a ~lo:Bound.Low ~hi:Bound.High
        = G.Btree.digest_range b ~lo:Bound.Low ~hi:Bound.High
      in
      let fixpoint () =
        equal ()
        || (G.Reference.plan_transfer a (full_b ())).Gapmap_intf.ops = []
           && (G.Btree.plan_transfer b (full_a ())).Gapmap_intf.ops = []
      in
      let rounds = ref 0 in
      while (not (fixpoint ())) && !rounds < 10 do
        incr rounds;
        ignore (G.Reference.apply_transfer a (full_b ()));
        ignore (G.Btree.apply_transfer b (full_a ()))
      done;
      if not (fixpoint ()) then QCheck.Test.fail_reportf "no fixpoint after 10 rounds";
      check_inv "reference" (G.Reference.check_invariants a);
      check_inv "btree" (G.Btree.check_invariants b);
      if equal () then begin
        if G.Reference.entries a <> G.Btree.entries b then
          QCheck.Test.fail_reportf "digests equal but entries differ";
        if G.Reference.gaps a <> G.Btree.gaps b then
          QCheck.Test.fail_reportf "digests equal but gaps differ"
      end
      else begin
        let ea = G.Reference.entries a and eb = G.Btree.entries b in
        let find es k = List.find_opt (fun (k', _, _) -> Key.equal k' k) es in
        let check_side tag mine theirs other_lookup =
          List.iter
            (fun (k, v, value) ->
              match find theirs k with
              | Some (_, v', value') ->
                  if v <> v' || value <> value' then
                    QCheck.Test.fail_reportf "%s: common key %s differs at fixpoint" tag
                      (Key.to_string k)
              | None -> (
                  match other_lookup (Bound.Key k) with
                  | Gapmap_intf.Present _ ->
                      QCheck.Test.fail_reportf "%s: lookup/entries disagree at %s" tag
                        (Key.to_string k)
                  | Gapmap_intf.Absent { gap_version } ->
                      if gap_version <= v then
                        QCheck.Test.fail_reportf
                          "%s: one-sided entry %s@%d not dominated (peer gap %d)" tag
                          (Key.to_string k) v gap_version))
            mine
        in
        check_side "a-only" ea eb (G.Btree.lookup b);
        check_side "b-only" eb ea (G.Reference.lookup a)
      end;
      true)

(* --- representative-level apply_range -------------------------------------------- *)

(* Two stand-alone representatives: [b] holds everything [a] does plus a
   later history, so one directed transfer makes them identical. *)
let rep_pair () =
  let a = Rep.create ~name:"a" () in
  Rep.insert a ~txn:1 "b" 1 "vb";
  Rep.insert a ~txn:1 "d" 2 "vd";
  Rep.insert a ~txn:1 "f" 3 "vf";
  Rep.commit a ~txn:1;
  let b = Rep.create ~name:"b" () in
  Rep.insert b ~txn:2 "b" 1 "vb";
  Rep.insert b ~txn:2 "d" 2 "vd";
  Rep.insert b ~txn:2 "f" 3 "vf";
  (* Post-partition history only b saw: an update, an insert, a delete. *)
  Rep.insert b ~txn:2 "d" 4 "vd'";
  Rep.insert b ~txn:2 "e" 5 "ve";
  ignore (Rep.coalesce b ~txn:2 ~lo:(Bound.Key "e") ~hi:Bound.High 6);
  Rep.commit b ~txn:2;
  (a, b)

let snapshot r = (Rep.entries r, Rep.gaps r)

let test_apply_range_abort_restores () =
  let a, b = rep_pair () in
  let s0 = snapshot a in
  let tr = Rep.pull_range b ~txn:3 ~lo:Bound.Low ~hi:Bound.High in
  let applied = Rep.apply_range a ~txn:3 tr in
  Alcotest.(check bool) "merge did something" true
    (applied.Gapmap_intf.installed + applied.Gapmap_intf.updated
     + applied.Gapmap_intf.deleted + applied.Gapmap_intf.gaps_raised
    > 0);
  Alcotest.(check bool) "state changed before abort" true (snapshot a <> s0);
  Rep.abort a ~txn:3;
  Rep.abort b ~txn:3;
  Alcotest.(check bool) "abort restored the exact state" true (snapshot a = s0);
  check_inv "rep a" (Rep.check_invariants a)

let test_apply_range_commit_survives_crash () =
  let a, b = rep_pair () in
  let tr = Rep.pull_range b ~txn:3 ~lo:Bound.Low ~hi:Bound.High in
  ignore (Rep.apply_range a ~txn:3 tr);
  Rep.commit a ~txn:3;
  Rep.abort b ~txn:3;
  Alcotest.(check bool) "one directed transfer equalized the pair" true
    (Rep.root_digest a = Rep.root_digest b);
  let s1 = snapshot a in
  Rep.crash a;
  Rep.recover a;
  Alcotest.(check bool) "recovery replayed the Sync_apply record" true (snapshot a = s1);
  check_inv "rep a after recovery" (Rep.check_invariants a);
  (* Idempotence at the representative level: a second apply is a no-op. *)
  let tr = Rep.pull_range b ~txn:4 ~lo:Bound.Low ~hi:Bound.High in
  let again = Rep.apply_range a ~txn:4 tr in
  Rep.commit a ~txn:4;
  Rep.abort b ~txn:4;
  Alcotest.(check bool) "second apply is a no-op" true
    (again = Gapmap_intf.empty_applied);
  Alcotest.(check bool) "digest stable" true (snapshot a = s1)

(* --- suite wiring ----------------------------------------------------------------- *)

let test_suite_sync_wiring () =
  let config = Repdir_quorum.Config.simple ~n:3 ~r:2 ~w:2 in
  let w = Sim_world.create ~config () in
  let s = Sim_world.make_sync w in
  let suite = Sim_world.suite_for_client ~sync:s w 0 in
  Alcotest.(check bool) "counters exposed" true
    (Repdir_core.Suite.sync_counters suite <> None);
  Alcotest.(check bool) "enabled by default" true (Repdir_sync.Sync.enabled s);
  Repdir_core.Suite.set_sync_enabled suite false;
  Alcotest.(check bool) "suite toggle reaches the actor" false
    (Repdir_sync.Sync.enabled s);
  Repdir_core.Suite.set_sync_enabled suite true;
  Alcotest.(check bool) "re-enabled" true (Repdir_sync.Sync.enabled s);
  let plain = Sim_world.suite_for_client w 0 in
  Alcotest.(check bool) "no actor, no counters" true
    (Repdir_core.Suite.sync_counters plain = None);
  Alcotest.check_raises "toggle without actor rejected"
    (Invalid_argument "Suite.set_sync_enabled: suite has no sync actor attached")
    (fun () -> Repdir_core.Suite.set_sync_enabled plain true)

(* --- partition-then-heal convergence ---------------------------------------------- *)

let check_outcome (o : Anti_entropy.outcome) =
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld: partition produced divergence" o.seed)
    true (o.diverged_entries > 0);
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld: converged with zero client traffic" o.seed)
    true o.converged;
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld: sync moved entries" o.seed)
    true (o.entries_sent > 0);
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld: O(diff) transfer (%d sent < %d directory)" o.seed
       o.entries_sent o.directory_size)
    true
    (o.entries_sent < o.directory_size);
  Alcotest.(check bool)
    (Printf.sprintf "seed %Ld: digest rounds ran" o.seed)
    true
    (o.digest_rpcs > 0 && o.sessions > 0)

let test_convergence_campaign () =
  List.iter check_outcome (Anti_entropy.campaign ~seeds:[ 1983L; 2024L; 7L ] ())

let test_convergence_bit_reproducible () =
  let o1 = Anti_entropy.convergence ~seed:42L () in
  let o2 = Anti_entropy.convergence ~seed:42L () in
  Alcotest.(check bool) "same seed, identical outcome (incl. event count)" true (o1 = o2);
  let o3 = Anti_entropy.convergence ~seed:43L () in
  Alcotest.(check bool) "different seed, different trace" true (o1.sim_events <> o3.sim_events)

let () =
  Alcotest.run "sync"
    [
      ( "digest",
        [
          QCheck_alcotest.to_alcotest impl_agreement;
          Alcotest.test_case "function of state" `Quick test_digest_is_a_function_of_state;
          Alcotest.test_case "sensitivity" `Quick test_digest_sensitivity;
        ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest merge_monotone;
          QCheck_alcotest.to_alcotest pairwise_convergence;
        ] );
      ( "rep",
        [
          Alcotest.test_case "abort restores state" `Quick test_apply_range_abort_restores;
          Alcotest.test_case "commit survives crash" `Quick
            test_apply_range_commit_survives_crash;
        ] );
      ( "wiring", [ Alcotest.test_case "suite exposes sync" `Quick test_suite_sync_wiring ] );
      ( "convergence",
        [
          Alcotest.test_case "partition-then-heal campaign" `Quick test_convergence_campaign;
          Alcotest.test_case "bit-reproducible" `Quick test_convergence_bit_reproducible;
        ] );
    ]
