(* Tests for the transaction facility: manager lifecycle, undo-log ordering,
   write-ahead-log replay (commit/abort filtering, checkpoints, truncation),
   and a property test that recovery rebuilds exactly the committed state. *)

open Repdir_key
open Repdir_txn
open Repdir_gapmap.Gapmap_intf
module G = Repdir_gapmap.Reference
module Apply = Undo.Apply (Repdir_gapmap.Reference)
module Replay = Wal.Replay (Repdir_gapmap.Reference)
module Rep = Repdir_rep.Rep

(* --- manager -------------------------------------------------------------------- *)

let test_manager_ids_increase () =
  let m = Txn.Manager.create () in
  let a = Txn.Manager.begin_txn m in
  let b = Txn.Manager.begin_txn m in
  Alcotest.(check bool) "strictly increasing" true (b > a)

let test_manager_lifecycle () =
  let m = Txn.Manager.create () in
  let a = Txn.Manager.begin_txn m in
  Alcotest.(check bool) "active" true (Txn.Manager.status m a = Txn.Active);
  Txn.Manager.commit m a;
  Alcotest.(check bool) "committed" true (Txn.Manager.status m a = Txn.Committed);
  let b = Txn.Manager.begin_txn m in
  Txn.Manager.abort m b;
  Alcotest.(check bool) "aborted" true (Txn.Manager.status m b = Txn.Aborted)

let test_manager_double_commit_rejected () =
  let m = Txn.Manager.create () in
  let a = Txn.Manager.begin_txn m in
  Txn.Manager.commit m a;
  (try
     Txn.Manager.commit m a;
     Alcotest.fail "double commit accepted"
   with Invalid_argument _ -> ());
  try
    Txn.Manager.abort m a;
    Alcotest.fail "abort after commit accepted"
  with Invalid_argument _ -> ()

let test_manager_unknown_txn () =
  let m = Txn.Manager.create () in
  try
    ignore (Txn.Manager.status m 999);
    Alcotest.fail "unknown txn accepted"
  with Invalid_argument _ -> ()

let test_manager_active_list () =
  let m = Txn.Manager.create () in
  let a = Txn.Manager.begin_txn m in
  let b = Txn.Manager.begin_txn m in
  let c = Txn.Manager.begin_txn m in
  Txn.Manager.commit m b;
  Alcotest.(check (list int)) "active set" [ a; c ] (Txn.Manager.active m)

(* --- undo ----------------------------------------------------------------------- *)

let test_undo_rollback_insert () =
  let g = G.create () in
  let undo = Undo.create () in
  G.insert g "k" 1 "v";
  Undo.record undo ~txn:1 (Undo.Remove_entry "k");
  Apply.rollback undo ~txn:1 g;
  Alcotest.(check int) "entry removed" 0 (G.size g);
  Alcotest.(check (list int)) "log forgotten" [] (Undo.active_txns undo)

let test_undo_rollback_update () =
  let g = G.create () in
  let undo = Undo.create () in
  G.insert g "k" 1 "old";
  Undo.record undo ~txn:1 (Undo.Restore_entry ("k", 1, "old"));
  G.insert g "k" 2 "new";
  Apply.rollback undo ~txn:1 g;
  match G.lookup g (Bound.Key "k") with
  | Present { version; value } ->
      Alcotest.(check int) "old version" 1 version;
      Alcotest.(check string) "old value" "old" value
  | Absent _ -> Alcotest.fail "entry lost"

let test_undo_rollback_coalesce () =
  (* Forward: coalesce (a, d) at version 9, destroying entries b, c and the
     gap structure. The inverse must restore entries *and* per-gap
     versions exactly. *)
  let g = G.create () in
  let undo = Undo.create () in
  List.iter (fun (k, v) -> G.insert g k v k) [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ];
  ignore (G.coalesce g ~lo:(Bound.Key "b") ~hi:(Bound.Key "c") 5);
  (* state: a -0- b -5- c -0- d, entries b@2 c@3 *)
  let before_entries = G.entries g and before_gaps = G.gaps g in
  (* Record inverse of coalesce (a, d) -> v9 in application order:
     re-insert b and c, then restore gaps after a, b, c. *)
  let doomed = G.entries_between g ~lo:(Bound.Key "a") ~hi:(Bound.Key "d") in
  let gap_after_a = 0 in
  Undo.record undo ~txn:7 (Undo.Restore_gap (Bound.Key "a", gap_after_a));
  List.iter
    (fun (k, _, _, gap) -> Undo.record undo ~txn:7 (Undo.Restore_gap (Bound.Key k, gap)))
    doomed;
  List.iter
    (fun (k, v, value, _) -> Undo.record undo ~txn:7 (Undo.Restore_entry (k, v, value)))
    doomed;
  ignore (G.coalesce g ~lo:(Bound.Key "a") ~hi:(Bound.Key "d") 9);
  Alcotest.(check int) "coalesce removed" 2 (G.size g);
  Apply.rollback undo ~txn:7 g;
  Alcotest.(check bool) "entries restored" true (G.entries g = before_entries);
  Alcotest.(check bool) "gaps restored" true (G.gaps g = before_gaps)

let test_undo_reverse_order () =
  (* Two updates of the same key in one transaction: rollback must end at
     the original value, not the intermediate one. *)
  let g = G.create () in
  let undo = Undo.create () in
  G.insert g "k" 1 "v1";
  Undo.record undo ~txn:1 (Undo.Restore_entry ("k", 1, "v1"));
  G.insert g "k" 2 "v2";
  Undo.record undo ~txn:1 (Undo.Restore_entry ("k", 2, "v2"));
  G.insert g "k" 3 "v3";
  Apply.rollback undo ~txn:1 g;
  match G.lookup g (Bound.Key "k") with
  | Present { version; value } ->
      Alcotest.(check int) "original version" 1 version;
      Alcotest.(check string) "original value" "v1" value
  | Absent _ -> Alcotest.fail "entry lost"

let test_undo_txn_isolation () =
  let undo = Undo.create () in
  Undo.record undo ~txn:1 (Undo.Remove_entry "a");
  Undo.record undo ~txn:2 (Undo.Remove_entry "b");
  Alcotest.(check int) "txn1 has one action" 1 (List.length (Undo.actions undo ~txn:1));
  Undo.forget undo ~txn:1;
  Alcotest.(check int) "txn1 cleared" 0 (List.length (Undo.actions undo ~txn:1));
  Alcotest.(check int) "txn2 untouched" 1 (List.length (Undo.actions undo ~txn:2))

(* --- wal ------------------------------------------------------------------------- *)

let test_wal_replay_commits_only () =
  let w = Wal.create () in
  Wal.append w (Wal.Begin 1);
  Wal.append w (Wal.Insert (1, "a", 1, "va"));
  Wal.append w (Wal.Commit 1);
  Wal.append w (Wal.Begin 2);
  Wal.append w (Wal.Insert (2, "b", 1, "vb"));
  Wal.append w (Wal.Abort 2);
  Wal.append w (Wal.Begin 3);
  Wal.append w (Wal.Insert (3, "c", 1, "vc"));
  (* txn 3: crashed before commit — no outcome record *)
  let g = Replay.replay w in
  Alcotest.(check (list string)) "only committed entries" [ "a" ]
    (List.map (fun (k, _, _) -> k) (G.entries g))

let test_wal_replay_coalesce () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "va"));
  Wal.append w (Wal.Insert (1, "b", 1, "vb"));
  Wal.append w (Wal.Insert (1, "c", 1, "vc"));
  Wal.append w (Wal.Commit 1);
  Wal.append w (Wal.Coalesce (2, Bound.Key "a", Bound.Key "c", 2));
  Wal.append w (Wal.Commit 2);
  let g = Replay.replay w in
  Alcotest.(check (list string)) "b coalesced away" [ "a"; "c" ]
    (List.map (fun (k, _, _) -> k) (G.entries g));
  match G.lookup g (Bound.Key "b") with
  | Absent { gap_version } -> Alcotest.(check int) "gap version" 2 gap_version
  | Present _ -> Alcotest.fail "b should be gone"

let test_wal_committed_flag () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "v"));
  Alcotest.(check bool) "not committed yet" false (Wal.committed w 1);
  Wal.append w (Wal.Commit 1);
  Alcotest.(check bool) "committed" true (Wal.committed w 1)

let test_wal_checkpoint_roundtrip () =
  let g = G.create () in
  G.insert g "a" 3 "va";
  G.insert g "m" 7 "vm";
  ignore (G.coalesce g ~lo:(Bound.Key "a") ~hi:(Bound.Key "m") 5);
  let cp = Wal.checkpoint_of_map (G.entries g) ~gaps:(G.gaps g) in
  let w = Wal.create () in
  Wal.append w (Wal.Checkpoint cp);
  let g' = Replay.replay w in
  Alcotest.(check bool) "entries equal" true (G.entries g = G.entries g');
  Alcotest.(check bool) "gaps equal" true (G.gaps g = G.gaps g')

let test_wal_truncate () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "v"));
  Wal.append w (Wal.Commit 1);
  let cp = { Wal.entries = [ ("a", 1, "v", 0) ]; low_gap = 0 } in
  Wal.append w (Wal.Checkpoint cp);
  Wal.append w (Wal.Insert (2, "b", 1, "v"));
  Wal.append w (Wal.Commit 2);
  Alcotest.(check int) "before truncate" 5 (Wal.length w);
  Wal.truncate_to_checkpoint w;
  Alcotest.(check int) "after truncate" 3 (Wal.length w);
  let g = Replay.replay w in
  Alcotest.(check (list string)) "state preserved" [ "a"; "b" ]
    (List.map (fun (k, _, _) -> k) (G.entries g))

let test_wal_truncate_without_checkpoint () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "v"));
  Wal.truncate_to_checkpoint w;
  Alcotest.(check int) "no-op" 1 (Wal.length w)

let test_wal_checkpoint_then_more_commits () =
  (* Records after the checkpoint apply on top of it; records before are
     superseded by it. *)
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "before", 1, "v"));
  Wal.append w (Wal.Commit 1);
  let cp = { Wal.entries = [ ("cp", 5, "v", 2) ]; low_gap = 1 } in
  Wal.append w (Wal.Checkpoint cp);
  Wal.append w (Wal.Insert (2, "after", 3, "v"));
  Wal.append w (Wal.Commit 2);
  let g = Replay.replay w in
  Alcotest.(check (list string)) "checkpoint replaces prior state" [ "after"; "cp" ]
    (List.map (fun (k, _, _) -> k) (G.entries g))

(* --- storage faults --------------------------------------------------------------- *)

(* A committed-and-forced prefix, then the unforced records of an in-flight
   transaction — the shape of a representative's log at crash time. *)
let log_with_unforced_tail () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "va"));
  Wal.append w (Wal.Commit 1);
  Wal.sync w;
  Wal.append w (Wal.Insert (2, "b", 2, "vb"));
  Wal.append w (Wal.Insert (2, "c", 3, "vc"));
  w

let replayed_keys w = List.map (fun (k, _, _) -> k) (G.entries (Replay.replay w))

let test_wal_torn_tail_recovers_committed_prefix () =
  let w = log_with_unforced_tail () in
  Wal.inject w Wal.Tear_tail;
  Alcotest.(check bool) "tail checksum fails" false (Wal.tail_valid w);
  let dropped = Wal.repair w in
  Alcotest.(check int) "torn record dropped" 1 dropped;
  Alcotest.(check bool) "tail valid after repair" true (Wal.tail_valid w);
  Alcotest.(check (list string)) "exactly the committed prefix" [ "a" ] (replayed_keys w)

let test_wal_corrupt_tail_recovers_committed_prefix () =
  let w = log_with_unforced_tail () in
  Wal.inject w Wal.Corrupt_tail;
  Alcotest.(check int) "corrupt record dropped" 1 (Wal.repair w);
  Alcotest.(check (list string)) "exactly the committed prefix" [ "a" ] (replayed_keys w)

let test_wal_torn_commit_record_means_uncommitted () =
  (* If the crash tears the (unforced) commit record itself, the transaction
     simply never committed: repair drops the frame and replay skips its
     operations. *)
  let w = log_with_unforced_tail () in
  Wal.append w (Wal.Commit 2);
  Wal.inject w Wal.Tear_tail;
  ignore (Wal.repair w);
  Alcotest.(check (list string)) "txn 2 not committed" [ "a" ] (replayed_keys w)

let test_wal_repair_drops_everything_after_first_bad_frame () =
  (* A sequential log is unreadable past a bad frame even if later bytes
     happen to checksum: repair keeps only the longest valid prefix. *)
  let w = log_with_unforced_tail () in
  Wal.inject w Wal.Corrupt_tail;
  Wal.append w (Wal.Insert (2, "d", 4, "vd"));
  Wal.append w (Wal.Commit 2);
  Alcotest.(check int) "corrupt frame and successors dropped" 3 (Wal.repair w);
  Alcotest.(check (list string)) "committed prefix only" [ "a" ] (replayed_keys w)

let test_wal_faults_clamp_to_unforced_suffix () =
  (* Forced frames are durable: a crash fault cannot reach below the sync
     watermark, so acknowledged commits survive any injection. *)
  let w = log_with_unforced_tail () in
  Wal.append w (Wal.Commit 2);
  Wal.sync w;
  Wal.inject w Wal.Tear_tail;
  Wal.inject w Wal.Corrupt_tail;
  Wal.inject w (Wal.Truncate_tail 100);
  Alcotest.(check bool) "nothing to repair" true (Wal.tail_valid w);
  Alcotest.(check int) "no records lost" 0 (Wal.repair w);
  Alcotest.(check (list string)) "both txns survive" [ "a"; "b"; "c" ] (replayed_keys w)

let test_wal_truncate_tail_drops_only_unforced () =
  let w = log_with_unforced_tail () in
  Wal.inject w (Wal.Truncate_tail 100);
  Alcotest.(check int) "unforced suffix gone" 2 (Wal.length w);
  Alcotest.(check (list string)) "committed prefix intact" [ "a" ] (replayed_keys w)

let test_rep_recovers_from_torn_tail () =
  (* End to end at the representative: commit one transaction, crash with a
     torn tail mid-way through the next, and recovery must land on exactly
     the committed state (and count the scrubbed record). *)
  let r = Rep.create ~name:"r" () in
  Rep.insert r ~txn:1 "a" 1 "va";
  Rep.commit r ~txn:1;
  Rep.insert r ~txn:2 "b" 2 "vb";
  Rep.inject_storage_fault r Wal.Tear_tail;
  Rep.crash r;
  Rep.recover r;
  Alcotest.(check int) "one record scrubbed" 1 (Rep.wal_records_repaired r);
  Alcotest.(check (list string)) "committed state only" [ "a" ]
    (List.map (fun (k, _, _) -> k) (Rep.entries r))

(* Property: interleave random committed/aborted transactions; replay equals
   the live map with aborted transactions rolled back. *)
let wal_replay_matches_live =
  QCheck.Test.make ~name:"wal replay equals committed live state" ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Repdir_util.Rng.create (Int64.of_int seed) in
      let live = G.create () in
      let undo = Undo.create () in
      let w = Wal.create () in
      let next_version = ref 1 in
      let keys = Array.init 12 (fun i -> Key.of_int i) in
      for txn = 1 to 20 do
        Wal.append w (Wal.Begin txn);
        let n_ops = 1 + Repdir_util.Rng.int rng 3 in
        for _ = 1 to n_ops do
          let v = !next_version in
          incr next_version;
          if Repdir_util.Rng.int rng 3 < 2 then begin
            let k = Repdir_util.Rng.pick rng keys in
            (match G.lookup live (Bound.Key k) with
            | Present { version; value } ->
                Undo.record undo ~txn (Undo.Restore_entry (k, version, value))
            | Absent _ -> Undo.record undo ~txn (Undo.Remove_entry k));
            Wal.append w (Wal.Insert (txn, k, v, "x"));
            G.insert live k v "x"
          end
          else begin
            (* coalesce between two random existing bounds *)
            let bounds =
              Bound.Low :: Bound.High
              :: List.map (fun (k, _, _) -> Bound.Key k) (G.entries live)
            in
            let arr = Array.of_list bounds in
            let a = Repdir_util.Rng.pick rng arr and b = Repdir_util.Rng.pick rng arr in
            let lo, hi = if Bound.compare a b <= 0 then (a, b) else (b, a) in
            if Bound.compare lo hi < 0 then begin
              let doomed = G.entries_between live ~lo ~hi in
              let gap_lo = (G.successor live lo).gap_version in
              Undo.record undo ~txn (Undo.Restore_gap (lo, gap_lo));
              List.iter
                (fun (k, _, _, gap) ->
                  Undo.record undo ~txn (Undo.Restore_gap (Bound.Key k, gap)))
                doomed;
              List.iter
                (fun (k, ver, value, _) ->
                  Undo.record undo ~txn (Undo.Restore_entry (k, ver, value)))
                doomed;
              Wal.append w (Wal.Coalesce (txn, lo, hi, v));
              ignore (G.coalesce live ~lo ~hi v)
            end
          end
        done;
        if Repdir_util.Rng.bool rng then begin
          Wal.append w (Wal.Commit txn);
          Undo.forget undo ~txn
        end
        else begin
          Wal.append w (Wal.Abort txn);
          Apply.rollback undo ~txn live
        end
      done;
      let replayed = Replay.replay w in
      G.entries replayed = G.entries live && G.gaps replayed = G.gaps live)

let () =
  Alcotest.run "txn"
    [
      ( "manager",
        [
          Alcotest.test_case "ids increase" `Quick test_manager_ids_increase;
          Alcotest.test_case "lifecycle" `Quick test_manager_lifecycle;
          Alcotest.test_case "double commit rejected" `Quick test_manager_double_commit_rejected;
          Alcotest.test_case "unknown txn" `Quick test_manager_unknown_txn;
          Alcotest.test_case "active list" `Quick test_manager_active_list;
        ] );
      ( "undo",
        [
          Alcotest.test_case "rollback insert" `Quick test_undo_rollback_insert;
          Alcotest.test_case "rollback update" `Quick test_undo_rollback_update;
          Alcotest.test_case "rollback coalesce" `Quick test_undo_rollback_coalesce;
          Alcotest.test_case "reverse order" `Quick test_undo_reverse_order;
          Alcotest.test_case "txn isolation" `Quick test_undo_txn_isolation;
        ] );
      ( "wal",
        [
          Alcotest.test_case "replay commits only" `Quick test_wal_replay_commits_only;
          Alcotest.test_case "replay coalesce" `Quick test_wal_replay_coalesce;
          Alcotest.test_case "committed flag" `Quick test_wal_committed_flag;
          Alcotest.test_case "checkpoint roundtrip" `Quick test_wal_checkpoint_roundtrip;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
          Alcotest.test_case "truncate without checkpoint" `Quick
            test_wal_truncate_without_checkpoint;
          Alcotest.test_case "checkpoint then more commits" `Quick
            test_wal_checkpoint_then_more_commits;
          QCheck_alcotest.to_alcotest wal_replay_matches_live;
        ] );
      ( "storage faults",
        [
          Alcotest.test_case "torn tail -> committed prefix" `Quick
            test_wal_torn_tail_recovers_committed_prefix;
          Alcotest.test_case "corrupt tail -> committed prefix" `Quick
            test_wal_corrupt_tail_recovers_committed_prefix;
          Alcotest.test_case "torn commit record means uncommitted" `Quick
            test_wal_torn_commit_record_means_uncommitted;
          Alcotest.test_case "repair stops at first bad frame" `Quick
            test_wal_repair_drops_everything_after_first_bad_frame;
          Alcotest.test_case "faults clamp to unforced suffix" `Quick
            test_wal_faults_clamp_to_unforced_suffix;
          Alcotest.test_case "truncation drops only unforced" `Quick
            test_wal_truncate_tail_drops_only_unforced;
          Alcotest.test_case "rep recovers from torn tail" `Quick
            test_rep_recovers_from_torn_tail;
        ] );
    ]
