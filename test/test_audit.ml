(* The consistency auditor: strict-serializability checker semantics
   (including a deliberately-injected lost delete it must catch), replica
   scrubbing, the disk-full fault family's graceful degradation, audited
   nemesis campaigns, and the §3.1 claim that transactions on disjoint key
   ranges never interfere. *)

open Repdir_key
open Repdir_txn
open Repdir_rep
open Repdir_harness
open Repdir_audit
open Repdir_gapmap.Gapmap_intf
module Config = Repdir_quorum.Config
module Suite = Repdir_core.Suite

let cfg_322 = Config.simple ~n:3 ~r:2 ~w:2

(* --- checker semantics ------------------------------------------------------------- *)

(* Hand-built history events: one client per stream, prims all stamped at
   the event's start. *)
let ev ?(client = 0) ~txn ~start_ ~finish status prims =
  {
    History.client;
    txn;
    start_;
    finish;
    status;
    prims = List.map (fun p -> (start_, p)) prims;
  }

let check_history ?(clients = 1) events =
  let ch = Checker.create ~clients () in
  List.iter (Checker.feed ch) events;
  Checker.finalize ch;
  Checker.violations ch

let test_checker_accepts_sequential () =
  let violations =
    check_history
      [
        ev ~txn:1 ~start_:0.0 ~finish:1.0 `Ok [ History.Insert ("k", "a", true) ];
        ev ~txn:2 ~start_:2.0 ~finish:3.0 `Ok [ History.Lookup ("k", Some "a") ];
        ev ~txn:3 ~start_:4.0 ~finish:5.0 `Ok [ History.Update ("k", "b", true) ];
        ev ~txn:4 ~start_:6.0 ~finish:7.0 `Ok [ History.Delete ("k", true) ];
        ev ~txn:5 ~start_:8.0 ~finish:9.0 `Ok [ History.Lookup ("k", None) ];
      ]
  in
  Alcotest.(check int) "clean sequential history" 0 (List.length violations)

let test_checker_catches_lost_delete () =
  (* The acceptance gate: a committed delete whose effect vanished — a later
     read still sees the value — must be flagged. *)
  let violations =
    check_history
      [
        ev ~txn:1 ~start_:0.0 ~finish:1.0 `Ok [ History.Insert ("k", "a", true) ];
        ev ~txn:2 ~start_:2.0 ~finish:3.0 `Ok [ History.Delete ("k", true) ];
        ev ~txn:3 ~start_:4.0 ~finish:5.0 `Ok [ History.Lookup ("k", Some "a") ];
      ]
  in
  Alcotest.(check bool) "lost delete caught" true (List.length violations > 0);
  List.iter
    (fun v -> Alcotest.(check string) "on the right key" "k" v.Checker.v_key)
    violations

let test_checker_failed_ops_have_no_effect () =
  (* A cleanly-aborted write must not be readable... *)
  let bad =
    check_history
      [
        ev ~txn:1 ~start_:0.0 ~finish:1.0 `Ok [ History.Insert ("k", "a", true) ];
        ev ~txn:2 ~start_:2.0 ~finish:3.0 `Failed [ History.Update ("k", "b", true) ];
        ev ~txn:3 ~start_:4.0 ~finish:5.0 `Ok [ History.Lookup ("k", Some "b") ];
      ]
  in
  Alcotest.(check bool) "aborted write observed" true (List.length bad > 0);
  (* ... and its absence is the legal outcome. *)
  let good =
    check_history
      [
        ev ~txn:1 ~start_:0.0 ~finish:1.0 `Ok [ History.Insert ("k", "a", true) ];
        ev ~txn:2 ~start_:2.0 ~finish:3.0 `Failed [ History.Update ("k", "b", true) ];
        ev ~txn:3 ~start_:4.0 ~finish:5.0 `Ok [ History.Lookup ("k", Some "a") ];
      ]
  in
  Alcotest.(check int) "aborted write invisible" 0 (List.length good)

let test_checker_ambiguous_may_or_may_not_apply () =
  let base observed =
    [
      ev ~txn:1 ~start_:0.0 ~finish:1.0 `Ok [ History.Insert ("k", "a", true) ];
      ev ~txn:2 ~start_:2.0 ~finish:3.0 `Ambiguous [ History.Update ("k", "b", true) ];
      ev ~txn:3 ~start_:4.0 ~finish:5.0 `Ok [ History.Lookup ("k", observed) ];
    ]
  in
  Alcotest.(check int) "ambiguous write landed" 0 (List.length (check_history (base (Some "b"))));
  Alcotest.(check int) "ambiguous write lost" 0 (List.length (check_history (base (Some "a"))));
  Alcotest.(check bool) "but not a third value" true
    (List.length (check_history (base (Some "c"))) > 0)

let test_checker_real_time_order () =
  (* Two clients; c1's operation finished before c0's even started, so its
     observation cannot be explained by c0's later insert. *)
  let bad =
    check_history ~clients:2
      [
        ev ~client:1 ~txn:2 ~start_:5.0 ~finish:8.0 `Ok
          [ History.Insert ("k", "b", false) ];
        ev ~client:0 ~txn:1 ~start_:9.0 ~finish:10.0 `Ok
          [ History.Insert ("k", "a", true) ];
      ]
  in
  Alcotest.(check bool) "real-time precedence enforced" true (List.length bad > 0);
  (* Overlapping intervals leave the order open: c0's insert may linearize
     first, explaining why c1 found the key taken. *)
  let good =
    check_history ~clients:2
      [
        ev ~client:1 ~txn:2 ~start_:5.0 ~finish:8.0 `Ok
          [ History.Insert ("k", "b", false) ];
        ev ~client:0 ~txn:1 ~start_:0.0 ~finish:10.0 `Ok
          [ History.Insert ("k", "a", true) ];
      ]
  in
  Alcotest.(check int) "concurrent order left open" 0 (List.length good)

(* --- replica scrubber ------------------------------------------------------------- *)

let settled_world () =
  let open Repdir_sim in
  let world = Sim_world.create ~config:cfg_322 ~two_phase:true () in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client world 0 in
  Sim.spawn sim (fun () ->
      List.iter
        (fun k -> ignore (Suite.insert suite k ("v" ^ k) : (unit, _) result))
        [ "b"; "d"; "f"; "h" ];
      ignore (Suite.delete suite "d" : Suite.delete_report);
      match Suite.update suite "f" "f2" with
      | Ok () -> ()
      | Error `Not_present -> Alcotest.fail "update lost");
  Sim.run sim;
  world

let test_scrubber_clean_world () =
  let world = settled_world () in
  let problems = Scrub.run ~config:cfg_322 (Sim_world.reps world) in
  Alcotest.(check (list string)) "no findings on a clean suite" [] problems

let test_scrubber_catches_diverged_replica () =
  let world = settled_world () in
  let reps = Sim_world.reps world in
  (* A rogue locally-committed write no quorum ever saw: rep0 now answers a
     version for "zz" that no read quorum excluding it can reproduce. *)
  Rep.insert reps.(0) ~txn:9999 "zz" 5 "rogue";
  Rep.commit reps.(0) ~txn:9999;
  let problems = Scrub.run ~config:cfg_322 reps in
  Alcotest.(check bool) "divergence caught" true (List.length problems > 0)

let test_scrubber_catches_orphan_lock () =
  let world = settled_world () in
  let reps = Sim_world.reps world in
  (* A transaction that will never terminate: its locks are orphans. *)
  Rep.insert reps.(1) ~txn:9999 "zz" 5 "stuck";
  let problems = Scrub.run ~config:cfg_322 reps in
  Alcotest.(check bool) "orphan residue caught" true (List.length problems > 0)

(* --- disk-full fault family -------------------------------------------------------- *)

let test_disk_full_rep_aborts_cleanly () =
  let r = Rep.create ~name:"r" () in
  Rep.insert r ~txn:1 "b" 1 "vb";
  Rep.commit r ~txn:1;
  Rep.set_io_fault r (Some Wal.Disk_full);
  (* A mutating operation aborts its transaction with a typed failure —
     no exception through the effect handler, no dead representative. *)
  (try
     Rep.insert r ~txn:2 "c" 1 "vc";
     Alcotest.fail "insert under disk-full must abort"
   with Txn.Abort (Txn.Unavailable _) -> ());
  Rep.abort r ~txn:2;
  Alcotest.(check bool) "rep stays up" false (Rep.is_crashed r);
  (* Reads still serve from the live map. *)
  (match Rep.lookup r ~txn:3 (Bound.Key "b") with
  | Present { value = "vb"; _ } -> ()
  | _ -> Alcotest.fail "read under disk-full lost the entry");
  Rep.abort r ~txn:3;
  Rep.set_io_fault r None;
  Rep.insert r ~txn:4 "c" 1 "vc";
  Rep.commit r ~txn:4;
  Alcotest.(check int) "no orphan locks" 0 (Rep.locks_held r);
  Alcotest.(check (list string)) "healed write landed" [ "b"; "c" ]
    (List.map (fun (k, _, _) -> k) (Rep.entries r));
  Alcotest.(check (list string)) "rep scrub clean" [] (Rep.scrub r)

(* --- audited campaigns -------------------------------------------------------------- *)

let check_audited ~seed outcomes =
  Alcotest.(check int)
    (Printf.sprintf "seed %Ld: nine plans" seed)
    9 (List.length outcomes);
  List.iter
    (fun o ->
      let label what = Printf.sprintf "seed %Ld, %s: %s" seed o.Nemesis.plan what in
      Alcotest.(check int) (label "zero violations (model + audit)") 0
        (Nemesis.total_violations o);
      Alcotest.(check int) (label "no orphaned locks") 0 o.Nemesis.orphan_locks;
      Alcotest.(check int) (label "no open in-doubt txns") 0 o.Nemesis.indoubt_open;
      match o.Nemesis.audit with
      | None -> Alcotest.fail (label "audit report missing")
      | Some a ->
          Alcotest.(check bool) (label "checker proved ops") true (a.Nemesis.checked_ops > 0);
          Alcotest.(check int) (label "no keys given up") 0 a.Nemesis.keys_given_up)
    outcomes

let test_audited_plans_clean () =
  check_audited ~seed:42L (Nemesis.run_all ~seed:42L ~all:true ~audit:true ())

let test_audited_multi_client () =
  (* Three concurrent clients under a rolling partition: the inline
     sequential model is off, the history checker is the oracle. *)
  let plan = Nemesis.rolling_partition ~n:3 ~duration:400.0 ~seed:5L in
  let o = Nemesis.run_plan ~seed:7L ~audit:true ~clients:3 plan in
  Alcotest.(check int) "zero violations" 0 (Nemesis.total_violations o);
  Alcotest.(check int) "no orphaned locks" 0 o.Nemesis.orphan_locks;
  match o.Nemesis.audit with
  | None -> Alcotest.fail "audit report missing"
  | Some a ->
      Alcotest.(check bool) "checker proved ops" true (a.Nemesis.checked_ops > 0)

let test_clock_skew_and_disk_full_plans () =
  (* The two new fault families on their own, audited, across extra seeds. *)
  List.iter
    (fun seed ->
      List.iter
        (fun plan ->
          let o = Nemesis.run_plan ~seed ~audit:true plan in
          Alcotest.(check int)
            (Printf.sprintf "seed %Ld, %s: zero violations" seed o.Nemesis.plan)
            0
            (Nemesis.total_violations o))
        [
          Nemesis.clock_skew ~n:3 ~duration:600.0 ~seed;
          Nemesis.disk_full ~n:3 ~duration:600.0 ~seed;
        ])
    [ 1L; 7L ]

(* --- §3.1: disjoint ranges never interfere ----------------------------------------- *)

(* Two concurrent transactions confined to disjoint, fenced key ranges must
   both commit: range locks (gap reads, insert splits, delete coalesces)
   stay inside each client's fence posts, so there is no conflict to
   deadlock or abort on. Full replication (3-3-3) keeps the ranges disjoint
   at every representative — under a partial write quorum a minority replica
   can miss the fence entries, and a range walk there legitimately crosses
   into the neighbour range (the ghost-repair machinery at work), which is
   outside the §3.1 claim. *)
let prop_disjoint_ranges_no_interference =
  let gen =
    QCheck.(
      triple (int_bound 1000)
        (list_of_size Gen.(1 -- 8) (pair (int_bound 3) (int_bound 4)))
        (list_of_size Gen.(1 -- 8) (pair (int_bound 3) (int_bound 4))))
  in
  QCheck.Test.make ~count:25 ~name:"disjoint-range transactions never interfere" gen
    (fun (seed, ops_a, ops_b) ->
      let open Repdir_sim in
      let world =
        Sim_world.create
          ~seed:(Int64.of_int (1 + seed))
          ~config:(Config.simple ~n:3 ~r:3 ~w:3)
          ~two_phase:true ~n_clients:2 ()
      in
      let sim = Sim_world.sim world in
      let suites = Array.init 2 (fun c -> Sim_world.suite_for_client world c) in
      let failures = ref [] in
      let finished = ref 0 in
      let run_client c prefix ops =
        Sim.spawn sim (fun () ->
            (try
               Suite.with_txn suites.(c) (fun txn ->
                   List.iter
                     (fun (kind, idx) ->
                       let key = Printf.sprintf "%s%d" prefix idx in
                       (match kind with
                       | 0 -> ignore (Suite.lookup ~txn suites.(c) key : (_ * string) option)
                       | 1 ->
                           ignore
                             (Suite.insert ~txn suites.(c) key ("v" ^ key)
                               : (unit, _) result)
                       | 2 ->
                           ignore
                             (Suite.update ~txn suites.(c) key ("w" ^ key)
                               : (unit, _) result)
                       | _ -> ignore (Suite.delete ~txn suites.(c) key : Suite.delete_report));
                       (* Let the other client's operations interleave. *)
                       Sim.sleep sim 0.5)
                     ops)
             with e -> failures := (c, Printexc.to_string e) :: !failures);
            incr finished)
      in
      Sim.spawn sim (fun () ->
          (* Fence posts enclosing each client's working range, so every
             range lock (gaps, coalesces) stays on its own side. ASCII:
             '!' < digits < '~'. *)
          List.iter
            (fun k -> ignore (Suite.insert suites.(0) k "fence" : (unit, _) result))
            [ "a!"; "a~"; "b!"; "b~" ];
          run_client 0 "a" ops_a;
          run_client 1 "b" ops_b);
      Sim.run sim;
      if !failures <> [] then
        QCheck.Test.fail_reportf "interference: %s"
          (String.concat "; "
             (List.map (fun (c, e) -> Printf.sprintf "client %d: %s" c e) !failures));
      !finished = 2)

let () =
  Alcotest.run "audit"
    [
      ( "checker",
        [
          Alcotest.test_case "accepts sequential history" `Quick
            test_checker_accepts_sequential;
          Alcotest.test_case "catches injected lost delete" `Quick
            test_checker_catches_lost_delete;
          Alcotest.test_case "failed ops have no effect" `Quick
            test_checker_failed_ops_have_no_effect;
          Alcotest.test_case "ambiguous ops optional" `Quick
            test_checker_ambiguous_may_or_may_not_apply;
          Alcotest.test_case "real-time order enforced" `Quick
            test_checker_real_time_order;
        ] );
      ( "scrubber",
        [
          Alcotest.test_case "clean world" `Quick test_scrubber_clean_world;
          Alcotest.test_case "catches diverged replica" `Quick
            test_scrubber_catches_diverged_replica;
          Alcotest.test_case "catches orphan lock" `Quick
            test_scrubber_catches_orphan_lock;
        ] );
      ( "disk-full",
        [
          Alcotest.test_case "mutations abort cleanly, rep stays up" `Quick
            test_disk_full_rep_aborts_cleanly;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "all plans audited, zero violations" `Quick
            test_audited_plans_clean;
          Alcotest.test_case "multi-client audited plan" `Quick
            test_audited_multi_client;
          Alcotest.test_case "clock-skew and disk-full plans, extra seeds" `Quick
            test_clock_skew_and_disk_full_plans;
        ] );
      ( "disjoint ranges",
        [ QCheck_alcotest.to_alcotest prop_disjoint_ranges_no_interference ] );
    ]
