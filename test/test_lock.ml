(* Tests for the range lock manager: the Figure 7 compatibility matrix,
   FIFO fairness, grant-on-release, and waits-for deadlock detection. *)

open Repdir_key
open Repdir_lock

let iv a b = Bound.Interval.make (Bound.Key a) (Bound.Key b)
let full = Bound.Interval.full

let outcome_testable =
  let pp ppf = function
    | Lock_manager.Granted -> Format.pp_print_string ppf "Granted"
    | Lock_manager.Waiting -> Format.pp_print_string ppf "Waiting"
    | Lock_manager.Deadlock cycle ->
        Format.fprintf ppf "Deadlock[%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
             Format.pp_print_int)
          cycle
  in
  Alcotest.testable pp (fun a b ->
      match (a, b) with
      | Lock_manager.Granted, Lock_manager.Granted | Waiting, Waiting -> true
      | Deadlock _, Deadlock _ -> true
      | _ -> false)

let nop () = ()

let acquire ?(on_grant = nop) mgr txn mode range =
  Lock_manager.acquire mgr ~txn mode range ~on_grant

(* --- Figure 7 compatibility matrix ----------------------------------------- *)

let test_mode_matrix () =
  Alcotest.(check bool) "lookup/lookup" true (Mode.compatible Rep_lookup Rep_lookup);
  Alcotest.(check bool) "lookup/modify" false (Mode.compatible Rep_lookup Rep_modify);
  Alcotest.(check bool) "modify/lookup" false (Mode.compatible Rep_modify Rep_lookup);
  Alcotest.(check bool) "modify/modify" false (Mode.compatible Rep_modify Rep_modify)

let test_intersecting_lookups_compatible () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1 lookup" Granted (acquire m 1 Rep_lookup (iv "a" "m"));
  Alcotest.check outcome_testable "t2 lookup intersecting" Granted
    (acquire m 2 Rep_lookup (iv "g" "z"))

let test_intersecting_modify_conflicts () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1 modify" Granted (acquire m 1 Rep_modify (iv "a" "m"));
  Alcotest.check outcome_testable "t2 modify intersecting waits" Waiting
    (acquire m 2 Rep_modify (iv "g" "z"));
  Alcotest.check outcome_testable "t3 lookup intersecting waits" Waiting
    (acquire m 3 Rep_lookup (iv "a" "b"))

let test_disjoint_modify_compatible () =
  (* The heart of the paper's concurrency claim: modifications of disjoint
     ranges proceed in parallel. *)
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1" Granted (acquire m 1 Rep_modify (iv "a" "c"));
  Alcotest.check outcome_testable "t2 disjoint" Granted (acquire m 2 Rep_modify (iv "x" "z"));
  Alcotest.(check int) "both granted" 2 (Lock_manager.granted_count m)

let test_lookup_blocks_modify () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1 lookup" Granted (acquire m 1 Rep_lookup (iv "a" "m"));
  Alcotest.check outcome_testable "t2 modify waits" Waiting (acquire m 2 Rep_modify (iv "b" "c"))

let test_same_txn_reentrant () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "modify" Granted (acquire m 1 Rep_modify (iv "a" "m"));
  Alcotest.check outcome_testable "own lookup over same range" Granted
    (acquire m 1 Rep_lookup (iv "a" "m"));
  Alcotest.check outcome_testable "own second modify" Granted
    (acquire m 1 Rep_modify (iv "b" "c"))

let test_point_ranges () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1 point" Granted
    (acquire m 1 Rep_modify (Bound.Interval.point (Bound.Key "k")));
  Alcotest.check outcome_testable "t2 same point waits" Waiting
    (acquire m 2 Rep_modify (Bound.Interval.point (Bound.Key "k")));
  Alcotest.check outcome_testable "t3 adjacent point ok" Granted
    (acquire m 3 Rep_modify (Bound.Interval.point (Bound.Key "l")))

(* --- release and FIFO ------------------------------------------------------- *)

let test_release_grants_waiter () =
  let m = Lock_manager.create () in
  let granted2 = ref false in
  ignore (acquire m 1 Rep_modify (iv "a" "m"));
  let o = Lock_manager.acquire m ~txn:2 Rep_modify (iv "b" "c") ~on_grant:(fun () -> granted2 := true) in
  Alcotest.check outcome_testable "waits" Waiting o;
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check bool) "granted after release" true !granted2;
  Alcotest.(check int) "queue drained" 0 (Lock_manager.waiting_count m);
  Alcotest.(check (list (pair int int)))
    "t2 now holds one lock" [ (2, 1) ]
    (List.map (fun (_, _) -> (2, 1)) (Lock_manager.holds m ~txn:2))

let test_fifo_no_starvation () =
  (* A modify waiter must not be starved by later compatible lookups. *)
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_lookup (iv "a" "m"));
  let o2 = acquire m 2 Rep_modify (iv "a" "m") in
  Alcotest.check outcome_testable "modify waits" Waiting o2;
  let o3 = acquire m 3 Rep_lookup (iv "a" "m") in
  Alcotest.check outcome_testable "later lookup queues behind waiting modify" Waiting o3

let test_fifo_grant_order () =
  let m = Lock_manager.create () in
  let order = ref [] in
  ignore (acquire m 1 Rep_modify full);
  ignore (Lock_manager.acquire m ~txn:2 Rep_modify full ~on_grant:(fun () -> order := 2 :: !order));
  ignore (Lock_manager.acquire m ~txn:3 Rep_modify full ~on_grant:(fun () -> order := 3 :: !order));
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check (list int)) "only first waiter granted" [ 2 ] !order;
  Lock_manager.release_all m ~txn:2;
  Alcotest.(check (list int)) "then second" [ 3; 2 ] !order

let test_release_drops_own_waiters () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify full);
  ignore (acquire m 2 Rep_modify full);
  Alcotest.(check int) "one waiter" 1 (Lock_manager.waiting_count m);
  (* t2 aborts while waiting. *)
  Lock_manager.release_all m ~txn:2;
  Alcotest.(check int) "queue empty" 0 (Lock_manager.waiting_count m);
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check int) "nothing granted" 0 (Lock_manager.granted_count m)

let test_disjoint_waiters_both_granted_on_release () =
  let m = Lock_manager.create () in
  let got = ref [] in
  ignore (acquire m 1 Rep_modify full);
  ignore (Lock_manager.acquire m ~txn:2 Rep_modify (iv "a" "c") ~on_grant:(fun () -> got := 2 :: !got));
  ignore (Lock_manager.acquire m ~txn:3 Rep_modify (iv "x" "z") ~on_grant:(fun () -> got := 3 :: !got));
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check (list int)) "both disjoint waiters granted" [ 3; 2 ] !got

let test_would_block () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify (iv "a" "m"));
  Alcotest.(check bool) "conflicting would block" true
    (Lock_manager.would_block m ~txn:2 Rep_lookup (iv "b" "c"));
  Alcotest.(check bool) "disjoint would not" false
    (Lock_manager.would_block m ~txn:2 Rep_modify (iv "x" "z"));
  Alcotest.(check bool) "own would not" false
    (Lock_manager.would_block m ~txn:1 Rep_modify (iv "b" "c"));
  Alcotest.(check int) "would_block does not enqueue" 0 (Lock_manager.waiting_count m)

(* --- deadlock detection ------------------------------------------------------ *)

let test_two_txn_deadlock () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify (iv "a" "c"));
  ignore (acquire m 2 Rep_modify (iv "x" "z"));
  (* 1 waits for 2 ... *)
  Alcotest.check outcome_testable "t1 waits" Waiting (acquire m 1 Rep_modify (iv "x" "y"));
  (* ... and 2 -> 1 closes the cycle. *)
  (match acquire m 2 Rep_modify (iv "b" "c") with
  | Deadlock cycle ->
      Alcotest.(check bool) "cycle mentions both" true
        (List.mem 1 cycle && List.mem 2 cycle)
  | Granted | Waiting -> Alcotest.fail "expected deadlock");
  (* The request was not queued; aborting t2 unblocks t1. *)
  Lock_manager.release_all m ~txn:2;
  Alcotest.(check int) "t1 unblocked" 0 (Lock_manager.waiting_count m)

let test_three_txn_deadlock () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify (iv "a" "b"));
  ignore (acquire m 2 Rep_modify (iv "m" "n"));
  ignore (acquire m 3 Rep_modify (iv "x" "y"));
  Alcotest.check outcome_testable "1 waits for 2" Waiting (acquire m 1 Rep_modify (iv "m" "n"));
  Alcotest.check outcome_testable "2 waits for 3" Waiting (acquire m 2 Rep_modify (iv "x" "y"));
  match acquire m 3 Rep_modify (iv "a" "b") with
  | Deadlock cycle -> Alcotest.(check int) "cycle length 4 (back to requester)" 4 (List.length cycle)
  | Granted | Waiting -> Alcotest.fail "expected deadlock"

let test_upgrade_deadlock () =
  (* Two transactions both hold RepLookup on a range and both try to upgrade
     to RepModify: the classic conversion deadlock. *)
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_lookup (iv "a" "m"));
  ignore (acquire m 2 Rep_lookup (iv "a" "m"));
  Alcotest.check outcome_testable "t1 upgrade waits" Waiting (acquire m 1 Rep_modify (iv "a" "m"));
  match acquire m 2 Rep_modify (iv "a" "m") with
  | Deadlock _ -> ()
  | Granted | Waiting -> Alcotest.fail "expected upgrade deadlock"

let test_no_false_deadlock () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify (iv "a" "c"));
  ignore (acquire m 2 Rep_modify (iv "x" "z"));
  Alcotest.check outcome_testable "waiting, not deadlock" Waiting
    (acquire m 3 Rep_modify (iv "b" "y"))

(* --- termination: on_drop, reacquire, orphan cleanup -------------------------- *)

let test_on_drop_fires_for_terminated_waiter () =
  (* A waiting transaction is terminated (lease expiry, unilateral abort):
     releasing its locks must fire on_drop — not on_grant — exactly once,
     so the suspended op process can unwind with an abort. *)
  let m = Lock_manager.create () in
  let granted = ref 0 and dropped = ref 0 in
  ignore (acquire m 1 Rep_modify full);
  Alcotest.check outcome_testable "t2 waits" Waiting
    (Lock_manager.acquire m ~txn:2
       ~on_drop:(fun () -> incr dropped)
       Rep_modify full
       ~on_grant:(fun () -> incr granted));
  Lock_manager.release_all m ~txn:2;
  Alcotest.(check int) "on_drop fired" 1 !dropped;
  Alcotest.(check int) "on_grant never fired" 0 !granted;
  Alcotest.(check int) "queue empty" 0 (Lock_manager.waiting_count m);
  (* The holder's later release finds nothing to wake. *)
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check int) "no grants" 1 !dropped;
  Alcotest.(check int) "no late on_grant" 0 !granted

let test_orphan_release_wakes_fifo_in_order () =
  (* The orphaned holder's release must grant the surviving waiters in FIFO
     order, skipping the waiter that was itself terminated. *)
  let m = Lock_manager.create () in
  let order = ref [] in
  let wait txn = ignore
    (Lock_manager.acquire m ~txn Rep_modify full
       ~on_drop:(fun () -> order := -txn :: !order)
       ~on_grant:(fun () -> order := txn :: !order))
  in
  ignore (acquire m 1 Rep_modify full);
  wait 2;
  wait 3;
  wait 4;
  (* t3 is terminated while waiting; then the orphaned holder t1 goes. *)
  Lock_manager.release_all m ~txn:3;
  Alcotest.(check (list int)) "t3 dropped, nobody granted yet" [ -3 ] !order;
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check (list int)) "head of the queue granted" [ 2; -3 ] !order;
  Lock_manager.release_all m ~txn:2;
  Alcotest.(check (list int)) "then the next, in FIFO order" [ 4; 2; -3 ] !order;
  Lock_manager.release_all m ~txn:4;
  Alcotest.(check int) "all drained" 0 (Lock_manager.granted_count m)

let test_reacquire_restores_in_doubt_lock () =
  (* Crash recovery re-holds an in-doubt transaction's write ranges on a
     fresh manager: the restored lock must block conflicting requests until
     the termination protocol releases it. *)
  let m = Lock_manager.create () in
  Lock_manager.reacquire m ~txn:9 Rep_modify (iv "a" "m");
  Alcotest.(check int) "restored lock granted" 1 (Lock_manager.granted_count m);
  Alcotest.check outcome_testable "conflicting request blocks" Waiting
    (acquire m 2 Rep_modify (iv "b" "c"));
  Alcotest.check outcome_testable "disjoint request proceeds" Granted
    (acquire m 3 Rep_modify (iv "x" "z"));
  (* Resolution releases the in-doubt transaction; the waiter wakes. *)
  Lock_manager.release_all m ~txn:9;
  Alcotest.(check int) "waiter granted after resolution" 2 (Lock_manager.granted_count m);
  Alcotest.(check int) "queue empty" 0 (Lock_manager.waiting_count m)

let test_orphan_release_prunes_group_edges () =
  (* Two managers in one deadlock-detection group. t1 holds in A and waits
     in B; releasing t1 everywhere (its lease expired) must prune its
     cross-manager waits-for edges: a request that would have closed a
     cycle through t1 afterwards just waits. *)
  let g = Lock_manager.new_group () in
  let a = Lock_manager.create ~group:g () in
  let b = Lock_manager.create ~group:g () in
  ignore (acquire a 1 Rep_modify full);
  ignore (acquire b 2 Rep_modify full);
  Alcotest.check outcome_testable "t1 waits in B" Waiting (acquire b 1 Rep_modify full);
  (* Sanity: t2 -> t1 would close the cycle right now. *)
  (match acquire a 2 Rep_modify full with
  | Deadlock _ -> ()
  | Granted | Waiting -> Alcotest.fail "expected cross-manager deadlock");
  (* t1 is terminated: its locks and queued waits go away in both managers. *)
  Lock_manager.release_all a ~txn:1;
  Lock_manager.release_all b ~txn:1;
  (* The same request no longer sees a cycle — the edge was pruned. *)
  Alcotest.check outcome_testable "no stale edge after termination" Granted
    (acquire a 2 Rep_modify full);
  Lock_manager.release_all a ~txn:2;
  Lock_manager.release_all b ~txn:2;
  Alcotest.(check int) "A drained" 0 (Lock_manager.granted_count a + Lock_manager.waiting_count a);
  Alcotest.(check int) "B drained" 0 (Lock_manager.granted_count b + Lock_manager.waiting_count b)

(* Property: under any interleaving of acquires and terminations, every
   waiter gets exactly one of on_grant/on_drop, and releasing every
   transaction leaves the manager empty — no orphaned grant, no stuck
   waiter, no callback fired twice. *)
let qcheck_callbacks_exactly_once =
  let gen =
    QCheck.(
      list_of_size Gen.(int_range 1 20)
        (triple (int_range 1 5) bool (pair (int_bound 25) (int_bound 25))))
  in
  QCheck.Test.make ~name:"every waiter gets exactly one callback" ~count:500 gen
    (fun script ->
      let m = Lock_manager.create () in
      let granted = Hashtbl.create 16 and dropped = Hashtbl.create 16 in
      let bump tbl i =
        Hashtbl.replace tbl i (1 + Option.value ~default:0 (Hashtbl.find_opt tbl i))
      in
      let waiters = ref [] in
      List.iteri
        (fun i (txn, modify, (x, y)) ->
          let lo = min x y and hi = max x y in
          let range =
            iv (Printf.sprintf "%02d" lo) (Printf.sprintf "%02d" hi)
          in
          let mode = if modify then Mode.Rep_modify else Mode.Rep_lookup in
          match
            Lock_manager.acquire m ~txn mode range
              ~on_drop:(fun () -> bump dropped i)
              ~on_grant:(fun () -> bump granted i)
          with
          | Lock_manager.Waiting -> waiters := i :: !waiters
          | Granted | Deadlock _ -> ())
        script;
      (* Terminate every transaction, lowest id first (any order works). *)
      List.iter
        (fun txn -> Lock_manager.release_all m ~txn)
        [ 1; 2; 3; 4; 5 ];
      let ok_callbacks =
        List.for_all
          (fun i ->
            let g = Option.value ~default:0 (Hashtbl.find_opt granted i) in
            let d = Option.value ~default:0 (Hashtbl.find_opt dropped i) in
            g + d = 1)
          !waiters
      in
      ok_callbacks
      && Lock_manager.granted_count m = 0
      && Lock_manager.waiting_count m = 0)

let () =
  Alcotest.run "lock"
    [
      ( "matrix",
        [
          Alcotest.test_case "mode matrix" `Quick test_mode_matrix;
          Alcotest.test_case "intersecting lookups" `Quick test_intersecting_lookups_compatible;
          Alcotest.test_case "intersecting modify" `Quick test_intersecting_modify_conflicts;
          Alcotest.test_case "disjoint modify" `Quick test_disjoint_modify_compatible;
          Alcotest.test_case "lookup blocks modify" `Quick test_lookup_blocks_modify;
          Alcotest.test_case "same txn reentrant" `Quick test_same_txn_reentrant;
          Alcotest.test_case "point ranges" `Quick test_point_ranges;
        ] );
      ( "queue",
        [
          Alcotest.test_case "release grants waiter" `Quick test_release_grants_waiter;
          Alcotest.test_case "no starvation" `Quick test_fifo_no_starvation;
          Alcotest.test_case "FIFO grant order" `Quick test_fifo_grant_order;
          Alcotest.test_case "abort drops waiters" `Quick test_release_drops_own_waiters;
          Alcotest.test_case "disjoint waiters granted together" `Quick
            test_disjoint_waiters_both_granted_on_release;
          Alcotest.test_case "would_block" `Quick test_would_block;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "two txn cycle" `Quick test_two_txn_deadlock;
          Alcotest.test_case "three txn cycle" `Quick test_three_txn_deadlock;
          Alcotest.test_case "upgrade deadlock" `Quick test_upgrade_deadlock;
          Alcotest.test_case "no false positive" `Quick test_no_false_deadlock;
        ] );
      ( "termination",
        [
          Alcotest.test_case "on_drop fires for terminated waiter" `Quick
            test_on_drop_fires_for_terminated_waiter;
          Alcotest.test_case "orphan release wakes FIFO in order" `Quick
            test_orphan_release_wakes_fifo_in_order;
          Alcotest.test_case "reacquire restores in-doubt lock" `Quick
            test_reacquire_restores_in_doubt_lock;
          Alcotest.test_case "orphan release prunes group edges" `Quick
            test_orphan_release_prunes_group_edges;
          QCheck_alcotest.to_alcotest qcheck_callbacks_exactly_once;
        ] );
    ]
