(* Tests for the directory suite: literal replays of the paper's worked
   examples (Figures 1-5 and 10-11), transaction atomicity, availability
   under representative crashes, and the central correctness property —
   a replicated suite with uniformly random quorums is indistinguishable
   from a sequential directory. *)

open Repdir_key
open Repdir_txn
open Repdir_rep
open Repdir_quorum
open Repdir_core
module Gi = Repdir_gapmap.Gapmap_intf

(* A world: shared representatives + transaction manager; suites with
   different pickers can be created over it to force specific quorums, the
   way the paper's figures walk through specific quorum choices. *)
type world = {
  reps : Rep.t array;
  transport : Transport.t;
  txns : Txn.Manager.t;
  config : Config.t;
}

let make_world ?(n = 3) ?(r = 2) ?(w = 2) () =
  let reps = Array.init n (fun i -> Rep.create ~name:(Printf.sprintf "rep%d" i) ()) in
  {
    reps;
    transport = Transport.local reps;
    txns = Txn.Manager.create ();
    config = Config.simple ~n ~r ~w;
  }

let suite_with ?seed picker world =
  Suite.create ?seed ~picker ~config:world.config ~transport:world.transport ~txns:world.txns ()

(* Write an entry directly to chosen representatives (scenario setup). *)
let rep_insert world ~reps:indices key version value =
  let txn = Txn.Manager.begin_txn world.txns in
  List.iter
    (fun i ->
      Rep.insert world.reps.(i) ~txn key version value;
      Rep.commit world.reps.(i) ~txn)
    indices;
  Txn.Manager.commit world.txns txn

let rep_keys world i = List.map (fun (k, _, _) -> k) (Rep.entries world.reps.(i))

let fixed order = Picker.Fixed (Array.of_list order)

(* --- Figures 1-5: the delete ambiguity and its resolution --------------------- *)

(* Representative indices: A = 0, B = 1, C = 2. *)

let setup_figure1 () =
  let world = make_world () in
  rep_insert world ~reps:[ 0; 1; 2 ] "a" 1 "va";
  rep_insert world ~reps:[ 0; 1; 2 ] "c" 1 "vc";
  world

let test_figure4_insert_b () =
  let world = setup_figure1 () in
  let s_ab = suite_with (fixed [ 0; 1; 2 ]) world in
  (match Suite.insert s_ab "b" "vb" with
  | Ok () -> ()
  | Error `Already_present -> Alcotest.fail "b should be insertable");
  (* b landed on A and B with version 1 (one more than the gap's 0). *)
  Alcotest.(check (list string)) "A has b" [ "a"; "b"; "c" ] (rep_keys world 0);
  Alcotest.(check (list string)) "B has b" [ "a"; "b"; "c" ] (rep_keys world 1);
  Alcotest.(check (list string)) "C lacks b" [ "a"; "c" ] (rep_keys world 2);
  (match Rep.entries world.reps.(0) with
  | [ _; ("b", v, _); _ ] -> Alcotest.(check int) "b version 1" 1 v
  | _ -> Alcotest.fail "unexpected A contents");
  (* The mixed read quorum {A, C} resolves to present: version 1 beats gap 0. *)
  let s_ac = suite_with (fixed [ 0; 2; 1 ]) world in
  match Suite.lookup s_ac "b" with
  | Some (v, value) ->
      Alcotest.(check int) "version" 1 v;
      Alcotest.(check string) "value" "vb" value
  | None -> Alcotest.fail "quorum {A,C} must see b"

let test_figure5_delete_b_and_resolution () =
  let world = setup_figure1 () in
  let s_ab = suite_with (fixed [ 0; 1; 2 ]) world in
  (match Suite.insert s_ab "b" "vb" with Ok () -> () | Error _ -> Alcotest.fail "insert");
  (* Delete b using quorum {B, C}; A keeps its (now ghost) entry. *)
  let s_bc = suite_with (fixed [ 1; 2; 0 ]) world in
  let report = Suite.delete s_bc "b" in
  Alcotest.(check bool) "was present" true report.was_present;
  Alcotest.(check (list string)) "A still has ghost b" [ "a"; "b"; "c" ] (rep_keys world 0);
  Alcotest.(check (list string)) "B coalesced" [ "a"; "c" ] (rep_keys world 1);
  Alcotest.(check (list string)) "C coalesced" [ "a"; "c" ] (rep_keys world 2);
  (* Figure 5: the (a, c) gap on B and C now carries version 2. *)
  let gap_between_a_c rep =
    List.find_map
      (fun (l, r, v) ->
        if Bound.equal l (Bound.Key "a") && Bound.equal r (Bound.Key "c") then Some v else None)
      (Rep.gaps rep)
  in
  Alcotest.(check (option int)) "B gap version 2" (Some 2) (gap_between_a_c world.reps.(1));
  Alcotest.(check (option int)) "C gap version 2" (Some 2) (gap_between_a_c world.reps.(2));
  (* The decisive check: read quorum {A, C} — A answers "present, version 1",
     C answers "not present, version 2"; absence wins. Without gap versions
     this was the ambiguous case of Figure 3. *)
  let s_ac = suite_with (fixed [ 0; 2; 1 ]) world in
  Alcotest.(check bool) "b is gone for {A,C}" false (Suite.mem s_ac "b");
  let s_ab' = suite_with (fixed [ 0; 1; 2 ]) world in
  Alcotest.(check bool) "b is gone for {A,B}" false (Suite.mem s_ab' "b");
  (* a and c are untouched. *)
  Alcotest.(check bool) "a stays" true (Suite.mem s_ac "a");
  Alcotest.(check bool) "c stays" true (Suite.mem s_ac "c")

(* --- Figures 10-11: ghosts and real predecessor/successor --------------------- *)

let test_figure10_11_ghost_walk () =
  let world = make_world () in
  (* History producing Figure 10's structure:
     - "a" everywhere;
     - "b" inserted at {A, B};
     - "b" deleted with write quorum {B, C} (A keeps the ghost);
     - "bb" inserted at {A, B} (absent from C). *)
  rep_insert world ~reps:[ 0; 1; 2 ] "a" 1 "va";
  let s_ab = suite_with (fixed [ 0; 1; 2 ]) world in
  (match Suite.insert s_ab "b" "vb" with Ok () -> () | Error _ -> Alcotest.fail "insert b");
  let s_bc = suite_with (fixed [ 1; 2; 0 ]) world in
  ignore (Suite.delete s_bc "b");
  (match Suite.insert s_ab "bb" "vbb" with Ok () -> () | Error _ -> Alcotest.fail "insert bb");
  Alcotest.(check (list string)) "A: a, ghost b, bb" [ "a"; "b"; "bb" ] (rep_keys world 0);
  Alcotest.(check (list string)) "B: a, bb" [ "a"; "bb" ] (rep_keys world 1);
  Alcotest.(check (list string)) "C: a only" [ "a" ] (rep_keys world 2);
  (* Delete "a" from representatives A and C (Figure 11). The real successor
     is bb — the walk must skip A's ghost of b — and bb must first be copied
     to C. Coalescing LOW..bb eliminates the ghost from A. *)
  let s_ac = suite_with (fixed [ 0; 2; 1 ]) world in
  let report = Suite.delete s_ac "a" in
  Alcotest.(check bool) "succ is bb" true (Bound.equal report.succ (Bound.Key "bb"));
  Alcotest.(check bool) "pred is LOW" true (Bound.equal report.pred Bound.Low);
  Alcotest.(check int) "one repair insert (bb -> C)" 1 report.repair_inserts;
  Alcotest.(check int) "one ghost deleted (b on A)" 1 report.ghosts_deleted;
  Alcotest.(check (list string)) "A: only bb left" [ "bb" ] (rep_keys world 0);
  Alcotest.(check (list string)) "C: only bb left" [ "bb" ] (rep_keys world 2);
  (* Every read quorum agrees on the final directory contents {bb}. *)
  List.iter
    (fun order ->
      let s = suite_with (fixed order) world in
      Alcotest.(check bool) "a gone" false (Suite.mem s "a");
      Alcotest.(check bool) "b gone" false (Suite.mem s "b");
      Alcotest.(check bool) "bb present" true (Suite.mem s "bb"))
    [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 2; 0 ] ]

(* --- basic API behaviour -------------------------------------------------------- *)

let test_insert_duplicate_rejected () =
  let world = make_world () in
  let s = suite_with Picker.Random world in
  (match Suite.insert s "k" "v1" with Ok () -> () | Error _ -> Alcotest.fail "first insert");
  match Suite.insert s "k" "v2" with
  | Error `Already_present -> ()
  | Ok () -> Alcotest.fail "duplicate insert must be rejected"

let test_update_missing_rejected () =
  let world = make_world () in
  let s = suite_with Picker.Random world in
  match Suite.update s "missing" "v" with
  | Error `Not_present -> ()
  | Ok () -> Alcotest.fail "update of missing key must be rejected"

let test_update_bumps_version () =
  let world = make_world () in
  let s = suite_with Picker.Random world in
  ignore (Suite.insert s "k" "v1");
  (match Suite.update s "k" "v2" with Ok () -> () | Error _ -> Alcotest.fail "update");
  match Suite.lookup s "k" with
  | Some (v, value) ->
      Alcotest.(check string) "value" "v2" value;
      Alcotest.(check bool) "version grew" true (v >= 2)
  | None -> Alcotest.fail "k must be present"

let test_delete_absent_key () =
  let world = make_world () in
  let s = suite_with Picker.Random world in
  ignore (Suite.insert s "a" "va");
  ignore (Suite.insert s "c" "vc");
  let report = Suite.delete s "b" in
  Alcotest.(check bool) "not present" false report.was_present;
  Alcotest.(check bool) "a survives" true (Suite.mem s "a");
  Alcotest.(check bool) "c survives" true (Suite.mem s "c")

let test_reinsert_after_delete () =
  let world = make_world () in
  let s = suite_with Picker.Random world in
  ignore (Suite.insert s "k" "v1");
  ignore (Suite.delete s "k");
  (match Suite.insert s "k" "v2" with Ok () -> () | Error _ -> Alcotest.fail "reinsert");
  match Suite.lookup s "k" with
  | Some (_, value) -> Alcotest.(check string) "new value" "v2" value
  | None -> Alcotest.fail "k must be present after reinsert"

(* --- transactions ------------------------------------------------------------------ *)

let test_multi_op_transaction_commit () =
  let world = make_world () in
  let s = suite_with Picker.Random world in
  Suite.with_txn s (fun txn ->
      ignore (Suite.insert ~txn s "x" "1");
      ignore (Suite.insert ~txn s "y" "2"));
  Alcotest.(check bool) "x committed" true (Suite.mem s "x");
  Alcotest.(check bool) "y committed" true (Suite.mem s "y")

let test_multi_op_transaction_abort () =
  let world = make_world () in
  let s = suite_with Picker.Random world in
  ignore (Suite.insert s "keep" "v");
  (try
     Suite.with_txn s (fun txn ->
         ignore (Suite.insert ~txn s "x" "1");
         ignore (Suite.delete ~txn s "keep");
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "x rolled back" false (Suite.mem s "x");
  Alcotest.(check bool) "keep restored" true (Suite.mem s "keep");
  Array.iter
    (fun rep ->
      match Rep.check_invariants rep with Ok () -> () | Error e -> Alcotest.fail e)
    world.reps

(* --- availability under crashes ------------------------------------------------------ *)

let test_survives_one_crash () =
  let world = make_world () in
  let s = suite_with Picker.Random world in
  ignore (Suite.insert s "k" "v");
  Rep.crash world.reps.(0);
  (* 2 of 3 alive: both quorums of a 3-2-2 suite remain collectible. *)
  Alcotest.(check bool) "read works" true (Suite.mem s "k");
  (match Suite.update s "k" "v2" with Ok () -> () | Error _ -> Alcotest.fail "update");
  ignore (Suite.insert s "k2" "v");
  Rep.recover world.reps.(0);
  Alcotest.(check bool) "still consistent after recovery" true (Suite.mem s "k2");
  match Suite.lookup s "k" with
  | Some (_, value) -> Alcotest.(check string) "updated value survives" "v2" value
  | None -> Alcotest.fail "k lost"

let test_unavailable_when_quorum_impossible () =
  let world = make_world () in
  let s = suite_with Picker.Random world in
  ignore (Suite.insert s "k" "v");
  Rep.crash world.reps.(0);
  Rep.crash world.reps.(1);
  (match Suite.lookup s "k" with
  | exception Suite.Unavailable _ -> ()
  | _ -> Alcotest.fail "read quorum should be impossible");
  Rep.recover world.reps.(0);
  Alcotest.(check bool) "reads return with 2 alive" true (Suite.mem s "k")

let test_recovered_rep_serves_stale_data_safely () =
  (* A recovered representative may be arbitrarily stale; version dominance
     must still give current answers on every quorum that includes it. *)
  let world = make_world () in
  let s = suite_with Picker.Random world in
  ignore (Suite.insert s "k" "v1");
  Rep.crash world.reps.(2);
  (match Suite.update s "k" "v2" with Ok () -> () | Error _ -> Alcotest.fail "update");
  ignore (Suite.delete s "k");
  Rep.recover world.reps.(2);
  (* Force a quorum that contains the stale rep 2. *)
  let s_stale = suite_with (fixed [ 2; 0; 1 ]) world in
  Alcotest.(check bool) "deleted key stays deleted" false (Suite.mem s_stale "k")

(* --- the central property: suite == sequential directory -------------------------------- *)

let run_random_history ?(batch_depth = 1) ~n ~r ~w ~seed ~ops () =
  let world = make_world ~n ~r ~w () in
  let s =
    Suite.create ~batch_depth
      ~seed:(Int64.of_int ((seed * 7) + 1))
      ~picker:Picker.Random ~config:world.config ~transport:world.transport ~txns:world.txns
      ()
  in
  let rng = Repdir_util.Rng.create (Int64.of_int seed) in
  let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let universe = Array.init 25 (fun i -> Key.of_int i) in
  let model_keys () = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
  let fail step fmt =
    Printf.ksprintf (fun msg -> failwith (Printf.sprintf "step %d: %s" step msg)) fmt
  in
  for step = 1 to ops do
    (match Repdir_util.Rng.int rng 4 with
    | 0 ->
        let k = Repdir_util.Rng.pick rng universe in
        let v = Printf.sprintf "v%d" step in
        let expect_dup = Hashtbl.mem model k in
        (match Suite.insert s k v with
        | Ok () when expect_dup -> fail step "insert accepted duplicate %s" k
        | Error `Already_present when not expect_dup -> fail step "insert rejected fresh %s" k
        | Ok () -> Hashtbl.replace model k v
        | Error `Already_present -> ())
    | 1 ->
        let k = Repdir_util.Rng.pick rng universe in
        let v = Printf.sprintf "v%d" step in
        let expect_present = Hashtbl.mem model k in
        (match Suite.update s k v with
        | Ok () when not expect_present -> fail step "update accepted missing %s" k
        | Error `Not_present when expect_present -> fail step "update rejected present %s" k
        | Ok () -> Hashtbl.replace model k v
        | Error `Not_present -> ())
    | 2 -> (
        (* Prefer deleting an existing key; sometimes delete a random one. *)
        let candidates = model_keys () in
        let k =
          if candidates <> [] && Repdir_util.Rng.int rng 4 > 0 then
            List.nth candidates (Repdir_util.Rng.int rng (List.length candidates))
          else Repdir_util.Rng.pick rng universe
        in
        let report = Suite.delete s k in
        if report.was_present <> Hashtbl.mem model k then
          fail step "delete presence mismatch on %s" k;
        if report.ghosts_deleted < 0 then fail step "negative ghost count";
        Hashtbl.remove model k)
    | _ -> (
        let k = Repdir_util.Rng.pick rng universe in
        match (Suite.lookup s k, Hashtbl.find_opt model k) with
        | Some (_, v), Some v' when v = v' -> ()
        | None, None -> ()
        | Some (_, v), Some v' -> fail step "lookup %s: value %s vs model %s" k v v'
        | Some _, None -> fail step "lookup %s: present but deleted" k
        | None, Some _ -> fail step "lookup %s: absent but present in model" k));
    (* Probe three random keys with fresh random quorums. *)
    for _ = 1 to 3 do
      let k = Repdir_util.Rng.pick rng universe in
      match (Suite.lookup s k, Hashtbl.find_opt model k) with
      | Some (_, v), Some v' when v = v' -> ()
      | None, None -> ()
      | _ -> fail step "probe mismatch on %s" k
    done
  done;
  Array.iter
    (fun rep ->
      match Rep.check_invariants rep with
      | Ok () -> ()
      | Error e -> failwith ("rep invariant: " ^ e))
    world.reps

let suite_matches_model =
  QCheck.Test.make ~name:"suite equals sequential directory (3-2-2)" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      run_random_history ~n:3 ~r:2 ~w:2 ~seed ~ops:120 ();
      true)

let suite_matches_model_configs =
  QCheck.Test.make ~name:"suite equals sequential directory (varied configs)" ~count:25
    QCheck.(pair (int_bound 1_000_000) (int_bound 3))
    (fun (seed, which) ->
      let n, r, w =
        match which with
        | 0 -> (1, 1, 1)
        | 1 -> (4, 2, 3)
        | 2 -> (5, 3, 3)
        | _ -> (5, 2, 4)
      in
      run_random_history ~n ~r ~w ~seed ~ops:80 ();
      true)

let test_long_soak () = run_random_history ~n:3 ~r:2 ~w:2 ~seed:4242 ~ops:800 ()

let suite_matches_model_batched =
  QCheck.Test.make ~name:"suite equals sequential directory (batched walks, depth 3)"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      run_random_history ~batch_depth:3 ~n:3 ~r:2 ~w:2 ~seed ~ops:100 ();
      true)

(* --- differential: message batching is observationally equivalent ------------- *)

(* The same workload script drives two independent worlds — one suite with
   per-representative message batching, one without — and every observable
   result (insert/update acceptance, delete presence, lookup answers,
   multi-op transaction outcomes including forced aborts) must coincide, as
   must the final directory contents. Quorum choices are deliberately *not*
   synchronized: with no failures injected, observable behaviour must be
   quorum-independent, so any divergence is a batching bug, not noise. *)
let run_batching_differential ~two_phase ~seed ~ops () =
  let mk batching =
    let world = make_world () in
    let suite =
      Suite.create ~batching ~two_phase
        ~seed:(Int64.of_int ((seed * 7) + if batching then 1 else 2))
        ~picker:Picker.Random ~config:world.config ~transport:world.transport
        ~txns:world.txns ()
    in
    (world, suite)
  in
  let world_a, sa = mk false in
  let world_b, sb = mk true in
  let rng = Repdir_util.Rng.create (Int64.of_int seed) in
  let universe = Array.init 16 (fun i -> Key.of_int i) in
  let fail step fmt =
    Printf.ksprintf (fun msg -> failwith (Printf.sprintf "step %d: %s" step msg)) fmt
  in
  for step = 1 to ops do
    match Repdir_util.Rng.int rng 6 with
    | 0 ->
        let k = Repdir_util.Rng.pick rng universe in
        let v = Printf.sprintf "v%d" step in
        let r s = match Suite.insert s k v with Ok () -> true | Error `Already_present -> false in
        if r sa <> r sb then fail step "insert %s diverged" k
    | 1 ->
        let k = Repdir_util.Rng.pick rng universe in
        let v = Printf.sprintf "u%d" step in
        let r s = match Suite.update s k v with Ok () -> true | Error `Not_present -> false in
        if r sa <> r sb then fail step "update %s diverged" k
    | 2 ->
        let k = Repdir_util.Rng.pick rng universe in
        let r s = (Suite.delete s k).Suite.was_present in
        if r sa <> r sb then fail step "delete %s diverged" k
    | 3 ->
        let k = Repdir_util.Rng.pick rng universe in
        let r s = Option.map snd (Suite.lookup s k) in
        if r sa <> r sb then fail step "lookup %s diverged" k
    | 4 ->
        (* Explicit multi-op transaction: both worlds must commit the same
           per-op results atomically. *)
        let k1 = Repdir_util.Rng.pick rng universe in
        let k2 = Repdir_util.Rng.pick rng universe in
        let v = Printf.sprintf "t%d" step in
        let r s =
          Suite.with_txn s (fun txn ->
              let inserted =
                match Suite.insert ~txn s k1 v with Ok () -> true | Error _ -> false
              in
              let deleted = (Suite.delete ~txn s k2).Suite.was_present in
              (inserted, deleted))
        in
        if r sa <> r sb then fail step "transaction (%s, %s) diverged" k1 k2
    | _ ->
        (* Forced abort: both worlds must roll the transaction back. *)
        let k = Repdir_util.Rng.pick rng universe in
        let r s =
          try
            Suite.with_txn s (fun txn ->
                ignore (Suite.insert ~txn s k "doomed");
                raise Exit)
          with Exit -> ()
        in
        r sa;
        r sb
  done;
  (* Drain the batched suite's deferred commit notices, then compare the
     complete directories and audit for leaked locks or in-doubt residue. *)
  Suite.flush_notices sb;
  if Suite.pending_notice_count sb <> 0 then failwith "notices did not drain";
  if Suite.to_alist sa <> Suite.to_alist sb then failwith "final contents diverged";
  Array.iter
    (fun world ->
      Array.iter
        (fun rep ->
          (match Rep.check_invariants rep with Ok () -> () | Error e -> failwith e);
          if Rep.locks_held rep <> 0 then
            failwith (Printf.sprintf "%s leaked locks" (Rep.name rep));
          if Rep.in_doubt_count rep <> 0 then
            failwith (Printf.sprintf "%s left transactions in doubt" (Rep.name rep)))
        world.reps)
    [| world_a; world_b |];
  (* Batching must actually reduce wire traffic, not just preserve meaning.
     The precise >= 2x bound on the insert/delete mix is enforced by the
     bench smoke; here any regression to parity fails. *)
  if world_b.transport.Transport.msg_count >= world_a.transport.Transport.msg_count then
    failwith
      (Printf.sprintf "batching sent %d messages vs %d unbatched"
         world_b.transport.Transport.msg_count world_a.transport.Transport.msg_count)

let batching_differential_one_phase =
  QCheck.Test.make ~name:"batched suite == unbatched suite (single-phase)" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      run_batching_differential ~two_phase:false ~seed ~ops:60 ();
      true)

let batching_differential_two_phase =
  QCheck.Test.make ~name:"batched suite == unbatched suite (two-phase commit)" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      run_batching_differential ~two_phase:true ~seed ~ops:60 ();
      true)

let () =
  Alcotest.run "suite"
    [
      ( "paper-scenarios",
        [
          Alcotest.test_case "figure 4: insert b via {A,B}" `Quick test_figure4_insert_b;
          Alcotest.test_case "figure 5: delete b via {B,C}, {A,C} resolves" `Quick
            test_figure5_delete_b_and_resolution;
          Alcotest.test_case "figures 10-11: ghost walk" `Quick test_figure10_11_ghost_walk;
        ] );
      ( "api",
        [
          Alcotest.test_case "duplicate insert rejected" `Quick test_insert_duplicate_rejected;
          Alcotest.test_case "update of missing rejected" `Quick test_update_missing_rejected;
          Alcotest.test_case "update bumps version" `Quick test_update_bumps_version;
          Alcotest.test_case "delete of absent key" `Quick test_delete_absent_key;
          Alcotest.test_case "reinsert after delete" `Quick test_reinsert_after_delete;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "multi-op commit" `Quick test_multi_op_transaction_commit;
          Alcotest.test_case "multi-op abort rolls back" `Quick test_multi_op_transaction_abort;
        ] );
      ( "availability",
        [
          Alcotest.test_case "survives one crash (3-2-2)" `Quick test_survives_one_crash;
          Alcotest.test_case "unavailable below quorum" `Quick
            test_unavailable_when_quorum_impossible;
          Alcotest.test_case "stale recovered rep is safe" `Quick
            test_recovered_rep_serves_stale_data_safely;
        ] );
      ( "model",
        [
          QCheck_alcotest.to_alcotest suite_matches_model;
          QCheck_alcotest.to_alcotest suite_matches_model_configs;
          QCheck_alcotest.to_alcotest suite_matches_model_batched;
          Alcotest.test_case "soak 800 ops" `Slow test_long_soak;
        ] );
      ( "batching-differential",
        [
          QCheck_alcotest.to_alcotest batching_differential_one_phase;
          QCheck_alcotest.to_alcotest batching_differential_two_phase;
        ] );
    ]
