(* Tests for distributed transaction termination: the presumed-abort
   coordinator decision log, prepare records carrying the coordinator id,
   in-doubt crash recovery with locks re-held and effects withheld, lease
   expiry (unilateral abort / in-doubt), resolution by coordinator and by
   peer, and end-to-end two-phase commit through the suite with crash
   injection between the phases. *)

open Repdir_txn
open Repdir_rep
open Repdir_quorum
open Repdir_core

(* A manual virtual clock standing in for the simulator: [after] queues the
   callback, [advance] moves time forward and fires everything due (including
   callbacks scheduled by fired callbacks). *)
let make_clock () =
  let now = ref 0.0 in
  let pending = ref [] in
  let timers =
    {
      Rep.now = (fun () -> !now);
      after = (fun d k -> pending := (!now +. d, k) :: !pending);
    }
  in
  let advance dt =
    now := !now +. dt;
    let progress = ref true in
    while !progress do
      match List.partition (fun (at, _) -> at <= !now) !pending with
      | [], _ -> progress := false
      | due, rest ->
          pending := rest;
          List.iter (fun (_, k) -> k ()) (List.sort compare due)
    done
  in
  (timers, advance)

(* --- coordinator ------------------------------------------------------------------ *)

let test_coordinator_first_writer_wins () =
  let c = Coordinator.create ~id:9 () in
  Alcotest.(check bool) "first decision sticks" true
    (Coordinator.decide c 1 Coordinator.Committed = Coordinator.Committed);
  Alcotest.(check bool) "second decision loses" true
    (Coordinator.decide c 1 Coordinator.Aborted = Coordinator.Committed);
  Alcotest.(check bool) "decision on file" true
    (Coordinator.decision c 1 = Some Coordinator.Committed);
  Alcotest.(check bool) "unknown undecided" true (Coordinator.decision c 2 = None);
  Alcotest.(check int) "id stamped" 9 (Coordinator.id c)

let test_coordinator_resolve_presumes_abort () =
  let c = Coordinator.create () in
  (* A termination query for an undecided transaction decides abort — and
     that decision is binding: the coordinator's own late commit loses. *)
  Alcotest.(check bool) "no information means abort" true
    (Coordinator.resolve c 7 = Coordinator.Aborted);
  Alcotest.(check bool) "late commit degrades to abort" true
    (Coordinator.decide c 7 Coordinator.Committed = Coordinator.Aborted);
  Alcotest.(check bool) "decided commit resolves commit" true
    (Coordinator.decide c 8 Coordinator.Committed = Coordinator.Committed
    && Coordinator.resolve c 8 = Coordinator.Committed);
  let k = Coordinator.counters c in
  Alcotest.(check int) "presumed aborts counted" 1 k.Coordinator.presumed_aborts;
  Alcotest.(check int) "resolutions counted" 2 k.Coordinator.resolutions

let test_coordinator_recover_keeps_commits () =
  let c = Coordinator.create () in
  ignore (Coordinator.decide c 1 Coordinator.Committed);
  ignore (Coordinator.decide c 2 Coordinator.Aborted);
  Coordinator.recover c;
  Alcotest.(check bool) "commit survives recovery" true
    (Coordinator.decision c 1 = Some Coordinator.Committed);
  (* The abort record was never forced; whether it survives is immaterial —
     resolve must still answer abort (presumed if the record is gone). *)
  Alcotest.(check bool) "abort still answers abort" true
    (Coordinator.resolve c 2 = Coordinator.Aborted)

(* --- wal in-doubt ------------------------------------------------------------------ *)

let test_wal_in_doubt () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "v"));
  Wal.append w (Wal.Prepare (1, 4));
  Wal.append w (Wal.Insert (2, "b", 1, "v"));
  Wal.append w (Wal.Prepare (2, 4));
  Wal.append w (Wal.Commit 2);
  Wal.append w (Wal.Prepare (3, 5));
  Wal.append w (Wal.Abort 3);
  Alcotest.(check bool) "only txn 1 in doubt, with its coordinator" true
    (Wal.in_doubt w = [ (1, 4) ])

let test_wal_replay_prepared_decided () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "v"));
  Wal.append w (Wal.Prepare (1, 4));
  Wal.append w (Wal.Insert (2, "b", 1, "v"));
  Wal.append w (Wal.Prepare (2, 4));
  let module Replay = Wal.Replay (Repdir_gapmap.Reference) in
  (* Coordinator says: txn 1 committed, txn 2 not. *)
  let g = Replay.replay ~decided:(fun id -> id = 1) w in
  Alcotest.(check (list string)) "only decided txn applies" [ "a" ]
    (List.map (fun (k, _, _) -> k) (Repdir_gapmap.Reference.entries g))

let test_wal_redo_deferred_commit () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "v"));
  Wal.append w (Wal.Prepare (1, 4));
  let module Replay = Wal.Replay (Repdir_gapmap.Reference) in
  let g = Replay.replay w in
  Alcotest.(check int) "effects withheld" 0
    (List.length (Repdir_gapmap.Reference.entries g));
  Replay.redo w 1 g;
  Alcotest.(check (list string)) "redo applies the held effects" [ "a" ]
    (List.map (fun (k, _, _) -> k) (Repdir_gapmap.Reference.entries g))

(* --- rep in-doubt recovery ------------------------------------------------------------ *)

let test_rep_recovery_restores_in_doubt_locked () =
  let rep = Rep.create ~name:"r" () in
  Rep.insert rep ~txn:1 "k" 1 "v";
  Rep.prepare rep ~txn:1 ~coord:7;
  Rep.crash rep;
  Rep.recover rep;
  (* Effects withheld, transaction in doubt, its write range re-locked. *)
  Alcotest.(check (list string)) "effects withheld" []
    (List.map (fun (k, _, _) -> k) (Rep.entries rep));
  Alcotest.(check (list int)) "in doubt" [ 1 ] (Rep.in_doubt_txns rep);
  Alcotest.(check bool) "write range re-locked" true (Rep.locks_held rep > 0);
  (* Commit verdict: the held redo records apply and locks drain. *)
  Rep.resolve_in_doubt rep ~txn:1 `Committed;
  Alcotest.(check (list string)) "committed after resolution" [ "k" ]
    (List.map (fun (k, _, _) -> k) (Rep.entries rep));
  Alcotest.(check int) "in-doubt drained" 0 (Rep.in_doubt_count rep);
  Alcotest.(check int) "locks drained" 0 (Rep.locks_held rep);
  Alcotest.(check bool) "outcome is committed" true (Rep.outcome_of rep 1 = `Committed)

let test_rep_recovery_abort_verdict_drops_effects () =
  let rep = Rep.create ~name:"r" () in
  Rep.insert rep ~txn:1 "k" 1 "v";
  Rep.prepare rep ~txn:1 ~coord:7;
  Rep.crash rep;
  Rep.recover rep;
  Rep.resolve_in_doubt rep ~txn:1 `Aborted;
  Alcotest.(check int) "nothing applied" 0 (Rep.size rep);
  Alcotest.(check int) "locks drained" 0 (Rep.locks_held rep);
  Alcotest.(check bool) "outcome is aborted" true (Rep.outcome_of rep 1 = `Aborted);
  (* The decision is durable across another crash. *)
  Rep.crash rep;
  Rep.recover rep;
  Alcotest.(check bool) "abort survives another crash" true
    (Rep.outcome_of rep 1 = `Aborted);
  Alcotest.(check int) "still nothing in doubt" 0 (Rep.in_doubt_count rep)

let test_rep_recovery_resolver_terminates () =
  (* With timers and a resolver installed, recovery itself starts the
     termination protocol: the restored in-doubt transaction resolves
     without any outside call. *)
  let timers, advance = make_clock () in
  let asked = ref [] in
  let rep = Rep.create ~timers ~name:"r" () in
  Rep.set_resolver rep (fun ~coord txn ->
      asked := (coord, txn) :: !asked;
      Some (`Committed, Rep.By_coordinator));
  Rep.insert rep ~txn:3 "k" 1 "v";
  Rep.prepare rep ~txn:3 ~coord:11;
  Rep.crash rep;
  Rep.recover rep;
  advance 0.0;
  Alcotest.(check bool) "resolver asked with the logged coordinator" true
    (!asked = [ (11, 3) ]);
  Alcotest.(check (list string)) "committed by the protocol" [ "k" ]
    (List.map (fun (k, _, _) -> k) (Rep.entries rep));
  Alcotest.(check int) "locks drained" 0 (Rep.locks_held rep);
  let c = Rep.counters rep in
  Alcotest.(check int) "counted as coordinator resolution" 1
    c.Rep.indoubt_by_coordinator;
  Alcotest.(check int) "counted as recovered" 1 c.Rep.indoubt_recovered

let test_rep_resolution_retries_until_answer () =
  let timers, advance = make_clock () in
  let calls = ref 0 in
  let rep = Rep.create ~timers ~lease:10.0 ~name:"r" () in
  Rep.set_resolver rep (fun ~coord:_ _ ->
      incr calls;
      if !calls < 3 then None else Some (`Aborted, Rep.By_peer));
  Rep.insert rep ~txn:4 "k" 1 "v";
  Rep.prepare rep ~txn:4 ~coord:11;
  (* Lease expires: prepared, so in doubt — first query at once, then one
     retry per lease period until the peer answers. *)
  advance 11.0;
  Alcotest.(check int) "first query immediate" 1 !calls;
  Alcotest.(check int) "still in doubt" 1 (Rep.in_doubt_count rep);
  advance 10.0;
  advance 10.0;
  Alcotest.(check int) "retried each lease period" 3 !calls;
  Alcotest.(check int) "resolved" 0 (Rep.in_doubt_count rep);
  Alcotest.(check bool) "aborted by peer answer" true (Rep.outcome_of rep 4 = `Aborted);
  Alcotest.(check int) "counted as peer resolution" 1
    (Rep.counters rep).Rep.indoubt_by_peer

(* --- leases --------------------------------------------------------------------------- *)

let test_lease_expiry_unilateral_abort () =
  let timers, advance = make_clock () in
  let rep = Rep.create ~timers ~lease:10.0 ~name:"r" () in
  Rep.insert rep ~txn:1 "k" 1 "v";
  advance 5.0;
  (* Any operation renews the sliding lease. *)
  ignore (Rep.lookup rep ~txn:1 (Repdir_key.Bound.key "k"));
  advance 8.0;
  Alcotest.(check bool) "touch kept it alive" true (Rep.outcome_of rep 1 = `Unknown);
  advance 10.0;
  (* Unprepared and idle past the lease: unilaterally aborted, locks gone. *)
  Alcotest.(check bool) "unilaterally aborted" true (Rep.outcome_of rep 1 = `Aborted);
  Alcotest.(check int) "rolled back" 0 (Rep.size rep);
  Alcotest.(check int) "locks released" 0 (Rep.locks_held rep);
  let c = Rep.counters rep in
  Alcotest.(check int) "lease expiry counted" 1 c.Rep.leases_expired;
  Alcotest.(check int) "unilateral abort counted" 1 c.Rep.unilateral_aborts;
  (* The abort is binding: a late prepare for the same transaction must be
     refused, so the coordinator can never commit it. *)
  (try
     Rep.prepare rep ~txn:1 ~coord:7;
     Alcotest.fail "prepare accepted after unilateral abort"
   with Txn.Abort _ -> ());
  (* Late duplicate abort is idempotent; late commit must be refused. *)
  Rep.abort rep ~txn:1;
  (try
     Rep.commit rep ~txn:1;
     Alcotest.fail "commit accepted after unilateral abort"
   with Txn.Abort _ -> ())

let test_lease_expiry_prepared_goes_in_doubt () =
  let timers, advance = make_clock () in
  let answer = ref None in
  let rep = Rep.create ~timers ~lease:10.0 ~name:"r" () in
  Rep.set_resolver rep (fun ~coord:_ _ -> !answer);
  Rep.insert rep ~txn:2 "k" 1 "v";
  Rep.prepare rep ~txn:2 ~coord:7;
  advance 11.0;
  (* Prepared: may not abort alone. It sits in doubt, locks held. *)
  Alcotest.(check (list int)) "in doubt" [ 2 ] (Rep.in_doubt_txns rep);
  Alcotest.(check bool) "locks still held" true (Rep.locks_held rep > 0);
  Alcotest.(check bool) "no unilateral abort" true
    ((Rep.counters rep).Rep.unilateral_aborts = 0);
  answer := Some (`Committed, Rep.By_coordinator);
  advance 10.0;
  Alcotest.(check (list string)) "committed once the coordinator answers" [ "k" ]
    (List.map (fun (k, _, _) -> k) (Rep.entries rep));
  Alcotest.(check int) "locks drained" 0 (Rep.locks_held rep)

let test_commit_abort_mutual_exclusion () =
  let rep = Rep.create ~name:"r" () in
  Rep.insert rep ~txn:1 "k" 1 "v";
  Rep.commit rep ~txn:1;
  Rep.commit rep ~txn:1 (* duplicate delivery: idempotent *);
  (try
     Rep.abort rep ~txn:1;
     Alcotest.fail "abort accepted after commit"
   with Txn.Abort _ -> ());
  Rep.insert rep ~txn:2 "x" 1 "v";
  Rep.abort rep ~txn:2;
  Rep.abort rep ~txn:2;
  (try
     Rep.commit rep ~txn:2;
     Alcotest.fail "commit accepted after abort"
   with Txn.Abort _ -> ());
  Alcotest.(check bool) "outcomes on file" true
    (Rep.outcome_of rep 1 = `Committed && Rep.outcome_of rep 2 = `Aborted)

(* --- end-to-end through the suite ------------------------------------------------------ *)

let test_suite_two_phase_commit_success () =
  let coordinator = Coordinator.create ~id:3 () in
  let reps = Array.init 3 (fun i -> Rep.create ~name:(Printf.sprintf "r%d" i) ()) in
  let suite =
    Suite.create ~two_phase:true ~coordinator
      ~config:(Config.simple ~n:3 ~r:2 ~w:2)
      ~transport:(Transport.local reps)
      ~txns:(Txn.Manager.create ())
      ()
  in
  (match Suite.insert suite "k" "v" with Ok () -> () | Error _ -> Alcotest.fail "insert");
  Alcotest.(check bool) "visible" true (Suite.mem suite "k");
  (* The commit decision was force-logged by this client's coordinator. *)
  Alcotest.(check bool) "coordinator logged the commit" true
    (Coordinator.decision coordinator 1 = Some Coordinator.Committed);
  Alcotest.(check bool) "log is durable (non-empty)" true
    (Coordinator.log_length coordinator > 0)

let test_suite_two_phase_crash_between_phases () =
  (* A write-quorum member crashes after every prepare succeeded but before
     its commit arrives; the coordinator logged commit, so recovery restores
     the transaction in doubt and the termination protocol commits it — the
     exact window single-phase commit loses. *)
  let coordinator = Coordinator.create ~id:3 () in
  let reps = Array.init 3 (fun i -> Rep.create ~name:(Printf.sprintf "r%d" i) ()) in
  let txns = Txn.Manager.create () in
  let txn = Txn.Manager.begin_txn txns in
  Rep.insert reps.(0) ~txn "w" 9 "v";
  Rep.insert reps.(1) ~txn "w" 9 "v";
  Rep.prepare reps.(0) ~txn ~coord:3;
  Rep.prepare reps.(1) ~txn ~coord:3;
  ignore (Coordinator.decide coordinator txn Coordinator.Committed);
  Rep.commit reps.(1) ~txn;
  (* rep0 crashes before its commit arrives. *)
  Rep.crash reps.(0);
  Rep.recover reps.(0);
  Alcotest.(check (list int)) "rep0 holds the txn in doubt" [ txn ]
    (Rep.in_doubt_txns reps.(0));
  (* Termination: rep0 queries the coordinator it logged at prepare. *)
  let verdict =
    match Coordinator.resolve coordinator txn with
    | Coordinator.Committed -> `Committed
    | Coordinator.Aborted -> `Aborted
  in
  Rep.resolve_in_doubt reps.(0) ~txn verdict;
  Alcotest.(check bool) "window closed: rep0 has the entry" true
    (List.exists (fun (k, _, _) -> k = "w") (Rep.entries reps.(0)));
  Alcotest.(check int) "no orphaned locks" 0 (Rep.locks_held reps.(0))

let test_suite_two_phase_prepare_failure_aborts_all () =
  (* rep0 crashes after the operation body but before the prepare round:
     its vote cannot be collected, so the whole transaction must abort —
     no representative may keep the entry. *)
  let reps = Array.init 3 (fun i -> Rep.create ~name:(Printf.sprintf "r%d" i) ()) in
  let txns = Txn.Manager.create () in
  let suite =
    Suite.create ~two_phase:true ~picker:(Picker.Fixed [| 0; 1; 2 |])
      ~config:(Config.simple ~n:3 ~r:2 ~w:2)
      ~transport:(Transport.local reps) ~txns ()
  in
  ignore (Suite.insert suite "pre" "v");
  (match
     Suite.with_txn suite (fun txn ->
         (match Suite.insert ~txn suite "k" "v" with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "insert op");
         (* Crash the first write-quorum member before its prepare. *)
         Rep.crash reps.(0))
   with
  | () -> Alcotest.fail "commit should have failed"
  | exception Suite.Unavailable _ -> ());
  Rep.recover reps.(0);
  (* Atomicity: no representative kept the entry, and the pre-existing
     entry survives everywhere it was written. *)
  Array.iter
    (fun rep ->
      Alcotest.(check bool) "no k on any rep" false
        (List.exists (fun (key, _, _) -> key = "k") (Rep.entries rep)))
    reps;
  Alcotest.(check bool) "k gone from the suite" false (Suite.mem suite "k");
  Alcotest.(check bool) "pre survives" true (Suite.mem suite "pre")

let test_prepare_refused_after_mid_txn_crash () =
  (* A representative that crashed and recovered *while a transaction was in
     flight* lost that transaction's effects; it must refuse the prepare
     vote, aborting the transaction instead of half-committing it. (Found by
     the chaos test.) *)
  let rep = Rep.create ~name:"r" () in
  Rep.insert rep ~txn:5 "k" 1 "v";
  Rep.crash rep;
  Rep.recover rep;
  (* The transaction's client is unaware and proceeds to commit. *)
  (try
     Rep.prepare rep ~txn:5 ~coord:3;
     Alcotest.fail "prepare accepted a half-lost transaction"
   with Txn.Abort (Txn.Unavailable _) -> ());
  (* A transaction whose operations all happened after the recovery is fine. *)
  Rep.insert rep ~txn:6 "k2" 1 "v";
  Rep.prepare rep ~txn:6 ~coord:3;
  Rep.commit rep ~txn:6;
  Alcotest.(check bool) "fresh txn commits" true
    (List.exists (fun (k, _, _) -> k = "k2") (Rep.entries rep))

let test_suite_mid_txn_crash_aborts_atomically () =
  (* End-to-end: rep0 crashes and recovers between the transaction's two
     inserts; 2PC must abort the whole transaction — neither key may be
     visible afterwards. *)
  let reps = Array.init 3 (fun i -> Rep.create ~name:(Printf.sprintf "r%d" i) ()) in
  let suite =
    Suite.create ~two_phase:true ~picker:(Picker.Fixed [| 0; 1; 2 |])
      ~config:(Config.simple ~n:3 ~r:2 ~w:2)
      ~transport:(Transport.local reps)
      ~txns:(Txn.Manager.create ())
      ()
  in
  (match
     Suite.with_txn suite (fun txn ->
         (match Suite.insert ~txn suite "x" "v" with Ok () -> () | Error _ -> assert false);
         Rep.crash reps.(0);
         Rep.recover reps.(0);
         match Suite.insert ~txn suite "y" "v" with Ok () -> () | Error _ -> assert false)
   with
  | () -> Alcotest.fail "commit should have been refused"
  | exception Suite.Unavailable _ -> ());
  Array.iter
    (fun rep ->
      List.iter
        (fun (k, _, _) ->
          if k = "x" || k = "y" then Alcotest.failf "%s survived on %s" k (Rep.name rep))
        (Rep.entries rep))
    reps;
  Alcotest.(check bool) "x not visible" false (Suite.mem suite "x");
  Alcotest.(check bool) "y not visible" false (Suite.mem suite "y")

let test_recovery_race_resolution_beats_late_commit () =
  (* The participant recovers and resolves (presumed abort) before the
     coordinator decides: the coordinator's later commit must lose and
     abort the other participant too. *)
  let coordinator = Coordinator.create ~id:3 () in
  let a = Rep.create ~name:"a" () in
  let b = Rep.create ~name:"b" () in
  let txn = 41 in
  Rep.insert a ~txn "k" 1 "v";
  Rep.insert b ~txn "k" 1 "v";
  Rep.prepare a ~txn ~coord:3;
  Rep.prepare b ~txn ~coord:3;
  Rep.crash a;
  Rep.recover a;
  (* a's termination query reaches the coordinator first: no decision on
     file, so the query decides abort (first-writer-wins). *)
  let verdict =
    match Coordinator.resolve coordinator txn with
    | Coordinator.Committed -> `Committed
    | Coordinator.Aborted -> `Aborted
  in
  Rep.resolve_in_doubt a ~txn verdict;
  Alcotest.(check bool) "coordinator's late commit loses" true
    (Coordinator.decide coordinator txn Coordinator.Committed = Coordinator.Aborted);
  (* The coordinator conforms by aborting b. *)
  Rep.abort b ~txn;
  Alcotest.(check int) "a empty" 0 (Rep.size a);
  Alcotest.(check int) "b empty" 0 (Rep.size b);
  Alcotest.(check int) "no locks on a" 0 (Rep.locks_held a);
  Alcotest.(check int) "no locks on b" 0 (Rep.locks_held b)

let test_peer_resolution_is_final () =
  (* The coordinator is unreachable; a peer that heard the commit round
     answers the termination query, and that answer is safe to act on. *)
  let coordinator = Coordinator.create ~id:3 () in
  let a = Rep.create ~name:"a" () in
  let b = Rep.create ~name:"b" () in
  let txn = 42 in
  Rep.insert a ~txn "k" 1 "v";
  Rep.insert b ~txn "k" 1 "v";
  Rep.prepare a ~txn ~coord:3;
  Rep.prepare b ~txn ~coord:3;
  ignore (Coordinator.decide coordinator txn Coordinator.Committed);
  Rep.commit b ~txn;
  Rep.crash a;
  Rep.recover a;
  (* a cannot reach the coordinator; it asks b instead. *)
  (match Rep.outcome_of b txn with
  | `Committed -> Rep.resolve_in_doubt a ~txn `Committed
  | `Aborted | `Unknown -> Alcotest.fail "peer should know the commit");
  Alcotest.(check bool) "a committed via peer" true
    (List.exists (fun (k, _, _) -> k = "k") (Rep.entries a));
  Alcotest.(check int) "locks drained" 0 (Rep.locks_held a)

(* --- end-to-end on the simulator -------------------------------------------------------- *)

let test_sim_world_two_phase_end_to_end () =
  let open Repdir_sim in
  let open Repdir_harness in
  let world =
    Sim_world.create ~two_phase:true ~rpc_timeout:30.0
      ~config:(Config.simple ~n:3 ~r:2 ~w:2) ()
  in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client world 0 in
  let ok = ref false in
  Sim.spawn sim (fun () ->
      ignore (Suite.insert suite "k" "v");
      Sim_world.crash_rep world 2;
      (match Suite.update suite "k" "v2" with Ok () -> () | Error _ -> ());
      Sim_world.recover_rep world 2;
      ok := Suite.lookup suite "k" = Some (2, "v2") || Suite.mem suite "k");
  Sim.run sim;
  Alcotest.(check bool) "2PC world runs correctly" true !ok

let test_sim_world_in_doubt_resolves_by_rpc () =
  (* Crash a participant right after its prepare is durable; after recovery
     its in-doubt transaction must resolve through the installed RPC
     resolver (coordinator first) without any outside help. *)
  let open Repdir_sim in
  let open Repdir_harness in
  let world =
    Sim_world.create ~two_phase:true ~lease:20.0 ~rpc_timeout:10.0
      ~config:(Config.simple ~n:3 ~r:3 ~w:3) ()
  in
  let sim = Sim_world.sim world in
  let reps = Sim_world.reps world in
  let suite = Sim_world.suite_for_client world 0 in
  Sim.spawn sim (fun () ->
      ignore (Suite.insert suite "k" "v");
      (* Simulate the lost-commit window at rep 2 directly: a prepared
         transaction whose commit never arrives. *)
      let txn = 99 in
      Rep.insert reps.(2) ~txn "z" 5 "v";
      Rep.prepare reps.(2) ~txn ~coord:(Sim_world.coordinator world 0 |> Coordinator.id);
      Sim_world.crash_rep world 2;
      Sim_world.recover_rep world 2;
      (* The restored in-doubt transaction queries the (live) coordinator;
         no decision is on file, so presumed abort terminates it. *)
      Sim.sleep sim 100.0);
  Sim.run sim;
  Alcotest.(check int) "in-doubt drained" 0 (Rep.in_doubt_count reps.(2));
  Alcotest.(check int) "locks drained" 0 (Rep.locks_held reps.(2));
  Alcotest.(check bool) "presumed abort" true (Rep.outcome_of reps.(2) 99 = `Aborted);
  Alcotest.(check bool) "resolved by coordinator query" true
    ((Rep.counters reps.(2)).Rep.indoubt_by_coordinator = 1)

(* --- batching: deferred commits and group commit on the simulator ----------------------- *)

let test_sim_batched_commit_flush_drains () =
  (* Batched two-phase mode defers the commit round as notices; the flush
     timer must deliver them so locks drain without any further client
     traffic. *)
  let open Repdir_sim in
  let open Repdir_harness in
  let world =
    Sim_world.create ~two_phase:true ~lease:200.0 ~rpc_timeout:30.0
      ~config:(Config.simple ~n:3 ~r:2 ~w:2) ()
  in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client ~batching:true ~notice_window:5.0 world 0 in
  Sim.spawn sim (fun () ->
      ignore (Suite.insert suite "k" "v");
      ignore (Suite.insert suite "k2" "v2");
      Alcotest.(check bool) "read-back sees the insert" true (Suite.mem suite "k"));
  Sim.run sim;
  Alcotest.(check int) "notices drained" 0 (Suite.pending_notice_count suite);
  Array.iter
    (fun rep ->
      Alcotest.(check int) (Rep.name rep ^ " locks drained") 0 (Rep.locks_held rep);
      Alcotest.(check int) (Rep.name rep ^ " nothing in doubt") 0 (Rep.in_doubt_count rep))
    (Sim_world.reps world)

let test_sim_batched_commit_lease_backstop () =
  (* Kill the pipeline: the notice window is far beyond the lease, so the
     deferred commit notices are effectively lost. Every prepared
     participant's lease must push the transaction in doubt and the
     termination protocol must commit it from the coordinator's decision
     log — same verdict as the lost notice, just slower. *)
  let open Repdir_sim in
  let open Repdir_harness in
  let world =
    Sim_world.create ~two_phase:true ~lease:20.0 ~rpc_timeout:10.0
      ~config:(Config.simple ~n:3 ~r:2 ~w:2) ()
  in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client ~batching:true ~notice_window:5000.0 world 0 in
  Sim.spawn sim (fun () ->
      ignore (Suite.insert suite "k" "v");
      Sim.sleep sim 400.0);
  Sim.run sim;
  let reps = Sim_world.reps world in
  Array.iter
    (fun rep ->
      Alcotest.(check int) (Rep.name rep ^ " locks drained") 0 (Rep.locks_held rep);
      Alcotest.(check int) (Rep.name rep ^ " nothing in doubt") 0 (Rep.in_doubt_count rep))
    reps;
  (* The write quorum's members applied the commit despite never receiving
     the commit round. *)
  let holders =
    Array.fold_left
      (fun n rep ->
        if List.exists (fun (k, _, _) -> k = "k") (Rep.entries rep) then n + 1 else n)
      0 reps
  in
  Alcotest.(check bool) "a write quorum holds the entry" true (holders >= 2);
  let resolved =
    Array.fold_left
      (fun n rep -> n + (Rep.counters rep).Rep.indoubt_by_coordinator)
      0 reps
  in
  Alcotest.(check bool) "resolved through the coordinator" true (resolved >= 2)

let test_sim_group_commit_coalesces_syncs () =
  (* Two clients hammer the same representatives under a group-commit
     window: concurrent forces must share leaders' syncs, visible as
     absorbed followers — and nothing may be lost doing so. *)
  let open Repdir_sim in
  let open Repdir_harness in
  let world =
    Sim_world.create ~two_phase:true ~n_clients:2 ~group_commit:3.0 ~rpc_timeout:30.0
      ~config:(Config.simple ~n:3 ~r:2 ~w:2) ()
  in
  let sim = Sim_world.sim world in
  let suites =
    Array.init 2 (fun c -> Sim_world.suite_for_client ~batching:true world c)
  in
  let done_count = ref 0 in
  for c = 0 to 1 do
    Sim.spawn sim (fun () ->
        for i = 0 to 14 do
          ignore
            (Suite.with_retries ~sleep:(Sim.sleep sim) (fun () ->
                 Suite.insert suites.(c) (Printf.sprintf "c%d-%d" c i) "v"))
        done;
        incr done_count)
  done;
  Sim.run sim;
  Alcotest.(check int) "both clients finished" 2 !done_count;
  let reps = Sim_world.reps world in
  Array.iter (fun s -> Suite.flush_notices s) suites;
  Sim.run sim;
  let absorbed = Array.fold_left (fun n rep -> n + Rep.wal_group_absorbed rep) 0 reps in
  Alcotest.(check bool) "some forces were absorbed into a group" true (absorbed > 0);
  Array.iter
    (fun rep ->
      Alcotest.(check int) (Rep.name rep ^ " locks drained") 0 (Rep.locks_held rep);
      Alcotest.(check int) (Rep.name rep ^ " unsynced tail empty") 0 (Rep.wal_unsynced rep))
    reps;
  (* Every acknowledged insert is durable and visible. *)
  Sim.spawn sim (fun () ->
      for c = 0 to 1 do
        for i = 0 to 14 do
          Alcotest.(check bool)
            (Printf.sprintf "c%d-%d visible" c i)
            true
            (Suite.mem suites.(c) (Printf.sprintf "c%d-%d" c i))
        done
      done);
  Sim.run sim

(* --- the safety property ---------------------------------------------------------------- *)

(* A representative must never both commit and abort the same transaction,
   under any interleaving of crashes, duplicate deliveries, retries and
   termination queries. The script drives one rep + its coordinator through
   a random event sequence; transient protocol refusals (Txn.Abort) are the
   protocol working, so they are swallowed — the property is about the
   durable outcome bookkeeping. *)
let qcheck_never_commit_and_abort =
  QCheck.Test.make ~name:"rep never both commits and aborts a txn" ~count:500
    QCheck.(list_of_size Gen.(int_range 1 14) (int_bound 7))
    (fun script ->
      let coord = Coordinator.create ~id:9 () in
      let rep = Rep.create ~name:"r" () in
      let txn = 1 in
      let seen_commit = ref false and seen_abort = ref false in
      let note () =
        match Rep.outcome_of rep txn with
        | `Committed -> seen_commit := true
        | `Aborted -> seen_abort := true
        | `Unknown -> ()
      in
      let resolve_if_in_doubt () =
        if List.mem txn (Rep.in_doubt_txns rep) then
          let verdict =
            match Coordinator.resolve coord txn with
            | Coordinator.Committed -> `Committed
            | Coordinator.Aborted -> `Aborted
          in
          Rep.resolve_in_doubt rep ~txn verdict
      in
      let key = ref 0 in
      let apply ev =
        (try
           match ev with
           | 0 ->
               incr key;
               Rep.insert rep ~txn (Printf.sprintf "k%d" !key) 1 "v"
           | 1 -> Rep.prepare rep ~txn ~coord:9
           | 2 -> (
               (* The coordinator tries to commit; it obeys the winner. *)
               match Coordinator.decide coord txn Coordinator.Committed with
               | Coordinator.Committed -> Rep.commit rep ~txn
               | Coordinator.Aborted -> Rep.abort rep ~txn)
           | 3 -> (
               match Coordinator.decide coord txn Coordinator.Aborted with
               | Coordinator.Committed -> Rep.commit rep ~txn
               | Coordinator.Aborted -> Rep.abort rep ~txn)
           | 4 ->
               Rep.crash rep;
               Rep.recover rep
           | 5 -> (
               (* Duplicate delivery of an already-made decision. *)
               match Coordinator.decision coord txn with
               | Some Coordinator.Committed -> Rep.commit rep ~txn
               | Some Coordinator.Aborted -> Rep.abort rep ~txn
               | None -> ())
           | 6 -> resolve_if_in_doubt ()
           | _ -> Coordinator.recover coord
         with _ -> ());
        note ()
      in
      List.iter apply script;
      (* Quiesce: terminate whatever is left in doubt, then final check. *)
      (try resolve_if_in_doubt () with _ -> ());
      note ();
      not (!seen_commit && !seen_abort))

let () =
  Alcotest.run "two-phase"
    [
      ( "coordinator",
        [
          Alcotest.test_case "first writer wins" `Quick test_coordinator_first_writer_wins;
          Alcotest.test_case "resolve presumes abort" `Quick
            test_coordinator_resolve_presumes_abort;
          Alcotest.test_case "recovery keeps commits" `Quick
            test_coordinator_recover_keeps_commits;
        ] );
      ( "wal",
        [
          Alcotest.test_case "in-doubt detection" `Quick test_wal_in_doubt;
          Alcotest.test_case "replay decided prepared" `Quick test_wal_replay_prepared_decided;
          Alcotest.test_case "redo applies held effects" `Quick test_wal_redo_deferred_commit;
        ] );
      ( "rep",
        [
          Alcotest.test_case "recovery restores in-doubt locked" `Quick
            test_rep_recovery_restores_in_doubt_locked;
          Alcotest.test_case "abort verdict drops effects" `Quick
            test_rep_recovery_abort_verdict_drops_effects;
          Alcotest.test_case "recovery resolver terminates" `Quick
            test_rep_recovery_resolver_terminates;
          Alcotest.test_case "resolution retries until answer" `Quick
            test_rep_resolution_retries_until_answer;
          Alcotest.test_case "commit/abort mutual exclusion" `Quick
            test_commit_abort_mutual_exclusion;
        ] );
      ( "lease",
        [
          Alcotest.test_case "expiry aborts unprepared unilaterally" `Quick
            test_lease_expiry_unilateral_abort;
          Alcotest.test_case "expiry sends prepared in doubt" `Quick
            test_lease_expiry_prepared_goes_in_doubt;
        ] );
      ( "suite",
        [
          Alcotest.test_case "2PC success path" `Quick test_suite_two_phase_commit_success;
          Alcotest.test_case "crash between phases" `Quick
            test_suite_two_phase_crash_between_phases;
          Alcotest.test_case "prepare failure aborts all" `Quick
            test_suite_two_phase_prepare_failure_aborts_all;
          Alcotest.test_case "recovery resolution beats late commit" `Quick
            test_recovery_race_resolution_beats_late_commit;
          Alcotest.test_case "peer resolution is final" `Quick test_peer_resolution_is_final;
          Alcotest.test_case "prepare refused after mid-txn crash" `Quick
            test_prepare_refused_after_mid_txn_crash;
          Alcotest.test_case "mid-txn crash aborts atomically" `Quick
            test_suite_mid_txn_crash_aborts_atomically;
        ] );
      ( "sim",
        [
          Alcotest.test_case "sim world end to end" `Quick test_sim_world_two_phase_end_to_end;
          Alcotest.test_case "in-doubt resolves by rpc" `Quick
            test_sim_world_in_doubt_resolves_by_rpc;
        ] );
      ( "batching",
        [
          Alcotest.test_case "deferred commits flush and drain" `Quick
            test_sim_batched_commit_flush_drains;
          Alcotest.test_case "lease backstops a lost commit notice" `Quick
            test_sim_batched_commit_lease_backstop;
          Alcotest.test_case "group commit coalesces syncs" `Quick
            test_sim_group_commit_coalesces_syncs;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest qcheck_never_commit_and_abort ] );
    ]
