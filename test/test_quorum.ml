(* Tests for configurations, quorum pickers and availability analysis. *)

open Repdir_util
open Repdir_quorum

(* --- Config ---------------------------------------------------------------------- *)

let test_config_simple_ok () =
  let c = Config.simple ~n:3 ~r:2 ~w:2 in
  Alcotest.(check int) "reps" 3 (Config.n_reps c);
  Alcotest.(check int) "total votes" 3 (Config.total_votes c);
  Alcotest.(check string) "paper notation" "3-2-2" (Config.to_string c)

let expect_error ~msg votes r w =
  match Config.make ~votes ~read_quorum:r ~write_quorum:w with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail msg

let test_config_read_write_intersection () =
  (* R + W must exceed total votes. *)
  expect_error ~msg:"R+W = V accepted" [| 1; 1; 1 |] 1 2

let test_config_write_write_intersection () =
  (* 2W must exceed total votes (else two disjoint write quorums exist). *)
  expect_error ~msg:"2W = V accepted" [| 1; 1; 1; 1 |] 3 2

let test_config_rejects_nonsense () =
  expect_error ~msg:"no reps" [||] 1 1;
  expect_error ~msg:"negative votes" [| 1; -1; 3 |] 2 2;
  expect_error ~msg:"zero quorum" [| 1; 1; 1 |] 0 3;
  expect_error ~msg:"no votes" [| 0; 0 |] 1 1;
  expect_error ~msg:"quorum above total" [| 1; 1; 1 |] 4 3

let test_config_weighted_votes () =
  (* Gifford's example style: a strong representative with extra votes. *)
  match Config.make ~votes:[| 2; 1; 1 |] ~read_quorum:2 ~write_quorum:3 with
  | Ok c ->
      Alcotest.(check int) "total" 4 (Config.total_votes c);
      Alcotest.(check int) "votes of 0" 2 (Config.votes_of c 0)
  | Error e -> Alcotest.fail e

let test_config_zero_vote_rep_allowed () =
  match Config.make ~votes:[| 1; 1; 1; 0 |] ~read_quorum:2 ~write_quorum:2 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* --- Picker ----------------------------------------------------------------------- *)

let all_up _ = true

let votes_total config members =
  Array.fold_left (fun acc i -> acc + Config.votes_of config i) 0 members

let test_picker_random_reaches_quorum () =
  let rng = Rng.create 5L in
  let config = Config.simple ~n:5 ~r:3 ~w:3 in
  for _ = 1 to 200 do
    match Picker.read_quorum Picker.Random rng config ~available:all_up with
    | Some q ->
        Alcotest.(check bool) "enough votes" true (votes_total config q >= 3);
        (* Minimal: dropping the last member falls below the quorum. *)
        Alcotest.(check int) "minimal" 3 (Array.length q)
    | None -> Alcotest.fail "quorum must exist"
  done

let test_picker_random_is_uniform () =
  let rng = Rng.create 6L in
  let config = Config.simple ~n:4 ~r:2 ~w:3 in
  let counts = Array.make 4 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    match Picker.read_quorum Picker.Random rng config ~available:all_up with
    | Some q -> Array.iter (fun i -> counts.(i) <- counts.(i) + 1) q
    | None -> Alcotest.fail "quorum must exist"
  done;
  (* Each representative appears in half the 2-member quorums. *)
  Array.iteri
    (fun i c ->
      let expected = trials / 2 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "rep %d badly skewed: %d vs %d" i c expected)
    counts

let test_picker_respects_availability () =
  let rng = Rng.create 7L in
  let config = Config.simple ~n:3 ~r:2 ~w:2 in
  let up i = i <> 1 in
  for _ = 1 to 50 do
    match Picker.read_quorum Picker.Random rng config ~available:up with
    | Some q -> Array.iter (fun i -> Alcotest.(check bool) "only up members" true (up i)) q
    | None -> Alcotest.fail "quorum exists without rep 1"
  done

let test_picker_returns_none_when_unattainable () =
  let rng = Rng.create 8L in
  let config = Config.simple ~n:3 ~r:2 ~w:2 in
  let up i = i = 0 in
  Alcotest.(check bool) "no quorum" true
    (Picker.read_quorum Picker.Random rng config ~available:up = None)

let test_picker_fixed_prefers_order () =
  let rng = Rng.create 9L in
  let config = Config.simple ~n:4 ~r:2 ~w:3 in
  (match Picker.read_quorum (Picker.Fixed [| 2; 0; 1; 3 |]) rng config ~available:all_up with
  | Some q -> Alcotest.(check (array int)) "prefix of preference order" [| 2; 0 |] q
  | None -> Alcotest.fail "quorum must exist");
  (* With rep 2 down, the next in order substitute. *)
  match
    Picker.read_quorum (Picker.Fixed [| 2; 0; 1; 3 |]) rng config ~available:(fun i -> i <> 2)
  with
  | Some q -> Alcotest.(check (array int)) "skips the dead one" [| 0; 1 |] q
  | None -> Alcotest.fail "quorum must exist"

let test_picker_skips_zero_vote_reps () =
  let rng = Rng.create 10L in
  let config =
    Config.make_exn ~votes:[| 1; 0; 1; 1 |] ~read_quorum:2 ~write_quorum:2
  in
  for _ = 1 to 100 do
    match Picker.write_quorum Picker.Random rng config ~available:all_up with
    | Some q ->
        Alcotest.(check bool) "weak rep never in quorum" false (Array.mem 1 q)
    | None -> Alcotest.fail "quorum must exist"
  done

let test_picker_weighted_can_use_fewer_members () =
  let rng = Rng.create 11L in
  let config = Config.make_exn ~votes:[| 3; 1; 1 |] ~read_quorum:3 ~write_quorum:3 in
  match Picker.read_quorum (Picker.Fixed [| 0; 1; 2 |]) rng config ~available:all_up with
  | Some q -> Alcotest.(check (array int)) "one strong member suffices" [| 0 |] q
  | None -> Alcotest.fail "quorum must exist"

let test_picker_locality_reads_local () =
  let rng = Rng.create 12L in
  let config = Config.simple ~n:4 ~r:2 ~w:3 in
  let strategy = Picker.Locality { local = [| 0; 1 |]; remote = [| 2; 3 |] } in
  for _ = 1 to 100 do
    match Picker.read_quorum strategy rng config ~available:all_up with
    | Some q ->
        Array.sort compare q;
        Alcotest.(check (array int)) "reads fully local" [| 0; 1 |] q
    | None -> Alcotest.fail "quorum must exist"
  done

let test_picker_locality_writes_spread_remote () =
  let rng = Rng.create 13L in
  let config = Config.simple ~n:4 ~r:2 ~w:3 in
  let strategy = Picker.Locality { local = [| 0; 1 |]; remote = [| 2; 3 |] } in
  let remote_counts = Array.make 4 0 in
  let trials = 10_000 in
  for _ = 1 to trials do
    match Picker.write_quorum strategy rng config ~available:all_up with
    | Some q ->
        Alcotest.(check bool) "contains both local" true (Array.mem 0 q && Array.mem 1 q);
        Alcotest.(check int) "exactly W members" 3 (Array.length q);
        Array.iter (fun i -> if i >= 2 then remote_counts.(i) <- remote_counts.(i) + 1) q
    | None -> Alcotest.fail "quorum must exist"
  done;
  let diff = abs (remote_counts.(2) - remote_counts.(3)) in
  Alcotest.(check bool) "remote writes evenly spread" true (diff < trials / 10)

let test_picker_locality_fails_over_to_remote () =
  let rng = Rng.create 14L in
  let config = Config.simple ~n:4 ~r:2 ~w:3 in
  let strategy = Picker.Locality { local = [| 0; 1 |]; remote = [| 2; 3 |] } in
  match Picker.read_quorum strategy rng config ~available:(fun i -> i <> 0) with
  | Some q ->
      Alcotest.(check bool) "local survivor included" true (Array.mem 1 q);
      Alcotest.(check bool) "remote fills in" true (Array.mem 2 q || Array.mem 3 q)
  | None -> Alcotest.fail "quorum must exist"

(* --- Availability ------------------------------------------------------------------- *)

let check_close = Alcotest.(check (float 1e-9))

let test_availability_certain_cases () =
  check_close "always up" 1.0
    (Availability.quorum_probability ~votes:[| 1; 1; 1 |] ~quorum:2 ~p_up:1.0);
  check_close "always down" 0.0
    (Availability.quorum_probability ~votes:[| 1; 1; 1 |] ~quorum:2 ~p_up:0.0);
  check_close "unattainable quorum" 0.0
    (Availability.quorum_probability ~votes:[| 1; 1 |] ~quorum:3 ~p_up:1.0)

let test_availability_closed_form () =
  (* 2-of-3 with p: p^3 + 3 p^2 (1-p). *)
  let p = 0.9 in
  let expected = (p ** 3.0) +. (3.0 *. p *. p *. (1.0 -. p)) in
  check_close "2-of-3" expected
    (Availability.quorum_probability ~votes:[| 1; 1; 1 |] ~quorum:2 ~p_up:p);
  (* 1-of-2: 1 - (1-p)^2. *)
  let expected2 = 1.0 -. ((1.0 -. p) ** 2.0) in
  check_close "1-of-2" expected2
    (Availability.quorum_probability ~votes:[| 1; 1 |] ~quorum:1 ~p_up:p)

let test_availability_weighted () =
  (* Votes (2,1,1), quorum 2: available unless the strong rep is down and at
     most one weak one is up... compute directly: up-sets reaching 2 votes:
     strong up (p) -> always enough; strong down -> need both weak: (1-p) p^2. *)
  let p = 0.8 in
  let expected = p +. ((1.0 -. p) *. p *. p) in
  check_close "weighted" expected
    (Availability.quorum_probability ~votes:[| 2; 1; 1 |] ~quorum:2 ~p_up:p)

let test_availability_read_vs_write () =
  let c = Config.simple ~n:5 ~r:2 ~w:4 in
  let r = Availability.read_availability c ~p_up:0.9 in
  let w = Availability.write_availability c ~p_up:0.9 in
  Alcotest.(check bool) "small read quorum more available" true (r > w)

let test_availability_monotone_in_p () =
  let votes = [| 1; 2; 1; 1 |] in
  let prev = ref (-1.0) in
  List.iter
    (fun p ->
      let a = Availability.quorum_probability ~votes ~quorum:3 ~p_up:p in
      Alcotest.(check bool) "monotone" true (a >= !prev);
      prev := a)
    [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ]

let test_availability_rejects_bad_p () =
  try
    ignore (Availability.quorum_probability ~votes:[| 1 |] ~quorum:1 ~p_up:1.5);
    Alcotest.fail "p > 1 accepted"
  with Invalid_argument _ -> ()

let availability_matches_monte_carlo =
  QCheck.Test.make ~name:"exact availability matches Monte Carlo" ~count:25
    QCheck.(triple (int_bound 1_000) (int_bound 3) (int_bound 8))
    (fun (seed, extra_votes, tenths) ->
      let votes = [| 1 + extra_votes; 1; 1; 1 |] in
      let quorum = 2 + extra_votes in
      let p_up = 0.1 +. (0.1 *. float_of_int tenths) in
      let exact = Availability.quorum_probability ~votes ~quorum ~p_up in
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let mc = Availability.monte_carlo rng ~votes ~quorum ~p_up ~trials:60_000 in
      abs_float (exact -. mc) < 0.02)

(* The reconfiguration campaign's three membership views (PR 7): the seed
   3-2-2 with a zero-vote joining slot (epochs 0/1 old side), the promoted
   four-member view (epochs 1/2 new side), and the view after slot 0
   retires (epochs 3/4 new side). The exact dynamic program must agree
   with Monte Carlo on each, for reads and writes, under a generated
   per-representative up-probability; the Monte Carlo seed is a fixed
   function of the generated case so failures replay exactly. *)
let epoch_views_match_monte_carlo =
  let views =
    [
      ("e0 join old view", [| 1; 1; 1; 0 |], 2, 2);
      ("e1/e2 joined view", [| 1; 1; 1; 1 |], 2, 3);
      ("e3/e4 retired view", [| 0; 1; 1; 1 |], 2, 2);
    ]
  in
  QCheck.Test.make ~name:"campaign epoch views: exact vs Monte Carlo" ~count:20
    QCheck.(pair (int_bound 1_000) (int_bound 8))
    (fun (case, tenths) ->
      let p_up = 0.1 +. (0.1 *. float_of_int tenths) in
      List.for_all
        (fun (_, votes, r, w) ->
          let close quorum =
            let exact = Availability.quorum_probability ~votes ~quorum ~p_up in
            let rng = Rng.create (Int64.of_int ((case * 16) + quorum + 1)) in
            let mc = Availability.monte_carlo rng ~votes ~quorum ~p_up ~trials:60_000 in
            abs_float (exact -. mc) < 0.02
          in
          close r && close w)
        views)

let test_both_availability () =
  let c = Config.simple ~n:3 ~r:2 ~w:2 in
  check_close "both = max quorum" (Availability.write_availability c ~p_up:0.9)
    (Availability.both_availability c ~p_up:0.9)

let () =
  Alcotest.run "quorum"
    [
      ( "config",
        [
          Alcotest.test_case "simple ok" `Quick test_config_simple_ok;
          Alcotest.test_case "R+W > V enforced" `Quick test_config_read_write_intersection;
          Alcotest.test_case "2W > V enforced" `Quick test_config_write_write_intersection;
          Alcotest.test_case "rejects nonsense" `Quick test_config_rejects_nonsense;
          Alcotest.test_case "weighted votes" `Quick test_config_weighted_votes;
          Alcotest.test_case "zero-vote rep allowed" `Quick test_config_zero_vote_rep_allowed;
        ] );
      ( "picker",
        [
          Alcotest.test_case "random reaches quorum" `Quick test_picker_random_reaches_quorum;
          Alcotest.test_case "random is uniform" `Slow test_picker_random_is_uniform;
          Alcotest.test_case "respects availability" `Quick test_picker_respects_availability;
          Alcotest.test_case "none when unattainable" `Quick
            test_picker_returns_none_when_unattainable;
          Alcotest.test_case "fixed prefers order" `Quick test_picker_fixed_prefers_order;
          Alcotest.test_case "skips zero-vote reps" `Quick test_picker_skips_zero_vote_reps;
          Alcotest.test_case "weighted fewer members" `Quick
            test_picker_weighted_can_use_fewer_members;
          Alcotest.test_case "locality reads local" `Quick test_picker_locality_reads_local;
          Alcotest.test_case "locality writes spread" `Slow
            test_picker_locality_writes_spread_remote;
          Alcotest.test_case "locality failover" `Quick test_picker_locality_fails_over_to_remote;
        ] );
      ( "availability",
        [
          Alcotest.test_case "certain cases" `Quick test_availability_certain_cases;
          Alcotest.test_case "closed form" `Quick test_availability_closed_form;
          Alcotest.test_case "weighted" `Quick test_availability_weighted;
          Alcotest.test_case "read vs write" `Quick test_availability_read_vs_write;
          Alcotest.test_case "monotone in p" `Quick test_availability_monotone_in_p;
          Alcotest.test_case "rejects bad p" `Quick test_availability_rejects_bad_p;
          Alcotest.test_case "both availability" `Quick test_both_availability;
          QCheck_alcotest.to_alcotest availability_matches_monte_carlo;
          QCheck_alcotest.to_alcotest epoch_views_match_monte_carlo;
        ] );
    ]
