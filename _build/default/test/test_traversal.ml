(* Tests for the suite's ordered-traversal API (next/prev/first/last/
   fold_range/to_alist): agreement with a sorted model under churn and
   random quorums — exercising ghost-skipping — plus weighted-vote and
   zero-vote-representative end-to-end checks. *)

open Repdir_key
open Repdir_txn
open Repdir_rep
open Repdir_quorum
open Repdir_core

let make_suite ?seed config =
  let n = Config.n_reps config in
  let reps = Array.init n (fun i -> Rep.create ~name:(Printf.sprintf "r%d" i) ()) in
  ( reps,
    Suite.create ?seed ~config ~transport:(Transport.local reps)
      ~txns:(Txn.Manager.create ()) () )

let cfg_322 = Config.simple ~n:3 ~r:2 ~w:2

let populate suite keys = List.iter (fun k -> ignore (Suite.insert suite k ("v" ^ k))) keys

(* --- basics ----------------------------------------------------------------------- *)

let test_next_prev_basic () =
  let _, s = make_suite cfg_322 in
  populate s [ "b"; "d"; "f" ];
  (match Suite.next s "b" with
  | Some ("d", _, "vd") -> ()
  | _ -> Alcotest.fail "next of b");
  (match Suite.next s "c" with
  | Some ("d", _, _) -> ()
  | _ -> Alcotest.fail "next of absent c");
  (match Suite.next s "f" with
  | None -> ()
  | Some _ -> Alcotest.fail "next of last");
  (match Suite.prev s "d" with
  | Some ("b", _, _) -> ()
  | _ -> Alcotest.fail "prev of d");
  match Suite.prev s "b" with
  | None -> ()
  | Some _ -> Alcotest.fail "prev of first"

let test_first_last () =
  let _, s = make_suite cfg_322 in
  (match Suite.first s with None -> () | Some _ -> Alcotest.fail "empty first");
  (match Suite.last s with None -> () | Some _ -> Alcotest.fail "empty last");
  populate s [ "m"; "c"; "x" ];
  (match Suite.first s with
  | Some ("c", _, _) -> ()
  | _ -> Alcotest.fail "first");
  match Suite.last s with Some ("x", _, _) -> () | _ -> Alcotest.fail "last"

let test_next_skips_ghosts () =
  (* Forced quorums: insert at {A,B}, delete at {B,C}; A keeps a ghost that
     next/first must skip. *)
  let reps, _ = make_suite cfg_322 in
  let transport = Transport.local reps in
  let txns = Txn.Manager.create () in
  let via order =
    Suite.create ~picker:(Picker.Fixed (Array.of_list order)) ~config:cfg_322 ~transport
      ~txns ()
  in
  ignore (Suite.insert (via [ 0; 1; 2 ]) "a" "va");
  ignore (Suite.insert (via [ 0; 1; 2 ]) "b" "vb");
  ignore (Suite.insert (via [ 0; 1; 2 ]) "c" "vc");
  ignore (Suite.delete (via [ 1; 2; 0 ]) "b");
  let s_ac = via [ 0; 2; 1 ] in
  (match Suite.next s_ac "a" with
  | Some ("c", _, _) -> ()
  | Some (k, _, _) -> Alcotest.failf "next of a hit ghost %s" k
  | None -> Alcotest.fail "next of a lost c");
  match Suite.prev s_ac "c" with
  | Some ("a", _, _) -> ()
  | Some (k, _, _) -> Alcotest.failf "prev of c hit ghost %s" k
  | None -> Alcotest.fail "prev of c lost a"

let test_fold_range () =
  let _, s = make_suite cfg_322 in
  populate s [ "a"; "b"; "c"; "d"; "e" ];
  let collected =
    Suite.fold_range s ~lo:"b" ~hi:"d" ~init:[] ~f:(fun acc k _ -> k :: acc)
  in
  Alcotest.(check (list string)) "closed range" [ "d"; "c"; "b" ] collected;
  let empty = Suite.fold_range s ~lo:"x" ~hi:"z" ~init:[] ~f:(fun acc k _ -> k :: acc) in
  Alcotest.(check (list string)) "empty range" [] empty

let test_to_alist () =
  let _, s = make_suite cfg_322 in
  populate s [ "m"; "c"; "x"; "a" ];
  ignore (Suite.delete s "m");
  Alcotest.(check (list (pair string string)))
    "sorted current entries"
    [ ("a", "va"); ("c", "vc"); ("x", "vx") ]
    (Suite.to_alist s)

(* --- model property over churn ------------------------------------------------------- *)

let traversal_matches_model =
  QCheck.Test.make ~name:"traversal equals sorted model under churn" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Repdir_util.Rng.create (Int64.of_int seed) in
      let _, s = make_suite ~seed:(Int64.of_int (seed + 1)) cfg_322 in
      let model = Hashtbl.create 32 in
      let universe = Array.init 20 (fun i -> Key.of_int i) in
      for step = 1 to 80 do
        let k = Repdir_util.Rng.pick rng universe in
        (match Repdir_util.Rng.int rng 3 with
        | 0 -> (
            match Suite.insert s k ("v" ^ string_of_int step) with
            | Ok () -> Hashtbl.replace model k ("v" ^ string_of_int step)
            | Error `Already_present -> ())
        | 1 ->
            ignore (Suite.delete s k);
            Hashtbl.remove model k
        | _ -> (
            match Suite.update s k ("u" ^ string_of_int step) with
            | Ok () -> Hashtbl.replace model k ("u" ^ string_of_int step)
            | Error `Not_present -> ()));
        (* Full ordered scan must equal the sorted model. *)
        let expected =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
          |> List.sort (fun (a, _) (b, _) -> Key.compare a b)
        in
        if Suite.to_alist s <> expected then failwith (Printf.sprintf "scan diverged at %d" step);
        (* Spot-check next from a random probe. *)
        let probe = Repdir_util.Rng.pick rng universe in
        let expected_next =
          List.find_opt (fun (k, _) -> Key.compare k probe > 0) expected
        in
        let got = Suite.next s probe in
        let ok =
          match (got, expected_next) with
          | None, None -> true
          | Some (k, _, v), Some (k', v') -> Key.equal k k' && String.equal v v'
          | _ -> false
        in
        if not ok then failwith (Printf.sprintf "next diverged at %d" step)
      done;
      true)

(* --- weighted votes end-to-end --------------------------------------------------------- *)

let weighted_config =
  (* A strong representative with 2 votes among three weak ones: quorums of
     3 votes can be the strong one plus any weak one, or all three weak. *)
  Config.make_exn ~votes:[| 2; 1; 1; 1 |] ~read_quorum:3 ~write_quorum:3

let test_weighted_votes_end_to_end () =
  let rng = Repdir_util.Rng.create 91L in
  let _, s = make_suite ~seed:92L weighted_config in
  let model = Hashtbl.create 32 in
  let universe = Array.init 15 (fun i -> Key.of_int i) in
  for step = 1 to 400 do
    let k = Repdir_util.Rng.pick rng universe in
    (match Repdir_util.Rng.int rng 3 with
    | 0 -> (
        match Suite.insert s k "v" with
        | Ok () -> Hashtbl.replace model k "v"
        | Error `Already_present -> ())
    | 1 ->
        ignore (Suite.delete s k);
        Hashtbl.remove model k
    | _ ->
        if Suite.mem s k <> Hashtbl.mem model k then
          Alcotest.failf "weighted lookup diverged at step %d" step);
    ()
  done;
  Hashtbl.iter (fun k _ -> Alcotest.(check bool) "present" true (Suite.mem s k)) model

let test_zero_vote_rep_never_consulted () =
  let config = Config.make_exn ~votes:[| 1; 1; 1; 0 |] ~read_quorum:2 ~write_quorum:2 in
  let reps, s =
    let n = Config.n_reps config in
    let reps = Array.init n (fun i -> Rep.create ~name:(Printf.sprintf "r%d" i) ()) in
    ( reps,
      Suite.create ~config ~transport:(Transport.local reps) ~txns:(Txn.Manager.create ()) ()
    )
  in
  for i = 0 to 30 do
    ignore (Suite.insert s (Key.of_int i) "v")
  done;
  Alcotest.(check int) "weak representative stays empty" 0 (Rep.size reps.(3));
  Alcotest.(check int) "no calls reached it" 0 (Rep.counters reps.(3)).Rep.lookups

let test_weighted_strong_rep_read_alone () =
  (* With votes (2,1,1) and R=2, the strong representative alone is a read
     quorum: crash both weak ones and reads still work (writes need 3). *)
  let config = Config.make_exn ~votes:[| 2; 1; 1 |] ~read_quorum:2 ~write_quorum:3 in
  let reps, s = make_suite config in
  ignore (Suite.insert s "k" "v");
  Rep.crash reps.(1);
  Rep.crash reps.(2);
  Alcotest.(check bool) "read via strong rep alone" true (Suite.mem s "k");
  (match Suite.update s "k" "v2" with
  | exception Suite.Unavailable _ -> ()
  | _ -> Alcotest.fail "write quorum should be impossible");
  Rep.recover reps.(1);
  Rep.recover reps.(2);
  match Suite.update s "k" "v2" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update after recovery"

let () =
  Alcotest.run "traversal"
    [
      ( "ordered",
        [
          Alcotest.test_case "next/prev basics" `Quick test_next_prev_basic;
          Alcotest.test_case "first/last" `Quick test_first_last;
          Alcotest.test_case "ghost skipping" `Quick test_next_skips_ghosts;
          Alcotest.test_case "fold_range" `Quick test_fold_range;
          Alcotest.test_case "to_alist" `Quick test_to_alist;
          QCheck_alcotest.to_alcotest traversal_matches_model;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "weighted end-to-end" `Quick test_weighted_votes_end_to_end;
          Alcotest.test_case "zero-vote rep untouched" `Quick test_zero_vote_rep_never_consulted;
          Alcotest.test_case "strong rep reads alone" `Quick test_weighted_strong_rep_read_alone;
        ] );
    ]
