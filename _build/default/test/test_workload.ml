(* Tests for the §4 workload generator: op mix, size stationarity, mirror
   consistency, key freshness, and determinism. *)

open Repdir_util
open Repdir_workload

let make ?(seed = 1L) ?update_fraction ?lookup_fraction ~target () =
  Workload.create ?update_fraction ?lookup_fraction ~rng:(Rng.create seed)
    ~target_size:target ()

let test_initial_fill_reaches_target () =
  let w = make ~target:100 () in
  let fill = Workload.initial_fill w in
  Alcotest.(check int) "exactly target inserts" 100 (List.length fill);
  Alcotest.(check int) "mirror size" 100 (Workload.size w);
  List.iter
    (function Workload.Insert _ -> () | _ -> Alcotest.fail "fill must be inserts")
    fill

let test_size_stays_near_target () =
  let w = make ~target:100 () in
  ignore (Workload.initial_fill w);
  for _ = 1 to 10_000 do
    ignore (Workload.next w);
    let s = Workload.size w in
    Alcotest.(check bool) "within one of target" true (s >= 99 && s <= 100)
  done

let test_op_mix () =
  let w = make ~update_fraction:0.4 ~target:50 () in
  ignore (Workload.initial_fill w);
  let updates = ref 0 and inserts = ref 0 and deletes = ref 0 and lookups = ref 0 in
  let n = 30_000 in
  for _ = 1 to n do
    match Workload.next w with
    | Workload.Update _ -> incr updates
    | Workload.Insert _ -> incr inserts
    | Workload.Delete _ -> incr deletes
    | Workload.Lookup _ -> incr lookups
  done;
  Alcotest.(check int) "no lookups by default" 0 !lookups;
  let frac_updates = float_of_int !updates /. float_of_int n in
  Alcotest.(check bool) "update fraction honoured" true (abs_float (frac_updates -. 0.4) < 0.03);
  (* Inserts and deletes alternate around the target. *)
  Alcotest.(check bool) "insert/delete balance" true (abs (!inserts - !deletes) <= 1)

let test_lookup_fraction () =
  let w = make ~lookup_fraction:0.5 ~update_fraction:0.25 ~target:50 () in
  ignore (Workload.initial_fill w);
  let lookups = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Workload.next w with Workload.Lookup _ -> incr lookups | _ -> ()
  done;
  let frac = float_of_int !lookups /. float_of_int n in
  Alcotest.(check bool) "lookup fraction honoured" true (abs_float (frac -. 0.5) < 0.03)

let test_mirror_matches_application () =
  (* Applying the generated stream to a real map yields exactly the mirror. *)
  let w = make ~target:60 () in
  let model = Hashtbl.create 64 in
  let apply = function
    | Workload.Insert (k, v) ->
        Alcotest.(check bool) "insert key fresh" false (Hashtbl.mem model k);
        Hashtbl.replace model k v
    | Workload.Update (k, v) ->
        Alcotest.(check bool) "update key exists" true (Hashtbl.mem model k);
        Hashtbl.replace model k v
    | Workload.Delete k ->
        Alcotest.(check bool) "delete key exists" true (Hashtbl.mem model k);
        Hashtbl.remove model k
    | Workload.Lookup _ -> ()
  in
  List.iter apply (Workload.initial_fill w);
  for _ = 1 to 5_000 do
    apply (Workload.next w)
  done;
  Alcotest.(check int) "mirror size equals model" (Hashtbl.length model) (Workload.size w)

let test_deterministic () =
  let trace seed =
    let w = make ~seed ~target:30 () in
    ignore (Workload.initial_fill w);
    List.init 200 (fun _ -> Format.asprintf "%a" Workload.pp_op (Workload.next w))
  in
  Alcotest.(check bool) "same seed same stream" true (trace 9L = trace 9L);
  Alcotest.(check bool) "different seed differs" true (trace 9L <> trace 10L)

let test_random_existing_key () =
  let w = make ~target:10 () in
  Alcotest.(check bool) "empty -> none" true (Workload.random_existing_key w = None);
  ignore (Workload.initial_fill w);
  match Workload.random_existing_key w with
  | Some _ -> ()
  | None -> Alcotest.fail "non-empty -> some"

let test_bad_parameters_rejected () =
  (try
     ignore (make ~target:0 ());
     Alcotest.fail "zero target accepted"
   with Invalid_argument _ -> ());
  try
    ignore (make ~update_fraction:0.8 ~lookup_fraction:0.5 ~target:10 ());
    Alcotest.fail "fractions above 1 accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          Alcotest.test_case "initial fill" `Quick test_initial_fill_reaches_target;
          Alcotest.test_case "size stationary" `Quick test_size_stays_near_target;
          Alcotest.test_case "op mix" `Slow test_op_mix;
          Alcotest.test_case "lookup fraction" `Slow test_lookup_fraction;
          Alcotest.test_case "mirror matches application" `Quick test_mirror_matches_application;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "random existing key" `Quick test_random_existing_key;
          Alcotest.test_case "bad parameters" `Quick test_bad_parameters_rejected;
        ] );
    ]
