(* Tests for atomic commitment: prepare records, the commit registry's
   first-writer-wins decision cell, in-doubt recovery, and end-to-end
   two-phase commit through the suite with crash injection between the
   phases. *)

open Repdir_txn
open Repdir_rep
open Repdir_quorum
open Repdir_core

(* --- registry -------------------------------------------------------------------- *)

let test_registry_first_writer_wins () =
  let r = Commit_registry.create () in
  Alcotest.(check bool) "first decision sticks" true
    (Commit_registry.try_decide r 1 Commit_registry.Committed = Commit_registry.Committed);
  Alcotest.(check bool) "second decision loses" true
    (Commit_registry.try_decide r 1 Commit_registry.Aborted = Commit_registry.Committed);
  Alcotest.(check bool) "decided commit" true (Commit_registry.decided_commit r 1);
  Alcotest.(check bool) "unknown undecided" true (Commit_registry.decision r 2 = None)

(* --- wal in-doubt ------------------------------------------------------------------ *)

let test_wal_in_doubt () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "v"));
  Wal.append w (Wal.Prepare 1);
  Wal.append w (Wal.Insert (2, "b", 1, "v"));
  Wal.append w (Wal.Prepare 2);
  Wal.append w (Wal.Commit 2);
  Wal.append w (Wal.Prepare 3);
  Wal.append w (Wal.Abort 3);
  Alcotest.(check (list int)) "only txn 1 in doubt" [ 1 ] (Wal.in_doubt w)

let test_wal_replay_prepared_decided () =
  let w = Wal.create () in
  Wal.append w (Wal.Insert (1, "a", 1, "v"));
  Wal.append w (Wal.Prepare 1);
  Wal.append w (Wal.Insert (2, "b", 1, "v"));
  Wal.append w (Wal.Prepare 2);
  let module Replay = Wal.Replay (Repdir_gapmap.Reference) in
  (* Coordinator says: txn 1 committed, txn 2 not. *)
  let g = Replay.replay ~decided:(fun id -> id = 1) w in
  Alcotest.(check (list string)) "only decided txn applies" [ "a" ]
    (List.map (fun (k, _, _) -> k) (Repdir_gapmap.Reference.entries g))

(* --- rep in-doubt recovery ------------------------------------------------------------ *)

let test_rep_recovery_commits_decided_in_doubt () =
  let registry = Commit_registry.create () in
  let rep = Rep.create ~registry ~name:"r" () in
  Rep.insert rep ~txn:1 "k" 1 "v";
  Rep.prepare rep ~txn:1;
  (* Coordinator decided commit; the participant crashes before hearing. *)
  ignore (Commit_registry.try_decide registry 1 Commit_registry.Committed);
  Rep.crash rep;
  Rep.recover rep;
  Alcotest.(check (list string)) "in-doubt effects replayed" [ "k" ]
    (List.map (fun (k, _, _) -> k) (Rep.entries rep))

let test_rep_recovery_aborts_undecided_in_doubt () =
  let registry = Commit_registry.create () in
  let rep = Rep.create ~registry ~name:"r" () in
  Rep.insert rep ~txn:1 "k" 1 "v";
  Rep.prepare rep ~txn:1;
  Rep.crash rep;
  Rep.recover rep;
  Alcotest.(check (list string)) "undecided in-doubt discarded" []
    (List.map (fun (k, _, _) -> k) (Rep.entries rep));
  (* The recovery registered an abort veto: a late coordinator commit must
     lose the race and observe the abort. *)
  Alcotest.(check bool) "late commit loses" true
    (Commit_registry.try_decide registry 1 Commit_registry.Committed = Commit_registry.Aborted)

let test_rep_recovery_unprepared_still_discarded () =
  let registry = Commit_registry.create () in
  let rep = Rep.create ~registry ~name:"r" () in
  Rep.insert rep ~txn:1 "k" 1 "v";
  (* No prepare: even a (bogus) commit decision cannot resurrect it. *)
  ignore (Commit_registry.try_decide registry 1 Commit_registry.Committed);
  Rep.crash rep;
  Rep.recover rep;
  Alcotest.(check int) "unprepared work discarded" 0 (Rep.size rep)

(* --- end-to-end through the suite ------------------------------------------------------ *)

let test_suite_two_phase_commit_success () =
  let registry = Commit_registry.create () in
  let reps =
    Array.init 3 (fun i -> Rep.create ~registry ~name:(Printf.sprintf "r%d" i) ())
  in
  let suite =
    Suite.create ~two_phase:true ~registry
      ~config:(Config.simple ~n:3 ~r:2 ~w:2)
      ~transport:(Transport.local reps)
      ~txns:(Txn.Manager.create ())
      ()
  in
  (match Suite.insert suite "k" "v" with Ok () -> () | Error _ -> Alcotest.fail "insert");
  Alcotest.(check bool) "visible" true (Suite.mem suite "k");
  (* The decision record exists and says committed. *)
  Alcotest.(check bool) "registry has a commit decision" true
    (Commit_registry.decided_commit registry 1)

let test_suite_two_phase_crash_between_phases () =
  (* Crash a write-quorum member after every prepare succeeded but before
     its commit arrives; after recovery its state must include the
     transaction (the registry says committed) — the exact window
     single-phase commit loses. *)
  let registry = Commit_registry.create () in
  let reps =
    Array.init 3 (fun i -> Rep.create ~registry ~name:(Printf.sprintf "r%d" i) ())
  in
  let base = Transport.local reps in
  let victim = ref (-1) in
  let transport =
    {
      base with
      Transport.call =
        (fun i f ->
          if i = !victim && not (Repdir_rep.Rep.is_crashed reps.(i)) then begin
            (* The commit message to the victim is "lost": crash it first. *)
            Rep.crash reps.(i);
            Error (Transport.Down "victim")
          end
          else base.Transport.call i f);
    }
  in
  let txns = Txn.Manager.create () in
  let suite =
    Suite.create ~two_phase:true ~registry ~picker:(Picker.Fixed [| 0; 1; 2 |])
      ~config:(Config.simple ~n:3 ~r:2 ~w:2) ~transport ~txns ()
  in
  (* First, run the whole operation normally except: arm the victim to
     reject (and crash at) the *commit* call. We do that by wrapping
     with_txn ourselves so prepare happens before arming. *)
  (match
     Suite.with_txn suite (fun txn ->
         match Suite.insert ~txn suite "k" "v" with
         | Ok () ->
             (* Arm: the next call to rep 0 (its commit) crashes it. The
                prepares happen inside commit_touched *before* commits, so
                we need the crash to trigger only on the commit round —
                prepare uses the same transport. Instead, arm after the
                operation body: prepares will hit the victim... which would
                abort the transaction. To hit the window precisely we arm
                between phases below via the registry hook instead. *)
             ()
         | Error _ -> Alcotest.fail "insert")
   with
  | () -> ()
  | exception Suite.Unavailable _ -> Alcotest.fail "should commit");
  (* Now simulate the window directly at the representative level. *)
  let txn = Txn.Manager.begin_txn txns in
  Rep.insert reps.(0) ~txn "w" 9 "v";
  Rep.insert reps.(1) ~txn "w" 9 "v";
  Rep.prepare reps.(0) ~txn;
  Rep.prepare reps.(1) ~txn;
  ignore (Commit_registry.try_decide registry txn Commit_registry.Committed);
  Rep.commit reps.(1) ~txn;
  (* rep0 crashes before its commit arrives. *)
  Rep.crash reps.(0);
  Rep.recover reps.(0);
  Alcotest.(check bool) "window closed: rep0 has the entry" true
    (List.exists (fun (k, _, _) -> k = "w") (Rep.entries reps.(0)));
  ignore !victim

let test_suite_two_phase_prepare_failure_aborts_all () =
  (* rep0 crashes after the operation body but before the prepare round:
     its vote cannot be collected, so the whole transaction must abort —
     no representative may keep the entry. *)
  let registry = Commit_registry.create () in
  let reps =
    Array.init 3 (fun i -> Rep.create ~registry ~name:(Printf.sprintf "r%d" i) ())
  in
  let txns = Txn.Manager.create () in
  let suite =
    Suite.create ~two_phase:true ~registry ~picker:(Picker.Fixed [| 0; 1; 2 |])
      ~config:(Config.simple ~n:3 ~r:2 ~w:2)
      ~transport:(Transport.local reps) ~txns ()
  in
  ignore (Suite.insert suite "pre" "v");
  (match
     Suite.with_txn suite (fun txn ->
         (match Suite.insert ~txn suite "k" "v" with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "insert op");
         (* Crash the first write-quorum member before its prepare. *)
         Rep.crash reps.(0))
   with
  | () -> Alcotest.fail "commit should have failed"
  | exception Suite.Unavailable _ -> ());
  Rep.recover reps.(0);
  (* Atomicity: no representative kept the entry, and the pre-existing
     entry survives everywhere it was written. *)
  Array.iter
    (fun rep ->
      Alcotest.(check bool) "no k on any rep" false
        (List.exists (fun (key, _, _) -> key = "k") (Rep.entries rep)))
    reps;
  Alcotest.(check bool) "k gone from the suite" false (Suite.mem suite "k");
  Alcotest.(check bool) "pre survives" true (Suite.mem suite "pre")

let test_prepare_refused_after_mid_txn_crash () =
  (* A representative that crashed and recovered *while a transaction was in
     flight* lost that transaction's effects; it must refuse the prepare
     vote, aborting the transaction instead of half-committing it. (Found by
     the chaos test.) *)
  let registry = Commit_registry.create () in
  let rep = Rep.create ~registry ~name:"r" () in
  Rep.insert rep ~txn:5 "k" 1 "v";
  Rep.crash rep;
  Rep.recover rep;
  (* The transaction's client is unaware and proceeds to commit. *)
  (try
     Rep.prepare rep ~txn:5;
     Alcotest.fail "prepare accepted a half-lost transaction"
   with Txn.Abort (Txn.Unavailable _) -> ());
  (* A transaction whose operations all happened after the recovery is fine. *)
  Rep.insert rep ~txn:6 "k2" 1 "v";
  Rep.prepare rep ~txn:6;
  Rep.commit rep ~txn:6;
  Alcotest.(check bool) "fresh txn commits" true
    (List.exists (fun (k, _, _) -> k = "k2") (Rep.entries rep))

let test_suite_mid_txn_crash_aborts_atomically () =
  (* End-to-end: rep0 crashes and recovers between the transaction's two
     inserts; 2PC must abort the whole transaction — neither key may be
     visible afterwards. *)
  let registry = Commit_registry.create () in
  let reps =
    Array.init 3 (fun i -> Rep.create ~registry ~name:(Printf.sprintf "r%d" i) ())
  in
  let suite =
    Suite.create ~two_phase:true ~registry ~picker:(Picker.Fixed [| 0; 1; 2 |])
      ~config:(Config.simple ~n:3 ~r:2 ~w:2)
      ~transport:(Transport.local reps)
      ~txns:(Txn.Manager.create ())
      ()
  in
  (match
     Suite.with_txn suite (fun txn ->
         (match Suite.insert ~txn suite "x" "v" with Ok () -> () | Error _ -> assert false);
         Rep.crash reps.(0);
         Rep.recover reps.(0);
         match Suite.insert ~txn suite "y" "v" with Ok () -> () | Error _ -> assert false)
   with
  | () -> Alcotest.fail "commit should have been refused"
  | exception Suite.Unavailable _ -> ());
  Array.iter
    (fun rep ->
      List.iter
        (fun (k, _, _) ->
          if k = "x" || k = "y" then Alcotest.failf "%s survived on %s" k (Rep.name rep))
        (Rep.entries rep))
    reps;
  Alcotest.(check bool) "x not visible" false (Suite.mem suite "x");
  Alcotest.(check bool) "y not visible" false (Suite.mem suite "y")

let test_registry_race_recovery_vetoes_commit () =
  (* The participant recovers (vetoing) before the coordinator decides: the
     coordinator's later commit must lose and abort the other participant. *)
  let registry = Commit_registry.create () in
  let a = Rep.create ~registry ~name:"a" () in
  let b = Rep.create ~registry ~name:"b" () in
  let txn = 41 in
  Rep.insert a ~txn "k" 1 "v";
  Rep.insert b ~txn "k" 1 "v";
  Rep.prepare a ~txn;
  Rep.prepare b ~txn;
  Rep.crash a;
  Rep.recover a (* vetoes: in doubt, undecided -> aborted *);
  Alcotest.(check bool) "coordinator's commit loses" true
    (Commit_registry.try_decide registry txn Commit_registry.Committed
    = Commit_registry.Aborted);
  (* The coordinator conforms by aborting b. *)
  Rep.abort b ~txn;
  Alcotest.(check int) "a empty" 0 (Rep.size a);
  Alcotest.(check int) "b empty" 0 (Rep.size b)

(* --- end-to-end on the simulator -------------------------------------------------------- *)

let test_sim_world_two_phase_end_to_end () =
  let open Repdir_sim in
  let open Repdir_harness in
  let world = Sim_world.create ~two_phase:true ~rpc_timeout:30.0 ~config:(Config.simple ~n:3 ~r:2 ~w:2) () in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client world 0 in
  let ok = ref false in
  Sim.spawn sim (fun () ->
      ignore (Suite.insert suite "k" "v");
      Sim_world.crash_rep world 2;
      (match Suite.update suite "k" "v2" with Ok () -> () | Error _ -> ());
      Sim_world.recover_rep world 2;
      ok := Suite.lookup suite "k" = Some (2, "v2") || Suite.mem suite "k");
  Sim.run sim;
  Alcotest.(check bool) "2PC world runs correctly" true !ok

let () =
  Alcotest.run "two-phase"
    [
      ( "registry",
        [ Alcotest.test_case "first writer wins" `Quick test_registry_first_writer_wins ] );
      ( "wal",
        [
          Alcotest.test_case "in-doubt detection" `Quick test_wal_in_doubt;
          Alcotest.test_case "replay decided prepared" `Quick test_wal_replay_prepared_decided;
        ] );
      ( "rep",
        [
          Alcotest.test_case "recovery commits decided" `Quick
            test_rep_recovery_commits_decided_in_doubt;
          Alcotest.test_case "recovery aborts undecided" `Quick
            test_rep_recovery_aborts_undecided_in_doubt;
          Alcotest.test_case "unprepared never resurrected" `Quick
            test_rep_recovery_unprepared_still_discarded;
        ] );
      ( "suite",
        [
          Alcotest.test_case "2PC success path" `Quick test_suite_two_phase_commit_success;
          Alcotest.test_case "crash between phases" `Quick
            test_suite_two_phase_crash_between_phases;
          Alcotest.test_case "prepare failure aborts all" `Quick
            test_suite_two_phase_prepare_failure_aborts_all;
          Alcotest.test_case "recovery veto beats late commit" `Quick
            test_registry_race_recovery_vetoes_commit;
          Alcotest.test_case "prepare refused after mid-txn crash" `Quick
            test_prepare_refused_after_mid_txn_crash;
          Alcotest.test_case "mid-txn crash aborts atomically" `Quick
            test_suite_mid_txn_crash_aborts_atomically;
          Alcotest.test_case "sim world end to end" `Quick test_sim_world_two_phase_end_to_end;
        ] );
    ]
