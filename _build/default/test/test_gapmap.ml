(* Tests for the gap-versioned map: unit tests replaying the paper's
   Figures 1-5 semantics on a single representative, model-based equivalence
   of the B+tree against the reference implementation, and B+tree structural
   stress tests. *)

open Repdir_key
open Repdir_gapmap
module G = Gapmap

let lookup_testable =
  let pp ppf = function
    | Gapmap_intf.Present { version; value } ->
        Format.fprintf ppf "Present(v%a,%s)" Version.pp version value
    | Gapmap_intf.Absent { gap_version } -> Format.fprintf ppf "Absent(g%a)" Version.pp gap_version
  in
  Alcotest.testable pp ( = )

let neighbor_testable =
  let pp ppf (n : Gapmap_intf.neighbor) =
    Format.fprintf ppf "{key=%a; entry_version=%a; gap=%a}" Bound.pp n.key
      (Format.pp_print_option Version.pp)
      n.entry_version Version.pp n.gap_version
  in
  Alcotest.testable pp ( = )

(* Functorized test body so both implementations get identical coverage. *)
module Make_unit (M : Gapmap_intf.S) = struct
  let fresh_abc () =
    (* The paper's Figure 1: entries "a" and "c" at version 1, all gaps 0. *)
    let g = M.create () in
    M.insert g "a" 1 "va";
    M.insert g "c" 1 "vc";
    g

  let test_empty () =
    let g = M.create () in
    Alcotest.(check int) "size" 0 (M.size g);
    Alcotest.check lookup_testable "absent in LOW..HIGH gap"
      (Absent { gap_version = Version.lowest })
      (M.lookup g (Bound.Key "x"));
    Alcotest.(check int) "one gap" 1 (List.length (M.gaps g));
    (match M.check_invariants g with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)

  let test_sentinels_present () =
    let g = M.create () in
    Alcotest.check lookup_testable "LOW present"
      (Present { version = Version.lowest; value = "" })
      (M.lookup g Bound.Low);
    Alcotest.check lookup_testable "HIGH present"
      (Present { version = Version.lowest; value = "" })
      (M.lookup g Bound.High)

  let test_figure1_layout () =
    let g = fresh_abc () in
    Alcotest.(check int) "two entries" 2 (M.size g);
    Alcotest.check lookup_testable "a present" (Present { version = 1; value = "va" })
      (M.lookup g (Bound.Key "a"));
    Alcotest.check lookup_testable "b absent in gap 0" (Absent { gap_version = 0 })
      (M.lookup g (Bound.Key "b"));
    Alcotest.(check int) "three gaps" 3 (List.length (M.gaps g))

  let test_figure4_insert_splits_gap () =
    (* Inserting "b" with version 1 splits gap (a,c); both halves keep 0. *)
    let g = fresh_abc () in
    M.insert g "b" 1 "vb";
    let gaps = M.gaps g in
    Alcotest.(check int) "four gaps" 4 (List.length gaps);
    List.iter
      (fun (_, _, v) -> Alcotest.(check int) "every gap still version 0" 0 v)
      gaps;
    Alcotest.check lookup_testable "b present" (Present { version = 1; value = "vb" })
      (M.lookup g (Bound.Key "b"))

  let test_figure5_coalesce_after_delete () =
    (* Deleting "b" coalesces (a, c) and bumps the gap to version 2 (one more
       than b's entry version 1). *)
    let g = fresh_abc () in
    M.insert g "b" 1 "vb";
    let removed = M.coalesce g ~lo:(Bound.Key "a") ~hi:(Bound.Key "c") 2 in
    Alcotest.(check int) "one entry removed" 1 removed;
    Alcotest.check lookup_testable "b now absent with gap version 2"
      (Absent { gap_version = 2 })
      (M.lookup g (Bound.Key "b"));
    Alcotest.(check int) "back to three gaps" 3 (List.length (M.gaps g))

  let test_coalesce_on_absent_rep () =
    (* Coalescing a range where the entry was never present (the other write
       quorum member in Figure 5) just re-versions the gap. *)
    let g = fresh_abc () in
    let removed = M.coalesce g ~lo:(Bound.Key "a") ~hi:(Bound.Key "c") 2 in
    Alcotest.(check int) "nothing removed" 0 removed;
    Alcotest.check lookup_testable "gap re-versioned" (Absent { gap_version = 2 })
      (M.lookup g (Bound.Key "b"))

  let test_update_in_place () =
    let g = fresh_abc () in
    M.insert g "a" 2 "va2";
    Alcotest.(check int) "size unchanged" 2 (M.size g);
    Alcotest.check lookup_testable "updated" (Present { version = 2; value = "va2" })
      (M.lookup g (Bound.Key "a"));
    Alcotest.(check int) "gap count unchanged" 3 (List.length (M.gaps g))

  let test_predecessor_of_entry () =
    let g = fresh_abc () in
    Alcotest.check neighbor_testable "pred of c is a"
      { key = Bound.Key "a"; entry_version = Some 1; gap_version = 0 }
      (M.predecessor g (Bound.Key "c"))

  let test_predecessor_of_absent_key () =
    let g = fresh_abc () in
    Alcotest.check neighbor_testable "pred of b is a"
      { key = Bound.Key "a"; entry_version = Some 1; gap_version = 0 }
      (M.predecessor g (Bound.Key "b"))

  let test_predecessor_of_first_entry_is_low () =
    let g = fresh_abc () in
    Alcotest.check neighbor_testable "pred of a is LOW"
      { key = Bound.Low; entry_version = None; gap_version = 0 }
      (M.predecessor g (Bound.Key "a"))

  let test_predecessor_of_high () =
    let g = fresh_abc () in
    Alcotest.check neighbor_testable "pred of HIGH is c"
      { key = Bound.Key "c"; entry_version = Some 1; gap_version = 0 }
      (M.predecessor g Bound.High)

  let test_predecessor_of_low_invalid () =
    let g = fresh_abc () in
    Alcotest.check_raises "pred of LOW" (Invalid_argument "Gapmap.predecessor: LOW")
      (fun () -> ignore (M.predecessor g Bound.Low))

  let test_successor_of_entry () =
    let g = fresh_abc () in
    Alcotest.check neighbor_testable "succ of a is c"
      { key = Bound.Key "c"; entry_version = Some 1; gap_version = 0 }
      (M.successor g (Bound.Key "a"))

  let test_successor_of_last_entry_is_high () =
    let g = fresh_abc () in
    Alcotest.check neighbor_testable "succ of c is HIGH"
      { key = Bound.High; entry_version = None; gap_version = 0 }
      (M.successor g (Bound.Key "c"))

  let test_successor_of_low () =
    let g = fresh_abc () in
    Alcotest.check neighbor_testable "succ of LOW is a"
      { key = Bound.Key "a"; entry_version = Some 1; gap_version = 0 }
      (M.successor g Bound.Low)

  let test_successor_of_high_invalid () =
    let g = fresh_abc () in
    Alcotest.check_raises "succ of HIGH" (Invalid_argument "Gapmap.successor: HIGH")
      (fun () -> ignore (M.successor g Bound.High))

  let test_successor_gap_version_distinguishes_sides () =
    (* Gap versions on the two sides of an entry can differ; successor must
       report the gap between the argument and the successor, not the gap
       after the successor. *)
    let g = M.create () in
    M.insert g "b" 1 "vb";
    M.insert g "d" 1 "vd";
    (* Coalesce (b, d) -> gap version 5 between b and d only. *)
    let _ = M.coalesce g ~lo:(Bound.Key "b") ~hi:(Bound.Key "d") 5 in
    Alcotest.check neighbor_testable "succ of c sees gap 5"
      { key = Bound.Key "d"; entry_version = Some 1; gap_version = 5 }
      (M.successor g (Bound.Key "c"));
    Alcotest.check neighbor_testable "succ of a sees gap 0"
      { key = Bound.Key "b"; entry_version = Some 1; gap_version = 0 }
      (M.successor g (Bound.Key "a"));
    Alcotest.check neighbor_testable "pred of e sees gap 0 after d"
      { key = Bound.Key "d"; entry_version = Some 1; gap_version = 0 }
      (M.predecessor g (Bound.Key "e"))

  let test_coalesce_missing_endpoint () =
    let g = fresh_abc () in
    (try
       ignore (M.coalesce g ~lo:(Bound.Key "a") ~hi:(Bound.Key "zz") 3);
       Alcotest.fail "expected Missing_endpoint"
     with Gapmap_intf.Missing_endpoint b ->
       Alcotest.(check string) "endpoint" "zz" (Bound.to_string b));
    try
      ignore (M.coalesce g ~lo:(Bound.Key "0") ~hi:(Bound.Key "c") 3);
      Alcotest.fail "expected Missing_endpoint"
    with Gapmap_intf.Missing_endpoint b ->
      Alcotest.(check string) "endpoint" "0" (Bound.to_string b)

  let test_coalesce_inverted_range () =
    let g = fresh_abc () in
    Alcotest.check_raises "lo >= hi" (Invalid_argument "Gapmap.coalesce: lo >= hi")
      (fun () -> ignore (M.coalesce g ~lo:(Bound.Key "c") ~hi:(Bound.Key "a") 3))

  let test_coalesce_full_range () =
    let g = fresh_abc () in
    M.insert g "b" 1 "vb";
    let removed = M.coalesce g ~lo:Bound.Low ~hi:Bound.High 9 in
    Alcotest.(check int) "all removed" 3 removed;
    Alcotest.(check int) "empty" 0 (M.size g);
    Alcotest.check lookup_testable "everything in gap 9" (Absent { gap_version = 9 })
      (M.lookup g (Bound.Key "m"))

  let test_count_strictly_between () =
    let g = M.create () in
    List.iter (fun k -> M.insert g k 1 k) [ "b"; "c"; "d"; "e" ];
    Alcotest.(check int) "open interval excludes endpoints" 2
      (M.count_strictly_between g ~lo:(Bound.Key "b") ~hi:(Bound.Key "e"));
    Alcotest.(check int) "full range" 4
      (M.count_strictly_between g ~lo:Bound.Low ~hi:Bound.High);
    Alcotest.(check int) "endpoints need not exist" 3
      (M.count_strictly_between g ~lo:(Bound.Key "bb") ~hi:(Bound.Key "zz"))

  let test_entries_sorted () =
    let g = M.create () in
    List.iter (fun k -> M.insert g k 1 k) [ "m"; "c"; "x"; "a"; "q" ];
    let keys = List.map (fun (k, _, _) -> k) (M.entries g) in
    Alcotest.(check (list string)) "ascending" [ "a"; "c"; "m"; "q"; "x" ] keys

  let test_gaps_partition () =
    let g = M.create () in
    List.iter (fun k -> M.insert g k 1 k) [ "d"; "b"; "f" ];
    let gaps = M.gaps g in
    Alcotest.(check int) "gap count = size + 1" 4 (List.length gaps);
    (* Gaps tile the space: each right bound is the next left bound. *)
    let rec check_tiling = function
      | (_, r1, _) :: ((l2, _, _) :: _ as rest) ->
          Alcotest.(check string) "tiling" (Bound.to_string r1) (Bound.to_string l2);
          check_tiling rest
      | [ (_, r, _) ] -> Alcotest.(check string) "ends at HIGH" "HIGH" (Bound.to_string r)
      | [] -> Alcotest.fail "no gaps"
    in
    check_tiling gaps

  let tests name =
    ( name,
      [
        Alcotest.test_case "empty map" `Quick test_empty;
        Alcotest.test_case "sentinels always present" `Quick test_sentinels_present;
        Alcotest.test_case "figure 1 layout" `Quick test_figure1_layout;
        Alcotest.test_case "figure 4: insert splits gap" `Quick test_figure4_insert_splits_gap;
        Alcotest.test_case "figure 5: coalesce after delete" `Quick
          test_figure5_coalesce_after_delete;
        Alcotest.test_case "coalesce with entry absent" `Quick test_coalesce_on_absent_rep;
        Alcotest.test_case "update in place" `Quick test_update_in_place;
        Alcotest.test_case "predecessor of entry" `Quick test_predecessor_of_entry;
        Alcotest.test_case "predecessor of absent key" `Quick test_predecessor_of_absent_key;
        Alcotest.test_case "predecessor of first entry" `Quick
          test_predecessor_of_first_entry_is_low;
        Alcotest.test_case "predecessor of HIGH" `Quick test_predecessor_of_high;
        Alcotest.test_case "predecessor of LOW rejected" `Quick test_predecessor_of_low_invalid;
        Alcotest.test_case "successor of entry" `Quick test_successor_of_entry;
        Alcotest.test_case "successor of last entry" `Quick test_successor_of_last_entry_is_high;
        Alcotest.test_case "successor of LOW" `Quick test_successor_of_low;
        Alcotest.test_case "successor of HIGH rejected" `Quick test_successor_of_high_invalid;
        Alcotest.test_case "gap version sides" `Quick
          test_successor_gap_version_distinguishes_sides;
        Alcotest.test_case "coalesce missing endpoint" `Quick test_coalesce_missing_endpoint;
        Alcotest.test_case "coalesce inverted range" `Quick test_coalesce_inverted_range;
        Alcotest.test_case "coalesce LOW..HIGH" `Quick test_coalesce_full_range;
        Alcotest.test_case "count strictly between" `Quick test_count_strictly_between;
        Alcotest.test_case "entries sorted" `Quick test_entries_sorted;
        Alcotest.test_case "gaps partition the key space" `Quick test_gaps_partition;
      ] )
end

module Ref_unit = Make_unit (G.Reference)
module Btree_unit = Make_unit (G.Btree)

(* --- model-based equivalence: Btree vs Reference --------------------------- *)

(* Interpret a seeded random program against both implementations and compare
   all observations. Small branching stresses splits/merges/borrows. *)
let run_model_program ~branching ~seed ~ops =
  let rng = Repdir_util.Rng.create (Int64.of_int seed) in
  let reference = G.Reference.create () in
  let btree = G.Btree.create_with ~branching () in
  let universe = Array.init 40 (fun i -> Key.of_int i) in
  let next_version = ref 1 in
  let random_bound () =
    match Repdir_util.Rng.int rng 12 with
    | 0 -> Bound.Low
    | 1 -> Bound.High
    | _ -> Bound.Key (Repdir_util.Rng.pick rng universe)
  in
  let compare_full_state step =
    let e_ref = G.Reference.entries reference and e_bt = G.Btree.entries btree in
    if e_ref <> e_bt then failwith (Printf.sprintf "entries diverge at step %d" step);
    let g_ref = G.Reference.gaps reference and g_bt = G.Btree.gaps btree in
    if g_ref <> g_bt then failwith (Printf.sprintf "gaps diverge at step %d" step);
    (match G.Btree.check_invariants btree with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "btree invariant broken at step %d: %s" step e));
    (* Probe queries across the whole bound space. *)
    Array.iter
      (fun k ->
        let b = Bound.Key k in
        if G.Reference.lookup reference b <> G.Btree.lookup btree b then
          failwith (Printf.sprintf "lookup %s diverges at step %d" k step);
        if G.Reference.predecessor reference b <> G.Btree.predecessor btree b then
          failwith (Printf.sprintf "predecessor %s diverges at step %d" k step);
        if G.Reference.successor reference b <> G.Btree.successor btree b then
          failwith (Printf.sprintf "successor %s diverges at step %d" k step))
      universe;
    (* Range views agree on a random interval. *)
    let a = Bound.Key (Repdir_util.Rng.pick rng universe)
    and b = Bound.Key (Repdir_util.Rng.pick rng universe) in
    let lo, hi = if Bound.compare a b <= 0 then (a, b) else (b, a) in
    if Bound.compare lo hi < 0 then begin
      if
        G.Reference.entries_between reference ~lo ~hi <> G.Btree.entries_between btree ~lo ~hi
      then failwith (Printf.sprintf "entries_between diverges at step %d" step);
      if
        G.Reference.count_strictly_between reference ~lo ~hi
        <> G.Btree.count_strictly_between btree ~lo ~hi
      then failwith (Printf.sprintf "count diverges at step %d" step)
    end
  in
  for step = 1 to ops do
    (match Repdir_util.Rng.int rng 6 with
    | 0 | 1 ->
        (* insert or update *)
        let k = Repdir_util.Rng.pick rng universe in
        let v = !next_version in
        incr next_version;
        G.Reference.insert reference k v k;
        G.Btree.insert btree k v k
    | 2 ->
        (* low-level removal (transaction-undo path) *)
        let k = Repdir_util.Rng.pick rng universe in
        let r1 = G.Reference.remove reference k in
        let r2 = G.Btree.remove btree k in
        if r1 <> r2 then failwith (Printf.sprintf "remove outcome diverges at %d" step)
    | 3 ->
        (* low-level gap re-versioning (undo/replay path) *)
        let bounds =
          Array.of_list
            (Bound.Low :: List.map (fun (k, _, _) -> Bound.Key k) (G.Reference.entries reference))
        in
        let b = Repdir_util.Rng.pick rng bounds in
        let v = !next_version in
        incr next_version;
        G.Reference.set_gap_after reference b v;
        G.Btree.set_gap_after btree b v
    | _ -> (
        (* coalesce over a valid random range *)
        let lo = random_bound () and hi = random_bound () in
        let lo, hi =
          if Bound.compare lo hi <= 0 then (lo, hi) else (hi, lo)
        in
        if Bound.compare lo hi < 0 then
          let valid b =
            match b with
            | Bound.Low | Bound.High -> true
            | Bound.Key k -> G.Reference.mem reference k
          in
          if valid lo && valid hi then begin
            let v = !next_version in
            incr next_version;
            let r1 = G.Reference.coalesce reference ~lo ~hi v in
            let r2 = G.Btree.coalesce btree ~lo ~hi v in
            if r1 <> r2 then failwith (Printf.sprintf "coalesce count diverges at %d" step)
          end));
    compare_full_state step
  done

let model_equivalence =
  QCheck.Test.make ~name:"btree equals reference on random programs" ~count:60
    QCheck.(pair (int_bound 100_000) (int_bound 4))
    (fun (seed, b) ->
      run_model_program ~branching:(4 + b) ~seed ~ops:120;
      true)

(* Long single-run soak with the default branching. *)
let test_model_soak () = run_model_program ~branching:32 ~seed:424_242 ~ops:600

(* --- B+tree structural stress ----------------------------------------------- *)

let test_btree_sequential_fill_and_drain () =
  let g = G.Btree.create_with ~branching:4 () in
  let n = 500 in
  for i = 0 to n - 1 do
    G.Btree.insert g (Key.of_int i) 1 "x";
    match G.Btree.check_invariants g with
    | Ok () -> ()
    | Error e -> Alcotest.failf "after insert %d: %s" i e
  done;
  Alcotest.(check int) "size" n (G.Btree.size g);
  (* Drain via coalesce of the full range. *)
  let removed = G.Btree.coalesce g ~lo:Bound.Low ~hi:Bound.High 2 in
  Alcotest.(check int) "all removed" n removed;
  Alcotest.(check int) "empty" 0 (G.Btree.size g);
  match G.Btree.check_invariants g with Ok () -> () | Error e -> Alcotest.fail e

let test_btree_reverse_fill () =
  let g = G.Btree.create_with ~branching:4 () in
  for i = 499 downto 0 do
    G.Btree.insert g (Key.of_int i) 1 "x"
  done;
  (match G.Btree.check_invariants g with Ok () -> () | Error e -> Alcotest.fail e);
  let keys = List.map (fun (k, _, _) -> k) (G.Btree.entries g) in
  Alcotest.(check int) "count" 500 (List.length keys);
  Alcotest.(check bool) "sorted" true
    (List.sort Key.compare keys = keys)

let test_btree_interleaved_coalesce () =
  let g = G.Btree.create_with ~branching:4 () in
  for i = 0 to 999 do
    G.Btree.insert g (Key.of_int i) 1 "x"
  done;
  (* Repeatedly coalesce random slices between surviving entries. *)
  let rng = Repdir_util.Rng.create 99L in
  for round = 1 to 60 do
    let entries = G.Btree.entries g in
    let n = List.length entries in
    if n >= 2 then begin
      let i = Repdir_util.Rng.int rng (n - 1) in
      let j = i + 1 + Repdir_util.Rng.int rng (min 20 (n - i - 1)) in
      let key_at idx = match List.nth_opt entries idx with
        | Some (k, _, _) -> Bound.Key k
        | None -> Bound.High
      in
      let lo = key_at i and hi = key_at j in
      if Bound.compare lo hi < 0 then
        ignore (G.Btree.coalesce g ~lo ~hi (round + 1));
      match G.Btree.check_invariants g with
      | Ok () -> ()
      | Error e -> Alcotest.failf "round %d: %s" round e
    end
  done

let test_btree_rejects_tiny_branching () =
  Alcotest.check_raises "branching < 4"
    (Invalid_argument "Btree.create_with: branching must be >= 4") (fun () ->
      ignore (G.Btree.create_with ~branching:3 ()))

let () =
  Alcotest.run "gapmap"
    [
      Ref_unit.tests "reference";
      Btree_unit.tests "btree";
      ( "model",
        [
          QCheck_alcotest.to_alcotest model_equivalence;
          Alcotest.test_case "soak 600 ops" `Slow test_model_soak;
        ] );
      ( "btree-stress",
        [
          Alcotest.test_case "sequential fill and drain" `Quick
            test_btree_sequential_fill_and_drain;
          Alcotest.test_case "reverse fill" `Quick test_btree_reverse_fill;
          Alcotest.test_case "interleaved coalesce" `Quick test_btree_interleaved_coalesce;
          Alcotest.test_case "rejects tiny branching" `Quick test_btree_rejects_tiny_branching;
        ] );
    ]
