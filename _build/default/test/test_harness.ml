(* Tests for the experiment harness: the §4 statistics land in the paper's
   reported windows, the quorum-stability and concurrency claims hold with
   the expected direction and rough magnitude, locality is exact, the fault
   timeline is consistent, and the simulated world's transport behaves. *)

open Repdir_util
open Repdir_quorum
open Repdir_harness

let cfg_322 = Config.simple ~n:3 ~r:2 ~w:2

(* --- Experiment: Figure 15's quantitative targets ------------------------------------ *)

let run_322 ?(seed = 2024L) ~entries ~ops () =
  Experiment.run ~seed ~config:cfg_322 ~n_entries:entries ~ops ()

let within name lo hi x =
  if x < lo || x > hi then Alcotest.failf "%s = %.3f outside [%g, %g]" name x lo hi

let test_figure15_100_entries () =
  (* Paper (Figure 15, 100 entries): 1.33 / 0.88 / 0.44. Allow generous
     windows for seed variation at 20k ops. *)
  let o = run_322 ~entries:100 ~ops:20_000 () in
  within "entries in ranges coalesced" 1.25 1.45 (Stats.mean o.stats.entries_coalesced);
  within "deletions while coalescing" 0.75 1.00 (Stats.mean o.stats.deletions_while_coalescing);
  within "insertions while coalescing" 0.38 0.52
    (Stats.mean o.stats.insertions_while_coalescing);
  (* Insertions per delete can never exceed 2 (one predecessor, one
     successor, each into at most... W-1 members lack them — but the paper
     observed max exactly 2 for 3-2-2, where at most one member can lack
     each). *)
  Alcotest.(check bool) "max insertions bounded" true
    (Stats.max o.stats.insertions_while_coalescing <= 2.0)

let test_figure15_deterministic_given_seed () =
  let a = run_322 ~seed:7L ~entries:100 ~ops:2_000 () in
  let b = run_322 ~seed:7L ~entries:100 ~ops:2_000 () in
  Alcotest.(check (float 0.0)) "same seed same stats"
    (Stats.mean a.stats.entries_coalesced)
    (Stats.mean b.stats.entries_coalesced);
  let c = run_322 ~seed:8L ~entries:100 ~ops:2_000 () in
  Alcotest.(check bool) "different seed differs" true
    (Stats.mean a.stats.entries_coalesced <> Stats.mean c.stats.entries_coalesced)

let test_single_rep_has_no_overhead () =
  (* 1-1-1: every entry lives everywhere; no ghosts, no repairs; every
     coalesce removes exactly the deleted entry. *)
  let o = Experiment.run ~config:(Config.simple ~n:1 ~r:1 ~w:1) ~n_entries:100 ~ops:5_000 () in
  Alcotest.(check (float 1e-9)) "entries = 1 exactly" 1.0
    (Stats.mean o.stats.entries_coalesced);
  Alcotest.(check (float 1e-9)) "no ghosts" 0.0
    (Stats.mean o.stats.deletions_while_coalescing);
  Alcotest.(check (float 1e-9)) "no repairs" 0.0
    (Stats.mean o.stats.insertions_while_coalescing)

let test_write_all_has_no_overhead () =
  (* Read-one/write-all (3-1-3): entries exist on every representative, so
     deletes never find ghosts nor need repairs — the unanimous-update
     comparison §4 makes. *)
  let o = Experiment.run ~config:(Config.simple ~n:3 ~r:1 ~w:3) ~n_entries:100 ~ops:5_000 () in
  Alcotest.(check (float 1e-9)) "no ghosts" 0.0
    (Stats.mean o.stats.deletions_while_coalescing);
  Alcotest.(check (float 1e-9)) "no repairs" 0.0
    (Stats.mean o.stats.insertions_while_coalescing)

let test_experiment_counts () =
  let o = run_322 ~entries:50 ~ops:3_000 () in
  Alcotest.(check int) "ops recorded" 3_000 o.ops;
  Alcotest.(check bool) "deletes counted" true (o.deletes > 0);
  Alcotest.(check int) "one sample per delete"
    o.deletes
    (Stats.count o.stats.deletions_while_coalescing);
  Alcotest.(check int) "W samples per delete"
    (2 * o.deletes)
    (Stats.count o.stats.entries_coalesced);
  Alcotest.(check bool) "size stays near target" true (abs (o.final_size - 50) <= 1)

(* --- quorum stability (§5) -------------------------------------------------------------- *)

let test_stable_quorums_make_coalescing_free () =
  let random = Experiment.run ~config:cfg_322 ~n_entries:100 ~ops:5_000 () in
  let stable =
    Experiment.run ~picker:(Picker.Fixed [| 0; 1; 2 |]) ~config:cfg_322 ~n_entries:100
      ~ops:5_000 ()
  in
  Alcotest.(check (float 1e-9)) "stable: no ghosts" 0.0
    (Stats.mean stable.stats.deletions_while_coalescing);
  Alcotest.(check (float 1e-9)) "stable: no repairs" 0.0
    (Stats.mean stable.stats.insertions_while_coalescing);
  Alcotest.(check bool) "random pays ghosts" true
    (Stats.mean random.stats.deletions_while_coalescing > 0.5)

(* --- concurrency (§2) ---------------------------------------------------------------------- *)

let test_concurrency_gap_beats_single_version () =
  let gap =
    Concurrency.run ~duration:400.0 ~scheme:Concurrency.Gap ~clients:4 ~config:cfg_322 ()
  in
  let single =
    Concurrency.run ~duration:400.0 ~scheme:Concurrency.Single_version ~clients:4
      ~config:cfg_322 ()
  in
  Alcotest.(check bool) "gap commits at least 3x more" true
    (gap.Concurrency.committed >= 3 * max 1 single.Concurrency.committed);
  Alcotest.(check bool) "single version thrashes on conflicts" true
    (single.Concurrency.deadlock_aborts + single.Concurrency.lock_waits
    > gap.Concurrency.deadlock_aborts + gap.Concurrency.lock_waits)

let test_concurrency_skew_hurts () =
  (* §2: uneven access distributions limit concurrency even with fine-
     grained ranges — hot keys conflict. *)
  let uniform =
    Concurrency.run ~duration:400.0 ~scheme:Concurrency.Gap ~clients:8 ~config:cfg_322 ()
  in
  let skewed =
    Concurrency.run ~duration:400.0 ~zipf_s:1.5 ~scheme:Concurrency.Gap ~clients:8
      ~config:cfg_322 ()
  in
  Alcotest.(check bool) "skew lowers throughput" true
    (skewed.Concurrency.committed < uniform.Concurrency.committed);
  Alcotest.(check bool) "skew raises conflicts" true
    (skewed.Concurrency.deadlock_aborts + skewed.Concurrency.lock_waits
    > uniform.Concurrency.deadlock_aborts + uniform.Concurrency.lock_waits)

let test_concurrency_gap_scales () =
  let one = Concurrency.run ~duration:400.0 ~scheme:Concurrency.Gap ~clients:1 ~config:cfg_322 () in
  let four =
    Concurrency.run ~duration:400.0 ~scheme:Concurrency.Gap ~clients:4 ~config:cfg_322 ()
  in
  Alcotest.(check bool) "4 clients commit >2x of 1 client" true
    (four.Concurrency.committed > 2 * one.Concurrency.committed)

(* --- locality (Figure 16) --------------------------------------------------------------------- *)

let test_locality_inquiries_fully_local () =
  let o = Locality.run ~ops:2_000 () in
  Alcotest.(check (float 1e-9)) "A local" 1.0 o.Locality.a_reads_local_fraction;
  Alcotest.(check (float 1e-9)) "B local" 1.0 o.Locality.b_reads_local_fraction

let test_locality_remote_writes_balanced () =
  let o = Locality.run ~ops:4_000 () in
  let row i = List.nth o.Locality.rows i in
  (* A's writes on the remote pair (B1, B2) differ by < 25%. *)
  let b1 = (row 2).Locality.writes_from_a and b2 = (row 3).Locality.writes_from_a in
  Alcotest.(check bool) "balanced" true
    (abs (b1 - b2) * 4 < max 1 (b1 + b2));
  Alcotest.(check bool) "remote writes happen" true (b1 + b2 > 0)

(* --- faults -------------------------------------------------------------------------------------- *)

let test_fault_timeline () =
  let o = Faults.run ~ops_per_phase:80 () in
  Alcotest.(check int) "no consistency violations" 0 o.Faults.consistency_violations;
  let phase label = List.find (fun p -> p.Faults.label = label) o.Faults.phases in
  Alcotest.(check int) "all up: everything succeeds" 80 (phase "all representatives up").Faults.succeeded;
  Alcotest.(check int) "one down: everything succeeds" 80 (phase "rep0 crashed").Faults.succeeded;
  Alcotest.(check int) "two down: nothing succeeds" 0
    (phase "rep0 and rep1 crashed").Faults.succeeded;
  Alcotest.(check int) "stale recovery: everything succeeds" 80
    (phase "rep1 recovered (stale)").Faults.succeeded;
  Alcotest.(check int) "full recovery: everything succeeds" 80
    (phase "all recovered").Faults.succeeded

(* --- sim world transport ---------------------------------------------------------------------------- *)

let test_sim_world_lookup_roundtrip () =
  let open Repdir_sim in
  let world = Sim_world.create ~config:cfg_322 () in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client world 0 in
  let got = ref None in
  Sim.spawn sim (fun () ->
      ignore (Repdir_core.Suite.insert suite "k" "v");
      got := Repdir_core.Suite.lookup suite "k");
  Sim.run sim;
  match !got with
  | Some (_, v) -> Alcotest.(check string) "value over RPC" "v" v
  | None -> Alcotest.fail "lookup lost"

let test_sim_world_crash_mid_run_recovers () =
  let open Repdir_sim in
  let world = Sim_world.create ~rpc_timeout:25.0 ~config:cfg_322 () in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client world 0 in
  let ok = ref true in
  Sim.spawn sim (fun () ->
      ignore (Repdir_core.Suite.insert suite "k" "v1");
      Sim_world.crash_rep world 0;
      (match Repdir_core.Suite.update suite "k" "v2" with
      | Ok () -> ()
      | Error `Not_present -> ok := false);
      Sim_world.recover_rep world 0;
      match Repdir_core.Suite.lookup suite "k" with
      | Some (_, "v2") -> ()
      | _ -> ok := false);
  Sim.run sim;
  Alcotest.(check bool) "consistent across crash/recovery" true !ok

let test_sim_world_partition_blocks_then_heals () =
  let open Repdir_sim in
  let world = Sim_world.create ~rpc_timeout:10.0 ~config:cfg_322 () in
  let sim = Sim_world.sim world in
  let net = Sim_world.net world in
  let suite = Sim_world.suite_for_client world 0 in
  let phases = ref [] in
  Sim.spawn sim (fun () ->
      ignore (Repdir_core.Suite.insert suite "k" "v");
      (* Cut the client (node 3) off from reps 1 and 2: only rep0 reachable,
         no quorum. The picker still believes they are up (they are), so
         calls time out and the operation ends Unavailable. *)
      Net.partition net [ 3 ] [ 1; 2 ];
      (match Repdir_core.Suite.lookup suite "k" with
      | exception Repdir_core.Suite.Unavailable _ -> phases := "blocked" :: !phases
      | _ -> phases := "wrong" :: !phases);
      Net.heal_partition net;
      match Repdir_core.Suite.lookup suite "k" with
      | Some _ -> phases := "healed" :: !phases
      | None -> phases := "wrong" :: !phases);
  Sim.run sim;
  Alcotest.(check (list string)) "partition then heal" [ "healed"; "blocked" ] !phases

let () =
  Alcotest.run "harness"
    [
      ( "figure15",
        [
          Alcotest.test_case "paper windows at 100 entries" `Slow test_figure15_100_entries;
          Alcotest.test_case "deterministic" `Quick test_figure15_deterministic_given_seed;
          Alcotest.test_case "1-1-1 zero overhead" `Quick test_single_rep_has_no_overhead;
          Alcotest.test_case "write-all zero overhead" `Quick test_write_all_has_no_overhead;
          Alcotest.test_case "sample counts" `Quick test_experiment_counts;
        ] );
      ( "claims",
        [
          Alcotest.test_case "stable quorums free coalescing (§5)" `Quick
            test_stable_quorums_make_coalescing_free;
          Alcotest.test_case "gap beats single version (§2)" `Slow
            test_concurrency_gap_beats_single_version;
          Alcotest.test_case "gap scheme scales (§2)" `Slow test_concurrency_gap_scales;
          Alcotest.test_case "skew limits concurrency (§2)" `Slow test_concurrency_skew_hurts;
          Alcotest.test_case "locality inquiries local (Fig 16)" `Quick
            test_locality_inquiries_fully_local;
          Alcotest.test_case "locality remote writes balanced" `Quick
            test_locality_remote_writes_balanced;
          Alcotest.test_case "fault timeline" `Quick test_fault_timeline;
        ] );
      ( "sim-world",
        [
          Alcotest.test_case "rpc roundtrip" `Quick test_sim_world_lookup_roundtrip;
          Alcotest.test_case "crash mid-run" `Quick test_sim_world_crash_mid_run_recovers;
          Alcotest.test_case "partition blocks then heals" `Quick
            test_sim_world_partition_blocks_then_heals;
        ] );
    ]
