(* Tests for the §2 baseline replication strategies: correct semantics when
   healthy, the characteristic failure/cost behaviours the paper attributes
   to each, and the naive scheme's delete ambiguity. *)

open Repdir_util
open Repdir_quorum
open Repdir_baselines

let cfg_322 = Config.simple ~n:3 ~r:2 ~w:2

(* Shared semantic check: a directory implementation must track a sequential
   model over a random single-client history while all replicas are up. *)
let run_model_check ~lookup ~insert ~update ~delete ~seed ~ops =
  let rng = Rng.create (Int64.of_int seed) in
  let model = Hashtbl.create 32 in
  let keys = Array.init 20 (fun i -> Repdir_key.Key.of_int i) in
  for step = 1 to ops do
    let k = Rng.pick rng keys in
    let v = Printf.sprintf "v%d" step in
    match Rng.int rng 4 with
    | 0 ->
        if (insert k v : bool) <> not (Hashtbl.mem model k) then failwith "insert outcome";
        if not (Hashtbl.mem model k) then Hashtbl.replace model k v
    | 1 ->
        if (update k v : bool) <> Hashtbl.mem model k then failwith "update outcome";
        if Hashtbl.mem model k then Hashtbl.replace model k v
    | 2 ->
        if (delete k : bool) <> Hashtbl.mem model k then failwith "delete outcome";
        Hashtbl.remove model k
    | _ ->
        if (lookup k : string option) <> Hashtbl.find_opt model k then
          failwith (Printf.sprintf "lookup mismatch at step %d" step)
  done

(* --- unanimous update ----------------------------------------------------------------- *)

let test_unanimous_model () =
  let u = Unanimous.create ~n:3 () in
  run_model_check ~seed:1 ~ops:600
    ~lookup:(Unanimous.lookup u)
    ~insert:(fun k v -> Unanimous.insert u k v = Ok ())
    ~update:(fun k v -> Unanimous.update u k v = Ok ())
    ~delete:(Unanimous.delete u)

let test_unanimous_blocks_writes_on_any_crash () =
  let u = Unanimous.create ~n:3 () in
  ignore (Unanimous.insert u "k" "v");
  Unanimous.crash u 2;
  (* Reads still work from any up replica... *)
  Alcotest.(check (option string)) "read ok" (Some "v") (Unanimous.lookup u "k");
  (* ...but a single down replica blocks every modification. *)
  (try
     ignore (Unanimous.insert u "other" "v");
     Alcotest.fail "write with a replica down"
   with Replica_set.Unavailable _ -> ());
  Unanimous.recover u 2;
  (match Unanimous.insert u "other" "v" with Ok () -> () | Error _ -> Alcotest.fail "insert");
  Alcotest.(check int) "both entries" 2 (Unanimous.size u)

let test_unanimous_recovery_resyncs () =
  let u = Unanimous.create ~n:3 () in
  ignore (Unanimous.insert u "k" "v1");
  Unanimous.crash u 1;
  (* Reads must not hit the down replica; writes blocked. Recover and verify
     the rejoining replica serves current data. *)
  Unanimous.recover u 1;
  ignore (Unanimous.update u "k" "v2");
  for _ = 1 to 20 do
    Alcotest.(check (option string)) "any replica current" (Some "v2") (Unanimous.lookup u "k")
  done

(* --- file voting ------------------------------------------------------------------------ *)

let test_file_voting_model () =
  let fv = File_voting.create ~config:cfg_322 () in
  run_model_check ~seed:2 ~ops:600
    ~lookup:(File_voting.lookup fv)
    ~insert:(fun k v -> File_voting.insert fv k v = Ok ())
    ~update:(fun k v -> File_voting.update fv k v = Ok ())
    ~delete:(File_voting.delete fv)

let test_file_voting_survives_minority_crash () =
  let fv = File_voting.create ~config:cfg_322 () in
  ignore (File_voting.insert fv "k" "v");
  File_voting.crash fv 0;
  Alcotest.(check (option string)) "read" (Some "v") (File_voting.lookup fv "k");
  (match File_voting.update fv "k" "v2" with Ok () -> () | Error _ -> Alcotest.fail "update");
  File_voting.recover fv 0;
  Alcotest.(check (option string)) "stale replica outvoted" (Some "v2")
    (File_voting.lookup fv "k")

let test_file_voting_version_advances () =
  let fv = File_voting.create ~config:cfg_322 () in
  ignore (File_voting.insert fv "a" "v");
  let v1 = File_voting.version fv in
  ignore (File_voting.insert fv "b" "v");
  ignore (File_voting.delete fv "a");
  let v2 = File_voting.version fv in
  Alcotest.(check bool) "single version number grows with every change" true (v2 >= v1 + 2)

let test_file_voting_whole_file_cost () =
  (* Every modification rewrites the entire directory: entries_written per
     update grows linearly with directory size — the cost gap versioning
     avoids. *)
  let cost_at n =
    let fv = File_voting.create ~config:cfg_322 () in
    for i = 0 to n - 1 do
      ignore (File_voting.insert fv (Repdir_key.Key.of_int i) "v")
    done;
    let before = File_voting.entries_written fv in
    ignore (File_voting.update fv (Repdir_key.Key.of_int 0) "v'");
    File_voting.entries_written fv - before
  in
  let c10 = cost_at 10 and c100 = cost_at 100 in
  Alcotest.(check int) "10-entry update ships 2x10 entries" 20 c10;
  Alcotest.(check int) "100-entry update ships 2x100 entries" 200 c100

(* --- primary copy ------------------------------------------------------------------------- *)

let test_primary_copy_primary_reads_current () =
  let p = Primary_copy.create ~n:3 () in
  ignore (Primary_copy.insert p "k" "v1");
  Alcotest.(check (option string)) "primary current" (Some "v1")
    (Primary_copy.lookup_primary p "k")

let test_primary_copy_stale_secondary_reads () =
  let p = Primary_copy.create ~n:3 () in
  ignore (Primary_copy.insert p "k" "v1");
  Primary_copy.propagate p;
  ignore (Primary_copy.update p "k" "v2");
  (* Until propagation, some replica still answers v1: the §2 objection. *)
  let saw_stale = ref false in
  for _ = 1 to 200 do
    if Primary_copy.lookup_any p "k" = Some "v1" then saw_stale := true
  done;
  Alcotest.(check bool) "stale read observable" true !saw_stale;
  Primary_copy.propagate p;
  for _ = 1 to 50 do
    Alcotest.(check (option string)) "current after propagate" (Some "v2")
      (Primary_copy.lookup_any p "k")
  done

let test_primary_copy_failover_loses_unpropagated () =
  let p = Primary_copy.create ~n:3 () in
  ignore (Primary_copy.insert p "durable" "v");
  Primary_copy.propagate p;
  ignore (Primary_copy.insert p "volatile" "v");
  Alcotest.(check int) "one queued update" 1 (Primary_copy.pending_updates p);
  Primary_copy.crash p 0;
  Alcotest.(check int) "failover to next replica" 1 (Primary_copy.primary p);
  Alcotest.(check (option string)) "propagated entry survives" (Some "v")
    (Primary_copy.lookup_primary p "durable");
  Alcotest.(check (option string)) "unpropagated update lost" None
    (Primary_copy.lookup_primary p "volatile")

let test_primary_copy_recovery_rejoins () =
  let p = Primary_copy.create ~n:3 () in
  ignore (Primary_copy.insert p "k" "v");
  Primary_copy.crash p 2;
  ignore (Primary_copy.update p "k" "v2");
  Primary_copy.propagate p;
  Primary_copy.recover p 2;
  for _ = 1 to 50 do
    Alcotest.(check (option string)) "rejoined replica current" (Some "v2")
      (Primary_copy.lookup_any p "k")
  done

(* --- static partitioning --------------------------------------------------------------------- *)

let test_static_partition_model () =
  let sp = Static_partition.create ~config:cfg_322 ~partitions:4 () in
  run_model_check ~seed:3 ~ops:600
    ~lookup:(Static_partition.lookup sp)
    ~insert:(fun k v -> Static_partition.insert sp k v = Ok ())
    ~update:(fun k v -> Static_partition.update sp k v = Ok ())
    ~delete:(Static_partition.delete sp)

let test_static_partition_delete_then_reinsert () =
  let sp = Static_partition.create ~config:cfg_322 ~partitions:2 () in
  ignore (Static_partition.insert sp "k" "v1");
  Alcotest.(check bool) "delete" true (Static_partition.delete sp "k");
  Alcotest.(check (option string)) "gone" None (Static_partition.lookup sp "k");
  (match Static_partition.insert sp "k" "v2" with
  | Ok () -> ()
  | Error `Already_present -> Alcotest.fail "reinsert rejected");
  Alcotest.(check (option string)) "reinserted wins over stale copies" (Some "v2")
    (Static_partition.lookup sp "k")

let test_static_partition_conflict_scope () =
  let sp = Static_partition.create ~config:cfg_322 ~partitions:4 () in
  (match Static_partition.conflict_scope sp (`Lookup "k") with
  | Static_partition.Single_key "k" -> ()
  | Static_partition.Single_key _ | Static_partition.Whole_partition _ ->
      Alcotest.fail "lookup should be key-granular");
  match Static_partition.conflict_scope sp (`Delete "k") with
  | Static_partition.Whole_partition p ->
      Alcotest.(check int) "delete locks its partition" (Static_partition.partition_of sp "k") p
  | Static_partition.Single_key _ -> Alcotest.fail "delete must lock the whole partition"

let test_static_partition_not_present_version_grows () =
  (* Repeated delete/insert cycles keep the partition version dominating: a
     fresh insert after a delete must be visible even via quorums that
     contain a stale replica. *)
  let sp = Static_partition.create ~seed:4L ~config:cfg_322 ~partitions:1 () in
  for round = 1 to 20 do
    ignore (Static_partition.insert sp "k" (Printf.sprintf "v%d" round));
    Alcotest.(check (option string)) "visible"
      (Some (Printf.sprintf "v%d" round))
      (Static_partition.lookup sp "k");
    Alcotest.(check bool) "deleted" true (Static_partition.delete sp "k");
    Alcotest.(check (option string)) "invisible" None (Static_partition.lookup sp "k")
  done

(* --- tombstones ---------------------------------------------------------------------------------- *)

let test_tombstone_model () =
  let tb = Tombstone.create ~config:cfg_322 () in
  run_model_check ~seed:5 ~ops:600
    ~lookup:(Tombstone.lookup tb)
    ~insert:(fun k v -> Tombstone.insert tb k v = Ok ())
    ~update:(fun k v -> Tombstone.update tb k v = Ok ())
    ~delete:(Tombstone.delete tb)

let test_tombstone_space_never_reclaimed () =
  let tb = Tombstone.create ~config:cfg_322 () in
  for i = 0 to 49 do
    ignore (Tombstone.insert tb (Repdir_key.Key.of_int i) "v");
    ignore (Tombstone.delete tb (Repdir_key.Key.of_int i))
  done;
  Alcotest.(check int) "live size zero" 0 (Tombstone.size tb);
  Alcotest.(check bool) "physical size ~ every key ever" true
    (Tombstone.physical_size tb >= 30);
  (* Contrast: the paper's algorithm reclaims — a representative's entry
     count after insert+delete churn stays bounded by the live set. *)
  let open Repdir_rep in
  let open Repdir_core in
  let reps = Array.init 3 (fun i -> Rep.create ~name:(string_of_int i) ()) in
  let suite =
    Suite.create ~config:cfg_322 ~transport:(Transport.local reps)
      ~txns:(Repdir_txn.Txn.Manager.create ()) ()
  in
  for i = 0 to 49 do
    ignore (Suite.insert suite (Repdir_key.Key.of_int i) "v");
    ignore (Suite.delete suite (Repdir_key.Key.of_int i))
  done;
  Array.iter
    (fun rep ->
      Alcotest.(check bool) "gap scheme reclaims" true (Rep.size rep <= 2))
    reps

(* --- naive per-entry versioning --------------------------------------------------------------------- *)

let test_naive_healthy_path () =
  let nv = Naive_per_entry.create ~config:cfg_322 () in
  (match Naive_per_entry.insert nv "k" "v" with Ok () -> () | Error _ -> Alcotest.fail "insert");
  match Naive_per_entry.lookup nv "k" with
  | Naive_per_entry.Present v -> Alcotest.(check string) "value" "v" v
  | _ -> Alcotest.fail "insert not visible"

let test_naive_figure3_ambiguity () =
  (* Figures 1-3: insert at {A,B}, delete at {B,C}, then ask {A,C}. *)
  let nv = Naive_per_entry.create ~config:cfg_322 () in
  Naive_per_entry.crash nv 2;
  ignore (Naive_per_entry.insert nv "b" "vb");
  Naive_per_entry.recover nv 2;
  Naive_per_entry.crash nv 0;
  ignore (Naive_per_entry.delete nv "b");
  Naive_per_entry.recover nv 0;
  Naive_per_entry.crash nv 1;
  (match Naive_per_entry.lookup nv "b" with
  | Naive_per_entry.Ambiguous -> ()
  | Naive_per_entry.Present _ -> Alcotest.fail "stale presence believed"
  | Naive_per_entry.Absent -> Alcotest.fail "claims certainty it cannot have");
  Naive_per_entry.recover nv 1;
  (* The same history on the paper's algorithm is unambiguous — covered by
     the suite tests; here we just confirm the naive scheme cannot even
     insert over the wreckage without seeing the ambiguity. *)
  Naive_per_entry.crash nv 1;
  match Naive_per_entry.insert nv "b" "v2" with
  | Error `Ambiguous -> ()
  | Ok () | Error `Already_present -> Alcotest.fail "insert over ambiguity"

let () =
  Alcotest.run "baselines"
    [
      ( "unanimous",
        [
          Alcotest.test_case "model" `Quick test_unanimous_model;
          Alcotest.test_case "writes blocked on crash" `Quick
            test_unanimous_blocks_writes_on_any_crash;
          Alcotest.test_case "recovery resyncs" `Quick test_unanimous_recovery_resyncs;
        ] );
      ( "file-voting",
        [
          Alcotest.test_case "model" `Quick test_file_voting_model;
          Alcotest.test_case "survives minority crash" `Quick
            test_file_voting_survives_minority_crash;
          Alcotest.test_case "version advances" `Quick test_file_voting_version_advances;
          Alcotest.test_case "whole-file write cost" `Quick test_file_voting_whole_file_cost;
        ] );
      ( "primary-copy",
        [
          Alcotest.test_case "primary reads current" `Quick
            test_primary_copy_primary_reads_current;
          Alcotest.test_case "stale secondary reads" `Quick test_primary_copy_stale_secondary_reads;
          Alcotest.test_case "failover loses unpropagated" `Quick
            test_primary_copy_failover_loses_unpropagated;
          Alcotest.test_case "recovery rejoins" `Quick test_primary_copy_recovery_rejoins;
        ] );
      ( "static-partition",
        [
          Alcotest.test_case "model" `Quick test_static_partition_model;
          Alcotest.test_case "delete then reinsert" `Quick test_static_partition_delete_then_reinsert;
          Alcotest.test_case "conflict scope" `Quick test_static_partition_conflict_scope;
          Alcotest.test_case "not-present version grows" `Quick
            test_static_partition_not_present_version_grows;
        ] );
      ( "tombstone",
        [
          Alcotest.test_case "model" `Quick test_tombstone_model;
          Alcotest.test_case "space never reclaimed" `Quick test_tombstone_space_never_reclaimed;
        ] );
      ( "naive",
        [
          Alcotest.test_case "healthy path" `Quick test_naive_healthy_path;
          Alcotest.test_case "figure 3 ambiguity" `Quick test_naive_figure3_ambiguity;
        ] );
    ]
