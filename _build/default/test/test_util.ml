(* Tests for lib/util: RNG determinism and statistical sanity, online
   statistics correctness, table rendering. *)

open Repdir_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different seeds differ" false (Rng.int64 a = Rng.int64 b)

let test_rng_split_independence () =
  let parent = Rng.create 7L in
  let child = Rng.split parent in
  let child_vals = List.init 10 (fun _ -> Rng.int64 child) in
  let parent_vals = List.init 10 (fun _ -> Rng.int64 parent) in
  Alcotest.(check bool) "streams differ" true (child_vals <> parent_vals)

let test_rng_copy () =
  let a = Rng.create 9L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_int_range () =
  let r = Rng.create 3L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_uniformity () =
  let r = Rng.create 5L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d badly skewed: %d vs %d" i c expected)
    buckets

let test_rng_float_range () =
  let r = Rng.create 11L in
  for _ = 1 to 10_000 do
    let v = Rng.float r 1.0 in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_int_invalid () =
  let r = Rng.create 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_sample_without_replacement () =
  let r = Rng.create 13L in
  for _ = 1 to 1000 do
    let k = 1 + Rng.int r 5 in
    let n = k + Rng.int r 5 in
    let s = Rng.sample_without_replacement r k n in
    Alcotest.(check int) "count" k (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    for i = 0 to k - 2 do
      Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i + 1))
    done;
    Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < n)) s
  done

let test_sample_covers_all () =
  let r = Rng.create 17L in
  let s = Rng.sample_without_replacement r 5 5 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation of 0..4" [| 0; 1; 2; 3; 4 |] sorted

let test_sample_too_many () =
  let r = Rng.create 1L in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Rng.sample_without_replacement r 6 5))

let test_shuffle_is_permutation () =
  let r = Rng.create 19L in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_exponential_mean () =
  let r = Rng.create 23L in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4.0" true (abs_float (mean -. 4.0) < 0.1)

(* --- Zipf ------------------------------------------------------------------ *)

let test_zipf_probabilities_sum_to_one () =
  let z = Zipf.create ~n:50 ~s:1.0 in
  let total = ref 0.0 in
  for i = 0 to 49 do
    total := !total +. Zipf.probability z i
  done;
  check_float "sums to 1" 1.0 !total

let test_zipf_monotone () =
  let z = Zipf.create ~n:20 ~s:1.2 in
  for i = 0 to 18 do
    Alcotest.(check bool) "non-increasing" true
      (Zipf.probability z i >= Zipf.probability z (i + 1))
  done

let test_zipf_uniform_degenerate () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  for i = 0 to 9 do
    Alcotest.(check (float 1e-9)) "uniform" 0.1 (Zipf.probability z i)
  done

let test_zipf_sampling_matches_pmf () =
  let z = Zipf.create ~n:10 ~s:1.0 in
  let rng = Rng.create 31L in
  let counts = Array.make 10 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let i = Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  for i = 0 to 9 do
    let expected = Zipf.probability z i *. float_of_int n in
    let got = float_of_int counts.(i) in
    if abs_float (got -. expected) > (expected *. 0.06) +. 50.0 then
      Alcotest.failf "rank %d: %f vs expected %f" i got expected
  done

let test_zipf_rejects_bad_args () =
  (try
     ignore (Zipf.create ~n:0 ~s:1.0);
     Alcotest.fail "n=0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Zipf.create ~n:5 ~s:(-1.0));
    Alcotest.fail "negative s accepted"
  with Invalid_argument _ -> ()

(* --- Stats ----------------------------------------------------------------- *)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  check_float "mean" 0.0 (Stats.mean s);
  check_float "stddev" 0.0 (Stats.stddev s)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Stats.mean s);
  check_float "stddev (population)" 2.0 (Stats.stddev s);
  check_float "max" 9.0 (Stats.max s);
  check_float "min" 2.0 (Stats.min s);
  check_float "total" 40.0 (Stats.total s);
  Alcotest.(check int) "count" 8 (Stats.count s)

let test_stats_single () =
  let s = Stats.create () in
  Stats.add s 3.5;
  check_float "mean" 3.5 (Stats.mean s);
  check_float "stddev" 0.0 (Stats.stddev s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count m);
  check_float "mean" (Stats.mean whole) (Stats.mean m);
  Alcotest.(check (float 1e-6)) "variance" (Stats.variance whole) (Stats.variance m);
  check_float "max" (Stats.max whole) (Stats.max m)

let test_stats_merge_empty () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 5.0;
  let m1 = Stats.merge a b and m2 = Stats.merge b a in
  check_float "merge with empty right" 5.0 (Stats.mean m1);
  check_float "merge with empty left" 5.0 (Stats.mean m2)

let stats_matches_naive =
  QCheck.Test.make ~name:"stats matches naive computation" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n in
      abs_float (Stats.mean s -. mean) < 1e-6
      && abs_float (Stats.variance s -. var) < 1e-3
      && Stats.max s = List.fold_left Float.max neg_infinity xs)

(* --- Table ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~header:[ "config"; "avg"; "max" ] () in
  Table.add_row t [ "3-2-2"; "1.33"; "9" ];
  Table.add_row t [ "5-3-3"; "2.10"; "12" ];
  let out = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 6 = "config");
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count (header, rule, 2 rows, trailing)" 5 (List.length lines)

let test_table_alignment () =
  let t = Table.create ~header:[ "a"; "b" ] () in
  Table.add_row t [ "xx"; "1" ];
  let out = Table.render t in
  (* Right-aligned numeric column: the "1" should be preceded by a space
     filling the width of header "b"... header width is 1, cell width 1, so no
     padding; check the left column instead. *)
  Alcotest.(check bool) "left column padded" true
    (List.exists (fun l -> l = "xx  1") (String.split_on_char '\n' out))

let test_table_short_row_padded () =
  let t = Table.create ~header:[ "a"; "b"; "c" ] () in
  Table.add_row t [ "just-a" ];
  let out = Table.render t in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_too_long_row () =
  let t = Table.create ~header:[ "a" ] () in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than header columns") (fun () ->
      Table.add_row t [ "x"; "y" ])

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int uniformity" `Slow test_rng_int_uniformity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample covers all" `Quick test_sample_covers_all;
          Alcotest.test_case "sample k > n" `Quick test_sample_too_many;
          Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "probabilities sum to 1" `Quick test_zipf_probabilities_sum_to_one;
          Alcotest.test_case "monotone pmf" `Quick test_zipf_monotone;
          Alcotest.test_case "uniform degenerate" `Quick test_zipf_uniform_degenerate;
          Alcotest.test_case "sampling matches pmf" `Slow test_zipf_sampling_matches_pmf;
          Alcotest.test_case "rejects bad args" `Quick test_zipf_rejects_bad_args;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "single" `Quick test_stats_single;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge with empty" `Quick test_stats_merge_empty;
          QCheck_alcotest.to_alcotest stats_matches_naive;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "short row padded" `Quick test_table_short_row_padded;
          Alcotest.test_case "too long row" `Quick test_table_too_long_row;
        ] );
    ]
