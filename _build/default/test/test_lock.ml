(* Tests for the range lock manager: the Figure 7 compatibility matrix,
   FIFO fairness, grant-on-release, and waits-for deadlock detection. *)

open Repdir_key
open Repdir_lock

let iv a b = Bound.Interval.make (Bound.Key a) (Bound.Key b)
let full = Bound.Interval.full

let outcome_testable =
  let pp ppf = function
    | Lock_manager.Granted -> Format.pp_print_string ppf "Granted"
    | Lock_manager.Waiting -> Format.pp_print_string ppf "Waiting"
    | Lock_manager.Deadlock cycle ->
        Format.fprintf ppf "Deadlock[%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
             Format.pp_print_int)
          cycle
  in
  Alcotest.testable pp (fun a b ->
      match (a, b) with
      | Lock_manager.Granted, Lock_manager.Granted | Waiting, Waiting -> true
      | Deadlock _, Deadlock _ -> true
      | _ -> false)

let nop () = ()

let acquire ?(on_grant = nop) mgr txn mode range =
  Lock_manager.acquire mgr ~txn mode range ~on_grant

(* --- Figure 7 compatibility matrix ----------------------------------------- *)

let test_mode_matrix () =
  Alcotest.(check bool) "lookup/lookup" true (Mode.compatible Rep_lookup Rep_lookup);
  Alcotest.(check bool) "lookup/modify" false (Mode.compatible Rep_lookup Rep_modify);
  Alcotest.(check bool) "modify/lookup" false (Mode.compatible Rep_modify Rep_lookup);
  Alcotest.(check bool) "modify/modify" false (Mode.compatible Rep_modify Rep_modify)

let test_intersecting_lookups_compatible () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1 lookup" Granted (acquire m 1 Rep_lookup (iv "a" "m"));
  Alcotest.check outcome_testable "t2 lookup intersecting" Granted
    (acquire m 2 Rep_lookup (iv "g" "z"))

let test_intersecting_modify_conflicts () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1 modify" Granted (acquire m 1 Rep_modify (iv "a" "m"));
  Alcotest.check outcome_testable "t2 modify intersecting waits" Waiting
    (acquire m 2 Rep_modify (iv "g" "z"));
  Alcotest.check outcome_testable "t3 lookup intersecting waits" Waiting
    (acquire m 3 Rep_lookup (iv "a" "b"))

let test_disjoint_modify_compatible () =
  (* The heart of the paper's concurrency claim: modifications of disjoint
     ranges proceed in parallel. *)
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1" Granted (acquire m 1 Rep_modify (iv "a" "c"));
  Alcotest.check outcome_testable "t2 disjoint" Granted (acquire m 2 Rep_modify (iv "x" "z"));
  Alcotest.(check int) "both granted" 2 (Lock_manager.granted_count m)

let test_lookup_blocks_modify () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1 lookup" Granted (acquire m 1 Rep_lookup (iv "a" "m"));
  Alcotest.check outcome_testable "t2 modify waits" Waiting (acquire m 2 Rep_modify (iv "b" "c"))

let test_same_txn_reentrant () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "modify" Granted (acquire m 1 Rep_modify (iv "a" "m"));
  Alcotest.check outcome_testable "own lookup over same range" Granted
    (acquire m 1 Rep_lookup (iv "a" "m"));
  Alcotest.check outcome_testable "own second modify" Granted
    (acquire m 1 Rep_modify (iv "b" "c"))

let test_point_ranges () =
  let m = Lock_manager.create () in
  Alcotest.check outcome_testable "t1 point" Granted
    (acquire m 1 Rep_modify (Bound.Interval.point (Bound.Key "k")));
  Alcotest.check outcome_testable "t2 same point waits" Waiting
    (acquire m 2 Rep_modify (Bound.Interval.point (Bound.Key "k")));
  Alcotest.check outcome_testable "t3 adjacent point ok" Granted
    (acquire m 3 Rep_modify (Bound.Interval.point (Bound.Key "l")))

(* --- release and FIFO ------------------------------------------------------- *)

let test_release_grants_waiter () =
  let m = Lock_manager.create () in
  let granted2 = ref false in
  ignore (acquire m 1 Rep_modify (iv "a" "m"));
  let o = Lock_manager.acquire m ~txn:2 Rep_modify (iv "b" "c") ~on_grant:(fun () -> granted2 := true) in
  Alcotest.check outcome_testable "waits" Waiting o;
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check bool) "granted after release" true !granted2;
  Alcotest.(check int) "queue drained" 0 (Lock_manager.waiting_count m);
  Alcotest.(check (list (pair int int)))
    "t2 now holds one lock" [ (2, 1) ]
    (List.map (fun (_, _) -> (2, 1)) (Lock_manager.holds m ~txn:2))

let test_fifo_no_starvation () =
  (* A modify waiter must not be starved by later compatible lookups. *)
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_lookup (iv "a" "m"));
  let o2 = acquire m 2 Rep_modify (iv "a" "m") in
  Alcotest.check outcome_testable "modify waits" Waiting o2;
  let o3 = acquire m 3 Rep_lookup (iv "a" "m") in
  Alcotest.check outcome_testable "later lookup queues behind waiting modify" Waiting o3

let test_fifo_grant_order () =
  let m = Lock_manager.create () in
  let order = ref [] in
  ignore (acquire m 1 Rep_modify full);
  ignore (Lock_manager.acquire m ~txn:2 Rep_modify full ~on_grant:(fun () -> order := 2 :: !order));
  ignore (Lock_manager.acquire m ~txn:3 Rep_modify full ~on_grant:(fun () -> order := 3 :: !order));
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check (list int)) "only first waiter granted" [ 2 ] !order;
  Lock_manager.release_all m ~txn:2;
  Alcotest.(check (list int)) "then second" [ 3; 2 ] !order

let test_release_drops_own_waiters () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify full);
  ignore (acquire m 2 Rep_modify full);
  Alcotest.(check int) "one waiter" 1 (Lock_manager.waiting_count m);
  (* t2 aborts while waiting. *)
  Lock_manager.release_all m ~txn:2;
  Alcotest.(check int) "queue empty" 0 (Lock_manager.waiting_count m);
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check int) "nothing granted" 0 (Lock_manager.granted_count m)

let test_disjoint_waiters_both_granted_on_release () =
  let m = Lock_manager.create () in
  let got = ref [] in
  ignore (acquire m 1 Rep_modify full);
  ignore (Lock_manager.acquire m ~txn:2 Rep_modify (iv "a" "c") ~on_grant:(fun () -> got := 2 :: !got));
  ignore (Lock_manager.acquire m ~txn:3 Rep_modify (iv "x" "z") ~on_grant:(fun () -> got := 3 :: !got));
  Lock_manager.release_all m ~txn:1;
  Alcotest.(check (list int)) "both disjoint waiters granted" [ 3; 2 ] !got

let test_would_block () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify (iv "a" "m"));
  Alcotest.(check bool) "conflicting would block" true
    (Lock_manager.would_block m ~txn:2 Rep_lookup (iv "b" "c"));
  Alcotest.(check bool) "disjoint would not" false
    (Lock_manager.would_block m ~txn:2 Rep_modify (iv "x" "z"));
  Alcotest.(check bool) "own would not" false
    (Lock_manager.would_block m ~txn:1 Rep_modify (iv "b" "c"));
  Alcotest.(check int) "would_block does not enqueue" 0 (Lock_manager.waiting_count m)

(* --- deadlock detection ------------------------------------------------------ *)

let test_two_txn_deadlock () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify (iv "a" "c"));
  ignore (acquire m 2 Rep_modify (iv "x" "z"));
  (* 1 waits for 2 ... *)
  Alcotest.check outcome_testable "t1 waits" Waiting (acquire m 1 Rep_modify (iv "x" "y"));
  (* ... and 2 -> 1 closes the cycle. *)
  (match acquire m 2 Rep_modify (iv "b" "c") with
  | Deadlock cycle ->
      Alcotest.(check bool) "cycle mentions both" true
        (List.mem 1 cycle && List.mem 2 cycle)
  | Granted | Waiting -> Alcotest.fail "expected deadlock");
  (* The request was not queued; aborting t2 unblocks t1. *)
  Lock_manager.release_all m ~txn:2;
  Alcotest.(check int) "t1 unblocked" 0 (Lock_manager.waiting_count m)

let test_three_txn_deadlock () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify (iv "a" "b"));
  ignore (acquire m 2 Rep_modify (iv "m" "n"));
  ignore (acquire m 3 Rep_modify (iv "x" "y"));
  Alcotest.check outcome_testable "1 waits for 2" Waiting (acquire m 1 Rep_modify (iv "m" "n"));
  Alcotest.check outcome_testable "2 waits for 3" Waiting (acquire m 2 Rep_modify (iv "x" "y"));
  match acquire m 3 Rep_modify (iv "a" "b") with
  | Deadlock cycle -> Alcotest.(check int) "cycle length 4 (back to requester)" 4 (List.length cycle)
  | Granted | Waiting -> Alcotest.fail "expected deadlock"

let test_upgrade_deadlock () =
  (* Two transactions both hold RepLookup on a range and both try to upgrade
     to RepModify: the classic conversion deadlock. *)
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_lookup (iv "a" "m"));
  ignore (acquire m 2 Rep_lookup (iv "a" "m"));
  Alcotest.check outcome_testable "t1 upgrade waits" Waiting (acquire m 1 Rep_modify (iv "a" "m"));
  match acquire m 2 Rep_modify (iv "a" "m") with
  | Deadlock _ -> ()
  | Granted | Waiting -> Alcotest.fail "expected upgrade deadlock"

let test_no_false_deadlock () =
  let m = Lock_manager.create () in
  ignore (acquire m 1 Rep_modify (iv "a" "c"));
  ignore (acquire m 2 Rep_modify (iv "x" "z"));
  Alcotest.check outcome_testable "waiting, not deadlock" Waiting
    (acquire m 3 Rep_modify (iv "b" "y"))

let () =
  Alcotest.run "lock"
    [
      ( "matrix",
        [
          Alcotest.test_case "mode matrix" `Quick test_mode_matrix;
          Alcotest.test_case "intersecting lookups" `Quick test_intersecting_lookups_compatible;
          Alcotest.test_case "intersecting modify" `Quick test_intersecting_modify_conflicts;
          Alcotest.test_case "disjoint modify" `Quick test_disjoint_modify_compatible;
          Alcotest.test_case "lookup blocks modify" `Quick test_lookup_blocks_modify;
          Alcotest.test_case "same txn reentrant" `Quick test_same_txn_reentrant;
          Alcotest.test_case "point ranges" `Quick test_point_ranges;
        ] );
      ( "queue",
        [
          Alcotest.test_case "release grants waiter" `Quick test_release_grants_waiter;
          Alcotest.test_case "no starvation" `Quick test_fifo_no_starvation;
          Alcotest.test_case "FIFO grant order" `Quick test_fifo_grant_order;
          Alcotest.test_case "abort drops waiters" `Quick test_release_drops_own_waiters;
          Alcotest.test_case "disjoint waiters granted together" `Quick
            test_disjoint_waiters_both_granted_on_release;
          Alcotest.test_case "would_block" `Quick test_would_block;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "two txn cycle" `Quick test_two_txn_deadlock;
          Alcotest.test_case "three txn cycle" `Quick test_three_txn_deadlock;
          Alcotest.test_case "upgrade deadlock" `Quick test_upgrade_deadlock;
          Alcotest.test_case "no false positive" `Quick test_no_false_deadlock;
        ] );
    ]
