test/test_workload.ml: Alcotest Format Hashtbl List Repdir_util Repdir_workload Rng Workload
