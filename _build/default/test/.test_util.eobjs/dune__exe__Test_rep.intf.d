test/test_rep.mli:
