test/test_sim.ml: Alcotest Heap List Net Printf Repdir_sim Repdir_util Rpc Sim
