test/test_two_phase.mli:
