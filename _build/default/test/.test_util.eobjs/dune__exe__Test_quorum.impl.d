test/test_quorum.ml: Alcotest Array Availability Config Int64 List Picker QCheck QCheck_alcotest Repdir_quorum Repdir_util Rng
