test/test_rep.ml: Alcotest Array Bound Int64 Key List QCheck QCheck_alcotest Rep Repdir_gapmap Repdir_key Repdir_lock Repdir_rep Repdir_txn Repdir_util Txn
