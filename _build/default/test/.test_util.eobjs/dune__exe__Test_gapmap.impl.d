test/test_gapmap.ml: Alcotest Array Bound Format Gapmap Gapmap_intf Int64 Key List Printf QCheck QCheck_alcotest Repdir_gapmap Repdir_key Repdir_util Version
