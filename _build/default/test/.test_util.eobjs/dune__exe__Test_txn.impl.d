test/test_txn.ml: Alcotest Array Bound Int64 Key List QCheck QCheck_alcotest Repdir_gapmap Repdir_key Repdir_txn Repdir_util Txn Undo Wal
