test/test_gapmap.mli:
