test/test_chaos.ml: Alcotest Array Config Hashtbl Int64 List Printf Repdir_core Repdir_harness Repdir_quorum Repdir_rep Repdir_sim Repdir_txn Repdir_util Sim Sim_world String Suite Txn
