test/test_util.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Repdir_util Rng Stats String Table Zipf
