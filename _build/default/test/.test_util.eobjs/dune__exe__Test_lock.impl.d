test/test_lock.ml: Alcotest Bound Format List Lock_manager Mode Repdir_key Repdir_lock
