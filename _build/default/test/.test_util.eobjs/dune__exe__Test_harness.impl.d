test/test_harness.ml: Alcotest Concurrency Config Experiment Faults List Locality Net Picker Repdir_core Repdir_harness Repdir_quorum Repdir_sim Repdir_util Sim Sim_world Stats
