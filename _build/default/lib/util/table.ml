type align = Left | Right

type line = Row of string list | Separator

type t = {
  header : string list;
  align : align array;
  mutable lines : line list; (* reversed *)
}

let default_align n = Array.init n (fun i -> if i = 0 then Left else Right)

let create ?align ~header () =
  let n = List.length header in
  let align =
    match align with
    | None -> default_align n
    | Some spec ->
        let arr = default_align n in
        List.iteri (fun i a -> if i < n then arr.(i) <- a) spec;
        arr
  in
  { header; align; lines = [] }

let add_row t cells =
  let n = List.length t.header in
  let given = List.length cells in
  if given > n then invalid_arg "Table.add_row: more cells than header columns";
  let padded = cells @ List.init (n - given) (fun _ -> "") in
  t.lines <- Row padded :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let render t =
  let rows =
    List.rev_map (function Row r -> Some r | Separator -> None) t.lines
  in
  let widths = Array.of_list (List.map String.length t.header) in
  let measure = function
    | Some cells ->
        List.iteri
          (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
          cells
    | None -> ()
  in
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let pad i cell =
    let w = widths.(i) in
    let len = String.length cell in
    if len >= w then cell
    else
      let fill = String.make (w - len) ' ' in
      match t.align.(i) with Left -> cell ^ fill | Right -> fill ^ cell
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "--";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.header;
  rule ();
  List.iter (function Some r -> emit_cells r | None -> rule ()) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout

let cell_float f = Printf.sprintf "%.2f" f
let cell_int i = string_of_int i
