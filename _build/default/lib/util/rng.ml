type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 output mixing function. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bound is tiny relative to 2^62 in all
     our uses, so the bias is far below statistical noise. The shift by 2
     keeps the value within the native 63-bit int's positive range. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 significant bits, uniform in [0, 1). *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  (* Partial Fisher–Yates over a fresh index array. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u
