(** Deterministic, splittable pseudo-random number generator.

    The simulations in this project must be reproducible: every experiment
    takes an explicit seed and derives all randomness from a generator of this
    type. The implementation is splitmix64 (Steele, Lea & Flood 2014) used
    both directly and as the seeding function for independent substreams, so
    that adding a new consumer of randomness never perturbs existing
    streams. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent substream generator, advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [\[0, n)]. Raises [Invalid_argument] if [k > n]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (> 0). *)
