(** Zipf-distributed sampling over [0 .. n-1].

    Used for skewed-access workloads: §2 observes that with static
    partitioning "an uneven distribution of accesses could limit
    concurrency"; the skewed concurrency experiments quantify the same
    effect for the dynamic scheme. Sampling is by inverse transform over the
    precomputed CDF (O(log n) per draw); rank 0 is the hottest item. *)

type t

val create : n:int -> s:float -> t
(** [n] items with exponent [s >= 0]. [s = 0] degenerates to uniform;
    [s = 1] is the classic Zipf distribution. *)

val sample : t -> Rng.t -> int

val probability : t -> int -> float
(** Probability of drawing the given rank. *)

val n : t -> int
val exponent : t -> float
