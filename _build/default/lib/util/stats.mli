(** Online accumulation of summary statistics.

    The paper reports average, maximum, and standard deviation for each
    measured quantity (Figure 15); this module computes them in one pass with
    Welford's algorithm, so 100 000-operation runs need no sample storage. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val add_int : t -> int -> unit

val merge : t -> t -> t
(** [merge a b] is the accumulator for the union of both sample sets. *)

val count : t -> int
val mean : t -> float
(** 0 when no samples have been recorded. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val min : t -> float
(** [infinity] when empty. *)

val variance : t -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : t -> float
val total : t -> float

val pp : Format.formatter -> t -> unit
(** Renders as [avg/max/stddev] with two decimals, the paper's format. *)
