lib/util/rng.mli:
