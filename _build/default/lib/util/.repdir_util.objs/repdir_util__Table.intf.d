lib/util/table.mli:
