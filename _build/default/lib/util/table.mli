(** Plain-text table rendering for experiment reports.

    Used by the harness and benchmarks to print the paper's Figure 14 and
    Figure 15 tables (and our ablations) in aligned columns. *)

type align = Left | Right

type t

val create : ?align:align list -> header:string list -> unit -> t
(** [create ~header ()] starts a table. [align] gives per-column alignment
    (default: first column left, the rest right), padded/truncated to the
    header width. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows are
    an error. *)

val add_separator : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string
val print : t -> unit
(** [render] then output on stdout followed by a newline flush. *)

val cell_float : float -> string
(** Two-decimal rendering used for the paper's statistics columns. *)

val cell_int : int -> string
