type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n; s; cdf }

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* First index whose cumulative probability exceeds u. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) <= u then go (mid + 1) hi else go lo mid
  in
  go 0 (t.n - 1)

let probability t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.probability: out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)

let n t = t.n
let exponent t = t.s
