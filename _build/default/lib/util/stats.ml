type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable max : float;
  mutable min : float;
  mutable total : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; max = neg_infinity; min = infinity; total = 0.0 }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x > t.max then t.max <- x;
  if x < t.min then t.min <- x;
  t.total <- t.total +. x

let add_int t x = add t (float_of_int x)

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let n = a.count + b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.count *. float_of_int b.count /. float_of_int n)
    in
    {
      count = n;
      mean;
      m2;
      max = Float.max a.max b.max;
      min = Float.min a.min b.min;
      total = a.total +. b.total;
    }
  end

let count t = t.count
let mean t = if t.count = 0 then 0.0 else t.mean
let max t = t.max
let min t = t.min
let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int t.count
let stddev t = sqrt (variance t)
let total t = t.total

let pp ppf t =
  Format.fprintf ppf "%.2f %g %.2f" (mean t) (if t.count = 0 then 0.0 else t.max) (stddev t)
