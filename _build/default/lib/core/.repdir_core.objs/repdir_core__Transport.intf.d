lib/core/transport.mli: Format Rep Repdir_rep
