lib/core/suite.mli: Bound Config Key Picker Repdir_key Repdir_quorum Repdir_txn Transport Txn Version
