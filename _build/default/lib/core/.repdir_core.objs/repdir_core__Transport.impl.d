lib/core/transport.ml: Array Format Rep Repdir_rep
