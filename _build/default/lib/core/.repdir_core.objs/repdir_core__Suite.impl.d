lib/core/suite.ml: Array Bound Commit_registry Config Hashtbl Int Key List Option Picker Rep Repdir_gapmap Repdir_key Repdir_quorum Repdir_rep Repdir_txn Repdir_util Rng Set Transport Txn Version
