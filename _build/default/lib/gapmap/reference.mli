(** Reference gap map: an obviously-correct sorted-list implementation.

    This is the executable specification of {!Gapmap_intf.S}; the B+tree
    implementation is property-tested against it. O(n) per operation — fine
    for tests and paper-scale simulations. *)

include Gapmap_intf.S
