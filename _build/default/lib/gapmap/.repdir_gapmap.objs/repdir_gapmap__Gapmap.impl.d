lib/gapmap/gapmap.ml: Btree Gapmap_intf Reference
