lib/gapmap/reference.ml: Bound Format Gapmap_intf Key List Repdir_key Version
