lib/gapmap/reference.mli: Gapmap_intf
