lib/gapmap/btree.ml: Array Bound Format Gapmap_intf Key List Printf Repdir_key Version
