lib/gapmap/btree.mli: Gapmap_intf
