lib/gapmap/gapmap_intf.ml: Bound Format Key Repdir_key Version
