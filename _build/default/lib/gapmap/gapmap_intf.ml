(** Interface shared by the gap-versioned map implementations.

    A gap map is the state of one directory representative: an ordered set of
    entries [(key, version, value)] bracketed by the LOW and HIGH sentinels,
    with every *gap* between adjacent entries (or between a sentinel and its
    neighbouring entry) carrying its own version number. The dynamic
    partition of §2 of the paper is exactly: each entry is a one-key range
    with its own version; each gap is a range with its own version.

    Two implementations satisfy {!S}: {!module:Reference} (sorted list;
    obviously correct, used as the model in property tests) and
    {!module:Btree} (imperative B+tree with gap versions stored in bounding
    entries, as §5 of the paper envisions). *)

open Repdir_key

type value = string

(** Result of looking up a single key. *)
type lookup =
  | Present of { version : Version.t; value : value }
  | Absent of { gap_version : Version.t }
      (** The version of the gap in which the key falls. *)

(** Result of a predecessor/successor query: the neighbouring entry (possibly
    a sentinel) and the version of the gap separating it from the queried
    key. [entry_version] is [None] exactly when [key] is a sentinel. *)
type neighbor = {
  key : Bound.t;
  entry_version : Version.t option;
  gap_version : Version.t;
}

(** Raised by [coalesce] when one of the range endpoints is not an existing
    entry (or sentinel), mirroring the error the paper specifies for
    [DirRepCoalesce]. *)
exception Missing_endpoint of Bound.t

module type S = sig
  type t

  val create : unit -> t
  (** An empty directory: only LOW and HIGH, one gap at version
      {!Version.lowest} between them. *)

  val size : t -> int
  (** Number of real (non-sentinel) entries. *)

  val mem : t -> Key.t -> bool

  val lookup : t -> Bound.t -> lookup
  (** Sentinels are always present with version {!Version.lowest}. *)

  val predecessor : t -> Bound.t -> neighbor
  (** Largest entry strictly below the argument, together with the version of
      the gap between them (the gap following that entry). Raises
      [Invalid_argument] on [Low]. *)

  val successor : t -> Bound.t -> neighbor
  (** Smallest entry strictly above the argument, together with the version
      of the gap between the argument and that entry (the gap preceding it).
      Raises [Invalid_argument] on [High]. *)

  val insert : t -> Key.t -> Version.t -> value -> unit
  (** Create or overwrite the entry for the key. A fresh entry splits the gap
      containing the key; both halves keep the old gap's version (Fig. 4 of
      the paper). *)

  val coalesce : t -> lo:Bound.t -> hi:Bound.t -> Version.t -> int
  (** Delete every entry strictly between [lo] and [hi] and give the
      resulting single gap the supplied version. Returns the number of
      entries deleted. Raises {!Missing_endpoint} if [lo] or [hi] is neither
      a stored entry nor a sentinel, and [Invalid_argument] if [lo >= hi]. *)

  val remove : t -> Key.t -> bool
  (** Low-level removal of a single entry, used by transaction undo. The two
      gaps adjoining the entry merge into one that keeps the *predecessor's*
      gap version (which equals the removed entry's former gap when undoing
      an insert, since insert gave both halves the same version). Returns
      false if the key was absent. Directory deletion must go through
      {!coalesce}; this operation exists for the recovery layer. *)

  val set_gap_after : t -> Bound.t -> Version.t -> unit
  (** [set_gap_after t b v] sets the version of the gap immediately following
      [b], where [b] must be [Low] or an existing entry. Used by transaction
      undo and write-ahead-log replay. Raises {!Missing_endpoint} otherwise
      and [Invalid_argument] on [High]. *)

  val entries : t -> (Key.t * Version.t * value) list
  (** All real entries in ascending key order. *)

  val gaps : t -> (Bound.t * Bound.t * Version.t) list
  (** All gaps, ascending: [(left bound, right bound, gap version)]. There
      are always [size t + 1] gaps. *)

  val count_strictly_between : t -> lo:Bound.t -> hi:Bound.t -> int
  (** Number of entries [e] with [lo < e < hi]; the paper's "entries in
      ranges coalesced" statistic counts these. *)

  val entries_between : t -> lo:Bound.t -> hi:Bound.t -> (Key.t * Version.t * value * Version.t) list
  (** Entries strictly between the bounds, ascending, each with the version
      of the gap that follows it. Used by transaction undo (a coalesce must
      be able to restore exactly what it destroyed). *)

  val check_invariants : t -> (unit, string) result
  (** Structural validation: entry order, gap count, implementation-specific
      shape (B+tree balance, occupancy). *)

  val pp : Format.formatter -> t -> unit
  (** Rendering in the style of the paper's figures:
      [LOW -0- a:1 -0- c:1 -0- HIGH] (gap versions between dashes). *)
end
