(** Convenience entry point: re-exports the shared types and both
    implementations. See {!Gapmap_intf} for the interface documentation. *)

include Gapmap_intf
module Reference = Reference
module Btree = Btree

(* Compile-time checks that both implementations satisfy the interface. *)
module type CHECK_REFERENCE = S with type t = Reference.t
module type CHECK_BTREE = S with type t = Btree.t

module Check_reference : CHECK_REFERENCE = Reference
module Check_btree : CHECK_BTREE = Btree
