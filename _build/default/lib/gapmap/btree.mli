(** Production gap map: an imperative B+tree.

    Entries live in doubly-linked leaves in key order; internal nodes hold
    separator keys. As §5 of the paper suggests, each gap's version number
    is stored in a field of its bounding entry (the version of the gap
    *after* entry [e] lives in [e]); the gap between LOW and the first entry
    is held at the tree root. All operations are O(log n) plus the size of
    the affected range. Structural invariants (occupancy, separator
    soundness, uniform depth, leaf-chain consistency) are verified by
    [check_invariants]. *)

include Gapmap_intf.S

val create_with : branching:int -> unit -> t
(** [branching] is both the maximum entries per leaf and the maximum
    children per internal node (minimum [branching/2] for non-roots); must
    be at least 4. {!create} uses {!default_branching}. *)

val default_branching : int

val branching : t -> int
