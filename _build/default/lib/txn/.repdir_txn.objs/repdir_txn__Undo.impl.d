lib/txn/undo.ml: Bound Format Hashtbl Key List Repdir_gapmap Repdir_key Txn Version
