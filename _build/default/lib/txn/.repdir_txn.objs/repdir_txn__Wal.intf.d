lib/txn/wal.mli: Bound Format Key Repdir_gapmap Repdir_key Txn Version
