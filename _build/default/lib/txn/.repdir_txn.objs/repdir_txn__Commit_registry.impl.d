lib/txn/commit_registry.ml: Format Hashtbl Txn
