lib/txn/wal.ml: Bound Format Hashtbl Key List Repdir_gapmap Repdir_key Txn Version
