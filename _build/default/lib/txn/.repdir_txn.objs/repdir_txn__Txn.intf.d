lib/txn/txn.mli: Format
