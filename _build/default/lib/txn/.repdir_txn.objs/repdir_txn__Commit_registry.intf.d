lib/txn/commit_registry.mli: Format Txn
