lib/txn/undo.mli: Bound Format Key Repdir_gapmap Repdir_key Txn Version
