lib/txn/txn.ml: Format Hashtbl List Printf
