(** Atomic commit decisions for two-phase commit.

    Models the durable decision record a 2PC coordinator writes. The
    registry is the single serialization point for a transaction's outcome:
    {!try_decide} is first-writer-wins, so the coordinator's commit decision
    and a recovering in-doubt participant's abort resolution cannot both
    win — whichever reaches the registry first becomes *the* outcome, and
    the loser learns it and conforms. (Classical presumed-abort 2PC instead
    blocks an in-doubt participant until the coordinator answers; funnelling
    both through an atomic cell gives the same all-or-nothing guarantee
    without blocking, at the cost of letting a recovery veto a still-undecided
    commit.) *)

type decision = Committed | Aborted

val pp_decision : Format.formatter -> decision -> unit

type t

val create : unit -> t

val try_decide : t -> Txn.id -> decision -> decision
(** Record the decision unless one exists; returns the winning decision. *)

val decision : t -> Txn.id -> decision option

val decided_commit : t -> Txn.id -> bool
