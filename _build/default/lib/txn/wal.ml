open Repdir_key

type record =
  | Begin of Txn.id
  | Insert of Txn.id * Key.t * Version.t * Repdir_gapmap.Gapmap_intf.value
  | Coalesce of Txn.id * Bound.t * Bound.t * Version.t
  | Prepare of Txn.id
  | Commit of Txn.id
  | Abort of Txn.id
  | Recovery_marker
  | Checkpoint of checkpoint

and checkpoint = {
  entries : (Key.t * Version.t * Repdir_gapmap.Gapmap_intf.value * Version.t) list;
  low_gap : Version.t;
}

let pp_record ppf = function
  | Begin id -> Format.fprintf ppf "begin %d" id
  | Insert (id, k, v, _) -> Format.fprintf ppf "insert[%d] %a:%a" id Key.pp k Version.pp v
  | Coalesce (id, lo, hi, v) ->
      Format.fprintf ppf "coalesce[%d] (%a,%a)->%a" id Bound.pp lo Bound.pp hi Version.pp v
  | Prepare id -> Format.fprintf ppf "prepare %d" id
  | Recovery_marker -> Format.pp_print_string ppf "recovery-marker"
  | Commit id -> Format.fprintf ppf "commit %d" id
  | Abort id -> Format.fprintf ppf "abort %d" id
  | Checkpoint c -> Format.fprintf ppf "checkpoint (%d entries)" (List.length c.entries)

type t = { mutable recs : record list (* newest first *); mutable len : int }

let create () = { recs = []; len = 0 }

let append t r =
  t.recs <- r :: t.recs;
  t.len <- t.len + 1

let length t = t.len
let records t = List.rev t.recs

let committed t id =
  List.exists (function Commit id' -> id' = id | _ -> false) t.recs

let ops_before_last_recovery t id =
  (* recs is newest-first: scan for the latest marker; anything beyond it is
     a pre-crash record. *)
  let rec scan seen_marker = function
    | [] -> false
    | Recovery_marker :: rest -> scan true rest
    | (Insert (id', _, _, _) | Coalesce (id', _, _, _)) :: rest ->
        if seen_marker && id' = id then
          not (committed t id)
        else scan seen_marker rest
    | (Begin _ | Prepare _ | Commit _ | Abort _ | Checkpoint _) :: rest ->
        scan seen_marker rest
  in
  scan false t.recs

let in_doubt t =
  let prepared = Hashtbl.create 8 in
  List.iter
    (function
      | Prepare id -> if not (Hashtbl.mem prepared id) then Hashtbl.replace prepared id true
      | Commit id | Abort id -> Hashtbl.replace prepared id false
      | Begin _ | Insert _ | Coalesce _ | Recovery_marker | Checkpoint _ -> ())
    t.recs;
  Hashtbl.fold (fun id pending acc -> if pending then id :: acc else acc) prepared []
  |> List.sort compare

let checkpoint_of_map entries ~gaps =
  let low_gap =
    match gaps with
    | (Bound.Low, _, v) :: _ -> v
    | _ -> invalid_arg "Wal.checkpoint_of_map: gaps must start at LOW"
  in
  (* Pair each entry with the version of the gap that follows it. *)
  let gap_after k =
    match
      List.find_opt (fun (l, _, _) -> Bound.equal l (Bound.Key k)) gaps
    with
    | Some (_, _, v) -> v
    | None -> invalid_arg "Wal.checkpoint_of_map: entry without following gap"
  in
  {
    entries = List.map (fun (k, v, value) -> (k, v, value, gap_after k)) entries;
    low_gap;
  }

let truncate_to_checkpoint t =
  (* recs is newest-first: keep up to and including the first Checkpoint. *)
  let rec take acc = function
    | [] -> None
    | (Checkpoint _ as c) :: _ -> Some (List.rev (c :: acc))
    | r :: rest -> take (r :: acc) rest
  in
  match take [] t.recs with
  | None -> ()
  | Some kept ->
      (* [take] returns the kept records newest-first, matching [recs]. *)
      t.recs <- kept;
      t.len <- List.length kept

module Replay (M : Repdir_gapmap.Gapmap_intf.S) = struct
  let replay ?(decided = fun _ -> false) t =
    let map = M.create () in
    let recs = records t in
    let prepared id =
      List.exists (function Prepare id' -> id' = id | _ -> false) t.recs
    in
    let is_committed id = committed t id || (prepared id && decided id) in
    let restore_checkpoint (c : checkpoint) =
      (* Checkpoints replace all prior state. *)
      ignore (M.coalesce map ~lo:Bound.Low ~hi:Bound.High Version.lowest);
      List.iter (fun (k, v, value, _) -> M.insert map k v value) c.entries;
      M.set_gap_after map Bound.Low c.low_gap;
      List.iter (fun (k, _, _, gap_after) -> M.set_gap_after map (Bound.Key k) gap_after) c.entries
    in
    List.iter
      (fun r ->
        match r with
        | Checkpoint c -> restore_checkpoint c
        | Insert (id, k, v, value) when is_committed id -> M.insert map k v value
        | Coalesce (id, lo, hi, v) when is_committed id ->
            ignore (M.coalesce map ~lo ~hi v)
        | Begin _ | Prepare _ | Commit _ | Abort _ | Insert _ | Coalesce _
        | Recovery_marker -> ())
      recs;
    map
end
