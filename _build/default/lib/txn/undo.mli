(** Logical undo for directory-representative operations.

    Each transaction accumulates, per representative, a list of inverse
    actions; abort applies them in reverse order. Because the Figure 7 lock
    matrix serializes conflicting accesses and locks are held to transaction
    end (strict 2PL), the state an undo action sees is exactly the state its
    forward operation produced, so logical inverses are sound. *)

open Repdir_key

type action =
  | Remove_entry of Key.t
      (** Inverse of an insert that created a fresh entry. The merged gap
          keeps the predecessor's gap version, which is the version the split
          halves both carried. *)
  | Restore_entry of Key.t * Version.t * Repdir_gapmap.Gapmap_intf.value
      (** Inverse of an in-place update (or of a coalesce's removal: the
          entry is re-inserted with its old version and value). *)
  | Restore_gap of Bound.t * Version.t
      (** Re-establish the version of the gap following the given bound. *)

val pp_action : Format.formatter -> action -> unit

(** A per-representative, per-transaction undo log. *)
type t

val create : unit -> t

val record : t -> txn:Txn.id -> action -> unit
(** Actions are applied in reverse recording order on abort. *)

val actions : t -> txn:Txn.id -> action list
(** Recorded actions, most recent first (i.e. application order). *)

val forget : t -> txn:Txn.id -> unit
(** Drop the transaction's actions (after commit or finished abort). *)

val active_txns : t -> Txn.id list

(** Application of undo actions to a concrete gap map implementation. *)
module Apply (M : Repdir_gapmap.Gapmap_intf.S) : sig
  val action : M.t -> action -> unit

  val rollback : t -> txn:Txn.id -> M.t -> unit
  (** Apply all of the transaction's undo actions (most recent first) and
      forget them. *)
end
