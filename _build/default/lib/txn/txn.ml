type id = int
type status = Active | Committed | Aborted

type abort_reason = Deadlock of id list | Unavailable of string | User

exception Abort of abort_reason

let pp_abort_reason ppf = function
  | Deadlock cycle ->
      Format.fprintf ppf "deadlock(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
           Format.pp_print_int)
        cycle
  | Unavailable msg -> Format.fprintf ppf "unavailable(%s)" msg
  | User -> Format.pp_print_string ppf "user"

module Manager = struct
  type t = { mutable next : id; statuses : (id, status) Hashtbl.t }

  let create () = { next = 1; statuses = Hashtbl.create 64 }

  let begin_txn t =
    let id = t.next in
    t.next <- t.next + 1;
    Hashtbl.replace t.statuses id Active;
    id

  let status t id =
    match Hashtbl.find_opt t.statuses id with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Txn.Manager.status: unknown txn %d" id)

  let transition t id target =
    match status t id with
    | Active -> Hashtbl.replace t.statuses id target
    | Committed | Aborted ->
        invalid_arg (Printf.sprintf "Txn.Manager: txn %d is not active" id)

  let commit t id = transition t id Committed
  let abort t id = transition t id Aborted

  let active t =
    Hashtbl.fold (fun id s acc -> if s = Active then id :: acc else acc) t.statuses []
    |> List.sort compare

  let count t = Hashtbl.length t.statuses
end
