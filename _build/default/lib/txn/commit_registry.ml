type decision = Committed | Aborted

let pp_decision ppf = function
  | Committed -> Format.pp_print_string ppf "committed"
  | Aborted -> Format.pp_print_string ppf "aborted"

type t = { decisions : (Txn.id, decision) Hashtbl.t }

let create () = { decisions = Hashtbl.create 32 }

let try_decide t txn d =
  match Hashtbl.find_opt t.decisions txn with
  | Some existing -> existing
  | None ->
      Hashtbl.replace t.decisions txn d;
      d

let decision t txn = Hashtbl.find_opt t.decisions txn
let decided_commit t txn = decision t txn = Some Committed
