open Repdir_key

type action =
  | Remove_entry of Key.t
  | Restore_entry of Key.t * Version.t * Repdir_gapmap.Gapmap_intf.value
  | Restore_gap of Bound.t * Version.t

let pp_action ppf = function
  | Remove_entry k -> Format.fprintf ppf "remove %a" Key.pp k
  | Restore_entry (k, v, _) -> Format.fprintf ppf "restore %a:%a" Key.pp k Version.pp v
  | Restore_gap (b, v) -> Format.fprintf ppf "restore-gap after %a to %a" Bound.pp b Version.pp v

type t = { logs : (Txn.id, action list ref) Hashtbl.t }

let create () = { logs = Hashtbl.create 16 }

let record t ~txn action =
  match Hashtbl.find_opt t.logs txn with
  | Some l -> l := action :: !l
  | None -> Hashtbl.replace t.logs txn (ref [ action ])

let actions t ~txn =
  match Hashtbl.find_opt t.logs txn with Some l -> !l | None -> []

let forget t ~txn = Hashtbl.remove t.logs txn

let active_txns t = Hashtbl.fold (fun id _ acc -> id :: acc) t.logs [] |> List.sort compare

module Apply (M : Repdir_gapmap.Gapmap_intf.S) = struct
  let action map = function
    | Remove_entry k -> ignore (M.remove map k)
    | Restore_entry (k, v, value) -> M.insert map k v value
    | Restore_gap (b, v) -> M.set_gap_after map b v

  let rollback t ~txn map =
    List.iter (action map) (actions t ~txn);
    forget t ~txn
end
