lib/workload/workload.mli: Format Key Repdir_key Repdir_util Rng
