lib/workload/workload.ml: Array Format Hashtbl Key List Printf Repdir_key Repdir_util Rng
