(** Workload generation for the §4 simulations.

    The paper's model: "the members of quorums and the keys to insert,
    update, or delete were selected randomly from a uniform distribution",
    with directory sizes approximately stationary (100, 1 000, or 10 000
    entries). The generator keeps its own mirror of the directory contents
    and emits a size-stationary stream: a fixed fraction of updates, and
    otherwise an insert when below the target size and a delete at or above
    it, so the directory oscillates tightly around the target while every
    key choice stays uniform. *)

open Repdir_util
open Repdir_key

type op =
  | Lookup of Key.t
  | Insert of Key.t * string
  | Update of Key.t * string
  | Delete of Key.t

val pp_op : Format.formatter -> op -> unit

type t

val create :
  ?update_fraction:float ->
  ?lookup_fraction:float ->
  ?key_len:int ->
  rng:Rng.t ->
  target_size:int ->
  unit ->
  t
(** [update_fraction] (default 1/3) of operations are updates of uniformly
    chosen existing keys; [lookup_fraction] (default 0) are lookups of
    uniform random keys; the rest alternate insert/delete around
    [target_size]. Fresh keys are uniform random strings of [key_len]
    (default 12) characters, an effectively unbounded universe. *)

val next : t -> op
(** The generator assumes the operation is applied successfully and updates
    its mirror accordingly (inserts always pick fresh keys; updates and
    deletes always pick existing keys). *)

val initial_fill : t -> op list
(** Inserts that bring an empty directory to the target size; apply them
    before measuring. The generator's mirror is updated as if applied. *)

val size : t -> int

val random_existing_key : t -> Key.t option
(** Uniform over current contents; [None] when empty. *)
