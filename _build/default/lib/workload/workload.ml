open Repdir_util
open Repdir_key

type op =
  | Lookup of Key.t
  | Insert of Key.t * string
  | Update of Key.t * string
  | Delete of Key.t

let pp_op ppf = function
  | Lookup k -> Format.fprintf ppf "lookup %a" Key.pp k
  | Insert (k, _) -> Format.fprintf ppf "insert %a" Key.pp k
  | Update (k, _) -> Format.fprintf ppf "update %a" Key.pp k
  | Delete k -> Format.fprintf ppf "delete %a" Key.pp k

(* The key mirror: O(1) uniform pick and delete via the swap-with-last
   trick over a dynamic array plus a position table. *)
type t = {
  rng : Rng.t;
  target_size : int;
  update_fraction : float;
  lookup_fraction : float;
  key_len : int;
  mutable keys : Key.t array;
  mutable count : int;
  positions : (Key.t, int) Hashtbl.t;
  mutable op_counter : int;
}

let create ?(update_fraction = 1.0 /. 3.0) ?(lookup_fraction = 0.0) ?(key_len = 12) ~rng
    ~target_size () =
  if target_size <= 0 then invalid_arg "Workload.create: target_size must be positive";
  if update_fraction < 0.0 || lookup_fraction < 0.0
     || update_fraction +. lookup_fraction > 1.0
  then invalid_arg "Workload.create: bad fractions";
  {
    rng;
    target_size;
    update_fraction;
    lookup_fraction;
    key_len;
    keys = Array.make (max 16 (2 * target_size)) "";
    count = 0;
    positions = Hashtbl.create (2 * target_size);
    op_counter = 0;
  }

let size t = t.count

let add_key t k =
  if t.count = Array.length t.keys then begin
    let bigger = Array.make (2 * Array.length t.keys) "" in
    Array.blit t.keys 0 bigger 0 t.count;
    t.keys <- bigger
  end;
  t.keys.(t.count) <- k;
  Hashtbl.replace t.positions k t.count;
  t.count <- t.count + 1

let remove_key t k =
  match Hashtbl.find_opt t.positions k with
  | None -> invalid_arg "Workload.remove_key: unknown key"
  | Some i ->
      let last = t.keys.(t.count - 1) in
      t.keys.(i) <- last;
      Hashtbl.replace t.positions last i;
      Hashtbl.remove t.positions k;
      t.count <- t.count - 1

let random_existing_key t =
  if t.count = 0 then None else Some t.keys.(Rng.int t.rng t.count)

let fresh_key t =
  let rec draw () =
    let k = Key.random t.rng ~len:t.key_len in
    if Hashtbl.mem t.positions k then draw () else k
  in
  draw ()

let fresh_value t =
  t.op_counter <- t.op_counter + 1;
  Printf.sprintf "value-%d" t.op_counter

let next t =
  let roll = Rng.float t.rng 1.0 in
  if roll < t.lookup_fraction then
    match random_existing_key t with
    | Some k when Rng.bool t.rng -> Lookup k
    | Some _ | None -> Lookup (Key.random t.rng ~len:t.key_len)
  else if roll < t.lookup_fraction +. t.update_fraction && t.count > 0 then begin
    match random_existing_key t with
    | Some k -> Update (k, fresh_value t)
    | None -> assert false
  end
  else if t.count < t.target_size then begin
    let k = fresh_key t in
    add_key t k;
    Insert (k, fresh_value t)
  end
  else begin
    match random_existing_key t with
    | Some k ->
        remove_key t k;
        Delete k
    | None -> assert false
  end

let initial_fill t =
  let ops = ref [] in
  while t.count < t.target_size do
    let k = fresh_key t in
    add_key t k;
    ops := Insert (k, fresh_value t) :: !ops
  done;
  List.rev !ops
