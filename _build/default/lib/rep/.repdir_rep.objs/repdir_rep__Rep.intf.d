lib/rep/rep.mli: Bound Format Gapmap_intf Key Repdir_gapmap Repdir_key Repdir_lock Repdir_txn Version
