lib/rep/rep.ml: Bound Commit_registry Format List Lock_manager Mode Repdir_gapmap Repdir_key Repdir_lock Repdir_txn Txn Undo Wal
