lib/key/key.mli: Format Repdir_util
