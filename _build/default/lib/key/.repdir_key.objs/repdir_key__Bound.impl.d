lib/key/bound.ml: Format Key
