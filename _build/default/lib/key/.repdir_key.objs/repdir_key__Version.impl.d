lib/key/version.ml: Format Int Stdlib
