lib/key/key.ml: Char Format Printf Repdir_util String
