lib/key/bound.mli: Format Key
