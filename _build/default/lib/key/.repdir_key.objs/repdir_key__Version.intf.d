lib/key/version.mli: Format
