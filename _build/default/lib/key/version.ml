type t = int

let lowest = 0
let next v = v + 1
let compare = Int.compare
let equal = Int.equal
let max = Stdlib.max
let pp = Format.pp_print_int
let to_int v = v

let of_int i =
  if i < 0 then invalid_arg "Version.of_int: negative";
  i
