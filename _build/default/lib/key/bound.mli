(** Keys extended with the paper's LOW and HIGH sentinels.

    Every directory representative contains the two distinguished keys LOW
    (less than any insertable key) and HIGH (greater than any insertable key),
    which guarantee that every key has a real predecessor and real successor
    (§3.1). Range locks and gap endpoints are expressed over this extended
    order. *)

type t = Low | Key of Key.t | High

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val key : Key.t -> t

val key_exn : t -> Key.t
(** Raises [Invalid_argument] on [Low] or [High]. *)

val is_sentinel : t -> bool

val min : t -> t -> t
val max : t -> t -> t

(** Closed intervals [\[lo, hi\]] over the extended order, used by the lock
    manager and by coalesce ranges. An interval with [lo > hi] is invalid. *)
module Interval : sig
  type bound := t
  type t = { lo : bound; hi : bound }

  val make : bound -> bound -> t
  (** Raises [Invalid_argument] if [lo > hi]. *)

  val point : bound -> t
  val full : t

  val contains : t -> bound -> bool
  val intersects : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
