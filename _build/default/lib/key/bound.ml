type t = Low | Key of Key.t | High

let compare a b =
  match (a, b) with
  | Low, Low | High, High -> 0
  | Low, _ -> -1
  | _, Low -> 1
  | High, _ -> 1
  | _, High -> -1
  | Key x, Key y -> Key.compare x y

let equal a b = compare a b = 0

let pp ppf = function
  | Low -> Format.pp_print_string ppf "LOW"
  | High -> Format.pp_print_string ppf "HIGH"
  | Key k -> Key.pp ppf k

let to_string b = Format.asprintf "%a" pp b
let key k = Key k

let key_exn = function
  | Key k -> k
  | Low -> invalid_arg "Bound.key_exn: LOW"
  | High -> invalid_arg "Bound.key_exn: HIGH"

let is_sentinel = function Low | High -> true | Key _ -> false
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

module Interval = struct
  type bound = t
  type nonrec t = { lo : bound; hi : bound }

  let make lo hi =
    if compare lo hi > 0 then invalid_arg "Bound.Interval.make: lo > hi";
    { lo; hi }

  let point b = { lo = b; hi = b }
  let full = { lo = Low; hi = High }
  let contains t b = compare t.lo b <= 0 && compare b t.hi <= 0

  let intersects a b =
    compare a.lo b.hi <= 0 && compare b.lo a.hi <= 0

  let pp ppf t = Format.fprintf ppf "[%a..%a]" pp t.lo pp t.hi
end
