type t = string

let compare = String.compare
let equal = String.equal
let pp = Format.pp_print_string
let to_string k = k

let of_int i =
  if i < 0 then invalid_arg "Key.of_int: negative";
  Printf.sprintf "%012d" i

let random rng ~len =
  if len <= 0 then invalid_arg "Key.random: len must be positive";
  String.init len (fun _ -> Char.chr (Char.code 'a' + Repdir_util.Rng.int rng 26))
