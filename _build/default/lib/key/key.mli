(** Directory keys.

    Keys are non-empty strings with the usual lexicographic order. The paper
    imposes only a total order on keys; strings keep the examples (and the
    Figure 1–5 walkthrough, whose keys are "a", "b", "bb", "c") literal. *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_int : int -> t
(** [of_int i] is a key that sorts in numeric order for non-negative [i]
    (zero-padded decimal). Used by workload generators over integer key
    universes. *)

val random : Repdir_util.Rng.t -> len:int -> t
(** Random lowercase-alphabetic key of exactly [len] characters. *)
