(** Version numbers.

    Gifford-style version numbers attached to entries and gaps. The paper
    notes 48 or more bits may be needed to prevent wrap-around; we use the
    63-bit native [int], which is monotonically incremented and never
    recycled. Gaps start at {!lowest} (0); an entry inserted into a gap gets
    the gap's version plus one, so freshly created directories match the
    paper's figures (gaps at 0, first entries at 1). *)

type t = int

val lowest : t
(** The paper's [LowestVersion] constant. *)

val next : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val max : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_int : t -> int
val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)
