lib/lock/lock_manager.mli: Bound Mode Repdir_key
