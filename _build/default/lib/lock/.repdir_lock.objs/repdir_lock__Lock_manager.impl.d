lib/lock/lock_manager.ml: Bound List Mode Repdir_key
