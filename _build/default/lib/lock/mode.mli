(** Type-specific lock modes for directory representatives (§3.1).

    Inquiry operations ([DirRepLookup], [DirRepPredecessor],
    [DirRepSuccessor]) take [RepLookup] locks over the range of keys they
    explicitly or implicitly access; [DirRepInsert] and [DirRepCoalesce] take
    [RepModify] locks. The compatibility relation is the paper's Figure 7:
    two locks conflict iff their ranges intersect, they belong to different
    transactions, and at least one is [RepModify]. *)

type t = Rep_lookup | Rep_modify

val compatible : t -> t -> bool
(** Compatibility of two locks of *different* transactions over intersecting
    ranges. Locks over disjoint ranges, or of the same transaction, are
    always compatible. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
