type t = Rep_lookup | Rep_modify

let compatible a b =
  match (a, b) with
  | Rep_lookup, Rep_lookup -> true
  | Rep_modify, _ | _, Rep_modify -> false

let equal a b =
  match (a, b) with
  | Rep_lookup, Rep_lookup | Rep_modify, Rep_modify -> true
  | Rep_lookup, Rep_modify | Rep_modify, Rep_lookup -> false

let pp ppf = function
  | Rep_lookup -> Format.pp_print_string ppf "RepLookup"
  | Rep_modify -> Format.pp_print_string ppf "RepModify"
