open Repdir_util
open Effect
open Effect.Deep

type t = {
  mutable now : float;
  mutable seq : int;
  queue : (unit -> unit) Heap.t;
  rng : Rng.t;
  mutable executed : int;
}

type _ Effect.t +=
  | Sleep : (t * float) -> unit Effect.t
  | Suspend : (t * ((unit -> unit) -> unit)) -> unit Effect.t

let create ?(seed = 1L) () =
  { now = 0.0; seq = 0; queue = Heap.create (); rng = Rng.create seed; executed = 0 }

let now t = t.now
let rng t = t.rng

let schedule t ~time thunk =
  if time < t.now then invalid_arg "Sim: scheduling into the virtual past";
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.queue ~time ~seq thunk

let at t time thunk = schedule t ~time thunk

(* Run a process body under the effect handler. Continuations captured here
   carry the handler with them, so resumed processes keep their powers. *)
let execute t body =
  match_with body ()
    {
      retc = ignore;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep (t', d) when t' == t ->
              Some
                (fun (k : (a, _) continuation) ->
                  schedule t ~time:(t.now +. d) (fun () -> continue k ()))
          | Suspend (t', register) when t' == t ->
              Some
                (fun (k : (a, _) continuation) ->
                  (* Make the wake-up idempotent: late duplicate wake-ups
                     (e.g. an RPC reply racing its timeout) are dropped. *)
                  let fired = ref false in
                  register (fun () ->
                      if not !fired then begin
                        fired := true;
                        schedule t ~time:t.now (fun () -> continue k ())
                      end))
          | _ -> None);
    }

let spawn t ?name ?at body =
  ignore name;
  let time = match at with None -> t.now | Some time -> time in
  schedule t ~time (fun () -> execute t body)

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, thunk) ->
      t.now <- time;
      t.executed <- t.executed + 1;
      thunk ();
      true

let run ?until t =
  let continue_run () =
    match (until, Heap.peek_time t.queue) with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some next -> next <= limit
  in
  while continue_run () do
    ignore (step t)
  done

let sleep t d =
  if d < 0.0 then invalid_arg "Sim.sleep: negative delay";
  perform (Sleep (t, d))

let suspend t register = perform (Suspend (t, register))
let yield t = sleep t 0.0
let events_executed t = t.executed
let pending_events t = Heap.size t.queue
