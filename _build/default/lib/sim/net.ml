open Repdir_util

type node_id = int

type t = {
  sim : Sim.t;
  n : int;
  up : bool array;
  cut : (node_id * node_id, unit) Hashtbl.t; (* normalized (min, max) pairs *)
  latency : Rng.t -> float;
  lat_rng : Rng.t;
  mutable sent : int;
  mutable dropped : int;
}

let default_latency rng = Rng.exponential rng ~mean:1.0

let create sim ~n_nodes ?(latency = default_latency) () =
  if n_nodes <= 0 then invalid_arg "Net.create: need at least one node";
  {
    sim;
    n = n_nodes;
    up = Array.make n_nodes true;
    cut = Hashtbl.create 8;
    latency;
    lat_rng = Rng.split (Sim.rng sim);
    sent = 0;
    dropped = 0;
  }

let sim t = t.sim
let n_nodes t = t.n

let check_node t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Net: no such node %d" i)

let up t i =
  check_node t i;
  t.up.(i)

let crash t i =
  check_node t i;
  t.up.(i) <- false

let recover t i =
  check_node t i;
  t.up.(i) <- true

let norm a b = if a <= b then (a, b) else (b, a)

let set_link t a b connected =
  check_node t a;
  check_node t b;
  if connected then Hashtbl.remove t.cut (norm a b) else Hashtbl.replace t.cut (norm a b) ()

let linked t a b =
  check_node t a;
  check_node t b;
  a = b || not (Hashtbl.mem t.cut (norm a b))

let partition t group_a group_b =
  List.iter (fun a -> List.iter (fun b -> if a <> b then set_link t a b false) group_b) group_a

let heal_partition t = Hashtbl.reset t.cut

let send t ~src ~dst handler =
  check_node t src;
  check_node t dst;
  t.sent <- t.sent + 1;
  if (not t.up.(src)) || not (linked t src dst) then t.dropped <- t.dropped + 1
  else begin
    let delay = t.latency t.lat_rng in
    if delay < 0.0 then invalid_arg "Net: negative latency drawn";
    Sim.at t.sim
      (Sim.now t.sim +. delay)
      (fun () ->
        if t.up.(dst) then Sim.spawn t.sim handler else t.dropped <- t.dropped + 1)
  end

let messages_sent t = t.sent
let messages_dropped t = t.dropped
