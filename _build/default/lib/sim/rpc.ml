type error = Timeout

exception Timed_out_marker
(* Internal sentinel distinguishing the timeout path from a server-side
   exception; never escapes this module. *)

let call net ~src ~dst ~timeout f =
  if timeout <= 0.0 then invalid_arg "Rpc.call: timeout must be positive";
  let sim = Net.sim net in
  let outcome = ref None in
  let wake = ref (fun () -> ()) in
  (* Request: run [f] at the destination, ship the outcome back. *)
  Net.send net ~src ~dst (fun () ->
      let result = try Ok (f ()) with e -> Error e in
      Net.send net ~src:dst ~dst:src (fun () ->
          if !outcome = None then begin
            outcome := Some result;
            !wake ()
          end));
  Sim.suspend sim (fun resume ->
      wake := resume;
      Sim.at sim
        (Sim.now sim +. timeout)
        (fun () ->
          if !outcome = None then begin
            outcome := Some (Error Timed_out_marker);
            resume ()
          end));
  match !outcome with
  | Some (Ok r) -> Ok r
  | Some (Error Timed_out_marker) -> Error Timeout
  | Some (Error e) -> raise e
  | None -> assert false
