(** Binary min-heap used as the simulator's event queue.

    Keys are [(time, sequence)] pairs; the sequence number makes the order of
    same-time events deterministic (FIFO in insertion order), which keeps
    whole simulations reproducible from their seed. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Smallest (time, seq) first. *)

val peek_time : 'a t -> float option
