(** Discrete-event simulator with direct-style processes.

    Processes are plain OCaml functions that call {!sleep} and {!suspend};
    OCaml 5 effect handlers capture the continuation so a process blocks
    without threads. The event queue is ordered by virtual (time, sequence),
    so runs are fully deterministic given the seed.

    This substitutes for the paper's Accent-kernel execution environment: the
    distributed experiments (availability, concurrency, crash recovery) run
    representative servers and suite clients as simulated processes exchanging
    messages through {!Net} and {!Rpc}. *)

open Repdir_util

type t

val create : ?seed:int64 -> unit -> t

val now : t -> float
(** Current virtual time. *)

val rng : t -> Rng.t
(** The simulation's root generator; split it for independent streams. *)

val spawn : t -> ?name:string -> ?at:float -> (unit -> unit) -> unit
(** Schedule a new process. [at] defaults to the current time; it must not be
    in the virtual past. An exception escaping a process aborts [run]. *)

val at : t -> float -> (unit -> unit) -> unit
(** Schedule a bare callback (not a suspendable process) at an absolute time. *)

val run : ?until:float -> t -> unit
(** Execute events in order until the queue is empty or virtual time would
    pass [until]. Can be called repeatedly. *)

val step : t -> bool
(** Execute a single event; false if the queue was empty. *)

(* --- callable only from inside a process ------------------------------------- *)

val sleep : t -> float -> unit
(** Advance this process's virtual time by a non-negative delay. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] parks the process. [register] is called at once with
    a wake-up function valid from anywhere (another process, a bare event);
    calling it more than once is harmless. The process resumes at the virtual
    time of the wake-up call. *)

val yield : t -> unit
(** Let other events at the current time run first. *)

(* --- diagnostics --------------------------------------------------------------- *)

val events_executed : t -> int
val pending_events : t -> int
