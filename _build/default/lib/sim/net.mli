(** Simulated message network: named nodes, per-message latency, node
    crashes, and link-level partitions.

    Delivery rules: a message is dropped if the source is down or the link
    is cut when it is sent, or if the destination is down when it would be
    delivered. Delivered messages run as fresh simulator processes at the
    destination, so handlers may block (e.g. on representative locks). *)

open Repdir_util

type node_id = int

type t

val create : Sim.t -> n_nodes:int -> ?latency:(Rng.t -> float) -> unit -> t
(** [latency] draws each message's transit time; the default is exponential
    with mean 1.0 time units. *)

val sim : t -> Sim.t
val n_nodes : t -> int

val up : t -> node_id -> bool
val crash : t -> node_id -> unit
val recover : t -> node_id -> unit

val set_link : t -> node_id -> node_id -> bool -> unit
(** Cut or restore the (symmetric) link between two nodes. *)

val linked : t -> node_id -> node_id -> bool

val partition : t -> node_id list -> node_id list -> unit
(** Cut every link between the two groups. *)

val heal_partition : t -> unit
(** Restore all links. *)

val send : t -> src:node_id -> dst:node_id -> (unit -> unit) -> unit
(** Fire-and-forget message carrying a handler to run at the destination. *)

(* --- counters ----------------------------------------------------------------- *)

val messages_sent : t -> int
val messages_dropped : t -> int
