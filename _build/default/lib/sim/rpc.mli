(** Remote procedure calls over the simulated network.

    The paper writes representative operations as
    ["Send(<invocation>) to(<instance>)"] with ARGUS-like semantics; this is
    that primitive with explicit failure handling: the caller blocks until a
    reply arrives or the timeout expires. Server-side exceptions (transaction
    deadlock aborts, representative errors) travel back in the reply and are
    re-raised at the caller, matching local-call semantics. *)

type error = Timeout

val call :
  Net.t ->
  src:Net.node_id ->
  dst:Net.node_id ->
  timeout:float ->
  (unit -> 'r) ->
  ('r, error) result
(** Must be invoked from inside a simulator process. The handler runs as a
    process at [dst] (and may itself block, e.g. on locks); its result or
    exception is shipped back. Late replies after a timeout are dropped. *)
