lib/sim/net.mli: Repdir_util Rng Sim
