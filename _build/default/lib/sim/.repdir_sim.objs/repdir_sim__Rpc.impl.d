lib/sim/rpc.ml: Net Sim
