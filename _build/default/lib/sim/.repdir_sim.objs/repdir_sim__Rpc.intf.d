lib/sim/rpc.mli: Net
