lib/sim/sim.ml: Effect Heap Repdir_util Rng
