lib/sim/sim.mli: Repdir_util Rng
