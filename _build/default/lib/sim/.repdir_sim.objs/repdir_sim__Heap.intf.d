lib/sim/heap.mli:
