lib/sim/net.ml: Array Hashtbl List Printf Repdir_util Rng Sim
