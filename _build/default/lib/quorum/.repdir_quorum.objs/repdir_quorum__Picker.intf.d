lib/quorum/picker.mli: Config Format Repdir_util Rng
