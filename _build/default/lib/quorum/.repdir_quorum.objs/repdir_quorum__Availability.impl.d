lib/quorum/availability.ml: Array Config Repdir_util Rng
