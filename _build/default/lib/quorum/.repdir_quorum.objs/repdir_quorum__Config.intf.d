lib/quorum/config.mli: Format
