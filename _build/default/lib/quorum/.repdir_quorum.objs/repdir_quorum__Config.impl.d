lib/quorum/config.ml: Array Format Printf
