lib/quorum/picker.ml: Array Config Format List Repdir_util Rng
