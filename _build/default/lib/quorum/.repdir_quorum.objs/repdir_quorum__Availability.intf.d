lib/quorum/availability.mli: Config Repdir_util Rng
