type t = { votes : int array; read_quorum : int; write_quorum : int }

let make ~votes ~read_quorum ~write_quorum =
  let total = Array.fold_left ( + ) 0 votes in
  if Array.length votes = 0 then Error "no representatives"
  else if Array.exists (fun v -> v < 0) votes then Error "negative votes"
  else if total = 0 then Error "no votes assigned"
  else if read_quorum <= 0 || write_quorum <= 0 then Error "quorums must be positive"
  else if read_quorum + write_quorum <= total then
    Error
      (Printf.sprintf "R + W must exceed total votes (%d + %d <= %d)" read_quorum write_quorum
         total)
  else if 2 * write_quorum <= total then
    Error (Printf.sprintf "2W must exceed total votes (2*%d <= %d)" write_quorum total)
  else if read_quorum > total || write_quorum > total then Error "quorum exceeds total votes"
  else Ok { votes; read_quorum; write_quorum }

let make_exn ~votes ~read_quorum ~write_quorum =
  match make ~votes ~read_quorum ~write_quorum with
  | Ok t -> t
  | Error e -> invalid_arg ("Config.make: " ^ e)

let simple ~n ~r ~w = make_exn ~votes:(Array.make n 1) ~read_quorum:r ~write_quorum:w
let n_reps t = Array.length t.votes
let total_votes t = Array.fold_left ( + ) 0 t.votes
let votes_of t i = t.votes.(i)

let pp ppf t =
  if Array.for_all (fun v -> v = 1) t.votes then
    Format.fprintf ppf "%d-%d-%d" (Array.length t.votes) t.read_quorum t.write_quorum
  else
    Format.fprintf ppf "votes[%a] R=%d W=%d"
      (Format.pp_print_seq
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Format.pp_print_int)
      (Array.to_seq t.votes) t.read_quorum t.write_quorum

let to_string t = Format.asprintf "%a" pp t
