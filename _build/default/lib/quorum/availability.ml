open Repdir_util

let check_p p = if p < 0.0 || p > 1.0 then invalid_arg "Availability: p_up out of [0,1]"

let quorum_probability ~votes ~quorum ~p_up =
  check_p p_up;
  let total = Array.fold_left ( + ) 0 votes in
  if quorum > total then 0.0
  else begin
    (* dist.(j) = probability the up representatives' votes total exactly j. *)
    let dist = Array.make (total + 1) 0.0 in
    dist.(0) <- 1.0;
    Array.iter
      (fun v ->
        for j = total downto 0 do
          let up = if j >= v then dist.(j - v) *. p_up else 0.0 in
          dist.(j) <- (dist.(j) *. (1.0 -. p_up)) +. up
        done)
      votes;
    let acc = ref 0.0 in
    for j = quorum to total do
      acc := !acc +. dist.(j)
    done;
    !acc
  end

let read_availability (c : Config.t) ~p_up =
  quorum_probability ~votes:c.votes ~quorum:c.read_quorum ~p_up

let write_availability (c : Config.t) ~p_up =
  quorum_probability ~votes:c.votes ~quorum:c.write_quorum ~p_up

let both_availability (c : Config.t) ~p_up =
  quorum_probability ~votes:c.votes ~quorum:(max c.read_quorum c.write_quorum) ~p_up

let monte_carlo rng ~votes ~quorum ~p_up ~trials =
  check_p p_up;
  if trials <= 0 then invalid_arg "Availability.monte_carlo: trials must be positive";
  let hits = ref 0 in
  for _ = 1 to trials do
    let sum = ref 0 in
    Array.iter (fun v -> if Rng.float rng 1.0 < p_up then sum := !sum + v) votes;
    if !sum >= quorum then incr hits
  done;
  float_of_int !hits /. float_of_int trials
