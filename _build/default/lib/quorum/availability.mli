(** Availability analysis for weighted-voting configurations.

    Both the paper and Gifford motivate voting by the ability to tailor
    read/write availability through vote and quorum choices. With each
    representative independently up with probability [p_up], the probability
    that some set of live representatives musters a quorum is computed
    exactly by dynamic programming over achievable vote totals, and
    cross-checked by Monte Carlo in the test suite. *)

open Repdir_util

val quorum_probability : votes:int array -> quorum:int -> p_up:float -> float
(** Probability that the votes of up representatives total at least
    [quorum]. [p_up] must lie in [\[0, 1\]]. *)

val read_availability : Config.t -> p_up:float -> float
val write_availability : Config.t -> p_up:float -> float

val both_availability : Config.t -> p_up:float -> float
(** Probability that the live set can muster a read *and* a write quorum
    simultaneously — i.e. votes of up representatives reach
    [max R W]. *)

val monte_carlo :
  Rng.t -> votes:int array -> quorum:int -> p_up:float -> trials:int -> float
(** Simulation estimate of {!quorum_probability}, for validation. *)
