(** Directory suite configurations: vote assignment and quorum sizes.

    A suite has a vote count per representative and read/write quorum sizes
    R and W measured in votes. Gifford's constraints are enforced:
    [R + W > total votes] (every read quorum intersects every write quorum)
    and [2 * W > total votes] (any two write quorums intersect, so version
    numbers increase monotonically along every key's history).

    The paper's x-y-z notation (x representatives, read quorum y, write
    quorum z, one vote each) is built with {!simple}. Zero-vote
    representatives — Gifford's "weak" representatives used as hints — are
    permitted: they can receive writes but never count toward a quorum. *)

type t = private { votes : int array; read_quorum : int; write_quorum : int }

val make : votes:int array -> read_quorum:int -> write_quorum:int -> (t, string) result

val make_exn : votes:int array -> read_quorum:int -> write_quorum:int -> t

val simple : n:int -> r:int -> w:int -> t
(** [simple ~n ~r ~w] is the paper's n-r-w suite: n representatives with one
    vote each. Raises [Invalid_argument] if the quorum constraints fail. *)

val n_reps : t -> int
val total_votes : t -> int

val votes_of : t -> int -> int
(** Votes of one representative (by index). *)

val pp : Format.formatter -> t -> unit
(** Uniform one-vote suites render in the paper's x-y-z notation. *)

val to_string : t -> string
