lib/baselines/static_partition.mli: Key Repdir_key Repdir_quorum
