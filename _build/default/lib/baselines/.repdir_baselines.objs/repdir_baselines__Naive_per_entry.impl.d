lib/baselines/naive_per_entry.ml: Array Hashtbl Key List Repdir_key Replica_set
