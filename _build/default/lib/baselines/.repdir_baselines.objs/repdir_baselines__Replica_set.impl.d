lib/baselines/replica_set.ml: Array Config List Picker Printf Repdir_quorum Repdir_util Rng
