lib/baselines/primary_copy.ml: Config Hashtbl Key List Repdir_key Repdir_quorum Replica_set
