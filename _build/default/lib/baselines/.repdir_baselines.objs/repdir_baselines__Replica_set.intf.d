lib/baselines/replica_set.mli: Config Repdir_quorum
