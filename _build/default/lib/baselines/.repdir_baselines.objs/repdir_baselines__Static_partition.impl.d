lib/baselines/static_partition.ml: Array Hashtbl Key Map Option Repdir_key Replica_set
