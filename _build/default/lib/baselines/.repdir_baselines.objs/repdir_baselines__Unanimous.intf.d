lib/baselines/unanimous.mli: Key Repdir_key
