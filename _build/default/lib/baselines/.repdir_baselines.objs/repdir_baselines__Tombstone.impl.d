lib/baselines/tombstone.ml: Array Hashtbl Key List Repdir_key Replica_set
