lib/baselines/primary_copy.mli: Key Repdir_key
