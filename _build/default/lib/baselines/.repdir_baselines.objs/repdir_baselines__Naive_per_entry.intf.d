lib/baselines/naive_per_entry.mli: Key Repdir_key Repdir_quorum
