lib/baselines/file_voting.ml: Array Key Map Option Repdir_key Replica_set
