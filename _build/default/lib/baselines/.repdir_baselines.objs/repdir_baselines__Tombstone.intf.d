lib/baselines/tombstone.mli: Key Repdir_key Repdir_quorum
