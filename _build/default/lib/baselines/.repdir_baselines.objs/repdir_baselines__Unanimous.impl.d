lib/baselines/unanimous.ml: Array Config Hashtbl Key Repdir_key Repdir_quorum Replica_set
