lib/baselines/file_voting.mli: Key Repdir_key Repdir_quorum
