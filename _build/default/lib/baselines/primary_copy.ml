open Repdir_key
open Repdir_quorum

type change = Set of Key.t * string | Remove of Key.t

type replica = (Key.t, string) Hashtbl.t

type t = {
  set : replica Replica_set.t;
  mutable primary : int;
  mutable queue : change list; (* newest first; relayed on propagate *)
}

let create ?seed ~n () =
  let config = Config.simple ~n ~r:1 ~w:n in
  {
    set = Replica_set.create ?seed ~config ~make:(fun _ -> Hashtbl.create 64) ();
    primary = 0;
    queue = [];
  }

let primary t = t.primary

let apply replica = function
  | Set (k, v) -> Hashtbl.replace replica k v
  | Remove k -> Hashtbl.remove replica k

let primary_replica t =
  if not (Replica_set.is_up t.set t.primary) then
    raise (Replica_set.Unavailable "primary is down (failover pending)");
  Replica_set.replica t.set t.primary

let submit t change =
  let p = primary_replica t in
  apply p change;
  t.queue <- change :: t.queue

let insert t key value =
  if Hashtbl.mem (primary_replica t) key then Error `Already_present
  else begin
    submit t (Set (key, value));
    Ok ()
  end

let update t key value =
  if not (Hashtbl.mem (primary_replica t) key) then Error `Not_present
  else begin
    submit t (Set (key, value));
    Ok ()
  end

let delete t key =
  if Hashtbl.mem (primary_replica t) key then begin
    submit t (Remove key);
    true
  end
  else false

let lookup_primary t key = Hashtbl.find_opt (primary_replica t) key

let lookup_any t key =
  let i = Replica_set.any_up t.set in
  Hashtbl.find_opt (Replica_set.replica t.set i) key

let pending_updates t = List.length t.queue

let propagate t =
  let changes = List.rev t.queue in
  for i = 0 to Replica_set.n t.set - 1 do
    if i <> t.primary && Replica_set.is_up t.set i then
      List.iter (apply (Replica_set.replica t.set i)) changes
  done;
  t.queue <- []

let failover t =
  (* Promote the lowest-numbered up replica; whatever the old primary had
     not yet relayed is gone. *)
  let rec find i =
    if i >= Replica_set.n t.set then raise (Replica_set.Unavailable "no replica left")
    else if Replica_set.is_up t.set i then i
    else find (i + 1)
  in
  t.primary <- find 0;
  t.queue <- []

let crash t i =
  Replica_set.crash t.set i;
  if i = t.primary then failover t

let recover t i =
  (* Rejoin by copying the current primary's state. *)
  let source = Hashtbl.copy (primary_replica t) in
  let target = Replica_set.peek t.set i in
  Hashtbl.reset target;
  Hashtbl.iter (Hashtbl.replace target) source;
  Replica_set.recover t.set i

let replica_calls t = Replica_set.calls t.set
