open Repdir_key
open Repdir_quorum

type replica = (Key.t, string) Hashtbl.t

type t = { set : replica Replica_set.t }

let create ?seed ~n () =
  (* Quorum sizes are irrelevant here; the config only carries the replica
     count for the shared plumbing. *)
  let config = Config.simple ~n ~r:1 ~w:n in
  { set = Replica_set.create ?seed ~config ~make:(fun _ -> Hashtbl.create 64) () }

let lookup t key =
  let i = Replica_set.any_up t.set in
  Hashtbl.find_opt (Replica_set.replica t.set i) key

let modify_all t f =
  let members = Replica_set.all_up t.set in
  Array.iter (fun i -> f (Replica_set.replica t.set i)) members

let insert t key value =
  if lookup t key <> None then Error `Already_present
  else begin
    modify_all t (fun r -> Hashtbl.replace r key value);
    Ok ()
  end

let update t key value =
  if lookup t key = None then Error `Not_present
  else begin
    modify_all t (fun r -> Hashtbl.replace r key value);
    Ok ()
  end

let delete t key =
  let present = lookup t key <> None in
  if present then modify_all t (fun r -> Hashtbl.remove r key);
  present

let size t = Hashtbl.length (Replica_set.peek t.set 0)
let crash t i = Replica_set.crash t.set i

(* A replica that was down missed updates; unanimous update has no version
   numbers to reconcile with, so recovery must copy the full state from a
   live replica before serving reads again. *)
let recover t i =
  let source = Replica_set.any_up t.set in
  let fresh = Hashtbl.copy (Replica_set.replica t.set source) in
  let target = Replica_set.peek t.set i in
  Hashtbl.reset target;
  Hashtbl.iter (Hashtbl.replace target) fresh;
  Replica_set.recover t.set i

let replica_calls t = Replica_set.calls t.set
