open Repdir_key

module Key_map = Map.Make (Key)

type replica = { mutable version : int; mutable data : string Key_map.t }

type t = { set : replica Replica_set.t; mutable entries_written : int }

let create ?seed ~config () =
  {
    set =
      Replica_set.create ?seed ~config
        ~make:(fun _ -> { version = 0; data = Key_map.empty })
        ();
    entries_written = 0;
  }

(* Read quorum; believe the highest version. *)
let read_current t =
  let members = Replica_set.read_quorum t.set in
  Array.fold_left
    (fun best i ->
      let r = Replica_set.replica t.set i in
      match best with
      | Some b when b.version >= r.version -> best
      | _ -> Some r)
    None members
  |> Option.get

let lookup t key = Key_map.find_opt key (read_current t).data

(* Write the whole directory to a write quorum with version+1. *)
let write_back t new_data ~base_version =
  let members = Replica_set.write_quorum t.set in
  Array.iter
    (fun i ->
      let r = Replica_set.replica t.set i in
      r.version <- base_version + 1;
      r.data <- new_data;
      t.entries_written <- t.entries_written + Key_map.cardinal new_data)
    members

let insert t key value =
  let current = read_current t in
  if Key_map.mem key current.data then Error `Already_present
  else begin
    write_back t (Key_map.add key value current.data) ~base_version:current.version;
    Ok ()
  end

let update t key value =
  let current = read_current t in
  if not (Key_map.mem key current.data) then Error `Not_present
  else begin
    write_back t (Key_map.add key value current.data) ~base_version:current.version;
    Ok ()
  end

let delete t key =
  let current = read_current t in
  if Key_map.mem key current.data then begin
    write_back t (Key_map.remove key current.data) ~base_version:current.version;
    true
  end
  else false

let size t = Key_map.cardinal (read_current t).data
let crash t i = Replica_set.crash t.set i
let recover t i = Replica_set.recover t.set i
let replica_calls t = Replica_set.calls t.set
let entries_written t = t.entries_written
let version t = (read_current t).version
