(** Weighted voting with a *static* partitioning of the key space (§2's
    penultimate alternative).

    The key space is split into a fixed number of hash partitions, and
    Gifford's file algorithm is applied to each partition separately: every
    replica holds, per partition, a version number and a full copy of that
    partition's entries. A lookup reads the partition from a read quorum and
    believes the highest-versioned copy — which also answers "not present"
    soundly, since the copy is complete for its partition. Every
    modification reads the current copy, applies the change, and writes the
    *whole partition* back to a write quorum at version+1.

    This is the §2 trade-off made concrete: correctness is easy, but (a) all
    modifications within a partition carry one version number and therefore
    serialize ({!conflict_scope} exposes the granularity for the concurrency
    comparison), and (b) each modification ships an entire partition
    ({!entries_written}), so making partitions small for concurrency makes
    the per-write cost of skewed partitions worse, and "an uneven
    distribution of accesses could limit concurrency" regardless. *)

open Repdir_key

type t

val create : ?seed:int64 -> config:Repdir_quorum.Config.t -> partitions:int -> unit -> t

val partitions : t -> int
val partition_of : t -> Key.t -> int

val lookup : t -> Key.t -> string option
val insert : t -> Key.t -> string -> (unit, [ `Already_present ]) result
val update : t -> Key.t -> string -> (unit, [ `Not_present ]) result
val delete : t -> Key.t -> bool

(** Which keys an operation's locks would conflict with. *)
type scope = Single_key of Key.t | Whole_partition of int

val conflict_scope :
  t -> [ `Lookup of Key.t | `Insert of Key.t | `Update of Key.t | `Delete of Key.t ] -> scope
(** Inquiries are key-granular (shared locks); every modification conflicts
    with everything in its partition. *)

val entries_written : t -> int
(** Total entries shipped by partition write-backs. *)

val size : t -> int
val crash : t -> int -> unit
val recover : t -> int -> unit
val replica_calls : t -> int
