(** Shared plumbing for the baseline replication strategies of §2: a set of
    replicas with up/down flags, quorum selection, and access counting.

    The baselines are deliberately synchronous and self-contained — they
    exist to compare semantics, availability, message and space costs against
    the paper's algorithm, not to re-implement the full transactional
    stack. *)

open Repdir_quorum

exception Unavailable of string

type 'a t

val create : ?seed:int64 -> config:Config.t -> make:(int -> 'a) -> unit -> 'a t

val config : 'a t -> Config.t
val n : 'a t -> int

val replica : 'a t -> int -> 'a
(** Raises {!Unavailable} if the replica is down; counts the access. *)

val peek : 'a t -> int -> 'a
(** Access without up-check or counting (for test inspection). *)

val is_up : 'a t -> int -> bool
val crash : 'a t -> int -> unit
val recover : 'a t -> int -> unit

val read_quorum : 'a t -> int array
val write_quorum : 'a t -> int array
(** Uniformly random quorums among up replicas; raise {!Unavailable} when the
    votes cannot be mustered. *)

val all_up : 'a t -> int array
(** Every up replica; raises {!Unavailable} if any replica is down (the
    unanimous-update requirement). *)

val any_up : 'a t -> int
(** One uniformly random up replica. *)

val calls : 'a t -> int
(** Total counted replica accesses. *)
