open Repdir_util
open Repdir_quorum

exception Unavailable of string

type 'a t = {
  config : Config.t;
  replicas : 'a array;
  up : bool array;
  rng : Rng.t;
  mutable calls : int;
}

let create ?(seed = 1L) ~config ~make () =
  let n = Config.n_reps config in
  {
    config;
    replicas = Array.init n make;
    up = Array.make n true;
    rng = Rng.create seed;
    calls = 0;
  }

let config t = t.config
let n t = Array.length t.replicas

let check t i =
  if i < 0 || i >= Array.length t.replicas then invalid_arg "Replica_set: bad index"

let replica t i =
  check t i;
  if not t.up.(i) then raise (Unavailable (Printf.sprintf "replica %d is down" i));
  t.calls <- t.calls + 1;
  t.replicas.(i)

let peek t i =
  check t i;
  t.replicas.(i)

let is_up t i =
  check t i;
  t.up.(i)

let crash t i =
  check t i;
  t.up.(i) <- false

let recover t i =
  check t i;
  t.up.(i) <- true

let quorum t target =
  match
    Picker.collect Picker.Random t.rng t.config ~available:(fun i -> t.up.(i)) ~quorum:target
  with
  | Some q -> q
  | None -> raise (Unavailable "quorum not available")

let read_quorum t = quorum t t.config.Config.read_quorum
let write_quorum t = quorum t t.config.Config.write_quorum

let all_up t =
  if Array.exists (fun u -> not u) t.up then raise (Unavailable "a replica is down");
  Array.init (n t) (fun i -> i)

let any_up t =
  let ups = Array.to_list (Array.mapi (fun i u -> (i, u)) t.up) in
  let ups = List.filter_map (fun (i, u) -> if u then Some i else None) ups in
  match ups with
  | [] -> raise (Unavailable "all replicas down")
  | _ -> List.nth ups (Rng.int t.rng (List.length ups))

let calls t = t.calls
