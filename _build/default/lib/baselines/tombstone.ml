open Repdir_key

type entry = { version : int; value : string option (* None = tombstone *) }

type replica = (Key.t, entry) Hashtbl.t

type t = { set : replica Replica_set.t }

let create ?seed ~config () =
  { set = Replica_set.create ?seed ~config ~make:(fun _ -> Hashtbl.create 64) () }

let read_best t key =
  let members = Replica_set.read_quorum t.set in
  Array.fold_left
    (fun (best_v, best) i ->
      match Hashtbl.find_opt (Replica_set.replica t.set i) key with
      | Some e when e.version > best_v -> (e.version, e.value)
      | Some _ | None -> (best_v, best))
    (-1, None) members

let lookup t key = snd (read_best t key)

let write t key version value =
  let members = Replica_set.write_quorum t.set in
  Array.iter
    (fun i -> Hashtbl.replace (Replica_set.replica t.set i) key { version; value })
    members

let insert t key value =
  let v, current = read_best t key in
  if current <> None then Error `Already_present
  else begin
    write t key (v + 1) (Some value);
    Ok ()
  end

let update t key value =
  let v, current = read_best t key in
  if current = None then Error `Not_present
  else begin
    write t key (v + 1) (Some value);
    Ok ()
  end

let delete t key =
  let v, current = read_best t key in
  if current = None then false
  else begin
    write t key (v + 1) None;
    true
  end

let all_known_keys t =
  let keys = Hashtbl.create 64 in
  for i = 0 to Replica_set.n t.set - 1 do
    if Replica_set.is_up t.set i then
      Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) (Replica_set.peek t.set i)
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []

let size t = List.length (List.filter (fun k -> lookup t k <> None) (all_known_keys t))

let physical_size t =
  let best = ref 0 in
  for i = 0 to Replica_set.n t.set - 1 do
    let n = Hashtbl.length (Replica_set.peek t.set i) in
    if n > !best then best := n
  done;
  !best

let crash t i = Replica_set.crash t.set i
let recover t i = Replica_set.recover t.set i
let replica_calls t = Replica_set.calls t.set
