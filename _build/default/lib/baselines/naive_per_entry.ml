open Repdir_key

type entry = { version : int; value : string }

type replica = (Key.t, entry) Hashtbl.t

type t = { set : replica Replica_set.t }

let create ?seed ~config () =
  { set = Replica_set.create ?seed ~config ~make:(fun _ -> Hashtbl.create 64) () }

type answer = Present of string | Absent | Ambiguous

(* The fundamental flaw: a "not present" reply carries no version, so when
   replies disagree there is nothing to compare. We return the highest
   versioned "present" reply only when *no* member contradicts it... but a
   contradiction is indistinguishable from the member merely having missed
   the insert. The only sound readings are all-present and all-absent;
   everything else is ambiguous. *)
let lookup t key =
  let members = Replica_set.read_quorum t.set in
  let present = ref [] and absent = ref 0 in
  Array.iter
    (fun i ->
      match Hashtbl.find_opt (Replica_set.replica t.set i) key with
      | Some e -> present := e :: !present
      | None -> incr absent)
    members;
  match (!present, !absent) with
  | [], _ -> Absent
  | entries, 0 ->
      let best = List.fold_left (fun b e -> if e.version > b.version then e else b)
          (List.hd entries) entries
      in
      Present best.value
  | _, _ -> Ambiguous

let insert t key value =
  match lookup t key with
  | Present _ -> Error `Already_present
  | Ambiguous -> Error `Ambiguous
  | Absent ->
      let members = Replica_set.read_quorum t.set in
      let best_version =
        Array.fold_left
          (fun acc i ->
            match Hashtbl.find_opt (Replica_set.replica t.set i) key with
            | Some e -> max acc e.version
            | None -> acc)
          0 members
      in
      let write_members = Replica_set.write_quorum t.set in
      Array.iter
        (fun i ->
          Hashtbl.replace (Replica_set.replica t.set i) key
            { version = best_version + 1; value })
        write_members;
      Ok ()

let delete t key =
  let was_present = lookup t key <> Absent in
  let members = Replica_set.write_quorum t.set in
  Array.iter (fun i -> Hashtbl.remove (Replica_set.replica t.set i) key) members;
  was_present

let crash t i = Replica_set.crash t.set i
let recover t i = Replica_set.recover t.set i
