(** Gifford's weighted voting for files, storing the whole directory as one
    replicated file (§2's starting point).

    Each replica holds a single version number and a full copy of the
    directory. Reads collect a read quorum and use the copy with the highest
    version; every modification reads the current copy, applies the change,
    and writes the *entire* directory back to a write quorum with version+1.

    Consequences measured by the benches: every modification ships the whole
    directory (entries-written grows with directory size), and because all
    operations touch the single version number, concurrent modifications of
    unrelated entries serialize — the limitation the paper's gap versioning
    removes. *)

open Repdir_key

type t

val create : ?seed:int64 -> config:Repdir_quorum.Config.t -> unit -> t

val lookup : t -> Key.t -> string option
val insert : t -> Key.t -> string -> (unit, [ `Already_present ]) result
val update : t -> Key.t -> string -> (unit, [ `Not_present ]) result
val delete : t -> Key.t -> bool

val size : t -> int
val crash : t -> int -> unit
val recover : t -> int -> unit
val replica_calls : t -> int

val entries_written : t -> int
(** Total entries shipped by write-backs — the whole-file write cost. *)

val version : t -> int
(** Current file version (as seen by a read quorum). *)
