(** Unanimous-update replication (§2).

    Every update is applied to all replicas; reads go to any single replica.
    Consistency is trivial (all replicas identical), but a single down
    replica blocks every modification — the availability weakness the paper
    cites. No version numbers are needed. *)

open Repdir_key

type t

val create : ?seed:int64 -> n:int -> unit -> t

val lookup : t -> Key.t -> string option
val insert : t -> Key.t -> string -> (unit, [ `Already_present ]) result
val update : t -> Key.t -> string -> (unit, [ `Not_present ]) result
val delete : t -> Key.t -> bool
(** All raise {!Replica_set.Unavailable} when their replica requirements
    cannot be met: reads need one replica up, modifications need all. *)

val size : t -> int
val crash : t -> int -> unit
val recover : t -> int -> unit
val replica_calls : t -> int
