(** The broken scheme of §2 and Figures 1–3: per-entry version numbers with
    *physical* deletion and no versions for absent keys.

    After a delete, a read quorum can contain one replica that still holds a
    stale entry ("present with version 1") and one that never saw it or
    physically deleted it ("not present" — with no version to compare).
    {!lookup} honestly reports that situation as [`Ambiguous]: the quorum's
    answers cannot be reconciled. The test suite and the
    [delete_ambiguity] example drive it into exactly the paper's Figure 3
    state. *)

open Repdir_key

type t

val create : ?seed:int64 -> config:Repdir_quorum.Config.t -> unit -> t

type answer = Present of string | Absent | Ambiguous
(** [Ambiguous]: some quorum member says "present", another "not present",
    and no version information can arbitrate. *)

val lookup : t -> Key.t -> answer
val insert : t -> Key.t -> string -> (unit, [ `Already_present | `Ambiguous ]) result
val delete : t -> Key.t -> bool

val crash : t -> int -> unit
val recover : t -> int -> unit
