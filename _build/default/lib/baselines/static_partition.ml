open Repdir_key

module Key_map = Map.Make (Key)

type partition = { mutable version : int; mutable entries : string Key_map.t }

type replica = partition array

type t = {
  set : replica Replica_set.t;
  n_partitions : int;
  mutable entries_written : int;
}

let create ?seed ~config ~partitions () =
  if partitions <= 0 then invalid_arg "Static_partition.create: need at least one partition";
  let make _ = Array.init partitions (fun _ -> { version = 0; entries = Key_map.empty }) in
  { set = Replica_set.create ?seed ~config ~make (); n_partitions = partitions; entries_written = 0 }

let partitions t = t.n_partitions
let partition_of t key = Hashtbl.hash key mod t.n_partitions

(* Highest-versioned copy of the key's partition from a read quorum. *)
let read_partition t key =
  let p = partition_of t key in
  let members = Replica_set.read_quorum t.set in
  Array.fold_left
    (fun best i ->
      let part = (Replica_set.replica t.set i).(p) in
      match best with
      | Some b when b.version >= part.version -> best
      | _ -> Some part)
    None members
  |> Option.get

let lookup t key = Key_map.find_opt key (read_partition t key).entries

(* Write the whole partition to a write quorum at version+1. *)
let write_partition t key new_entries ~base_version =
  let p = partition_of t key in
  let members = Replica_set.write_quorum t.set in
  Array.iter
    (fun i ->
      let part = (Replica_set.replica t.set i).(p) in
      part.version <- base_version + 1;
      part.entries <- new_entries;
      t.entries_written <- t.entries_written + Key_map.cardinal new_entries)
    members

let insert t key value =
  let current = read_partition t key in
  if Key_map.mem key current.entries then Error `Already_present
  else begin
    write_partition t key (Key_map.add key value current.entries)
      ~base_version:current.version;
    Ok ()
  end

let update t key value =
  let current = read_partition t key in
  if not (Key_map.mem key current.entries) then Error `Not_present
  else begin
    write_partition t key (Key_map.add key value current.entries)
      ~base_version:current.version;
    Ok ()
  end

let delete t key =
  let current = read_partition t key in
  if Key_map.mem key current.entries then begin
    write_partition t key (Key_map.remove key current.entries) ~base_version:current.version;
    true
  end
  else false

type scope = Single_key of Key.t | Whole_partition of int

let conflict_scope t = function
  | `Lookup key -> Single_key key
  | `Insert key | `Update key | `Delete key -> Whole_partition (partition_of t key)

let entries_written t = t.entries_written

let size t =
  (* Live entries per a quorum read of each partition: use the highest-
     versioned copy of every partition. *)
  let total = ref 0 in
  for p = 0 to t.n_partitions - 1 do
    let best = ref None in
    for i = 0 to Replica_set.n t.set - 1 do
      if Replica_set.is_up t.set i then begin
        let part = (Replica_set.peek t.set i).(p) in
        match !best with
        | Some (b : partition) when b.version >= part.version -> ()
        | _ -> best := Some part
      end
    done;
    match !best with Some b -> total := !total + Key_map.cardinal b.entries | None -> ()
  done;
  !total

let crash t i = Replica_set.crash t.set i
let recover t i = Replica_set.recover t.set i
let replica_calls t = Replica_set.calls t.set
