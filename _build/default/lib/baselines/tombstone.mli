(** Per-entry versioning with tombstones (§2: "entries could be updated to
    indicate that they are 'deleted'").

    Every key ever inserted keeps an entry forever; deletion overwrites the
    value with a deleted marker at version+1. Lookups are unambiguous and
    per-entry concurrency is perfect, but "the space occupied by 'deleted'
    entries could not easily be reclaimed": {!physical_size} grows without
    bound relative to {!size}, which the space benches plot against the
    paper's algorithm. *)

open Repdir_key

type t

val create : ?seed:int64 -> config:Repdir_quorum.Config.t -> unit -> t

val lookup : t -> Key.t -> string option
val insert : t -> Key.t -> string -> (unit, [ `Already_present ]) result
val update : t -> Key.t -> string -> (unit, [ `Not_present ]) result
val delete : t -> Key.t -> bool

val size : t -> int
(** Live entries (per a quorum read of every known key). *)

val physical_size : t -> int
(** Entries physically stored on the largest replica, tombstones included. *)

val crash : t -> int -> unit
val recover : t -> int -> unit
val replica_calls : t -> int
