(** Primary/secondary-copy replication (§2).

    All updates go to the primary, which relays them asynchronously to
    secondaries; inquiries may be served by any replica. The relay delay is
    modelled by an explicit propagation queue: updates become visible at
    secondaries only when {!propagate} drains (a real deployment's relay
    lag). {!lookup_any} can therefore return stale answers — the §2
    objection that this scheme cannot duplicate single-copy semantics —
    while {!lookup_primary} is always current but concentrates load.

    If the primary crashes, a deterministic failover promotes the lowest-
    numbered up secondary; updates queued but not yet propagated are lost,
    which the tests observe (the Locus-style synchronization problem the
    paper mentions). *)

open Repdir_key

type t

val create : ?seed:int64 -> n:int -> unit -> t

val primary : t -> int

val insert : t -> Key.t -> string -> (unit, [ `Already_present ]) result
val update : t -> Key.t -> string -> (unit, [ `Not_present ]) result
val delete : t -> Key.t -> bool

val lookup_primary : t -> Key.t -> string option
val lookup_any : t -> Key.t -> string option
(** Uniform random up replica; may be stale. *)

val pending_updates : t -> int
val propagate : t -> unit
(** Drain the relay queue to all up secondaries. *)

val crash : t -> int -> unit
(** Crashing the primary triggers failover (losing unpropagated updates). *)

val recover : t -> int -> unit
val replica_calls : t -> int
