open Repdir_util
open Repdir_key
open Repdir_sim
open Repdir_core

type row = { op : string; sequential : float; parallel : float; speedup : float }

(* Mean latency per operation type for one transport mode. *)
let measure ~seed ~ops ~parallel_rpc ~config =
  let world = Sim_world.create ~seed ~rpc_timeout:1.0e6 ~parallel_rpc ~config () in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client world 0 in
  let rng = Rng.create (Int64.add seed 77L) in
  let sums = Hashtbl.create 4 and counts = Hashtbl.create 4 in
  let record kind dt =
    Hashtbl.replace sums kind (dt +. Option.value ~default:0.0 (Hashtbl.find_opt sums kind));
    Hashtbl.replace counts kind (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
  in
  let n_keys = 100 in
  Sim.spawn sim (fun () ->
      for i = 0 to n_keys - 1 do
        ignore (Suite.insert suite (Key.of_int i) "v")
      done;
      for step = 1 to ops do
        let key = Key.of_int (Rng.int rng n_keys) in
        let t0 = Sim.now sim in
        let kind =
          match step mod 3 with
          | 0 ->
              ignore (Suite.lookup suite key);
              "lookup"
          | 1 ->
              ignore (Suite.update suite key "v'");
              "update"
          | _ ->
              (* delete + reinsert keeps the directory stable; only the
                 delete is timed. *)
              ignore (Suite.delete suite key);
              let dt = Sim.now sim -. t0 in
              record "delete" dt;
              ignore (Suite.insert suite key "v");
              "-"
        in
        if kind <> "-" then record kind (Sim.now sim -. t0)
      done);
  Sim.run sim;
  List.filter_map
    (fun kind ->
      match (Hashtbl.find_opt sums kind, Hashtbl.find_opt counts kind) with
      | Some s, Some c when c > 0 -> Some (kind, s /. float_of_int c)
      | _ -> None)
    [ "lookup"; "update"; "delete" ]

let run ?(seed = 55L) ?(ops = 1_500) ~config () =
  let seq = measure ~seed ~ops ~parallel_rpc:false ~config in
  let par = measure ~seed ~ops ~parallel_rpc:true ~config in
  List.map
    (fun (op, sequential) ->
      let parallel = List.assoc op par in
      { op; sequential; parallel; speedup = sequential /. parallel })
    seq

let table ?seed ?ops ~config () =
  let rows = run ?seed ?ops ~config () in
  let t =
    Table.create
      ~header:[ "Operation"; "Sequential RPC"; "Parallel RPC"; "Speedup" ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.op;
          Printf.sprintf "%.2f" r.sequential;
          Printf.sprintf "%.2f" r.parallel;
          Printf.sprintf "%.2fx" r.speedup;
        ])
    rows;
  t
