open Repdir_util
open Repdir_key
open Repdir_txn
open Repdir_rep
open Repdir_quorum
open Repdir_core

type row = {
  rep : int;
  reads_from_a : int;
  writes_from_a : int;
  reads_from_b : int;
  writes_from_b : int;
}

type outcome = {
  rows : row list;
  a_reads_local_fraction : float;
  b_reads_local_fraction : float;
}

let reads (c : Rep.counters) = c.Rep.lookups + c.Rep.predecessors + c.Rep.successors
let writes (c : Rep.counters) = c.Rep.inserts + c.Rep.coalesces

let run ?(seed = 16L) ?(ops = 4_000) () =
  let config = Config.simple ~n:4 ~r:2 ~w:3 in
  let reps = Array.init 4 (fun i -> Rep.create ~name:(Printf.sprintf "rep%d" i) ()) in
  let transport = Transport.local reps in
  let txns = Txn.Manager.create () in
  let root = Rng.create seed in
  let suite_a =
    Suite.create ~seed:(Rng.int64 root)
      ~picker:(Picker.Locality { local = [| 0; 1 |]; remote = [| 2; 3 |] })
      ~config ~transport ~txns ()
  in
  let suite_b =
    Suite.create ~seed:(Rng.int64 root)
      ~picker:(Picker.Locality { local = [| 2; 3 |]; remote = [| 0; 1 |] })
      ~config ~transport ~txns ()
  in
  let rng = Rng.split root in
  (* Per-type access accounting by counter snapshots around each operation
     (single-threaded, so deltas attribute exactly). *)
  let a_reads = Array.make 4 0
  and a_writes = Array.make 4 0
  and b_reads = Array.make 4 0
  and b_writes = Array.make 4 0 in
  let snapshot () = Array.map (fun r -> (reads (Rep.counters r), writes (Rep.counters r))) reps in
  (* An inquiry's accesses count as reads; a modification's accesses (even
     its internal quorum lookups) count toward the write column — Figure 16's
     claim is that *inquiries* are fully local while the one non-local access
     per modification spreads over the remote representatives. *)
  let attribute ~inquiry ~into_reads ~into_writes before =
    Array.iteri
      (fun i r ->
        let r0, w0 = before.(i) in
        let dr = reads (Rep.counters r) - r0 and dw = writes (Rep.counters r) - w0 in
        if inquiry then into_reads.(i) <- into_reads.(i) + dr + dw
        else into_writes.(i) <- into_writes.(i) + dr + dw)
      reps
  in
  (* Keys: type A owns the low half, type B the high half. *)
  let key_a i = "a-" ^ Key.of_int i and key_b i = "b-" ^ Key.of_int i in
  let n_keys = 50 in
  for i = 0 to n_keys - 1 do
    ignore (Suite.insert suite_a (key_a i) "va");
    ignore (Suite.insert suite_b (key_b i) "vb")
  done;
  Array.fill a_reads 0 4 0;
  Array.fill a_writes 0 4 0;
  Array.fill b_reads 0 4 0;
  Array.fill b_writes 0 4 0;
  for _ = 1 to ops do
    let type_a = Rng.bool rng in
    let suite = if type_a then suite_a else suite_b in
    let key = (if type_a then key_a else key_b) (Rng.int rng n_keys) in
    let before = snapshot () in
    let inquiry =
      match Rng.int rng 3 with
      | 0 ->
          ignore (Suite.lookup suite key);
          true
      | 1 ->
          ignore (Suite.update suite key "v'");
          false
      | _ ->
          (* delete and reinsert, keeping the population stable *)
          ignore (Suite.delete suite key);
          ignore (Suite.insert suite key "v");
          false
    in
    if type_a then attribute ~inquiry ~into_reads:a_reads ~into_writes:a_writes before
    else attribute ~inquiry ~into_reads:b_reads ~into_writes:b_writes before
  done;
  let rows =
    List.init 4 (fun i ->
        {
          rep = i;
          reads_from_a = a_reads.(i);
          writes_from_a = a_writes.(i);
          reads_from_b = b_reads.(i);
          writes_from_b = b_writes.(i);
        })
  in
  let frac local total_arr =
    let local_sum = List.fold_left (fun acc i -> acc + total_arr.(i)) 0 local in
    let total = Array.fold_left ( + ) 0 total_arr in
    if total = 0 then 1.0 else float_of_int local_sum /. float_of_int total
  in
  {
    rows;
    a_reads_local_fraction = frac [ 0; 1 ] a_reads;
    b_reads_local_fraction = frac [ 2; 3 ] b_reads;
  }

let table ?seed ?ops () =
  let o = run ?seed ?ops () in
  let t =
    Table.create
      ~header:[ "Representative"; "Reads (A)"; "Writes (A)"; "Reads (B)"; "Writes (B)" ]
      ()
  in
  List.iter
    (fun r ->
      let name = [| "A1"; "A2"; "B1"; "B2" |].(r.rep) in
      Table.add_row t
        [
          name;
          string_of_int r.reads_from_a;
          string_of_int r.writes_from_a;
          string_of_int r.reads_from_b;
          string_of_int r.writes_from_b;
        ])
    o.rows;
  Table.add_separator t;
  Table.add_row t
    [
      "A reads local";
      Printf.sprintf "%.1f%%" (100.0 *. o.a_reads_local_fraction);
      "";
      Printf.sprintf "%.1f%% (B)" (100.0 *. o.b_reads_local_fraction);
      "";
    ];
  t
