(** Operation latency on the simulated network: sequential vs parallel
    quorum RPCs (the §5 message-traffic/latency optimization).

    The paper's pseudo-code contacts quorum members one at a time; a real
    implementation overlaps the round trips. With exponential(mean 1)
    message latency, a sequential k-member round costs about 2k mean RTT
    halves while a parallel round costs the maximum of k draws — the gap
    grows with quorum size, and Delete (several rounds per operation)
    benefits most. *)

type row = {
  op : string;
  sequential : float;  (** mean virtual-time latency *)
  parallel : float;
  speedup : float;
}

val run :
  ?seed:int64 -> ?ops:int -> config:Repdir_quorum.Config.t -> unit -> row list

val table : ?seed:int64 -> ?ops:int -> config:Repdir_quorum.Config.t -> unit -> Repdir_util.Table.t
