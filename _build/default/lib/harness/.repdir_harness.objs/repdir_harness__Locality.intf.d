lib/harness/locality.mli: Repdir_util
