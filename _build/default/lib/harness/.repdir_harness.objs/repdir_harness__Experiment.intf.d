lib/harness/experiment.mli: Config Picker Repdir_quorum Repdir_util Stats
