lib/harness/latency.mli: Repdir_quorum Repdir_util
