lib/harness/figures.mli: Repdir_quorum Repdir_util Table
