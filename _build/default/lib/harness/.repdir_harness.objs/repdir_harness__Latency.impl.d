lib/harness/latency.ml: Hashtbl Int64 Key List Option Printf Repdir_core Repdir_key Repdir_sim Repdir_util Rng Sim Sim_world Suite Table
