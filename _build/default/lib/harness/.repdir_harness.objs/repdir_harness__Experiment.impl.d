lib/harness/experiment.ml: Array Config List Picker Printf Rep Repdir_core Repdir_quorum Repdir_rep Repdir_txn Repdir_util Repdir_workload Rng Stats Suite Transport Txn Unix Workload
