lib/harness/faults.mli: Repdir_util
