lib/harness/locality.ml: Array Config Key List Picker Printf Rep Repdir_core Repdir_key Repdir_quorum Repdir_rep Repdir_txn Repdir_util Rng Suite Table Transport Txn
