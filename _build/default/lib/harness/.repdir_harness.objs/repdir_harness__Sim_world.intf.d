lib/harness/sim_world.mli: Config Net Picker Rep Repdir_core Repdir_quorum Repdir_rep Repdir_sim Repdir_txn Repdir_util Sim Suite Transport Txn
