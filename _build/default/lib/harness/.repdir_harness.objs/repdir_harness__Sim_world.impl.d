lib/harness/sim_world.ml: Array Config Net Printf Rep Repdir_core Repdir_lock Repdir_quorum Repdir_rep Repdir_sim Repdir_txn Rpc Sim Suite Transport Txn
