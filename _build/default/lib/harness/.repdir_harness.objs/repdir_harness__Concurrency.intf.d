lib/harness/concurrency.mli: Format Repdir_quorum Repdir_util
