lib/harness/faults.ml: Array Hashtbl Int64 Key List Printf Repdir_core Repdir_key Repdir_quorum Repdir_rep Repdir_sim Repdir_util Rng Sim Sim_world String Suite Table
