lib/harness/concurrency.ml: Array Float Format Key List Option Printf Rep Repdir_core Repdir_key Repdir_rep Repdir_sim Repdir_txn Repdir_util Rng Sim Sim_world Suite Table Txn Zipf
