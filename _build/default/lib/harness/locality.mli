(** The Figure 16 locality configuration, measured.

    A 4-2-3 suite where representatives A1, A2 are local to type A
    transactions (keys in the low half) and B1, B2 are local to type B
    transactions (keys in the high half). With the {!Repdir_quorum.Picker}
    [Locality] strategy, every inquiry should be answered entirely by the two
    local representatives, and each modification should touch both local
    representatives plus exactly one remote one, spread evenly.

    The run drives both transaction types against shared representatives and
    attributes every representative access to the type that issued it. *)

type row = {
  rep : int;
  reads_from_a : int;
  writes_from_a : int;
  reads_from_b : int;
  writes_from_b : int;
}

type outcome = {
  rows : row list;
  a_reads_local_fraction : float;  (** fraction of A's reads served by A1/A2 *)
  b_reads_local_fraction : float;
}

val run : ?seed:int64 -> ?ops:int -> unit -> outcome

val table : ?seed:int64 -> ?ops:int -> unit -> Repdir_util.Table.t
