open Repdir_util
open Repdir_key
open Repdir_sim
open Repdir_txn
open Repdir_rep
open Repdir_core

type scheme = Gap | Single_version

let pp_scheme ppf = function
  | Gap -> Format.pp_print_string ppf "gap-versioned"
  | Single_version -> Format.pp_print_string ppf "single-version"

type row = {
  scheme : scheme;
  clients : int;
  committed : int;
  deadlock_aborts : int;
  throughput : float;
  avg_latency : float;
  lock_waits : int;
}

let file_key = "THE-FILE"

(* Pre-populate directly at the representatives (synchronous, uncontended). *)
let prepopulate world ~scheme ~n_keys =
  let txn = Txn.Manager.begin_txn (Sim_world.txns world) in
  let reps = Sim_world.reps world in
  (match scheme with
  | Gap ->
      for k = 0 to n_keys - 1 do
        Array.iter (fun rep -> Rep.insert rep ~txn (Key.of_int k) 1 "v0") reps
      done
  | Single_version -> Array.iter (fun rep -> Rep.insert rep ~txn file_key 1 "blob0") reps);
  Array.iter (fun rep -> Rep.commit rep ~txn) reps;
  Txn.Manager.commit (Sim_world.txns world) txn

let run ?(seed = 7L) ?(duration = 2000.0) ?(n_keys = 64) ?(ops_per_txn = 2) ?zipf_s ~scheme
    ~clients ~config () =
  let world =
    Sim_world.create ~seed ~rpc_timeout:1.0e9 ~n_clients:clients ~config ()
  in
  let sim = Sim_world.sim world in
  prepopulate world ~scheme ~n_keys;
  let committed = ref 0 in
  let deadlock_aborts = ref 0 in
  let total_latency = ref 0.0 in
  let client_rng = Rng.split (Sim.rng sim) in
  let zipf = Option.map (fun s -> Zipf.create ~n:n_keys ~s) zipf_s in
  let draw_key rng =
    match zipf with
    | Some z -> Key.of_int (Zipf.sample z rng)
    | None -> Key.of_int (Rng.int rng n_keys)
  in
  for c = 0 to clients - 1 do
    let suite = Sim_world.suite_for_client ~seed:(Rng.int64 client_rng) world c in
    let rng = Rng.split client_rng in
    let body txn =
      for _ = 1 to ops_per_txn do
        let key = match scheme with Gap -> draw_key rng | Single_version -> file_key in
        match Suite.update ~txn suite key (Printf.sprintf "c%d-%f" c (Sim.now sim)) with
        | Ok () -> ()
        | Error `Not_present -> failwith "concurrency: key vanished"
      done
    in
    Sim.spawn sim (fun () ->
        (* Randomized exponential backoff after deadlock aborts, reset on
           commit — without it, high contention livelocks on retry storms. *)
        let backoff = ref 2.0 in
        while Sim.now sim < duration do
          let started = Sim.now sim in
          match Suite.with_txn suite body with
          | () ->
              incr committed;
              backoff := 2.0;
              total_latency := !total_latency +. (Sim.now sim -. started)
          | exception Txn.Abort (Txn.Deadlock _) ->
              incr deadlock_aborts;
              Sim.sleep sim (Rng.exponential rng ~mean:!backoff);
              backoff := Float.min (2.0 *. !backoff) 64.0
        done)
  done;
  Sim.run sim;
  let lock_waits =
    Array.fold_left
      (fun acc rep -> acc + (Rep.counters rep).Rep.lock_waits)
      0 (Sim_world.reps world)
  in
  {
    scheme;
    clients;
    committed = !committed;
    deadlock_aborts = !deadlock_aborts;
    throughput = float_of_int !committed /. duration;
    avg_latency =
      (if !committed = 0 then nan else !total_latency /. float_of_int !committed);
    lock_waits;
  }

let table ?(seed = 7L) ?(duration = 2000.0) ?(client_counts = [ 1; 2; 4; 8 ]) ~config () =
  let t =
    Table.create
      ~header:
        [
          "Scheme";
          "Clients";
          "Committed";
          "Throughput (txn/t)";
          "Avg latency (t)";
          "Deadlock aborts";
          "Lock waits";
        ]
      ()
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun clients ->
          let r = run ~seed ~duration ~scheme ~clients ~config () in
          Table.add_row t
            [
              Format.asprintf "%a" pp_scheme scheme;
              string_of_int clients;
              string_of_int r.committed;
              Printf.sprintf "%.3f" r.throughput;
              Printf.sprintf "%.2f" r.avg_latency;
              string_of_int r.deadlock_aborts;
              string_of_int r.lock_waits;
            ])
        client_counts;
      Table.add_separator t)
    [ Gap; Single_version ];
  t

let skew_table ?(seed = 7L) ?(duration = 2000.0) ?(clients = 8)
    ?(exponents = [ 0.0; 0.7; 1.0; 1.5 ]) ~config () =
  let t =
    Table.create
      ~header:
        [ "Zipf s"; "Committed"; "Throughput (txn/t)"; "Deadlock aborts"; "Lock waits" ]
      ()
  in
  List.iter
    (fun s_exp ->
      let r = run ~seed ~duration ~zipf_s:s_exp ~scheme:Gap ~clients ~config () in
      Table.add_row t
        [
          Printf.sprintf "%.1f" s_exp;
          string_of_int r.committed;
          Printf.sprintf "%.3f" r.throughput;
          string_of_int r.deadlock_aborts;
          string_of_int r.lock_waits;
        ])
    exponents;
  t
