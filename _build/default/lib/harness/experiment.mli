(** Driver for the §4 statistical simulations.

    Builds a suite over in-process representatives, applies the paper's
    workload, and accumulates the three statistics of Figures 14 and 15:

    - "Entries in ranges coalesced" — one sample per (delete, write-quorum
      member): entries removed by that member's coalesce (the deleted entry
      if present there, plus ghosts; real predecessor/successor excluded).
    - "Deletions while coalescing" — one sample per delete: ghost entries
      removed across the whole quorum (extra deletions relative to a
      unanimous-update strategy with W replicas).
    - "Insertions while coalescing" — one sample per delete: real
      predecessor/successor copies installed in quorum members. *)

open Repdir_util
open Repdir_quorum

type deletion_stats = {
  entries_coalesced : Stats.t;
  deletions_while_coalescing : Stats.t;
  insertions_while_coalescing : Stats.t;
}

type outcome = {
  stats : deletion_stats;
  deletes : int;  (** measured DirSuiteDelete operations *)
  ops : int;  (** total measured operations *)
  rpcs : int;  (** representative calls issued during measurement *)
  final_size : int;  (** directory size (per the workload mirror) at the end *)
  elapsed_s : float;
}

val run :
  ?picker:Picker.strategy ->
  ?seed:int64 ->
  ?update_fraction:float ->
  config:Config.t ->
  n_entries:int ->
  ops:int ->
  unit ->
  outcome
(** Fill the directory to [n_entries] (unmeasured warm-up), then apply [ops]
    operations of the paper's mix, measuring delete statistics. *)
