(** The §2 concurrency claim, measured.

    "If a directory were stored as a replicated file suite ... only a single
    transaction could modify the directory at any time", whereas the gap
    scheme lets transactions on different entries proceed concurrently.

    Both schemes run on the same stack — representatives with Figure 7 range
    locks, strict 2PL, deadlock detection, the discrete-event simulator with
    message latency — and the same workload (each client repeatedly runs a
    transaction updating a few uniformly chosen keys). They differ only in
    data layout:

    - [`Gap]: every key is its own directory entry, so disjoint updates take
      disjoint point locks (the paper's algorithm);
    - [`Single_version]: the whole directory lives in one entry ("the file"),
      so every modification contends on one point lock with a single version
      number — Gifford's file algorithm applied to a directory.

    Conflicts resolve as in any 2PL system: blocking, or deadlock-abort and
    client retry with randomized backoff; both costs are reported. *)

type scheme = Gap | Single_version

val pp_scheme : Format.formatter -> scheme -> unit

type row = {
  scheme : scheme;
  clients : int;
  committed : int;  (** transactions committed within the duration *)
  deadlock_aborts : int;
  throughput : float;  (** committed transactions per unit of virtual time *)
  avg_latency : float;  (** virtual time per committed transaction *)
  lock_waits : int;  (** representative lock requests that had to wait *)
}

val run :
  ?seed:int64 ->
  ?duration:float ->
  ?n_keys:int ->
  ?ops_per_txn:int ->
  ?zipf_s:float ->
  scheme:scheme ->
  clients:int ->
  config:Repdir_quorum.Config.t ->
  unit ->
  row
(** Defaults: duration 2000 time units, 64 keys, 2 updates per transaction,
    uniform key choice. [zipf_s] skews key popularity (Zipf exponent):
    §2's observation that uneven access limits concurrency, measured —
    hot keys raise lock conflicts even for the gap scheme, though conflicts
    stay per-key rather than per-directory. *)

val table :
  ?seed:int64 ->
  ?duration:float ->
  ?client_counts:int list ->
  config:Repdir_quorum.Config.t ->
  unit ->
  Repdir_util.Table.t
(** Both schemes across client counts (default 1, 2, 4, 8). *)

val skew_table :
  ?seed:int64 ->
  ?duration:float ->
  ?clients:int ->
  ?exponents:float list ->
  config:Repdir_quorum.Config.t ->
  unit ->
  Repdir_util.Table.t
(** Gap-scheme throughput under increasingly skewed key popularity. *)
