open Repdir_util
open Repdir_txn
open Repdir_rep
open Repdir_quorum
open Repdir_core
open Repdir_workload

type deletion_stats = {
  entries_coalesced : Stats.t;
  deletions_while_coalescing : Stats.t;
  insertions_while_coalescing : Stats.t;
}

type outcome = {
  stats : deletion_stats;
  deletes : int;
  ops : int;
  rpcs : int;
  final_size : int;
  elapsed_s : float;
}

let apply_op suite stats measuring op =
  match op with
  | Workload.Lookup k -> ignore (Suite.lookup suite k)
  | Workload.Insert (k, v) -> (
      match Suite.insert suite k v with
      | Ok () -> ()
      | Error `Already_present ->
          (* The generator only emits fresh keys; a duplicate means the
             mirror diverged from the suite, which would invalidate the
             statistics. *)
          failwith ("Experiment: unexpected duplicate insert of " ^ k))
  | Workload.Update (k, v) -> (
      match Suite.update suite k v with
      | Ok () -> ()
      | Error `Not_present -> failwith ("Experiment: unexpected missing key on update " ^ k))
  | Workload.Delete k ->
      let report = Suite.delete suite k in
      if not report.Suite.was_present then
        failwith ("Experiment: unexpected missing key on delete " ^ k);
      if measuring then begin
        Array.iter
          (fun (_, removed) -> Stats.add_int stats.entries_coalesced removed)
          report.Suite.removed_per_rep;
        Stats.add_int stats.deletions_while_coalescing report.Suite.ghosts_deleted;
        Stats.add_int stats.insertions_while_coalescing report.Suite.repair_inserts
      end

let run ?(picker = Picker.Random) ?(seed = 42L) ?update_fraction ~config ~n_entries ~ops () =
  let root = Rng.create seed in
  let workload_rng = Rng.split root in
  let quorum_seed = Rng.int64 root in
  let n = Config.n_reps config in
  let reps = Array.init n (fun i -> Rep.create ~name:(Printf.sprintf "rep%d" i) ()) in
  let transport = Transport.local reps in
  let txns = Txn.Manager.create () in
  let suite = Suite.create ~picker ~seed:quorum_seed ~config ~transport ~txns () in
  let workload = Workload.create ?update_fraction ~rng:workload_rng ~target_size:n_entries () in
  let stats =
    {
      entries_coalesced = Stats.create ();
      deletions_while_coalescing = Stats.create ();
      insertions_while_coalescing = Stats.create ();
    }
  in
  (* Warm-up: populate to the target size, unmeasured. *)
  List.iter (apply_op suite stats false) (Workload.initial_fill workload);
  let rpcs_before = transport.Transport.rpc_count in
  let started = Unix.gettimeofday () in
  let deletes = ref 0 in
  for _ = 1 to ops do
    let op = Workload.next workload in
    (match op with Workload.Delete _ -> incr deletes | _ -> ());
    apply_op suite stats true op
  done;
  let elapsed_s = Unix.gettimeofday () -. started in
  {
    stats;
    deletes = !deletes;
    ops;
    rpcs = transport.Transport.rpc_count - rpcs_before;
    final_size = Workload.size workload;
    elapsed_s;
  }
