(* Why directories cannot use naive per-entry version numbers (§2, Figures
   1-3): after a deletion, a read quorum can contain one replica that still
   holds the entry and one that has physically removed it — and a "not
   present" answer carries no version number to compare against.

   This example drives the honest Naive_per_entry baseline into exactly the
   paper's Figure 3 state, then shows the same history on the paper's
   algorithm, where the gap version resolves it.

   Run with: dune exec examples/delete_ambiguity.exe *)

open Repdir_quorum
open Repdir_baselines

let () =
  print_endline "=== Naive per-entry versioning (the scheme §2 rejects) ===\n";
  (* Seed 5 makes the randomly collected quorums reproduce the figures:
     insert lands on {A, B}, delete on {B, C}, lookup asks {A, C}. We force
     the quorums below by crashing the replica we want excluded. *)
  let config = Config.simple ~n:3 ~r:2 ~w:2 in
  let naive = Naive_per_entry.create ~config () in

  (* Figure 2: insert "b" with write quorum {A, B} (exclude C). *)
  Naive_per_entry.crash naive 2;
  (match Naive_per_entry.insert naive "b" "vb" with
  | Ok () -> print_endline "Insert(\"b\") into representatives A and B"
  | Error _ -> assert false);
  Naive_per_entry.recover naive 2;

  (* Figure 3: delete "b" from {B, C} (exclude A). *)
  Naive_per_entry.crash naive 0;
  ignore (Naive_per_entry.delete naive "b");
  print_endline "Delete(\"b\") from representatives B and C";
  Naive_per_entry.recover naive 0;

  (* Lookup via {A, C} (exclude B): A says present:1, C says not present. *)
  Naive_per_entry.crash naive 1;
  (match Naive_per_entry.lookup naive "b" with
  | Naive_per_entry.Ambiguous ->
      print_endline "Lookup(\"b\") via {A, C}: AMBIGUOUS —";
      print_endline "  A answers \"present with version 1\", C answers \"not present\",";
      print_endline "  and there is no version number for absence to arbitrate.\n"
  | Naive_per_entry.Present _ | Naive_per_entry.Absent -> assert false);
  Naive_per_entry.recover naive 1;

  print_endline "=== The paper's algorithm on the same history ===\n";
  let open Repdir_rep in
  let open Repdir_core in
  let reps = Array.init 3 (fun i -> Rep.create ~name:[| "A"; "B"; "C" |].(i) ()) in
  let transport = Transport.local reps in
  let txns = Repdir_txn.Txn.Manager.create () in
  let via order =
    Suite.create ~picker:(Picker.Fixed (Array.of_list order)) ~config ~transport ~txns ()
  in
  ignore (Suite.insert (via [ 0; 1; 2 ]) "b" "vb");
  print_endline "Insert(\"b\") into representatives A and B (version 1)";
  ignore (Suite.delete (via [ 1; 2; 0 ]) "b");
  print_endline "Delete(\"b\") from representatives B and C (gap coalesced at version 2)";
  match Suite.lookup (via [ 0; 2; 1 ]) "b" with
  | None ->
      print_endline "Lookup(\"b\") via {A, C}: not present —";
      print_endline "  C's \"not present with gap version 2\" outvotes A's stale \"present:1\"."
  | Some _ -> assert false
