examples/locality.ml: Repdir_harness Repdir_util
