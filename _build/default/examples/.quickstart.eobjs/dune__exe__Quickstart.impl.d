examples/quickstart.ml: Array Config Printf Rep Repdir_core Repdir_quorum Repdir_rep Repdir_txn Suite Transport
