examples/paper_walkthrough.ml: Array Bound Config Format List Picker Printf Rep Repdir_core Repdir_key Repdir_quorum Repdir_rep Repdir_txn Suite Transport Txn
