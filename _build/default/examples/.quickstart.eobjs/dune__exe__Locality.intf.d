examples/locality.mli:
