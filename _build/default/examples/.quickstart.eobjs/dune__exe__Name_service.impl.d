examples/name_service.ml: List Printf Repdir_core Repdir_harness Repdir_quorum Repdir_sim Sim Sim_world Suite
