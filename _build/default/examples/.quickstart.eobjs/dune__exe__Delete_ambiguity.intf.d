examples/delete_ambiguity.mli:
