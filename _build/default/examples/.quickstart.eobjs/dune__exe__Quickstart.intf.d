examples/quickstart.mli:
