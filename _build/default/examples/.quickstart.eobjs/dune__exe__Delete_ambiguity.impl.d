examples/delete_ambiguity.ml: Array Config Naive_per_entry Picker Rep Repdir_baselines Repdir_core Repdir_quorum Repdir_rep Repdir_txn Suite Transport
