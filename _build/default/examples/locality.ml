(* The Figure 16 locality configuration.

   A 4-2-3 directory suite where representatives A1, A2 sit next to the
   type A transactions (keys in the low half of the directory) and B1, B2
   next to type B transactions. With locality-aware quorum selection, every
   inquiry is answered entirely by the two local representatives, and the
   one non-local access each modification needs is spread evenly across the
   remote pair.

   Run with: dune exec examples/locality.exe *)

let () =
  print_endline "Figure 16: locality on a 4-2-3 suite";
  print_endline "(type A owns low keys, local to A1/A2; type B high keys, local to B1/B2)\n";
  let table = Repdir_harness.Locality.table ~seed:16L ~ops:4_000 () in
  print_string (Repdir_util.Table.render table);
  print_newline ();
  print_endline "Reading across the rows: inquiries never leave the local pair, while";
  print_endline "each modification writes both local representatives and exactly one";
  print_endline "remote one, alternating between them — the behaviour §5 describes."
