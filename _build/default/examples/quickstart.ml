(* Quickstart: a 3-2-2 replicated directory in a dozen lines.

   Run with: dune exec examples/quickstart.exe *)

open Repdir_rep
open Repdir_quorum
open Repdir_core

let () =
  (* Three representatives; read quorum 2, write quorum 2 — the paper's
     3-2-2 suite. *)
  let reps = Array.init 3 (fun i -> Rep.create ~name:(Printf.sprintf "rep%d" i) ()) in
  let suite =
    Suite.create
      ~config:(Config.simple ~n:3 ~r:2 ~w:2)
      ~transport:(Transport.local reps)
      ~txns:(Repdir_txn.Txn.Manager.create ())
      ()
  in

  (* Basic operations. Each runs as its own transaction against a quorum. *)
  (match Suite.insert suite "alice" "alice@cmu.edu" with
  | Ok () -> print_endline "inserted alice"
  | Error `Already_present -> assert false);
  ignore (Suite.insert suite "bob" "bob@cmu.edu");

  (match Suite.lookup suite "alice" with
  | Some (version, value) -> Printf.printf "alice -> %s (version %d)\n" value version
  | None -> assert false);

  (match Suite.update suite "alice" "alice@ri.cmu.edu" with
  | Ok () -> print_endline "updated alice"
  | Error `Not_present -> assert false);

  (* One representative can crash; a 3-2-2 suite keeps going. *)
  Rep.crash reps.(2);
  Printf.printf "rep2 crashed; alice -> %s\n"
    (match Suite.lookup suite "alice" with Some (_, v) -> v | None -> "?");

  Rep.recover reps.(2);

  (* Deletion coalesces the surrounding gap with a dominating version
     number; the report shows what that cost. *)
  let report = Suite.delete suite "bob" in
  Printf.printf "deleted bob: %d repair insert(s), %d ghost(s) removed\n"
    report.Suite.repair_inserts report.Suite.ghosts_deleted;
  Printf.printf "bob present? %b\n" (Suite.mem suite "bob");

  (* Multi-operation atomic transactions hold their locks to the end. *)
  Suite.with_txn suite (fun txn ->
      ignore (Suite.insert ~txn suite "carol" "carol@cmu.edu");
      ignore (Suite.insert ~txn suite "dave" "dave@cmu.edu"));
  Printf.printf "carol and dave inserted atomically: %b %b\n"
    (Suite.mem suite "carol") (Suite.mem suite "dave")
