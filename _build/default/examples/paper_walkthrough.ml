(* A literal replay of the paper's worked examples, printing representative
   states in the notation of the figures: entries as key:version and gap
   versions between dashes.

   Part 1 — Figures 1-5: why per-entry version numbers are not enough, and
   how gap versions resolve the delete ambiguity.
   Part 2 — Figures 10-11: ghosts, and locating the real predecessor and
   real successor during a delete.

   Run with: dune exec examples/paper_walkthrough.exe *)

open Repdir_key
open Repdir_txn
open Repdir_rep
open Repdir_quorum
open Repdir_core

let print_reps banner reps =
  Printf.printf "%s\n" banner;
  Array.iter (fun rep -> Format.printf "    %a@." Rep.pp rep) reps;
  print_newline ()

let lookup_and_print suite name key =
  match Suite.lookup suite key with
  | Some (v, _) -> Printf.printf "  Lookup(%S) via %s: PRESENT, version %d\n" key name v
  | None -> Printf.printf "  Lookup(%S) via %s: not present\n" key name

type world = { reps : Rep.t array; txns : Txn.Manager.t; transport : Transport.t }

let make_world () =
  let reps = Array.init 3 (fun i -> Rep.create ~name:[| "A"; "B"; "C" |].(i) ()) in
  { reps; txns = Txn.Manager.create (); transport = Transport.local reps }

(* A suite whose quorums prefer the listed representatives, so the walkthrough
   can force the quorum choices of the figures. *)
let suite_via world order =
  Suite.create ~picker:(Picker.Fixed (Array.of_list order))
    ~config:(Config.simple ~n:3 ~r:2 ~w:2)
    ~transport:world.transport ~txns:world.txns ()

let seed_entry world key =
  let txn = Txn.Manager.begin_txn world.txns in
  Array.iter
    (fun rep ->
      Rep.insert rep ~txn key 1 ("v" ^ key);
      Rep.commit rep ~txn)
    world.reps;
  Txn.Manager.commit world.txns txn

let part1 () =
  print_endline "=== Part 1: Figures 1-5 — the delete ambiguity and its resolution ===\n";
  let world = make_world () in
  seed_entry world "a";
  seed_entry world "c";
  print_reps "Figure 1 — every representative holds a:1 and c:1, all gaps at 0:" world.reps;

  let ab = suite_via world [ 0; 1; 2 ] in
  (match Suite.insert ab "b" "vb" with Ok () -> () | Error _ -> assert false);
  print_reps "Figure 4 — Insert(\"b\") with write quorum {A, B}; b gets version 1\n(one above the gap's 0), and the split halves keep the gap version 0:" world.reps;

  let ac = suite_via world [ 0; 2; 1 ] in
  print_endline "The mixed read quorum {A, C} disagrees — A says present:1, C says\nabsent with gap version 0 — and the higher version wins:";
  lookup_and_print ac "{A, C}" "b";
  print_newline ();

  let bc = suite_via world [ 1; 2; 0 ] in
  ignore (Suite.delete bc "b");
  print_reps "Figure 5 — Delete(\"b\") with write quorum {B, C}: the (a, c) range is\ncoalesced to a gap with version 2. A still holds a ghost of b:" world.reps;

  print_endline "Now the decisive lookup — the paper's Figure 3 showed that without gap\nversions, quorum {A, C} cannot tell whether b exists. With them:";
  lookup_and_print ac "{A, C}" "b";
  print_endline "  (A's stale \"present, version 1\" loses to C's \"absent, gap version 2\".)\n"

let part2 () =
  print_endline "=== Part 2: Figures 10-11 — ghosts and the real successor ===\n";
  let world = make_world () in
  seed_entry world "a";
  let ab = suite_via world [ 0; 1; 2 ] in
  ignore (Suite.insert ab "b" "vb");
  let bc = suite_via world [ 1; 2; 0 ] in
  ignore (Suite.delete bc "b");
  ignore (Suite.insert ab "bb" "vbb");
  print_reps
    "Figure 10 — A holds a ghost of b between a and bb; C has no entry for bb:" world.reps;

  print_endline "Delete(\"a\") with write quorum {A, C} must locate the real successor of a.\nThe walk first proposes b (A's ghost), but a quorum lookup of b reports it\nabsent, so the walk continues to bb — which must first be copied to C:";
  let ac = suite_via world [ 0; 2; 1 ] in
  let report = Suite.delete ac "a" in
  Printf.printf "  real predecessor: %s, real successor: %s\n"
    (Bound.to_string report.Suite.pred)
    (Bound.to_string report.Suite.succ);
  Printf.printf "  repair inserts: %d (bb copied to C), ghosts deleted: %d (b on A)\n\n"
    report.Suite.repair_inserts report.Suite.ghosts_deleted;
  print_reps "Figure 11 — after coalescing LOW..bb in A and C:" world.reps;

  print_endline "All read quorums now agree:";
  List.iter
    (fun (name, order) ->
      let s = suite_via world order in
      lookup_and_print s name "a";
      lookup_and_print s name "b";
      lookup_and_print s name "bb")
    [ ("{A, B}", [ 0; 1; 2 ]); ("{A, C}", [ 0; 2; 1 ]); ("{B, C}", [ 1; 2; 0 ]) ]

let () =
  part1 ();
  part2 ()
