(* A replicated name service on the discrete-event simulator.

   Five representatives hold a user -> mailbox directory with a 5-3-3
   configuration; a client keeps registering, moving and deregistering users
   while representatives crash and recover underneath it. The example shows
   the availability the paper promises: any two representatives can be down
   without interrupting service, recovery replays the write-ahead log, and a
   recovered (stale) representative never causes a wrong answer.

   Run with: dune exec examples/name_service.exe *)

open Repdir_sim
open Repdir_core
open Repdir_harness

let () =
  let config = Repdir_quorum.Config.simple ~n:5 ~r:3 ~w:3 in
  let world = Sim_world.create ~seed:2026L ~rpc_timeout:40.0 ~config () in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client world 0 in
  let say fmt = Printf.printf ("[t=%7.1f] " ^^ fmt ^^ "\n") (Sim.now sim) in

  Sim.spawn sim (fun () ->
      say "registering users";
      List.iter
        (fun (user, box) ->
          match Suite.insert suite user box with
          | Ok () -> say "  + %s -> %s" user box
          | Error `Already_present -> assert false)
        [
          ("alice", "alice@mx1");
          ("bob", "bob@mx1");
          ("carol", "carol@mx2");
          ("dave", "dave@mx2");
        ];

      say "crashing rep0 and rep1 (2 of 5 down; 3-vote quorums still form)";
      Sim_world.crash_rep world 0;
      Sim_world.crash_rep world 1;

      (match Suite.lookup suite "alice" with
      | Some (_, box) -> say "lookup alice -> %s (despite two crashes)" box
      | None -> assert false);

      (match Suite.update suite "alice" "alice@mx3" with
      | Ok () -> say "moved alice to mx3"
      | Error `Not_present -> assert false);
      ignore (Suite.delete suite "bob");
      say "deregistered bob";

      say "crashing rep2 — only 2 of 5 alive, service must refuse, not lie";
      Sim_world.crash_rep world 2;
      (match Suite.lookup suite "alice" with
      | exception Suite.Unavailable _ -> say "lookup alice: UNAVAILABLE (as it must be)"
      | Some _ | None -> assert false);

      say "recovering rep2, rep1, rep0 (write-ahead log replay)";
      Sim_world.recover_rep world 2;
      Sim_world.recover_rep world 1;
      Sim_world.recover_rep world 0;

      (* rep0/rep1 never saw alice's move or bob's departure; version
         numbers protect every quorum that includes them. *)
      (match Suite.lookup suite "alice" with
      | Some (_, box) -> say "lookup alice -> %s (stale replicas outvoted)" box
      | None -> assert false);
      say "lookup bob -> %s"
        (match Suite.lookup suite "bob" with Some _ -> "present (BUG)" | None -> "absent");

      say "final directory state:";
      List.iter
        (fun user ->
          match Suite.lookup suite user with
          | Some (v, box) -> say "  %s -> %s (version %d)" user box v
          | None -> say "  %s -> (none)" user)
        [ "alice"; "bob"; "carol"; "dave" ]);

  Sim.run sim;
  Printf.printf "simulation finished after %d events\n" (Sim.events_executed sim)
