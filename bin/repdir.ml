(* Command-line interface to the replicated-directory experiments.

   Every table and figure of the paper's evaluation, plus the ablations
   described in DESIGN.md, can be regenerated from here; `bench/main.exe`
   runs the same harness functions together with timing micro-benchmarks. *)

open Cmdliner
open Repdir_util
open Repdir_harness

let print_table t = print_string (Table.render t)

(* --- common options ----------------------------------------------------------- *)

let seed_t =
  let doc = "Random seed; equal seeds reproduce runs exactly." in
  Arg.(value & opt int64 1983L & info [ "seed" ] ~docv:"SEED" ~doc)

let ops_t default =
  let doc = "Number of measured operations per simulation." in
  Arg.(value & opt int default & info [ "ops" ] ~docv:"N" ~doc)

let entries_t =
  let doc = "Directory size (entries) the workload oscillates around." in
  Arg.(value & opt int 100 & info [ "entries" ] ~docv:"N" ~doc)

(* --- figure 14 ------------------------------------------------------------------ *)

let figure14_cmd =
  let run seed ops entries =
    print_endline
      (Printf.sprintf
         "Figure 14: deletion statistics, ~%d-entry directories, %d ops per configuration"
         entries ops);
    print_table (Figures.figure14 ~seed ~ops ~entries ())
  in
  Cmd.v
    (Cmd.info "figure14" ~doc:"Reproduce Figure 14 (statistics across suite configurations)")
    Term.(const run $ seed_t $ ops_t 10_000 $ entries_t)

(* --- figure 15 ------------------------------------------------------------------ *)

let figure15_cmd =
  let sizes_t =
    let doc = "Comma-separated directory sizes." in
    Arg.(value & opt (list int) [ 100; 1_000; 10_000 ] & info [ "sizes" ] ~docv:"SIZES" ~doc)
  in
  let run seed ops sizes =
    print_endline
      (Printf.sprintf "Figure 15: detailed statistics for 3-2-2 suites, %d ops per size" ops);
    print_table (Figures.figure15 ~seed ~ops ~sizes ())
  in
  Cmd.v
    (Cmd.info "figure15" ~doc:"Reproduce Figure 15 (detailed 3-2-2 statistics by size)")
    Term.(const run $ seed_t $ ops_t 100_000 $ sizes_t)

(* --- ablations and analyses ------------------------------------------------------- *)

let stability_cmd =
  let run seed ops entries =
    print_endline "Quorum stability ablation (§5): random vs fixed write quorums, 3-2-2";
    print_table (Figures.quorum_stability ~seed ~ops ~entries ())
  in
  Cmd.v
    (Cmd.info "quorum-stability" ~doc:"§5 ablation: stable quorums make coalescing nearly free")
    Term.(const run $ seed_t $ ops_t 10_000 $ entries_t)

let availability_cmd =
  let p_ups_t =
    let doc = "Comma-separated per-representative up-probabilities." in
    Arg.(value & opt (list float) [ 0.5; 0.9; 0.95; 0.99 ] & info [ "p" ] ~docv:"PROBS" ~doc)
  in
  let run p_ups =
    print_endline "Exact read/write availability by configuration";
    print_table (Figures.availability ~p_ups ())
  in
  Cmd.v
    (Cmd.info "availability" ~doc:"Exact quorum availability analysis")
    Term.(const run $ p_ups_t)

let messages_cmd =
  let run seed ops entries =
    print_endline "Representative calls and wire messages per suite operation (avg)";
    print_table (Figures.messages ~seed ~ops ~entries ())
  in
  Cmd.v
    (Cmd.info "messages" ~doc:"Per-operation call and message costs")
    Term.(const run $ seed_t $ ops_t 4_000 $ entries_t)

let concurrency_cmd =
  let duration_t =
    Arg.(value & opt float 2000.0 & info [ "duration" ] ~docv:"T" ~doc:"Virtual duration.")
  in
  let clients_t =
    Arg.(value & opt (list int) [ 1; 2; 4; 8 ] & info [ "clients" ] ~docv:"LIST"
           ~doc:"Client counts to sweep.")
  in
  let run seed duration client_counts =
    print_endline
      "Concurrency (§2): gap-versioned directory vs single-version (file-voting) layout, 3-2-2";
    print_table
      (Concurrency.table ~seed ~duration ~client_counts
         ~config:(Repdir_quorum.Config.simple ~n:3 ~r:2 ~w:2)
         ())
  in
  Cmd.v
    (Cmd.info "concurrency" ~doc:"Concurrent-transaction throughput, gap vs single version")
    Term.(const run $ seed_t $ duration_t $ clients_t)

let skew_cmd =
  let clients_t =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent clients.")
  in
  let duration_t =
    Arg.(value & opt float 2000.0 & info [ "duration" ] ~docv:"T" ~doc:"Virtual duration.")
  in
  let run seed duration clients =
    print_endline
      "Skewed access (§2): gap-scheme throughput under Zipf key popularity, 3-2-2";
    print_table
      (Concurrency.skew_table ~seed ~duration ~clients
         ~config:(Repdir_quorum.Config.simple ~n:3 ~r:2 ~w:2)
         ())
  in
  Cmd.v
    (Cmd.info "skew" ~doc:"Throughput under skewed (Zipf) key popularity")
    Term.(const run $ seed_t $ duration_t $ clients_t)

let locality_cmd =
  let run seed ops =
    print_endline "Figure 16: locality quorums on a 4-2-3 suite (A1 A2 local to type A)";
    print_table (Locality.table ~seed ~ops ())
  in
  Cmd.v
    (Cmd.info "locality" ~doc:"Reproduce the Figure 16 locality configuration")
    Term.(const run $ seed_t $ ops_t 4_000)

let faults_cmd =
  let ops_per_phase_t =
    Arg.(value & opt int 150 & info [ "ops-per-phase" ] ~docv:"N" ~doc:"Operations per phase.")
  in
  let retries_t =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"K"
           ~doc:"Client-level attempts per operation (1 = no retries).")
  in
  let n_t = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Representatives.") in
  let r_t = Arg.(value & opt int 2 & info [ "r" ] ~docv:"R" ~doc:"Read quorum.") in
  let w_t = Arg.(value & opt int 2 & info [ "w" ] ~docv:"W" ~doc:"Write quorum.") in
  let run seed ops_per_phase retries n r w =
    let config = Repdir_quorum.Config.simple ~n ~r ~w in
    Printf.printf "Crash/recovery timeline on the discrete-event simulator (%s suite)\n"
      (Repdir_quorum.Config.to_string config);
    print_table (Faults.table ~seed ~ops_per_phase ~retries ~config ())
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"Availability and consistency under crash/recovery")
    Term.(const run $ seed_t $ ops_per_phase_t $ retries_t $ n_t $ r_t $ w_t)

(* A failing campaign must leave everything a human needs to chase it: the
   per-plan findings, the retained history window on disk, and a one-line
   command that reproduces the exact world (the plan schedule derives from
   the campaign seed; the world seed is a fixed function of the campaign
   seed and the plan's index, so `audit --plan NAME --seed SEED` replays the
   identical run). Returns the failing outcomes. *)
let report_campaign_failures ~seed ~duration ~keys ~clients ~n ~r ~w outcomes =
  let failing o =
    Nemesis.total_violations o > 0 || o.Nemesis.orphan_locks > 0
    || o.Nemesis.indoubt_open > 0
  in
  let failed = List.filter failing outcomes in
  List.iter
    (fun o ->
      Printf.printf "\nFAILURES in plan %S (world seed %Ld):\n" o.Nemesis.plan
        o.Nemesis.world_seed;
      if o.Nemesis.violations > 0 then
        Printf.printf "  %d sequential-model violations\n" o.Nemesis.violations;
      if o.Nemesis.orphan_locks > 0 then
        Printf.printf "  %d orphaned locks at quiesce\n" o.Nemesis.orphan_locks;
      if o.Nemesis.indoubt_open > 0 then
        Printf.printf "  %d in-doubt transactions never resolved\n" o.Nemesis.indoubt_open;
      (match o.Nemesis.audit with
      | None -> ()
      | Some a ->
          List.iter (Printf.printf "  checker: %s\n") a.Nemesis.checker_violations;
          List.iter (Printf.printf "  scrub: %s\n") a.Nemesis.scrub_violations;
          let slug = String.map (fun c -> if c = ' ' then '-' else c) o.Nemesis.plan in
          let path = Printf.sprintf "audit-history-%s-%Ld.txt" slug seed in
          a.Nemesis.dump path;
          Printf.printf "  history window dumped to %s\n" path);
      Printf.printf
        "  reproduce: dune exec bin/repdir.exe -- audit --plan %S --seed %Ld --duration %g \
         --keys %d --clients %d -n %d -r %d -w %d\n"
        o.Nemesis.plan seed duration keys clients n r w)
    failed;
  failed

let report_cache_stats outcomes =
  List.iter
    (fun o ->
      match o.Nemesis.cache_stats with
      | None -> ()
      | Some c ->
          let reads = c.Repdir_cache.Cache.hits + c.misses + c.mismatches in
          let rate =
            if reads = 0 then 0.0 else float_of_int c.hits /. float_of_int reads
          in
          Format.printf "cache %-24s %a hit-rate=%.1f%%@." o.Nemesis.plan
            Repdir_cache.Cache.pp_counters c (100.0 *. rate))
    outcomes

let warn_unchecked_keys outcomes =
  List.iter
    (fun o ->
      match o.Nemesis.audit with
      | Some a when a.Nemesis.keys_given_up > 0 ->
          Printf.printf
            "WARNING: plan %S: checker gave up on %d key(s) (state-space caps) — those \
             keys are unverified, not passed\n"
            o.Nemesis.plan a.Nemesis.keys_given_up
      | _ -> ())
    outcomes

(* Shared by `repdir shard` and the --shards option of audit/nemesis. *)
let shard_campaign seed duration keys clients groups faults =
  Printf.printf
    "Horizontal sharding campaign (%d groups): split the top key range onto a fresh \
     replica group under a live audited workload%s.\n\
     Epoch-stamped shard map with fencing on every RPC, sliced anti-entropy \
     catch-up, converge-gated flip; the strict-serializability checker and the \
     per-group scrubbers must stay clean across every map epoch.\n"
    groups
    (if faults then " with partitions and bounces" else "");
  let outcome, report =
    Nemesis.run_shard ~seed ~duration ~key_space:keys ~clients ~groups ~faults ()
  in
  print_table (Nemesis.table_of_outcomes [ outcome ]);
  Format.printf "%a@." Nemesis.pp_shard_report report;
  warn_unchecked_keys [ outcome ];
  let unsafe =
    Nemesis.total_violations outcome > 0
    || outcome.Nemesis.orphan_locks > 0
    || outcome.Nemesis.indoubt_open > 0
  in
  let incomplete =
    report.Nemesis.flipped_at = None
    || (not report.Nemesis.shard_gate_ok)
    || (not report.Nemesis.epoch_agreed)
  in
  if unsafe then begin
    (match outcome.Nemesis.audit with
    | Some a ->
        List.iter (Printf.printf "  checker: %s\n") a.Nemesis.checker_violations;
        List.iter (Printf.printf "  scrub: %s\n") a.Nemesis.scrub_violations;
        let path = Printf.sprintf "audit-history-shard-%Ld.txt" seed in
        a.Nemesis.dump path;
        Printf.printf "  history window dumped to %s\n" path
    | None -> ());
    Printf.printf "\nFAILED: consistency violations or residue under sharding\n"
  end;
  if incomplete then
    Printf.printf
      "\nFAILED: the split did not complete (flip %s, converge gate %s, final shard \
       epoch %d %s)\n"
      (if report.Nemesis.flipped_at = None then "missing" else "done")
      (if report.Nemesis.shard_gate_ok then "ok" else "failed")
      report.Nemesis.final_shard_epoch
      (if report.Nemesis.epoch_agreed then "agreed everywhere" else "NOT agreed");
  if unsafe || incomplete then begin
    Printf.printf
      "  reproduce: dune exec bin/repdir.exe -- shard --seed %Ld --duration %g --keys \
       %d --clients %d --groups %d%s\n"
      seed duration keys clients groups (if faults then "" else " --no-faults");
    exit 1
  end;
  Printf.printf
    "Split clean: the range migrated and flipped under %s with zero \
     strict-serializability violations and one agreed shard-map epoch.\n"
    (if faults then "faults" else "a live workload")

let nemesis_cmd =
  let duration_t =
    Arg.(value & opt float 1000.0 & info [ "duration" ] ~docv:"T"
           ~doc:"Virtual time each fault plan runs for.")
  in
  let keys_t =
    Arg.(value & opt int 30 & info [ "keys" ] ~docv:"N" ~doc:"Size of the key space.")
  in
  let n_t = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Representatives.") in
  let r_t = Arg.(value & opt int 2 & info [ "r" ] ~docv:"R" ~doc:"Read quorum.") in
  let w_t = Arg.(value & opt int 2 & info [ "w" ] ~docv:"W" ~doc:"Write quorum.") in
  let cache_t =
    Arg.(value & vflag false
           [ (true, info [ "cache" ]
                ~doc:"Attach a version-validated client cache (weak representative) to \
                      every client; reads validate version tags against the quorum and \
                      fetch payload only on miss or mismatch.");
             (false, info [ "no-cache" ] ~doc:"Run without client caches (default).") ])
  in
  let shards_t =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"With N > 1, run the horizontal-sharding split campaign over N replica \
                 groups instead of the single-group plan sweep (same as `repdir shard \
                 --groups N`).")
  in
  let run seed duration keys n r w cache shards =
    if shards > 1 then shard_campaign seed duration keys 1 shards true
    else begin
    let config = Repdir_quorum.Config.simple ~n ~r ~w in
    Printf.printf
      "Nemesis campaign (%s suite): crash storm, rolling partition, flaky links, torn-WAL \
       crashes, coordinator crashes\n\
       Hardened transport: at-most-once RPC (request-id dedup), bounded retries with \
       backoff+jitter, 2PC; every response checked against a sequential model and the \
       recorded history against the strict-serializability checker.\n\
       Quiesce audit (no power cycle): zero violations, zero orphaned locks, zero open \
       in-doubt transactions.\n"
      (Repdir_quorum.Config.to_string config);
    let outcomes =
      Nemesis.run_all ~seed ~config ~duration ~key_space:keys ~audit:true ~cache ()
    in
    print_table (Nemesis.table_of_outcomes outcomes);
    report_cache_stats outcomes;
    warn_unchecked_keys outcomes;
    let failed = report_campaign_failures ~seed ~duration ~keys ~clients:1 ~n ~r ~w outcomes in
    if failed <> [] then begin
      Printf.printf "\nFAILED: %d of %d plans\n" (List.length failed) (List.length outcomes);
      exit 1
    end
    end
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:"Adversarial fault campaign: the suite must stay consistent through all of it")
    Term.(const run $ seed_t $ duration_t $ keys_t $ n_t $ r_t $ w_t $ cache_t $ shards_t)

let audit_cmd =
  let duration_t =
    Arg.(value & opt float 1000.0 & info [ "duration" ] ~docv:"T"
           ~doc:"Virtual time each fault plan runs for.")
  in
  let keys_t =
    Arg.(value & opt int 30 & info [ "keys" ] ~docv:"N" ~doc:"Size of the key space.")
  in
  let clients_t =
    Arg.(value & opt int 1 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent clients. With more than one, the inline sequential model is \
                 off and the strict-serializability checker is the oracle.")
  in
  let plan_t =
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"NAME"
           ~doc:"Run only the named plan (default: all nine).")
  in
  let n_t = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Representatives.") in
  let r_t = Arg.(value & opt int 2 & info [ "r" ] ~docv:"R" ~doc:"Read quorum.") in
  let w_t = Arg.(value & opt int 2 & info [ "w" ] ~docv:"W" ~doc:"Write quorum.") in
  let cache_t =
    Arg.(value & vflag false
           [ (true, info [ "cache" ]
                ~doc:"Attach a version-validated client cache (weak representative) to \
                      every client; the auditor's obligations are unchanged — the \
                      checker and scrubber must stay exactly as clean as without it.");
             (false, info [ "no-cache" ] ~doc:"Run without client caches (default).") ])
  in
  let shards_t =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
           ~doc:"With N > 1, run the audited horizontal-sharding split campaign over N \
                 replica groups instead of the single-group plan sweep (same as `repdir \
                 shard --groups N`).")
  in
  let run seed duration keys clients plan_filter n r w cache shards =
    if shards > 1 then shard_campaign seed duration keys clients shards true
    else begin
    let config = Repdir_quorum.Config.simple ~n ~r ~w in
    let plans = Nemesis.all_plans ~duration ~n ~seed () in
    let indexed = List.mapi (fun i p -> (i, p)) plans in
    let selected =
      match plan_filter with
      | None -> indexed
      | Some name ->
          List.filter (fun (_, p) -> String.equal p.Nemesis.plan_name name) indexed
    in
    if selected = [] then begin
      Printf.printf "unknown plan %S; available plans:\n"
        (Option.value plan_filter ~default:"");
      List.iter (fun (_, p) -> Printf.printf "  %s\n" p.Nemesis.plan_name) indexed;
      exit 2
    end;
    Printf.printf
      "Audited campaign (%s suite, %d client%s): every client-observed history checked \
       for strict serializability against the sequential directory spec, every replica \
       scrubbed at quiesce (tiling, WAL agreement, orphan residue, quorum \
       intersection).\n"
      (Repdir_quorum.Config.to_string config)
      clients
      (if clients = 1 then "" else "s");
    let outcomes =
      List.map
        (fun (i, p) ->
          (* The same world-seed schedule as the full campaign, so a single
             --plan run replays its plan bit-for-bit. *)
          let world_seed = Int64.add seed (Int64.mul 1000003L (Int64.of_int i)) in
          Nemesis.run_plan ~seed:world_seed ~config ~key_space:keys ~audit:true ~clients
            ~cache p)
        selected
    in
    print_table (Nemesis.table_of_outcomes outcomes);
    report_cache_stats outcomes;
    warn_unchecked_keys outcomes;
    let failed = report_campaign_failures ~seed ~duration ~keys ~clients ~n ~r ~w outcomes in
    if failed <> [] then begin
      Printf.printf "\nFAILED: %d of %d plans\n" (List.length failed) (List.length outcomes);
      exit 1
    end;
    let checked =
      List.fold_left
        (fun a o ->
          match o.Nemesis.audit with Some x -> a + x.Nemesis.checked_ops | None -> a)
        0 outcomes
    in
    Printf.printf "All %d plans clean: %d operations proven strictly serializable.\n"
      (List.length outcomes) checked
    end
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Consistency auditor: audited fault campaigns with strict-serializability \
             checking and replica scrubbing")
    Term.(const run $ seed_t $ duration_t $ keys_t $ clients_t $ plan_t $ n_t $ r_t $ w_t
          $ cache_t $ shards_t)

let latency_cmd =
  let n_t = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Representatives.") in
  let r_t = Arg.(value & opt int 2 & info [ "r" ] ~docv:"R" ~doc:"Read quorum.") in
  let w_t = Arg.(value & opt int 2 & info [ "w" ] ~docv:"W" ~doc:"Write quorum.") in
  let run seed ops n r w =
    let config = Repdir_quorum.Config.simple ~n ~r ~w in
    Printf.printf
      "Operation latency on the simulated network (%s): sequential vs parallel quorum RPCs\n"
      (Repdir_quorum.Config.to_string config);
    print_table (Latency.table ~seed ~ops ~config ())
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"§5 optimization: parallel quorum RPC latency")
    Term.(const run $ seed_t $ ops_t 1_500 $ n_t $ r_t $ w_t)

let batching_cmd =
  let run seed ops entries =
    print_endline "§4 batching: representative calls per delete vs neighbour-chain depth";
    print_table (Figures.batching ~seed ~ops ~entries ())
  in
  Cmd.v
    (Cmd.info "batching" ~doc:"§4 batching of predecessor/successor chains")
    Term.(const run $ seed_t $ ops_t 4_000 $ entries_t)

let space_cmd =
  let run seed ops entries =
    print_endline "Storage and write traffic across replication strategies (identical churn)";
    print_table (Figures.space_and_traffic ~seed ~ops ~entries ())
  in
  Cmd.v
    (Cmd.info "space" ~doc:"Space reclamation and write-traffic comparison vs baselines")
    Term.(const run $ seed_t $ ops_t 3_000 $ entries_t)

(* --- anti-entropy ------------------------------------------------------------------ *)

let sync_cmd =
  let seeds_t =
    Arg.(value & opt (list int64) [ 1983L; 2024L; 7L; 42L; 1011L ]
           & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Comma-separated campaign seeds.")
  in
  let size_t =
    Arg.(value & opt int 120 & info [ "entries" ] ~docv:"N"
           ~doc:"Directory size before the partition.")
  in
  let writes_t =
    Arg.(value & opt int 12 & info [ "writes" ] ~docv:"N"
           ~doc:"Writes committed on the surviving quorum during the partition.")
  in
  let period_t =
    Arg.(value & opt float 25.0 & info [ "period" ] ~docv:"T"
           ~doc:"Mean virtual time between background sync rounds.")
  in
  let deadline_t =
    Arg.(value & opt float 1500.0 & info [ "deadline" ] ~docv:"T"
           ~doc:"Reconciliation budget, in virtual time from the heal.")
  in
  let staleness_t =
    Arg.(value & flag & info [ "staleness" ]
           ~doc:"Also sweep the sync period against replica staleness under steady traffic.")
  in
  let power_cycle_t =
    Arg.(value & flag & info [ "power-cycle" ]
           ~doc:"Staleness sweep only: restart the partitioned representative before it \
                 rejoins (the retired workaround for orphaned locks, kept for A/B \
                 comparison against lease-based termination).")
  in
  let run seeds entries writes period deadline staleness power_cycle =
    let sync_config = { Repdir_sync.Sync.default_config with period } in
    Printf.printf
      "Anti-entropy convergence campaign (3-2-2 suite): partition one representative,\n\
       commit %d writes on the surviving quorum, heal, then reconcile with zero client\n\
       traffic. Counters are measured from the heal.\n" writes;
    let outcomes =
      Anti_entropy.campaign ~seeds ~n_entries:entries ~partition_writes:writes ~sync_config
        ~deadline ()
    in
    print_table (Anti_entropy.table_of_outcomes outcomes);
    if staleness then begin
      print_newline ();
      Printf.printf
        "Sync period vs staleness (steady writes, repeating partition cycle, %s):\n"
        (if power_cycle then "power-cycle rejoin" else "lease-based termination, no restart");
      let rows = Anti_entropy.staleness_sweep ~power_cycle () in
      print_table (Anti_entropy.table_of_staleness_rows rows);
      let sum f = List.fold_left (fun a row -> a + f row) 0 rows in
      let orphans = sum (fun row -> row.Anti_entropy.st_orphan_locks) in
      let indoubt = sum (fun row -> row.Anti_entropy.st_indoubt_open) in
      if orphans > 0 then begin
        Printf.printf "FAILED: %d orphaned locks left after the staleness sweep\n" orphans;
        exit 1
      end;
      if indoubt > 0 then begin
        Printf.printf "FAILED: %d in-doubt transactions never resolved in the sweep\n" indoubt;
        exit 1
      end
    end;
    let total = List.length outcomes in
    let stragglers = List.filter (fun o -> not o.Anti_entropy.converged) outcomes in
    let full_copies =
      List.filter
        (fun (o : Anti_entropy.outcome) -> o.entries_sent >= o.directory_size && o.directory_size > 0)
        outcomes
    in
    if stragglers <> [] then begin
      Printf.printf "FAILED: %d/%d runs did not converge within the budget\n"
        (List.length stragglers) total;
      exit 1
    end;
    if full_copies <> [] then begin
      Printf.printf "FAILED: %d/%d runs moved at least one full directory copy\n"
        (List.length full_copies) total;
      exit 1
    end;
    Printf.printf
      "All %d runs converged; every repair moved fewer entries than the directory holds.\n"
      total
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:"Anti-entropy: partition-then-heal convergence over gap-version range digests")
    Term.(const run $ seeds_t $ size_t $ writes_t $ period_t $ deadline_t $ staleness_t
          $ power_cycle_t)

(* --- dynamic membership ------------------------------------------------------------ *)

let plans_cmd =
  let run () =
    Printf.printf "Registered nemesis fault plans (%d):\n" (List.length Nemesis.plan_catalog);
    List.iter
      (fun (name, family, desc) -> Printf.printf "  %-20s %-11s %s\n" name family desc)
      Nemesis.plan_catalog;
    print_endline
      "\nStandard, extended and robustness plans run via `repdir nemesis` / `repdir \
       audit` (non-standard ones under audit's --plan or in its default all-plan \
       sweep); the membership plan runs via `repdir reconfig`; the sharding plan \
       runs via `repdir shard` (or `repdir audit`/`repdir nemesis --shards N`)."
  in
  Cmd.v
    (Cmd.info "plans" ~doc:"List every registered nemesis fault plan")
    Term.(const run $ const ())

let reconfig_cmd =
  let duration_t =
    Arg.(value & opt float 1500.0 & info [ "duration" ] ~docv:"T"
           ~doc:"Virtual time the campaign runs for.")
  in
  let keys_t =
    Arg.(value & opt int 24 & info [ "keys" ] ~docv:"N" ~doc:"Size of the key space.")
  in
  let clients_t =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent workload clients (the admin driver is separate).")
  in
  let run seed duration keys clients =
    Printf.printf
      "Dynamic membership campaign: online join to a 4-member suite and retire back to \
       three, under partitions and bounces, with a live audited workload.\n\
       Epoch-fenced stale quorums, joint-quorum transitions, converge-gated promotion; \
       the strict-serializability checker and the replica scrubber must stay clean \
       across every epoch change.\n";
    let outcome, report = Nemesis.run_reconfig ~seed ~duration ~key_space:keys ~clients () in
    print_table (Nemesis.table_of_outcomes [ outcome ]);
    Format.printf "%a@." Nemesis.pp_reconfig_report report;
    warn_unchecked_keys [ outcome ];
    let unsafe =
      Nemesis.total_violations outcome > 0
      || outcome.Nemesis.orphan_locks > 0
      || outcome.Nemesis.indoubt_open > 0
    in
    let incomplete =
      report.Nemesis.joined_at = None
      || report.Nemesis.retired_at = None
      || (not report.Nemesis.digest_gate_ok)
      || report.Nemesis.final_epoch <> 4
    in
    if unsafe then begin
      (match outcome.Nemesis.audit with
      | Some a ->
          List.iter (Printf.printf "  checker: %s\n") a.Nemesis.checker_violations;
          List.iter (Printf.printf "  scrub: %s\n") a.Nemesis.scrub_violations;
          let path = Printf.sprintf "audit-history-reconfig-%Ld.txt" seed in
          a.Nemesis.dump path;
          Printf.printf "  history window dumped to %s\n" path
      | None -> ());
      Printf.printf "\nFAILED: consistency violations or residue under reconfiguration\n"
    end;
    if incomplete then
      Printf.printf
        "\nFAILED: the reconfiguration did not complete (join %s, retire %s, digest gate \
         %s, final epoch %d)\n"
        (if report.Nemesis.joined_at = None then "missing" else "done")
        (if report.Nemesis.retired_at = None then "missing" else "done")
        (if report.Nemesis.digest_gate_ok then "ok" else "failed")
        report.Nemesis.final_epoch;
    if unsafe || incomplete then begin
      Printf.printf
        "  reproduce: dune exec bin/repdir.exe -- reconfig --seed %Ld --duration %g --keys \
         %d --clients %d\n"
        seed duration keys clients;
      exit 1
    end;
    Printf.printf
      "Reconfiguration clean: join and retire completed under faults with zero \
       strict-serializability violations.\n"
  in
  Cmd.v
    (Cmd.info "reconfig"
       ~doc:"Dynamic membership: audited online join/retire campaign under faults")
    Term.(const run $ seed_t $ duration_t $ keys_t $ clients_t)

(* --- horizontal sharding ----------------------------------------------------------- *)

let shard_cmd =
  let duration_t =
    Arg.(value & opt float 1500.0 & info [ "duration" ] ~docv:"T"
           ~doc:"Virtual time the campaign runs for.")
  in
  let keys_t =
    Arg.(value & opt int 24 & info [ "keys" ] ~docv:"N" ~doc:"Size of the key space.")
  in
  let clients_t =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent workload clients (the admin driver is separate).")
  in
  let groups_t =
    Arg.(value & opt int 2 & info [ "groups" ] ~docv:"N"
           ~doc:"Replica groups after the split (the last group starts empty and \
                 receives the migrated range).")
  in
  let faults_t =
    Arg.(value & vflag true
           [ (true, info [ "faults" ]
                ~doc:"Run the sharded-split fault plan alongside the migration (default).");
             (false, info [ "no-faults" ] ~doc:"Fault-free split (bench-style).") ])
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:"Horizontal sharding: audited online range split/migration campaign")
    Term.(const shard_campaign $ seed_t $ duration_t $ keys_t $ clients_t $ groups_t
          $ faults_t)

(* --- one-off simulation ------------------------------------------------------------ *)

let simulate_cmd =
  let n_t = Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Representatives.") in
  let r_t = Arg.(value & opt int 2 & info [ "r" ] ~docv:"R" ~doc:"Read quorum.") in
  let w_t = Arg.(value & opt int 2 & info [ "w" ] ~docv:"W" ~doc:"Write quorum.") in
  let run seed ops entries n r w =
    let config = Repdir_quorum.Config.simple ~n ~r ~w in
    let o = Experiment.run ~seed ~config ~n_entries:entries ~ops () in
    Printf.printf "%s: %d ops (%d deletes), %d representative calls, %.2fs\n"
      (Repdir_quorum.Config.to_string config)
      o.ops o.deletes o.rpcs o.elapsed_s;
    let line name (s : Stats.t) =
      Printf.printf "  %-28s avg %.2f  max %g  stddev %.2f  (n=%d)\n" name (Stats.mean s)
        (Stats.max s) (Stats.stddev s) (Stats.count s)
    in
    line "entries in ranges coalesced" o.stats.entries_coalesced;
    line "deletions while coalescing" o.stats.deletions_while_coalescing;
    line "insertions while coalescing" o.stats.insertions_while_coalescing
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one simulation with an arbitrary x-y-z configuration")
    Term.(const run $ seed_t $ ops_t 10_000 $ entries_t $ n_t $ r_t $ w_t)

let () =
  let info =
    Cmd.info "repdir" ~version:"1.0.0"
      ~doc:"Replicated directories via weighted voting with gap version numbers"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figure14_cmd;
            figure15_cmd;
            stability_cmd;
            availability_cmd;
            messages_cmd;
            concurrency_cmd;
            skew_cmd;
            locality_cmd;
            faults_cmd;
            nemesis_cmd;
            audit_cmd;
            plans_cmd;
            reconfig_cmd;
            shard_cmd;
            sync_cmd;
            latency_cmd;
            space_cmd;
            batching_cmd;
            simulate_cmd;
          ]))
