(** Range lock manager for one directory representative.

    Implements strict two-phase locking over key ranges with the Figure 7
    compatibility matrix. A transaction acquires locks as its operations
    execute and releases everything at commit or abort ({!release_all}),
    which together with per-representative serializability gives globally
    serializable schedules (Traiger et al., cited in §3.3).

    Grants are FIFO-fair: a request that conflicts with an earlier *waiting*
    request queues behind it even if it is compatible with all granted locks,
    so writers are not starved by a stream of readers.

    The manager is a passive data structure: blocking is delegated to the
    caller via the [on_grant] callback, which the discrete-event simulator
    uses to resume a suspended process. Deadlocks are detected at acquire
    time by a waits-for-graph cycle search; the victim is the requester —
    unless the requester is marked {!set_senior}, in which case a junior
    cycle member is wounded instead. *)

open Repdir_key

type t

type txn_id = int

type group
(** A deadlock-detection scope. Transactions span representatives, so a
    waits-for cycle can cross lock managers (a *distributed* deadlock: T1
    waits for T2 at representative A while T2 waits for T1 at representative
    B). Managers created in the same group share their waits-for edges; the
    cycle search at acquire time walks the union, acting as the centralized
    global detector of classical distributed 2PL systems. *)

val new_group : unit -> group

val set_senior : group -> txn:txn_id -> bool -> unit
(** Mark (or unmark) a transaction as a senior deadlock winner. By default
    the deadlock victim is the requester whose acquire would close the
    waits-for cycle — which systematically sacrifices long lock-everything
    transactions (a whole-directory sync session acquires locks for its
    entire lifetime, so it is almost always the one to close a cycle
    against a short client transaction). A senior requester instead wounds
    a junior member of the cycle: the junior's waiting requests are
    cancelled group-wide (its [on_drop] callbacks fire, exactly as if a
    lease expiry had terminated it), and the senior proceeds as an ordinary
    waiter. A cycle consisting entirely of seniors falls back to aborting
    the requester. With no senior transactions — the default — behaviour is
    unchanged. *)

type outcome =
  | Granted  (** The lock is held; proceed. *)
  | Waiting  (** Queued; [on_grant] fires when the lock is eventually held. *)
  | Deadlock of txn_id list
      (** Granting would close a waits-for cycle (the returned list, starting
          and ending at the requester). The request is *not* queued; the
          caller must abort the transaction. *)

val create : ?group:group -> unit -> t
(** Without a [group], deadlock detection is local to this manager. *)

val detach : t -> unit
(** Remove the manager from its group (when a representative discards its
    volatile lock table on crash). *)

val acquire :
  t ->
  txn:txn_id ->
  ?on_drop:(unit -> unit) ->
  Mode.t ->
  Bound.Interval.t ->
  on_grant:(unit -> unit) ->
  outcome
(** [on_grant] is invoked (synchronously, from within a later {!release_all})
    only for requests that first returned [Waiting]. [on_drop] (default:
    nothing) fires instead when the still-waiting request is cancelled by
    {!release_all} on its own transaction — the path taken when a lease
    expiry or in-doubt resolution terminates a transaction that has an
    operation suspended in the queue. Exactly one of the two callbacks ever
    fires for a waiting request. *)

val reacquire : t -> txn:txn_id -> Mode.t -> Bound.Interval.t -> unit
(** Force-grant without queueing or deadlock detection: crash recovery
    re-holding a restored in-doubt transaction's locks on a freshly rebuilt
    manager. All concurrent holders are other restored in-doubt transactions,
    which coexisted before the crash, so the grant cannot conflict. *)

val release_all : t -> txn:txn_id -> unit
(** Release every lock held by the transaction and drop its waiting requests,
    then grant any newly-compatible queued requests in FIFO order. Each
    dropped waiter's [on_drop] callback fires after the queue is drained. *)

val holds : t -> txn:txn_id -> (Mode.t * Bound.Interval.t) list
(** Locks currently granted to the transaction, most recent first. *)

val would_block : t -> txn:txn_id -> Mode.t -> Bound.Interval.t -> bool
(** True if an {!acquire} now would not return [Granted]. Does not enqueue. *)

val granted_count : t -> int
val waiting_count : t -> int

val active_txns : t -> txn_id list
(** Transactions holding at least one lock, in no particular order. *)
