open Repdir_key

type txn_id = int

type granted = { g_txn : txn_id; g_mode : Mode.t; g_range : Bound.Interval.t }

type waiter = {
  w_txn : txn_id;
  w_mode : Mode.t;
  w_range : Bound.Interval.t;
  w_on_grant : unit -> unit;
  w_on_drop : unit -> unit;
}

type group = {
  mutable members : t list; (* all managers sharing deadlock detection *)
  mutable senior : txn_id list; (* wound-wait winners, normally empty *)
}

and t = {
  mutable granted : granted list; (* most recent first *)
  mutable queue : waiter list; (* FIFO order *)
  group : group;
}

type outcome = Granted | Waiting | Deadlock of txn_id list

let new_group () : group = { members = []; senior = [] }

let create ?group () =
  let group = match group with Some g -> g | None -> new_group () in
  let t = { granted = []; queue = []; group } in
  group.members <- t :: group.members;
  t

let detach t = t.group.members <- List.filter (fun m -> m != t) t.group.members

let set_senior (group : group) ~txn high =
  let without = List.filter (fun id -> id <> txn) group.senior in
  group.senior <- (if high then txn :: without else without)

let conflicts_granted ~txn mode range g =
  g.g_txn <> txn
  && Bound.Interval.intersects range g.g_range
  && not (Mode.compatible mode g.g_mode)

let conflicts_waiter ~txn mode range w =
  w.w_txn <> txn
  && Bound.Interval.intersects range w.w_range
  && not (Mode.compatible mode w.w_mode)

(* A request can be granted when it is compatible with every granted lock of
   other transactions and does not jump ahead of a conflicting earlier
   waiter (FIFO fairness). *)
let can_grant t ~txn mode range ~queue_prefix =
  (not (List.exists (conflicts_granted ~txn mode range) t.granted))
  && not (List.exists (conflicts_waiter ~txn mode range) queue_prefix)

let would_block t ~txn mode range = not (can_grant t ~txn mode range ~queue_prefix:t.queue)

(* Transactions the given request would wait for: holders of conflicting
   granted locks plus conflicting earlier waiters. *)
let blockers t ~txn mode range ~queue_prefix =
  let from_granted =
    List.filter_map
      (fun g -> if conflicts_granted ~txn mode range g then Some g.g_txn else None)
      t.granted
  in
  let from_queue =
    List.filter_map
      (fun w -> if conflicts_waiter ~txn mode range w then Some w.w_txn else None)
      queue_prefix
  in
  List.sort_uniq compare (from_granted @ from_queue)

(* Transactions a given waiting transaction is blocked by at one manager,
   derived from the current granted/queue state. *)
let local_edges_of t waiting_txn =
  let rec scan prefix = function
    | [] -> []
    | w :: rest ->
        if w.w_txn = waiting_txn then
          blockers t ~txn:waiting_txn w.w_mode w.w_range ~queue_prefix:(List.rev prefix)
          @ scan (w :: prefix) rest
        else scan (w :: prefix) rest
  in
  scan [] t.queue

(* Waits-for cycle search: does adding edge [txn -> each of seeds] close a
   cycle back to [txn]? Edges are gathered across every manager in the
   group, catching deadlocks whose cycle spans representatives. *)
let find_cycle t ~txn seeds =
  let edges_of waiting_txn =
    List.concat_map (fun m -> local_edges_of m waiting_txn) t.group.members
  in
  let rec dfs path visited node =
    if node = txn then Some (List.rev (node :: path))
    else if List.mem node visited then None
    else
      let next = edges_of node in
      let rec try_all = function
        | [] -> None
        | n :: rest -> (
            match dfs (node :: path) (node :: visited) n with
            | Some c -> Some c
            | None -> try_all rest)
      in
      try_all next
  in
  let rec try_seeds = function
    | [] -> None
    | s :: rest -> ( match dfs [ txn ] [] s with Some c -> Some c | None -> try_seeds rest)
  in
  try_seeds seeds

(* Grant queued requests that have become compatible, preserving FIFO order:
   a waiter is granted only if it does not conflict with granted locks nor
   with any waiter still queued ahead of it. *)
let drain_queue t =
  let rec go kept = function
    | [] -> List.rev kept
    | w :: rest ->
        if can_grant t ~txn:w.w_txn w.w_mode w.w_range ~queue_prefix:(List.rev kept) then begin
          t.granted <- { g_txn = w.w_txn; g_mode = w.w_mode; g_range = w.w_range } :: t.granted;
          w.w_on_grant ();
          go kept rest
        end
        else go (w :: kept) rest
  in
  t.queue <- go [] t.queue

(* Wound a junior deadlock victim: cancel its waiting requests at every
   manager in the group. Its [on_drop] callbacks fire — the same path a
   lease expiry takes — so the victim's process unwinds as an abort and its
   granted locks are released by the ordinary abort machinery shortly
   after. The waits-for edges through the victim are gone immediately,
   which is what breaks the cycle. *)
let cancel_waits (group : group) victim =
  List.iter
    (fun m ->
      let dropped, kept = List.partition (fun w -> w.w_txn = victim) m.queue in
      if dropped <> [] then begin
        m.queue <- kept;
        drain_queue m;
        List.iter (fun w -> w.w_on_drop ()) dropped
      end)
    group.members

let acquire t ~txn ?(on_drop = ignore) mode range ~on_grant =
  let enqueue () =
    t.queue <-
      t.queue
      @ [
          {
            w_txn = txn;
            w_mode = mode;
            w_range = range;
            w_on_grant = on_grant;
            w_on_drop = on_drop;
          };
        ];
    Waiting
  in
  if can_grant t ~txn mode range ~queue_prefix:t.queue then begin
    t.granted <- { g_txn = txn; g_mode = mode; g_range = range } :: t.granted;
    Granted
  end
  else if not (List.mem txn t.group.senior) then begin
    let seeds = blockers t ~txn mode range ~queue_prefix:t.queue in
    match find_cycle t ~txn seeds with
    | Some cycle -> Deadlock cycle
    | None -> enqueue ()
  end
  else
    (* A senior requester wounds its way through: every cycle its request
       would close loses a junior member instead of the senior. Wounding
       can unblock other waiters (drain) or reveal another cycle, so loop
       until the request is grantable, queueable, or only seniors remain. *)
    let rec resolve () =
      if can_grant t ~txn mode range ~queue_prefix:t.queue then begin
        t.granted <- { g_txn = txn; g_mode = mode; g_range = range } :: t.granted;
        Granted
      end
      else
        let seeds = blockers t ~txn mode range ~queue_prefix:t.queue in
        match find_cycle t ~txn seeds with
        | None -> enqueue ()
        | Some cycle -> (
            match
              List.filter
                (fun id -> id <> txn && not (List.mem id t.group.senior))
                cycle
            with
            | [] -> Deadlock cycle
            | victim :: _ ->
                cancel_waits t.group victim;
                resolve ())
    in
    resolve ()

(* Recovery-time force grant: re-hold a restored in-doubt transaction's lock
   without queueing or deadlock detection. Sound only on a freshly rebuilt
   manager where every holder is another restored in-doubt transaction —
   they all held their locks concurrently before the crash, so they are
   mutually compatible by construction. *)
let reacquire t ~txn mode range =
  t.granted <- { g_txn = txn; g_mode = mode; g_range = range } :: t.granted

let release_all t ~txn =
  t.granted <- List.filter (fun g -> g.g_txn <> txn) t.granted;
  let dropped, kept = List.partition (fun w -> w.w_txn = txn) t.queue in
  t.queue <- kept;
  drain_queue t;
  (* Wake the dropped waiters last: a transaction terminated from outside
     (lease expiry, in-doubt resolution) can have operations suspended in
     this queue, and their processes must learn the wait was cancelled
     rather than sleep forever. By this point the grant state is settled,
     so the woken process observes the release completely. *)
  List.iter (fun w -> w.w_on_drop ()) dropped

let holds t ~txn =
  List.filter_map
    (fun g -> if g.g_txn = txn then Some (g.g_mode, g.g_range) else None)
    t.granted

let granted_count t = List.length t.granted
let waiting_count t = List.length t.queue

let active_txns t =
  List.sort_uniq compare (List.map (fun g -> g.g_txn) t.granted)
