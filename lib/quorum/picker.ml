open Repdir_util

module Health = struct
  (* Cheap, local, per-replica gray-failure signal: an EWMA of observed call
     latency and success rate, plus a small ring of recent latency samples
     for deriving a hedging delay from the healthy-population p99. All state
     is client-side; nothing is exchanged between clients. *)

  type rep_stats = { mutable lat : float; mutable ok_rate : float; mutable samples : int }

  type t = {
    reps : rep_stats array;
    ring : (int * float) array;  (* (rep, latency) of recent observations *)
    mutable ring_len : int;
    mutable ring_pos : int;
    alpha : float;
    outlier_factor : float;
    min_samples : int;
  }

  let create ?(alpha = 0.2) ?(outlier_factor = 3.0) ?(min_samples = 4) ~n () =
    if n < 1 then invalid_arg "Picker.Health.create: need at least one representative";
    {
      reps = Array.init n (fun _ -> { lat = 0.0; ok_rate = 1.0; samples = 0 });
      ring = Array.make 128 (0, 0.0);
      ring_len = 0;
      ring_pos = 0;
      alpha;
      outlier_factor;
      min_samples;
    }

  let n_reps t = Array.length t.reps

  let observe t i ~latency ~ok =
    let r = t.reps.(i) in
    if r.samples = 0 then begin
      r.lat <- latency;
      r.ok_rate <- (if ok then 1.0 else 0.0)
    end
    else begin
      r.lat <- r.lat +. (t.alpha *. (latency -. r.lat));
      r.ok_rate <- r.ok_rate +. (t.alpha *. ((if ok then 1.0 else 0.0) -. r.ok_rate))
    end;
    r.samples <- r.samples + 1;
    t.ring.(t.ring_pos) <- (i, latency);
    t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
    if t.ring_len < Array.length t.ring then t.ring_len <- t.ring_len + 1

  let latency t i = t.reps.(i).lat
  let ok_rate t i = t.reps.(i).ok_rate
  let samples t i = t.reps.(i).samples

  (* Median EWMA latency of the *other* sampled representatives: the healthy
     baseline a suspect is compared against. *)
  let peer_median t i =
    let lats =
      Array.to_list t.reps
      |> List.filteri (fun j r -> j <> i && r.samples >= t.min_samples)
      |> List.map (fun r -> r.lat)
      |> List.sort compare
    in
    match lats with
    | [] -> None
    | _ ->
        let a = Array.of_list lats in
        Some a.(Array.length a / 2)

  let outlier t i =
    let r = t.reps.(i) in
    r.samples >= t.min_samples
    && (r.ok_rate < 0.5
       ||
       match peer_median t i with
       | None -> false
       | Some m -> r.lat > t.outlier_factor *. m)

  (* Pairwise early-warning version of {!outlier}: [i] already looks gray
     next to [against] — the same factor apart — even before either side has
     [min_samples] observations. The hedging path uses this to cover the
     detection lag, when a replica that will be flagged a few observations
     from now can still land in a quorum. *)
  let suspect t i ~against =
    let a = t.reps.(i) and b = t.reps.(against) in
    a.samples > 0 && b.samples > 0 && a.lat > t.outlier_factor *. b.lat

  (* p99 of recent latency samples from currently non-outlier representatives
     (an outlier's own samples would inflate the hedging delay it is supposed
     to bound). Falls back to all samples when everything looks sick. *)
  let p99 t =
    if t.ring_len < 16 then None
    else begin
      let take pred =
        let xs = ref [] in
        for k = 0 to t.ring_len - 1 do
          let i, l = t.ring.(k) in
          if pred i then xs := l :: !xs
        done;
        !xs
      in
      let healthy = take (fun i -> not (outlier t i)) in
      let xs = if healthy = [] then take (fun _ -> true) else healthy in
      let a = Array.of_list (List.sort compare xs) in
      let n = Array.length a in
      if n = 0 then None else Some a.(min (n - 1) (n * 99 / 100))
    end

  let hedge_delay ?(floor = 1.0) t =
    match p99 t with None -> floor | Some p -> Float.max floor p

  (* The candidate to hand a payload fetch to: lowest smoothed latency,
     non-outliers strictly preferred, first candidate on ties (and on a cold
     table, where every latency is 0.0) — so a cache-validating read sends
     its single payload request to the member most likely to answer fast. *)
  let best t candidates =
    if Array.length candidates = 0 then None
    else begin
      let score i = (outlier t i, latency t i) in
      let winner = ref candidates.(0) in
      Array.iter (fun i -> if score i < score !winner then winner := i) candidates;
      Some !winner
    end
end

type strategy =
  | Random
  | Fixed of int array
  | Locality of { local : int array; remote : int array }
  | Healthy of Health.t

let pp_strategy ppf = function
  | Random -> Format.pp_print_string ppf "random"
  | Fixed order ->
      Format.fprintf ppf "fixed[%a]"
        (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') Format.pp_print_int)
        (Array.to_seq order)
  | Locality _ -> Format.pp_print_string ppf "locality"
  | Healthy _ -> Format.pp_print_string ppf "healthy"

(* Walk candidates in order, accumulating voting members until the quorum is
   reached. Zero-vote representatives contribute nothing and are skipped. *)
let take_until_quorum config ~available ~quorum candidates =
  let chosen = ref [] in
  let votes = ref 0 in
  let consider i =
    if !votes < quorum && available i && Config.votes_of config i > 0 then begin
      chosen := i :: !chosen;
      votes := !votes + Config.votes_of config i
    end
  in
  List.iter consider candidates;
  if !votes >= quorum then Some (Array.of_list (List.rev !chosen)) else None

let shuffled_indices rng config =
  let idx = Array.init (Config.n_reps config) (fun i -> i) in
  Rng.shuffle rng idx;
  Array.to_list idx

(* Healthy ordering: uniformly shuffled like Random, then within each
   preference class representatives currently flagged as latency/outcome
   outliers are moved to the back. Outliers are demoted, never excluded —
   when the healthy population cannot reach the quorum the walk falls
   through to them, so termination is exactly Random's. *)
let healthy_order health prefer candidates =
  let preferred, rest = List.partition prefer candidates in
  let demote l =
    let good, bad = List.partition (fun i -> not (Health.outlier health i)) l in
    good @ bad
  in
  demote preferred @ demote rest

let collect ?(prefer = fun _ -> false) strategy rng config ~available ~quorum =
  match strategy with
  | Random ->
      (* Uniform among preferred members first, then uniform among the rest:
         quorum *membership* stays random, but members the transaction has
         already touched are reused when they suffice — they need no extra
         termination messages. Fixed and Locality orders are deliberate, so
         preference never overrides them. *)
      let preferred, rest = List.partition prefer (shuffled_indices rng config) in
      take_until_quorum config ~available ~quorum (preferred @ rest)
  | Healthy health ->
      take_until_quorum config ~available ~quorum
        (healthy_order health prefer (shuffled_indices rng config))
  | Fixed order -> take_until_quorum config ~available ~quorum (Array.to_list order)
  | Locality { local; remote } ->
      (* Local representatives first; the remainder spread uniformly over the
         remote ones, which distributes the non-local write of Figure 16. *)
      let remote_order =
        let r = Array.copy remote in
        Rng.shuffle rng r;
        Array.to_list r
      in
      take_until_quorum config ~available ~quorum (Array.to_list local @ remote_order)

let collect_joint ?(prefer = fun _ -> false) strategy rng targets ~available =
  match targets with
  | [] -> invalid_arg "Picker.collect_joint: no targets"
  | (first_config, _) :: rest ->
      let n = Config.n_reps first_config in
      List.iteri
        (fun k (c, _) ->
          if Config.n_reps c <> n then
            invalid_arg
              (Printf.sprintf
                 "Picker.collect_joint: target %d has %d slots, expected %d" (k + 1)
                 (Config.n_reps c) n))
        rest;
      let targets = Array.of_list targets in
      let gathered = Array.make (Array.length targets) 0 in
      let unmet k =
        let _, quorum = targets.(k) in
        gathered.(k) < quorum
      in
      let chosen = ref [] in
      let useful i =
        (* A candidate helps if some still-unmet target gives it votes. *)
        let help = ref false in
        Array.iteri
          (fun k (c, _) -> if unmet k && Config.votes_of c i > 0 then help := true)
          targets;
        !help
      in
      let consider i =
        if available i && useful i then begin
          chosen := i :: !chosen;
          Array.iteri
            (fun k (c, _) -> gathered.(k) <- gathered.(k) + Config.votes_of c i)
            targets
        end
      in
      let candidates =
        match strategy with
        | Random ->
            let preferred, other =
              List.partition prefer (shuffled_indices rng first_config)
            in
            preferred @ other
        | Healthy health -> healthy_order health prefer (shuffled_indices rng first_config)
        | Fixed order -> Array.to_list order
        | Locality { local; remote } ->
            let remote_order =
              let r = Array.copy remote in
              Rng.shuffle rng r;
              Array.to_list r
            in
            Array.to_list local @ remote_order
      in
      List.iter consider candidates;
      let failed = ref None in
      Array.iteri (fun k _ -> if unmet k && !failed = None then failed := Some k) targets;
      (match !failed with
      | Some k -> Error k
      | None -> Ok (Array.of_list (List.rev !chosen)))

let read_quorum strategy rng config ~available =
  collect strategy rng config ~available ~quorum:config.Config.read_quorum

let write_quorum ?prefer strategy rng config ~available =
  collect ?prefer strategy rng config ~available ~quorum:config.Config.write_quorum
