open Repdir_util

type strategy =
  | Random
  | Fixed of int array
  | Locality of { local : int array; remote : int array }

let pp_strategy ppf = function
  | Random -> Format.pp_print_string ppf "random"
  | Fixed order ->
      Format.fprintf ppf "fixed[%a]"
        (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') Format.pp_print_int)
        (Array.to_seq order)
  | Locality _ -> Format.pp_print_string ppf "locality"

(* Walk candidates in order, accumulating voting members until the quorum is
   reached. Zero-vote representatives contribute nothing and are skipped. *)
let take_until_quorum config ~available ~quorum candidates =
  let chosen = ref [] in
  let votes = ref 0 in
  let consider i =
    if !votes < quorum && available i && Config.votes_of config i > 0 then begin
      chosen := i :: !chosen;
      votes := !votes + Config.votes_of config i
    end
  in
  List.iter consider candidates;
  if !votes >= quorum then Some (Array.of_list (List.rev !chosen)) else None

let shuffled_indices rng config =
  let idx = Array.init (Config.n_reps config) (fun i -> i) in
  Rng.shuffle rng idx;
  Array.to_list idx

let collect ?(prefer = fun _ -> false) strategy rng config ~available ~quorum =
  match strategy with
  | Random ->
      (* Uniform among preferred members first, then uniform among the rest:
         quorum *membership* stays random, but members the transaction has
         already touched are reused when they suffice — they need no extra
         termination messages. Fixed and Locality orders are deliberate, so
         preference never overrides them. *)
      let preferred, rest = List.partition prefer (shuffled_indices rng config) in
      take_until_quorum config ~available ~quorum (preferred @ rest)
  | Fixed order -> take_until_quorum config ~available ~quorum (Array.to_list order)
  | Locality { local; remote } ->
      (* Local representatives first; the remainder spread uniformly over the
         remote ones, which distributes the non-local write of Figure 16. *)
      let remote_order =
        let r = Array.copy remote in
        Rng.shuffle rng r;
        Array.to_list r
      in
      take_until_quorum config ~available ~quorum (Array.to_list local @ remote_order)

let collect_joint ?(prefer = fun _ -> false) strategy rng targets ~available =
  match targets with
  | [] -> invalid_arg "Picker.collect_joint: no targets"
  | (first_config, _) :: rest ->
      let n = Config.n_reps first_config in
      List.iteri
        (fun k (c, _) ->
          if Config.n_reps c <> n then
            invalid_arg
              (Printf.sprintf
                 "Picker.collect_joint: target %d has %d slots, expected %d" (k + 1)
                 (Config.n_reps c) n))
        rest;
      let targets = Array.of_list targets in
      let gathered = Array.make (Array.length targets) 0 in
      let unmet k =
        let _, quorum = targets.(k) in
        gathered.(k) < quorum
      in
      let chosen = ref [] in
      let useful i =
        (* A candidate helps if some still-unmet target gives it votes. *)
        let help = ref false in
        Array.iteri
          (fun k (c, _) -> if unmet k && Config.votes_of c i > 0 then help := true)
          targets;
        !help
      in
      let consider i =
        if available i && useful i then begin
          chosen := i :: !chosen;
          Array.iteri
            (fun k (c, _) -> gathered.(k) <- gathered.(k) + Config.votes_of c i)
            targets
        end
      in
      let candidates =
        match strategy with
        | Random ->
            let preferred, other =
              List.partition prefer (shuffled_indices rng first_config)
            in
            preferred @ other
        | Fixed order -> Array.to_list order
        | Locality { local; remote } ->
            let remote_order =
              let r = Array.copy remote in
              Rng.shuffle rng r;
              Array.to_list r
            in
            Array.to_list local @ remote_order
      in
      List.iter consider candidates;
      let failed = ref None in
      Array.iteri (fun k _ -> if unmet k && !failed = None then failed := Some k) targets;
      (match !failed with
      | Some k -> Error k
      | None -> Ok (Array.of_list (List.rev !chosen)))

let read_quorum strategy rng config ~available =
  collect strategy rng config ~available ~quorum:config.Config.read_quorum

let write_quorum ?prefer strategy rng config ~available =
  collect ?prefer strategy rng config ~available ~quorum:config.Config.write_quorum
