(** Quorum collection policies.

    The paper's §4 simulations select quorum members "randomly from a uniform
    distribution" ({!Random}); §5 observes that *stable* write quorums make
    deletion coalescing nearly free ({!Fixed}), and Figure 16 shows a
    locality configuration where transactions read entirely from local
    representatives and spread their one non-local write across the remote
    ones ({!Locality}). *)

open Repdir_util

(** Per-replica gray-failure signal: client-local EWMA latency and success
    rate per representative, plus a ring of recent latency samples for
    deriving a hedging delay from the healthy population's p99. Feed it from
    the transport ({!observe}); consult it through the {!strategy.Healthy}
    collection policy, {!outlier}, and {!hedge_delay}. Nothing is exchanged
    between clients — a replica that is slow only on some paths (classic
    gray failure) is judged by each client from its own vantage point. *)
module Health : sig
  type t

  val create :
    ?alpha:float -> ?outlier_factor:float -> ?min_samples:int -> n:int -> unit -> t
  (** [n] representatives, all initially healthy. [alpha] (default 0.2) is
      the EWMA gain; a representative with at least [min_samples] (default
      4 — gray windows are short, so detection must be quick) observations
      is an {!outlier} when its smoothed latency exceeds
      [outlier_factor] (default 3.0) times the median smoothed latency of
      its sampled peers, or when its smoothed success rate drops below
      one half. *)

  val n_reps : t -> int

  val observe : t -> int -> latency:float -> ok:bool -> unit
  (** Record one call to representative [i]: its duration as seen by this
      client (queueing and transport included) and whether it produced a
      reply (a timeout or crash is [ok:false]; an application-level error in
      a prompt reply is still [ok:true]). *)

  val latency : t -> int -> float
  (** Smoothed latency (0.0 before any sample). *)

  val ok_rate : t -> int -> float
  val samples : t -> int -> int

  val outlier : t -> int -> bool
  (** Whether representative [i] currently looks gray — see {!create}.
      Always false until [min_samples] observations have accumulated, and
      false when no peer has enough samples to define a baseline. *)

  val suspect : t -> int -> against:int -> bool
  (** Pairwise early warning: [i]'s smoothed latency is [outlier_factor]
      above [against]'s, judged as soon as each side has a single sample —
      before {!outlier} can fire. Hedging uses this to cover the detection
      lag between a replica turning gray and it accumulating [min_samples]
      bad observations. *)

  val p99 : t -> float option
  (** 99th-percentile latency over the recent samples of currently
      non-outlier representatives; [None] until enough samples exist. *)

  val hedge_delay : ?floor:float -> t -> float
  (** The delay after which a hedged request fires its backup: the healthy
      p99 ({!p99}), never below [floor] (default 1.0). *)

  val best : t -> int array -> int option
  (** Among [candidates], the representative with the lowest smoothed
      latency, preferring non-outliers; ties (including a cold score table)
      resolve to the first candidate. [None] on an empty array. The suite
      uses this to aim a cache miss's single payload fetch at the healthiest
      member holding the winning version. *)
end

type strategy =
  | Random
      (** Uniformly random minimal quorum among available representatives. *)
  | Fixed of int array
      (** Preference order; the first available representatives that reach
          the quorum are used, so quorums change only on failures. *)
  | Locality of { local : int array; remote : int array }
      (** Reads collect the local representatives first; writes take all
          needed local representatives and spread the remainder uniformly
          over remote ones (Figure 16). *)
  | Healthy of Health.t
      (** Uniformly random like {!Random}, but representatives the health
          tracker currently flags as outliers are ordered last (within each
          preference class), so quorums avoid gray replicas whenever the
          healthy ones can muster the votes — and still fall back to them
          when they cannot. Termination is identical to {!Random}: demoted,
          never excluded. *)

val pp_strategy : Format.formatter -> strategy -> unit

val collect :
  ?prefer:(int -> bool) ->
  strategy -> Rng.t -> Config.t -> available:(int -> bool) -> quorum:int -> int array option
(** Representative indices whose votes total at least [quorum] votes, or
    [None] if unattainable. General form used by the baselines.

    [prefer] (default: nobody) marks members to try first under {!Random} —
    the batched suite prefers representatives its transaction has already
    touched, so the final work round lands where the piggybacked prepare
    saves a message. Membership within each class stays uniformly random;
    {!Fixed} and {!Locality} orders are deliberate and ignore it. *)

val collect_joint :
  ?prefer:(int -> bool) ->
  strategy ->
  Rng.t ->
  (Config.t * int) list ->
  available:(int -> bool) ->
  (int array, int) result
(** Collect one set of representatives that {i simultaneously} reaches every
    [(config, quorum)] target — the joint-quorum rule governing operations
    while a membership change is in flight: the set must muster the quorum
    in the old view {i and} in the new one, so quorums on either side of the
    transition intersect. All targets must agree on the slot count.
    Candidates useless to every still-unmet target (zero votes in each) are
    skipped, so the result stays minimal in the single-target case and
    coincides with {!collect}. [Error k] names the index of the first target
    whose quorum cannot be met from the available representatives — the view
    the caller should blame in its error message. *)

val read_quorum :
  strategy -> Rng.t -> Config.t -> available:(int -> bool) -> int array option
(** Representative indices whose votes total at least R, or [None] if no
    available set reaches the quorum. The result never contains zero-vote
    representatives. *)

val write_quorum :
  ?prefer:(int -> bool) ->
  strategy -> Rng.t -> Config.t -> available:(int -> bool) -> int array option
(** Same for W. With a [Locality] strategy the local representatives are
    always included (they are where subsequent local reads look). *)
