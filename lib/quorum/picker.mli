(** Quorum collection policies.

    The paper's §4 simulations select quorum members "randomly from a uniform
    distribution" ({!Random}); §5 observes that *stable* write quorums make
    deletion coalescing nearly free ({!Fixed}), and Figure 16 shows a
    locality configuration where transactions read entirely from local
    representatives and spread their one non-local write across the remote
    ones ({!Locality}). *)

open Repdir_util

type strategy =
  | Random
      (** Uniformly random minimal quorum among available representatives. *)
  | Fixed of int array
      (** Preference order; the first available representatives that reach
          the quorum are used, so quorums change only on failures. *)
  | Locality of { local : int array; remote : int array }
      (** Reads collect the local representatives first; writes take all
          needed local representatives and spread the remainder uniformly
          over remote ones (Figure 16). *)

val pp_strategy : Format.formatter -> strategy -> unit

val collect :
  ?prefer:(int -> bool) ->
  strategy -> Rng.t -> Config.t -> available:(int -> bool) -> quorum:int -> int array option
(** Representative indices whose votes total at least [quorum] votes, or
    [None] if unattainable. General form used by the baselines.

    [prefer] (default: nobody) marks members to try first under {!Random} —
    the batched suite prefers representatives its transaction has already
    touched, so the final work round lands where the piggybacked prepare
    saves a message. Membership within each class stays uniformly random;
    {!Fixed} and {!Locality} orders are deliberate and ignore it. *)

val collect_joint :
  ?prefer:(int -> bool) ->
  strategy ->
  Rng.t ->
  (Config.t * int) list ->
  available:(int -> bool) ->
  (int array, int) result
(** Collect one set of representatives that {i simultaneously} reaches every
    [(config, quorum)] target — the joint-quorum rule governing operations
    while a membership change is in flight: the set must muster the quorum
    in the old view {i and} in the new one, so quorums on either side of the
    transition intersect. All targets must agree on the slot count.
    Candidates useless to every still-unmet target (zero votes in each) are
    skipped, so the result stays minimal in the single-target case and
    coincides with {!collect}. [Error k] names the index of the first target
    whose quorum cannot be met from the available representatives — the view
    the caller should blame in its error message. *)

val read_quorum :
  strategy -> Rng.t -> Config.t -> available:(int -> bool) -> int array option
(** Representative indices whose votes total at least R, or [None] if no
    available set reaches the quorum. The result never contains zero-vote
    representatives. *)

val write_quorum :
  ?prefer:(int -> bool) ->
  strategy -> Rng.t -> Config.t -> available:(int -> bool) -> int array option
(** Same for W. With a [Locality] strategy the local representatives are
    always included (they are where subsequent local reads look). *)
