(** The epoch-stamped shard map: which replica group serves which key range.

    A horizontal deployment partitions the extended key space
    [LOW, HIGH] into contiguous half-open ranges, each served by one
    independent replica group running the full voting algorithm over its own
    representatives. The map is the routing authority: clients resolve every
    operation's key through it, stamp each representative call with its
    epoch, and representatives fence stale stamps
    ({!Repdir_rep.Rep.Stale_shard_epoch}) exactly as they fence stale
    membership epochs — the rejection carries the encoded newer map, so a
    lagging client adopts and retries.

    Like the membership record ({!Repdir_member.Member}), the map is a pure
    value with a total order of epochs and a deterministic string encoding;
    every transition bumps the epoch by one. A migration is a two-step
    transition mirroring the joint-view dance: {!begin_move}/{!begin_split}
    puts a range into [Moving] (writes to it are refused while catch-up
    copies it to the target group), {!finish_move} lands it on the new
    group. At most one range is in flight at a time. *)

open Repdir_key

type state =
  | Serving of int  (** served by this group *)
  | Moving of { from_g : int; to_g : int }
      (** migrating: reads still go to [from_g]; writes are refused
          (clients retry after the flip) while catch-up runs *)

type range = { lo : Bound.t; hi : Bound.t }
(** Half-open: owns bounds [lo <= b < hi]; the last range also owns HIGH. *)

type t

val epoch_of : t -> int
val n_shards : t -> int

val n_groups : t -> int
(** One more than the highest group index mentioned anywhere in the map. *)

val shards : t -> (range * state) list
(** Ascending ranges, tiling [LOW, HIGH]. *)

val find : t -> Bound.t -> int
(** The index of the shard whose range owns the bound. Total: the ranges
    tile the extended key space. *)

val range_contains : range -> Bound.t -> bool
val state_of : t -> shard:int -> state
val range_of : t -> shard:int -> range

val make : epoch:int -> (range * state) list -> (t, string) result
(** Validated construction: ranges must be non-empty, contiguous, and tile
    [LOW, HIGH]; group indices must be sane. *)

val initial : cuts:Key.t list -> t
(** Epoch-0 map with [length cuts + 1] shards split at the strictly
    increasing cut keys, shard [i] served by group [i]. An empty cut list is
    the single-group (seed-equivalent) deployment.
    Raises [Invalid_argument] on bad cuts. *)

val in_flight : t -> bool
(** Whether any range is [Moving]. *)

val begin_move : t -> shard:int -> to_g:int -> (t, string) result
(** Epoch+1: the whole range starts migrating to [to_g]. Refused while
    another migration is in flight. *)

val begin_split : t -> shard:int -> at:Key.t -> to_g:int -> (t, string) result
(** Epoch+1: split the range at the interior cut [at]; the lower half keeps
    its group, the upper half (new shard [shard+1]) starts migrating to
    [to_g]. *)

val finish_move : t -> shard:int -> (t, string) result
(** Epoch+1: the moving range lands on its target group. *)

(* --- serialization ----------------------------------------------------------- *)

val encode : t -> string
(** Deterministic single-line encoding — what {!Repdir_rep.Rep.install_shard_epoch}
    stores and [Stale_shard_epoch] rejections carry. Round-trips any key. *)

val decode : string -> (t, string) result
val decode_exn : string -> t

val equal : t -> t -> bool
(** Structural, via {!encode}. *)

val pp : Format.formatter -> t -> unit
val pp_range : Format.formatter -> range -> unit
val pp_state : Format.formatter -> state -> unit

val shard_label : t -> shard:int -> string
(** Human-readable "shard [lo,hi)->gN (epoch E)" for error messages — what
    the router plugs into {!Repdir_core.Suite.shard_info}. *)
