open Repdir_key

type state = Serving of int | Moving of { from_g : int; to_g : int }

type range = { lo : Bound.t; hi : Bound.t }

type t = { epoch : int; shards : (range * state) array }

let epoch_of t = t.epoch
let n_shards t = Array.length t.shards
let shards t = Array.to_list t.shards

let n_groups t =
  1
  + Array.fold_left
      (fun acc (_, st) ->
        match st with
        | Serving g -> max acc g
        | Moving { from_g; to_g } -> max acc (max from_g to_g))
      0 t.shards

(* Half-open containment: a range owns the bounds b with lo <= b < hi,
   except the last range (hi = High) also owns High itself — so every bound,
   sentinels included, has exactly one owner and whole-directory traversals
   starting from Low or High route somewhere. *)
let range_contains r b =
  Bound.compare r.lo b <= 0
  && (Bound.compare b r.hi < 0 || (r.hi = Bound.High && b = Bound.High))

let find t b =
  let rec go i =
    if i >= Array.length t.shards then
      invalid_arg "Shard_map.find: ranges do not tile the key space"
    else if range_contains (fst t.shards.(i)) b then i
    else go (i + 1)
  in
  go 0

let state_of t ~shard =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Shard_map.state_of: shard out of range";
  snd t.shards.(shard)

let range_of t ~shard =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Shard_map.range_of: shard out of range";
  fst t.shards.(shard)

(* --- construction and transitions ----------------------------------------------- *)

let check_tiling shards =
  let n = Array.length shards in
  if n = 0 then Error "no shards"
  else if (fst shards.(0)).lo <> Bound.Low then Error "first range must start at LOW"
  else if (fst shards.(n - 1)).hi <> Bound.High then Error "last range must end at HIGH"
  else
    let rec go i =
      if i >= n then Ok ()
      else
        let r = fst shards.(i) in
        if Bound.compare r.lo r.hi >= 0 then Error "empty or inverted range"
        else if i + 1 < n && not (Bound.equal r.hi (fst shards.(i + 1)).lo) then
          Error "ranges are not contiguous"
        else go (i + 1)
    in
    go 0

let make ~epoch shards =
  if epoch < 0 then Error "negative epoch"
  else
    let shards = Array.of_list shards in
    let bad_group =
      Array.exists
        (fun (_, st) ->
          match st with
          | Serving g -> g < 0
          | Moving { from_g; to_g } -> from_g < 0 || to_g < 0 || from_g = to_g)
        shards
    in
    if bad_group then Error "bad group index"
    else Result.map (fun () -> { epoch; shards }) (check_tiling shards)

let initial ~cuts =
  let rec bounds lo = function
    | [] -> [ { lo; hi = Bound.High } ]
    | k :: rest ->
        let hi = Bound.key k in
        if Bound.compare lo hi >= 0 then
          invalid_arg "Shard_map.initial: cuts must be strictly increasing"
        else { lo; hi } :: bounds hi rest
  in
  let ranges = bounds Bound.Low cuts in
  let shards = List.mapi (fun i r -> (r, Serving i)) ranges in
  match make ~epoch:0 shards with
  | Ok t -> t
  | Error e -> invalid_arg ("Shard_map.initial: " ^ e)

let in_flight t =
  Array.exists (fun (_, st) -> match st with Moving _ -> true | _ -> false) t.shards

let begin_move t ~shard ~to_g =
  if shard < 0 || shard >= Array.length t.shards then Error "shard out of range"
  else if in_flight t then Error "a migration is already in flight"
  else
    match snd t.shards.(shard) with
    | Moving _ -> Error "shard is already moving"
    | Serving from_g ->
        if to_g = from_g then Error "target group already serves this shard"
        else if to_g < 0 then Error "bad group index"
        else
          let shards = Array.copy t.shards in
          shards.(shard) <- (fst shards.(shard), Moving { from_g; to_g });
          Ok { epoch = t.epoch + 1; shards }

(* Split a range at an interior cut: the lower half keeps its group, the
   upper half starts migrating to [to_g]. The upper half becomes shard
   [shard + 1]; later shards shift up by one. *)
let begin_split t ~shard ~at ~to_g =
  if shard < 0 || shard >= Array.length t.shards then Error "shard out of range"
  else if in_flight t then Error "a migration is already in flight"
  else
    match snd t.shards.(shard) with
    | Moving _ -> Error "shard is already moving"
    | Serving from_g ->
        if to_g = from_g then Error "target group already serves this shard"
        else if to_g < 0 then Error "bad group index"
        else
          let r = fst t.shards.(shard) in
          let cut = Bound.key at in
          if Bound.compare r.lo cut >= 0 || Bound.compare cut r.hi >= 0 then
            Error "cut is not interior to the shard's range"
          else
            let lower = ({ lo = r.lo; hi = cut }, Serving from_g) in
            let upper = ({ lo = cut; hi = r.hi }, Moving { from_g; to_g }) in
            let shards =
              Array.concat
                [
                  Array.sub t.shards 0 shard;
                  [| lower; upper |];
                  Array.sub t.shards (shard + 1)
                    (Array.length t.shards - shard - 1);
                ]
            in
            Ok { epoch = t.epoch + 1; shards }

let finish_move t ~shard =
  if shard < 0 || shard >= Array.length t.shards then Error "shard out of range"
  else
    match snd t.shards.(shard) with
    | Serving _ -> Error "shard is not moving"
    | Moving { to_g; _ } ->
        let shards = Array.copy t.shards in
        shards.(shard) <- (fst shards.(shard), Serving to_g);
        Ok { epoch = t.epoch + 1; shards }

(* --- serialization --------------------------------------------------------------- *)

(* The membership record travels inside Stale_epoch rejections as a string;
   the shard map does exactly the same through Stale_shard_epoch, so its
   encoding must round-trip any key. Interior bounds are hex-encoded ('k'
   prefix); the sentinels are '-' and '+'. *)
let encode_bound = function
  | Bound.Low -> "-"
  | Bound.High -> "+"
  | Bound.Key k ->
      let b = Buffer.create (2 + (2 * String.length k)) in
      Buffer.add_char b 'k';
      String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) k;
      Buffer.contents b

let decode_bound s =
  if s = "-" then Ok Bound.Low
  else if s = "+" then Ok Bound.High
  else if String.length s >= 1 && s.[0] = 'k' && (String.length s - 1) mod 2 = 0 then
    try
      let n = (String.length s - 1) / 2 in
      Ok
        (Bound.key
           (String.init n (fun i ->
                Char.chr (int_of_string ("0x" ^ String.sub s (1 + (2 * i)) 2)))))
    with _ -> Error "malformed key bound"
  else Error "malformed bound"

let encode_state = function
  | Serving g -> string_of_int g
  | Moving { from_g; to_g } -> Printf.sprintf "%d>%d" from_g to_g

let decode_state s =
  match String.index_opt s '>' with
  | None -> (
      match int_of_string_opt s with
      | Some g when g >= 0 -> Ok (Serving g)
      | _ -> Error "malformed shard state")
  | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some from_g, Some to_g when from_g >= 0 && to_g >= 0 && from_g <> to_g ->
          Ok (Moving { from_g; to_g })
      | _ -> Error "malformed shard state")

let encode t =
  (* Contiguity lets each range be encoded by its upper bound alone; the
     lower bound is the previous range's hi (LOW for the first). *)
  Printf.sprintf "M|%d|%s" t.epoch
    (String.concat ";"
       (List.map
          (fun (r, st) -> encode_bound r.hi ^ "," ^ encode_state st)
          (Array.to_list t.shards)))

let decode s =
  match String.split_on_char '|' s with
  | [ "M"; epoch; body ] -> (
      match int_of_string_opt epoch with
      | None -> Error "malformed shard map: bad epoch"
      | Some epoch ->
          let parts = String.split_on_char ';' body in
          let rec go lo acc = function
            | [] -> Ok (List.rev acc)
            | p :: rest -> (
                match String.index_opt p ',' with
                | None -> Error "malformed shard map: missing state"
                | Some i ->
                    Result.bind (decode_bound (String.sub p 0 i)) (fun hi ->
                        Result.bind
                          (decode_state
                             (String.sub p (i + 1) (String.length p - i - 1)))
                          (fun st -> go hi (({ lo; hi }, st) :: acc) rest)))
          in
          Result.bind (go Bound.Low [] parts) (make ~epoch))
  | _ -> Error "malformed shard map"

let decode_exn s =
  match decode s with
  | Ok t -> t
  | Error e -> invalid_arg ("Shard_map.decode: " ^ e ^ ": " ^ s)

let equal a b = encode a = encode b

(* --- printing -------------------------------------------------------------------- *)

let pp_state ppf = function
  | Serving g -> Format.fprintf ppf "g%d" g
  | Moving { from_g; to_g } -> Format.fprintf ppf "g%d>g%d" from_g to_g

let pp_range ppf r =
  Format.fprintf ppf "[%a,%a)" Bound.pp r.lo Bound.pp r.hi

let pp ppf t =
  Format.fprintf ppf "e%d{%a}" t.epoch
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (r, st) -> Format.fprintf ppf "%a%a" pp_range r pp_state st))
    (Array.to_list t.shards)

let shard_label t ~shard =
  Format.asprintf "shard %a->%a (epoch %d)" pp_range (range_of t ~shard) pp_state
    (state_of t ~shard) t.epoch
