open Repdir_key
open Repdir_txn
open Repdir_core
module Rep = Repdir_rep.Rep

(* The client-side shard router: one per client, holding the client's current
   shard map and one suite per replica group. Every operation resolves its
   key through the map, runs on the owning group's suite, and adopts newer
   maps carried by [Rep.Stale_shard_epoch] fence rejections. *)

type t = {
  map : Shard_map.t ref;
  suites : Suite.t array;  (* index = group *)
  txns : Txn.Manager.t;
  refresh : (int -> string option) option;
      (* peek a group's installed shard view — how a router blocked on a
         [Moving] range learns the flip landed without waiting to be fenced *)
  retries : int;
}

let group_label mref g () =
  let m = !mref in
  let owned =
    List.filter_map
      (fun (r, st) ->
        match st with
        | Shard_map.Serving g' when g' = g -> Some (Format.asprintf "%a" Shard_map.pp_range r)
        | Shard_map.Moving { from_g; to_g } when from_g = g || to_g = g ->
            Some (Format.asprintf "%a(moving)" Shard_map.pp_range r)
        | _ -> None)
      (Shard_map.shards m)
  in
  Format.asprintf "group %d %s (shard epoch %d)" g
    (String.concat " " owned) (Shard_map.epoch_of m)

(* [groups] may exceed the initial map's group count: a deployment whose
   later maps split ranges onto fresh groups needs suites provisioned for
   them up front (the suites are lazy about talking to anyone — an unrouted
   group's suite never sends a message). *)
let create ?refresh ?(retries = 8) ?groups ~map ~txns ~make_suite () =
  let groups =
    max (Shard_map.n_groups map) (match groups with None -> 0 | Some g -> g)
  in
  let mref = ref map in
  let suites =
    Array.init groups (fun g ->
        make_suite g
          {
            Suite.shard_label = group_label mref g;
            shard_epoch = (fun () -> Shard_map.epoch_of !mref);
          })
  in
  let coord = Suite.coordinator suites.(0) in
  Array.iter
    (fun s ->
      if Suite.coordinator s != coord then
        invalid_arg "Router.create: all group suites must share one coordinator")
    suites;
  { map = mref; suites; txns; refresh; retries }

let map t = !(t.map)
let epoch t = Shard_map.epoch_of !(t.map)
let n_groups t = Array.length t.suites
let suite t g = t.suites.(g)

(* Map adoption is forward-only, like membership adoption; any advance
   re-derives every suite's cache epoch so lines cached under the old
   ownership die immediately. *)
let install t m =
  if Shard_map.epoch_of m > Shard_map.epoch_of !(t.map) then begin
    t.map := m;
    Array.iter Suite.sync_cache_epoch t.suites
  end

let set_map t m = install t m

let adopt t record =
  match Shard_map.decode record with Ok m -> install t m | Error _ -> ()

let refresh t g =
  match t.refresh with
  | None -> ()
  | Some peek -> ( match peek g with Some r -> adopt t r | None -> ())

(* --- routing -------------------------------------------------------------------- *)

(* Reads during a migration stay on the source group: the slice is
   write-frozen there (the Moving epoch fences every write quorum), so the
   source remains authoritative until the flip. *)
let read_group m shard =
  match Shard_map.state_of m ~shard with
  | Shard_map.Serving g -> g
  | Shard_map.Moving { from_g; _ } -> from_g

(* Writes to a moving range are refused. Before giving up, peek the source
   group's installed view — the flip lands on the source group first, so a
   blocked writer learns the new map without waiting to be fenced. The key
   is re-resolved against the adopted map: a split may have changed shard
   indices. *)
let write_group t b =
  let m = !(t.map) in
  match Shard_map.state_of m ~shard:(Shard_map.find m b) with
  | Shard_map.Serving g -> g
  | Shard_map.Moving { from_g; _ } -> (
      refresh t from_g;
      let m = !(t.map) in
      let shard = Shard_map.find m b in
      match Shard_map.state_of m ~shard with
      | Shard_map.Serving g -> g
      | Shard_map.Moving _ ->
          raise
            (Suite.Unavailable
               (Format.asprintf "%s is migrating"
                  (Shard_map.shard_label m ~shard))))

(* Adopt-and-retry around a whole operation: a fence rejection aborted the
   attempt's (implicit) transaction and carries the newer map, so
   re-resolving the key against the adopted map and re-running is exactly
   the membership adoption dance, one level up. Only sound when the router
   owns the operation's transaction — an operation inside a caller-supplied
   transaction cannot be re-run in place (its earlier operations ran under
   the stale map), so it propagates and the enclosing {!with_txn} turns the
   rejection into a retryable abort. *)
let rec run_retry t n f =
  try f () with
  | Rep.Stale_shard_epoch { record; _ } when n > 0 ->
      adopt t record;
      run_retry t (n - 1) f

let run ~txn t f =
  match txn with Some _ -> f () | None -> run_retry t t.retries f

(* --- single-shard operations ------------------------------------------------------ *)

(* Each resolves the key against the *current* map on every attempt and
   delegates to the owning group's suite — on a single-group map this is one
   array lookup and then exactly the seed path. *)

let lookup ?txn t key =
  run ~txn t (fun () ->
      let m = !(t.map) in
      Suite.lookup ?txn t.suites.(read_group m (Shard_map.find m (Bound.key key))) key)

let mem ?txn t key =
  run ~txn t (fun () ->
      let m = !(t.map) in
      Suite.mem ?txn t.suites.(read_group m (Shard_map.find m (Bound.key key))) key)

let insert ?txn t key value =
  run ~txn t (fun () ->
      Suite.insert ?txn t.suites.(write_group t (Bound.key key)) key value)

let update ?txn t key value =
  run ~txn t (fun () ->
      Suite.update ?txn t.suites.(write_group t (Bound.key key)) key value)

let delete ?txn t key =
  run ~txn t (fun () ->
      Suite.delete ?txn t.suites.(write_group t (Bound.key key)) key)

(* --- cross-shard transactions ----------------------------------------------------- *)

(* Commit a transaction that may span several groups' suites: prepare at
   every suite (each releases its read-only participants and collects
   durable yes votes), force ONE decision in the shared coordinator's log —
   it covers every group's participants, who all recorded that coordinator
   at prepare time — then deliver the decision everywhere. Identical to the
   single-suite protocol when only one group was touched. *)
let commit_cross t txn =
  let all_prepared =
    Array.fold_left (fun acc s -> Suite.cross_prepare s txn && acc) true t.suites
  in
  let any_participants =
    Array.exists (fun s -> Suite.has_participants s txn) t.suites
  in
  if not any_participants then
    Array.iter (fun s -> Suite.cross_commit s txn) t.suites
  else
    let coord = Suite.coordinator t.suites.(0) in
    match
      Coordinator.decide coord txn
        (if all_prepared then Coordinator.Committed else Coordinator.Aborted)
    with
    | Coordinator.Committed -> Array.iter (fun s -> Suite.cross_commit s txn) t.suites
    | Coordinator.Aborted ->
        Array.iter (fun s -> Suite.cross_abort s txn) t.suites;
        raise (Suite.Unavailable "cross-shard transaction aborted during two-phase commit")

let abort_cross t txn = Array.iter (fun s -> Suite.cross_abort s txn) t.suites

let with_txn t f =
  let txn = Txn.Manager.begin_txn t.txns in
  let recorder_suite = t.suites.(0) in
  match f txn with
  | result -> (
      match commit_cross t txn with
      | () ->
          Txn.Manager.commit t.txns txn;
          Suite.record_finish recorder_suite ~txn `Ok;
          result
      | exception e ->
          Txn.Manager.abort t.txns txn;
          Suite.record_finish recorder_suite ~txn
            (Suite.failed_commit_status recorder_suite txn);
          raise e)
  | exception e ->
      abort_cross t txn;
      Txn.Manager.abort t.txns txn;
      Suite.record_finish recorder_suite ~txn `Failed;
      (* A mid-transaction fence rejection cannot be retried in place — the
         earlier operations ran under the stale map — so adopt and surface a
         retryable abort, mirroring the membership suite's behaviour. *)
      (match e with
      | Rep.Stale_shard_epoch { record; _ } ->
          adopt t record;
          raise (Txn.Abort (Txn.Unavailable "shard map epoch advanced mid-transaction"))
      | _ -> raise e)

(* --- cross-shard traversal -------------------------------------------------------- *)

(* A group's directory physically tiles the whole key space (it keeps its
   own LOW/HIGH sentinels and, after a migration, possibly stale residue of
   ranges it no longer owns), so traversal answers are only authoritative
   inside the group's owned ranges: the router clamps every probe result to
   the probed shard's range and walks into the adjacent shard when the
   answer falls outside it. *)

(* First current entry at-or-after an interior bound, within one group. *)
let first_at_or_after ~txn s k =
  match Suite.lookup ~txn s k with
  | Some (ver, v) -> Some (k, ver, v)
  | None -> Suite.next ~txn s k

let last_at_or_before ~txn s k =
  match Suite.lookup ~txn s k with
  | Some (ver, v) -> Some (k, ver, v)
  | None -> Suite.prev ~txn s k

(* Smallest current entry with key > b (or >= b when [inclusive]), walking
   shards upward from b's owner. *)
let next_entry t ~txn ~inclusive b =
  let m = !(t.map) in
  let n = Shard_map.n_shards m in
  let rec go i probe_b inclusive =
    if i >= n then None
    else
      let r = Shard_map.range_of m ~shard:i in
      let s = t.suites.(read_group m i) in
      let res =
        match probe_b with
        | Bound.Low -> Suite.first ~txn s
        | Bound.Key k -> if inclusive then first_at_or_after ~txn s k else Suite.next ~txn s k
        | Bound.High -> None
      in
      match res with
      | Some (k, _, _) as hit when Shard_map.range_contains r (Bound.key k) -> hit
      | _ -> if Bound.equal r.hi Bound.High then None else go (i + 1) r.hi true
  in
  go (Shard_map.find m b) b inclusive

(* Mirror: largest current entry with key < b (or <= b), walking downward. *)
let prev_entry t ~txn ~inclusive b =
  let m = !(t.map) in
  let rec go i probe_b inclusive =
    if i < 0 then None
    else
      let r = Shard_map.range_of m ~shard:i in
      let s = t.suites.(read_group m i) in
      let res =
        match probe_b with
        | Bound.High -> Suite.last ~txn s
        | Bound.Key k -> if inclusive then last_at_or_before ~txn s k else Suite.prev ~txn s k
        | Bound.Low -> None
      in
      match res with
      | Some (k, _, _) as hit when Shard_map.range_contains r (Bound.key k) -> hit
      | _ -> if Bound.equal r.lo Bound.Low then None else go (i - 1) r.lo false
  in
  go (Shard_map.find m b) b inclusive

(* Traversals span groups, so each runs as one cross-shard transaction for a
   consistent snapshot under strict 2PL — unless the caller supplied its
   own. When the router owns the transaction, a fence rejection (already
   adopted and converted to a retryable abort by [with_txn]) re-runs the
   whole traversal under the new map. *)
let traverse t txn body =
  match txn with
  | Some txn -> body txn
  | None ->
      let rec go n =
        try with_txn t body
        with Txn.Abort (Txn.Unavailable _) when n > 0 -> go (n - 1)
      in
      go t.retries

let next ?txn t key =
  traverse t txn (fun txn -> next_entry t ~txn ~inclusive:false (Bound.key key))

let prev ?txn t key =
  traverse t txn (fun txn -> prev_entry t ~txn ~inclusive:false (Bound.key key))

let first ?txn t = traverse t txn (fun txn -> next_entry t ~txn ~inclusive:true Bound.Low)
let last ?txn t = traverse t txn (fun txn -> prev_entry t ~txn ~inclusive:true Bound.High)

let fold_range ?txn t ~lo ~hi ~init ~f =
  traverse t txn (fun txn ->
      let rec go acc probe inclusive =
        match next_entry t ~txn ~inclusive probe with
        | Some (k, _, v) when Key.compare k hi <= 0 -> go (f acc k v) (Bound.key k) false
        | _ -> acc
      in
      go init (Bound.key lo) true)

let to_alist ?txn t =
  traverse t txn (fun txn ->
      let rec go acc probe inclusive =
        match next_entry t ~txn ~inclusive probe with
        | Some (k, _, v) -> go ((k, v) :: acc) (Bound.key k) false
        | None -> List.rev acc
      in
      go [] Bound.Low true)
