(** The client-side shard router: the multi-group face of the directory.

    One router per client. It holds the client's current {!Shard_map},
    one {!Repdir_core.Suite} per replica group, and presents the full
    directory API — every operation resolves its key through the map and
    runs on the owning group's suite, so a single-group map behaves exactly
    like the seed suite.

    Map staleness is handled the same way membership staleness is: every
    representative call is stamped with the map's epoch (through the
    {!Repdir_core.Suite.shard_info} hook installed at {!create}), a fenced
    rejection ({!Repdir_rep.Rep.Stale_shard_epoch}) carries the newer
    encoded map, and the router adopts it — re-running an operation whose
    transaction it owns, or aborting a caller-owned transaction with a
    retryable [Txn.Abort (Txn.Unavailable _)].

    Transactions spanning several groups commit with cross-shard
    presumed-abort two-phase commit: one prepare round per touched group's
    suite, a single forced decision in the client's shared coordinator log,
    then per-group commit/abort rounds (see
    {!Repdir_core.Suite.cross_prepare}). All the router's suites must share
    that coordinator and run with [two_phase].

    Traversals stitch groups together: each group's directory physically
    tiles the whole key space (own sentinels, possibly stale residue of
    migrated ranges), so probe answers are clamped to the probed shard's
    range and the walk continues into the adjacent shard when an answer
    falls outside it. *)

open Repdir_key
open Repdir_txn
open Repdir_core

type t

val create :
  ?refresh:(int -> string option) ->
  ?retries:int ->
  ?groups:int ->
  map:Shard_map.t ->
  txns:Txn.Manager.t ->
  make_suite:(int -> Suite.shard_info -> Suite.t) ->
  unit ->
  t
(** [make_suite g info] builds group [g]'s suite with [?shard:info] — the
    hook's closures read this router's live map, so fence stamps and error
    labels always reflect the latest adopted epoch. All suites must share
    one coordinator ([Invalid_argument] otherwise) and should share one
    transaction manager ([txns]) and recorder. [refresh g] (optional) peeks
    group [g]'s installed shard view — {!Repdir_rep.Rep.shard_view} over the
    harness transport — so a writer blocked on a [Moving] range learns the
    flip without waiting to be fenced. [retries] (default 8) bounds
    adopt-and-retry rounds per operation. [groups] (default: the initial
    map's group count) provisions suites for groups the initial map does
    not yet mention, so a later map can split a range onto a fresh group
    without rebuilding the router. *)

val map : t -> Shard_map.t
val epoch : t -> int
val n_groups : t -> int

val suite : t -> int -> Suite.t
(** Group [g]'s suite (for counters and harness plumbing). *)

val set_map : t -> Shard_map.t -> unit
(** Adopt a map if it is newer than the current one (forward-only); any
    advance flushes every suite's client cache. The migration driver's hook
    for its own router. *)

val adopt : t -> string -> unit
(** {!set_map} from an encoded record; malformed records are ignored. *)

(* --- directory operations ----------------------------------------------------- *)

(* Signatures mirror {!Repdir_core.Suite}. Without [?txn] each operation
   owns its transaction and handles map adoption internally; with [?txn]
   the operation joins the caller's (router-created) transaction and fence
   rejections abort it wholesale. Writes to a range that is [Moving] raise
   {!Repdir_core.Suite.Unavailable} (retry; the flip will land). *)

val lookup : ?txn:Txn.id -> t -> Key.t -> (Version.t * string) option
val mem : ?txn:Txn.id -> t -> Key.t -> bool
val insert : ?txn:Txn.id -> t -> Key.t -> string -> (unit, [ `Already_present ]) result
val update : ?txn:Txn.id -> t -> Key.t -> string -> (unit, [ `Not_present ]) result
val delete : ?txn:Txn.id -> t -> Key.t -> Suite.delete_report

val next : ?txn:Txn.id -> t -> Key.t -> (Key.t * Version.t * string) option
val prev : ?txn:Txn.id -> t -> Key.t -> (Key.t * Version.t * string) option
val first : ?txn:Txn.id -> t -> (Key.t * Version.t * string) option
val last : ?txn:Txn.id -> t -> (Key.t * Version.t * string) option

val fold_range :
  ?txn:Txn.id ->
  t ->
  lo:Key.t ->
  hi:Key.t ->
  init:'a ->
  f:('a -> Key.t -> string -> 'a) ->
  'a

val to_alist : ?txn:Txn.id -> t -> (Key.t * string) list

val with_txn : t -> (Txn.id -> 'a) -> 'a
(** Run several router operations as one atomic — possibly cross-shard —
    transaction, committed with the cross-shard two-phase protocol. A
    mid-transaction shard fence rejection adopts the newer map and aborts
    with a retryable [Txn.Abort (Txn.Unavailable _)]. *)
