(** Online strict-serializability checker for directory histories.

    The concurrent history is partitioned into independent per-key
    sub-histories (single-key directory operations commute across distinct
    keys), each checked by exhaustive linearization search against the
    sequential spec, with response real-time order as the precedence
    relation. Chunks proven linearizable are garbage-collected — only the
    set of reachable key states survives the chunk boundary — using
    per-client watermarks for sound closure (clients are sequential, so a
    client's future operations start no earlier than its last reported
    finish). Ambiguous (timed-out) writes are carried as optional
    operations that may interleave at any point after their invocation, or
    never. *)

open Repdir_key

type t

type violation = { v_key : Key.t; v_detail : string }

type stats = {
  mutable events_seen : int;
  mutable ops_checked : int;  (** definite per-key transaction projections *)
  mutable ambiguous_ops : int;  (** timed-out writes tracked as optional *)
  mutable chunks_closed : int;
  mutable given_up : (Key.t * string) list;
      (** keys left unchecked (state-space caps), with reasons — reported,
          never counted as passes *)
}

val create : ?initial:(Key.t -> string option) -> clients:int -> unit -> t
(** [initial] is the directory state before the recorded history began
    (default: every key absent). [clients] must cover every client id that
    will ever feed an event: the watermark is the minimum over all of them. *)

val feed : t -> History.event -> unit
(** Feed one completed event. Events must arrive in non-decreasing finish
    order (recorder sinks fire at finish time under a monotone clock). *)

val finalize : t -> unit
(** Force-close every open chunk; call once after the workload has ended. *)

val violations : t -> violation list
val stats : t -> stats
val pp_violation : Format.formatter -> violation -> unit
