open Repdir_key
open Repdir_quorum
module Rep = Repdir_rep.Rep

(* Quiesce-time replica scrubber: global invariants over a settled suite of
   representatives. Per-representative structure (entry+gap tiling of
   [LOW, HIGH], live map = committed WAL replay) is delegated to
   {!Rep.scrub}; this module adds the cross-replica checks the paper's
   quorum argument rests on:

   - no residue: zero granted locks, queued lock waiters, live leases, or
     in-doubt transactions anywhere once the campaign has quiesced;
   - same version, same value: two representatives holding a key at the same
     entry version must agree on its value (any two write quorums
     intersect, so a version number is written once);
   - quorum intersection: for *every* set of representatives whose votes
     reach the read quorum, the highest-versioned answer for every key known
     anywhere equals the global highest-versioned answer — i.e. every
     committed write (and every committed delete, via dominating gap
     versions) is readable from every read quorum. Ghost copies left on
     minority members are exactly what this sweep vindicates or convicts. *)

(* What one representative answers for a key without running a transaction:
   the entry's version and value, or the version of the gap covering it. *)
let answer_of rep key =
  let b = Bound.Key key in
  match List.find_opt (fun (k, _, _) -> Key.compare k key = 0) (Rep.entries rep) with
  | Some (_, version, value) -> (version, Some value)
  | None ->
      let gap_version =
        List.fold_left
          (fun acc (lo, hi, v) ->
            if Bound.compare lo b < 0 && Bound.compare b hi <= 0 then Some v else acc)
          None (Rep.gaps rep)
      in
      (Option.value gap_version ~default:Version.lowest, None)

(* Every index subset whose votes reach [quorum]; n is small (the paper's
   suites are 3-7 representatives), so enumeration is exact and cheap. *)
let quorums ~votes ~quorum =
  let n = Array.length votes in
  let rec go i members weight =
    if weight >= quorum then [ List.rev members ]
    else if i = n then []
    else go (i + 1) (i :: members) (weight + votes.(i)) @ go (i + 1) members weight
  in
  go 0 [] 0

let best answers =
  List.fold_left
    (fun acc (v, x) ->
      match acc with Some (bv, _) when Version.compare bv v >= 0 -> acc | _ -> Some (v, x))
    None answers

let pp_answer ppf = function
  | Some (v, Some value) -> Format.fprintf ppf "%a=%s" Version.pp v value
  | Some (v, None) -> Format.fprintf ppf "absent@%a" Version.pp v
  | None -> Format.pp_print_string ppf "no answer"

let run ?expected_epoch ~(config : Config.t) (reps : Rep.t array) : string list =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  Array.iter
    (fun rep ->
      if Rep.is_crashed rep then add "%s: still crashed at quiesce" (Rep.name rep)
      else begin
        List.iter (fun p -> problems := p :: !problems) (Rep.scrub rep);
        let held = Rep.locks_held rep
        and waiting = Rep.lock_waiters rep
        and indoubt = Rep.in_doubt_count rep
        and leases = Rep.active_txn_count rep in
        if held > 0 then add "%s: %d orphan locks at quiesce" (Rep.name rep) held;
        if waiting > 0 then add "%s: %d orphan lock waiters at quiesce" (Rep.name rep) waiting;
        if indoubt > 0 then add "%s: %d in-doubt transactions at quiesce" (Rep.name rep) indoubt;
        if leases > 0 then add "%s: %d live leases at quiesce" (Rep.name rep) leases
      end)
    reps;
  let alive = Array.for_all (fun r -> not (Rep.is_crashed r)) reps in
  if alive then begin
    (* Single agreed membership epoch: a settled suite must not leave two
       representatives fencing at different configurations (a reconfiguration
       that half-finished). Campaigns without dynamic membership hold every
       epoch at 0, which agrees trivially. *)
    let epochs = Array.map Rep.epoch reps in
    Array.iteri
      (fun i e ->
        if e <> epochs.(0) then
          add "%s: membership epoch %d disagrees with %s's epoch %d at quiesce"
            (Rep.name reps.(i)) e (Rep.name reps.(0)) epochs.(0))
      epochs;
    (match expected_epoch with
    | Some expected ->
        Array.iteri
          (fun i e ->
            if e <> expected then
              add "%s: membership epoch %d at quiesce, expected %d" (Rep.name reps.(i)) e
                expected)
          epochs
    | None -> ());
    (* Candidate keys: everything any representative has an entry for —
       this includes ghost copies whose committed fate was deletion. *)
    let keys =
      Array.fold_left
        (fun acc rep ->
          List.fold_left (fun acc (k, _, _) -> if List.mem k acc then acc else k :: acc) acc
            (Rep.entries rep))
        [] reps
      |> List.sort Key.compare
    in
    (* Same version, same value. *)
    List.iter
      (fun key ->
        let entries =
          Array.to_list reps
          |> List.concat_map (fun rep ->
                 match answer_of rep key with
                 | v, Some value -> [ (Rep.name rep, v, value) ]
                 | _, None -> [])
        in
        List.iter
          (fun (n1, v1, x1) ->
            List.iter
              (fun (n2, v2, x2) ->
                if Version.compare v1 v2 = 0 && String.compare x1 x2 <> 0 && n1 < n2 then
                  add "key %a: %s and %s both hold version %a with different values (%s vs %s)"
                    Key.pp key n1 n2 Version.pp v1 x1 x2)
              entries)
          entries)
      keys;
    (* Quorum intersection. *)
    let rqs = quorums ~votes:config.votes ~quorum:config.read_quorum in
    List.iter
      (fun key ->
        let global =
          best (Array.to_list reps |> List.map (fun rep -> answer_of rep key))
        in
        List.iter
          (fun q ->
            let quorum_view = best (List.map (fun i -> answer_of reps.(i) key) q) in
            let agrees =
              match (global, quorum_view) with
              | None, None -> true
              | Some (_, gx), Some (_, qx) -> gx = qx
              | _ -> false
            in
            if not agrees then
              add "key %a: read quorum {%s} answers %a but the global latest is %a" Key.pp key
                (String.concat "," (List.map string_of_int q))
                pp_answer quorum_view pp_answer global)
          rqs)
      keys
  end
  else add "scrub incomplete: crashed representatives prevent the quorum sweep";
  List.rev !problems
