(** Quiesce-time replica scrubber.

    Global invariants over a settled suite of representatives: per-replica
    structure (entry+gap tiling of [LOW, HIGH]; live map equals a
    committed-only WAL replay — see {!Repdir_rep.Rep.scrub}), zero orphan
    locks/waiters/leases/in-doubt transactions, same-version-same-value
    agreement across replicas, and the quorum-intersection property — the
    highest-versioned answer of {e every} vote set reaching the read quorum
    equals the global highest-versioned answer for every key known
    anywhere. With dynamic membership, additionally: a single agreed
    membership epoch across all representatives at quiesce (and equal to
    [expected_epoch] when given — the epoch the reconfiguration driver says
    the campaign finished at). Returns human-readable violations; empty
    means clean. *)

val run :
  ?expected_epoch:int ->
  config:Repdir_quorum.Config.t ->
  Repdir_rep.Rep.t array ->
  string list
