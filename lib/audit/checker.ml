open Repdir_key

(* Online strict-serializability checker for single-key directory histories.

   The paper's structure keeps this tractable: lookup/insert/update/delete
   commute across distinct keys, so the concurrent history partitions into
   independent per-key sub-histories and each is checked alone (a
   Wing-Gong-style search, as Jepsen's checkers do). The per-key projection
   of a transaction uses the interval [first invocation on that key,
   transaction finish]: under strict two-phase locking the key is frozen
   from that first (locked) touch until commit, so a correct execution
   always admits a serialization point inside it — narrowing the interval
   this way never produces a false violation and sharpens real-time
   precedence.

   Events are fed in completion order (the sink of each client's recorder
   fires at finish time, and simulated time is monotone). Closure of a
   buffered chunk cannot rely on that alone — a transaction finishing late
   may have *started* before everything buffered — so the checker keeps a
   per-client watermark: clients are sequential, hence every future
   operation of client [c] starts at or after the last finish [c] fed us.
   Once the minimum watermark over all clients passes a chunk's largest
   finish, nothing fed later can be ordered before the chunk, and it is
   solved and garbage-collected: only the set of reachable states (not the
   operations) crosses the boundary, which is what bounds memory on long
   campaigns.

   Ambiguous operations (the client timed out; the write may land at any
   later time) are modelled with finish = +inf. They never gate chunk
   closure: they live in a per-key pending set and every chunk solve may
   interleave each not-yet-applied one at any point that respects its start
   time, tracked per-state as an applied-id set. A pending ambiguous
   operation is dropped once every surviving state has applied it. *)

type op = {
  o_txn : Repdir_txn.Txn.id;
  o_client : int;
  o_start : float;
  o_finish : float;  (* +inf for ambiguous *)
  o_prims : History.prim list;  (* this transaction's prims on this key, in order *)
}

let pp_op ppf o =
  Format.fprintf ppf "@[<h>c%d t%d [%.3f, %s]" o.o_client o.o_txn o.o_start
    (if o.o_finish = infinity then "?" else Printf.sprintf "%.3f" o.o_finish);
  List.iter (fun p -> Format.fprintf ppf " {%a}" History.pp_prim p) o.o_prims;
  Format.fprintf ppf "@]"

(* Sequential single-key directory spec: a key is absent or holds a value. *)
let apply_prim (state : string option) (p : History.prim) : string option option =
  match (p, state) with
  | History.Lookup (_, observed), v -> if observed = v then Some v else None
  | History.Insert (_, value, true), None -> Some (Some value)
  | History.Insert (_, _, false), (Some _ as v) -> Some v
  | History.Insert _, _ -> None
  | History.Update (_, value, true), Some _ -> Some (Some value)
  | History.Update (_, _, false), None -> Some None
  | History.Update _, _ -> None
  | History.Delete (_, true), Some _ -> Some None
  | History.Delete (_, false), None -> Some None
  | History.Delete _, _ -> None

let apply_op state o =
  List.fold_left
    (fun acc p -> match acc with None -> None | Some s -> apply_prim s p)
    (Some state) o.o_prims

(* A possible key state at the checking frontier: the value plus which
   pending ambiguous transactions have (in this possibility) applied. *)
type frontier = string option * Repdir_txn.Txn.id list (* applied ids, sorted *)

type kstate = {
  mutable buf : op list; (* definite ops awaiting closure, unordered *)
  mutable buf_max_finish : float;
  mutable pending : op list; (* ambiguous ops, applied per-frontier *)
  mutable states : frontier list;
  mutable dead : string option; (* verdict or give-up reason; checking stopped *)
}

type violation = { v_key : Key.t; v_detail : string }

type stats = {
  mutable events_seen : int;
  mutable ops_checked : int;
  mutable ambiguous_ops : int;
  mutable chunks_closed : int;
  mutable given_up : (Key.t * string) list;
}

type t = {
  initial : Key.t -> string option;
  n_clients : int;
  last_finish : float array; (* per-client watermark *)
  keys : (Key.t, kstate) Hashtbl.t;
  mutable violations : violation list;
  stats : stats;
}

(* Past these sizes the search space says the workload, not the checker, is
   the problem; the key is reported unchecked rather than stalling the run. *)
let max_chunk = 64
let max_pending = 8

let create ?(initial = fun _ -> None) ~clients () =
  if clients < 1 then invalid_arg "Checker.create: need at least one client";
  {
    initial;
    n_clients = clients;
    last_finish = Array.make clients 0.0;
    keys = Hashtbl.create 64;
    violations = [];
    stats =
      { events_seen = 0; ops_checked = 0; ambiguous_ops = 0; chunks_closed = 0; given_up = [] };
  }

let kstate_of t key =
  match Hashtbl.find_opt t.keys key with
  | Some ks -> ks
  | None ->
      let ks =
        {
          buf = [];
          buf_max_finish = neg_infinity;
          pending = [];
          states = [ (t.initial key, []) ];
          dead = None;
        }
      in
      Hashtbl.replace t.keys key ks;
      ks

(* Exhaustive search for linearizations consuming every op of [definite],
   interleaved with any eligible subset of [pending]; returns the reachable
   frontier states (empty = no linearization exists). An op may be placed
   next iff no other remaining definite op finished strictly before it
   started (Wing-Gong minimality); each step removes a definite op or marks
   an ambiguous one applied, so the memoized search terminates. *)
let solve ~definite ~pending states =
  let results = ref [] in
  let seen_result = Hashtbl.create 16 in
  let memo = Hashtbl.create 64 in
  let rec go remaining (value : string option) applied =
    let memo_key = (List.map (fun o -> o.o_txn) remaining, value, applied) in
    if not (Hashtbl.mem memo memo_key) then begin
      Hashtbl.replace memo memo_key ();
      if remaining = [] then begin
        if not (Hashtbl.mem seen_result (value, applied)) then begin
          Hashtbl.replace seen_result (value, applied) ();
          results := (value, applied) :: !results
        end
      end
      else
        let eligible o =
          List.for_all (fun p -> p == o || not (p.o_finish < o.o_start)) remaining
        in
        List.iter
          (fun o ->
            if eligible o then
              match apply_op value o with
              | Some value' -> go (List.filter (fun p -> p != o) remaining) value' applied
              | None -> ())
          remaining;
        List.iter
          (fun a ->
            if
              (not (List.mem a.o_txn applied))
              && List.for_all (fun p -> not (p.o_finish < a.o_start)) remaining
            then
              match apply_op value a with
              | Some value' ->
                  go remaining value' (List.sort_uniq compare (a.o_txn :: applied))
              | None -> ())
          pending
    end
  in
  List.iter (fun (value, applied) -> go definite value applied) states;
  (* Ambiguous ops may also fire *after* every definite op of this chunk, in
     any eligible combination — already explored: [go] keeps recursing on
     pending ops once [remaining] is empty. *)
  !results

let give_up t key ks reason =
  ks.dead <- Some reason;
  ks.buf <- [];
  ks.pending <- [];
  t.stats.given_up <- (key, reason) :: t.stats.given_up

let close_chunk t key ks =
  let definite = List.sort (fun a b -> compare a.o_start b.o_start) ks.buf in
  let states' = solve ~definite ~pending:ks.pending ks.states in
  t.stats.chunks_closed <- t.stats.chunks_closed + 1;
  if states' = [] then begin
    let detail =
      Format.asprintf "@[<v>key %a: no strict-serializable order for chunk:@,%a@,(%d pending ambiguous, %d prior states)@]"
        Key.pp key
        (Format.pp_print_list pp_op)
        definite (List.length ks.pending) (List.length ks.states)
    in
    t.violations <- { v_key = key; v_detail = detail } :: t.violations;
    ks.dead <- Some "violation found"
  end
  else begin
    ks.states <- states';
    ks.buf <- [];
    ks.buf_max_finish <- neg_infinity;
    (* Drop pending ambiguous ops that every surviving state has applied. *)
    let settled a = List.for_all (fun (_, applied) -> List.mem a.o_txn applied) states' in
    let done_, still = List.partition settled ks.pending in
    ks.pending <- still;
    if done_ <> [] then begin
      let gone = List.map (fun a -> a.o_txn) done_ in
      ks.states <-
        List.sort_uniq compare
          (List.map
             (fun (v, applied) -> (v, List.filter (fun id -> not (List.mem id gone)) applied))
             ks.states)
    end
  end

let watermark t = Array.fold_left Float.min infinity t.last_finish

let maybe_close t =
  let w = watermark t in
  Hashtbl.iter
    (fun key ks ->
      if ks.dead = None then
        if List.length ks.buf > max_chunk then
          give_up t key ks
            (Printf.sprintf "chunk exceeded %d concurrent ops; key left unchecked" max_chunk)
        else if ks.buf <> [] && w > ks.buf_max_finish then close_chunk t key ks)
    t.keys

let feed t (e : History.event) =
  t.stats.events_seen <- t.stats.events_seen + 1;
  if e.client < 0 || e.client >= t.n_clients then
    invalid_arg "Checker.feed: client id out of range";
  (* Even failed and ambiguous transactions advance the watermark: the
     client observed the outcome (or gave up) at [finish] and will not start
     anything earlier. *)
  t.last_finish.(e.client) <- Float.max t.last_finish.(e.client) e.finish;
  (if e.status <> `Failed then begin
     (* Project the transaction onto each key it touched. *)
     let by_key : (Key.t * (float * History.prim list ref)) list ref = ref [] in
     List.iter
       (fun (inv, p) ->
         let k = History.key_of_prim p in
         match List.assoc_opt k !by_key with
         | Some (_, prims) -> prims := p :: !prims
         | None -> by_key := (k, (inv, ref [ p ])) :: !by_key)
       e.prims;
     List.iter
       (fun (key, (start_, prims)) ->
         let prims = List.rev !prims in
         let ks = kstate_of t key in
         if ks.dead = None then
           match e.status with
           | `Ok ->
               let o =
                 {
                   o_txn = e.txn;
                   o_client = e.client;
                   o_start = start_;
                   o_finish = e.finish;
                   o_prims = prims;
                 }
               in
               t.stats.ops_checked <- t.stats.ops_checked + 1;
               ks.buf <- o :: ks.buf;
               ks.buf_max_finish <- Float.max ks.buf_max_finish e.finish
           | `Ambiguous ->
               (* A timed-out transaction with no writes on this key
                  constrains nothing; with writes, it may apply at any later
                  point (or never). *)
               if List.exists History.prim_is_write prims then begin
                 let o =
                   {
                     o_txn = e.txn;
                     o_client = e.client;
                     o_start = start_;
                     o_finish = infinity;
                     o_prims = prims;
                   }
                 in
                 t.stats.ambiguous_ops <- t.stats.ambiguous_ops + 1;
                 if List.length ks.pending >= max_pending then
                   give_up t key ks
                     (Printf.sprintf "more than %d unresolved ambiguous writes; key left unchecked"
                        max_pending)
                 else ks.pending <- o :: ks.pending
               end
           | `Failed -> assert false)
       !by_key
   end);
  maybe_close t

let finalize t =
  Hashtbl.iter (fun key ks -> if ks.dead = None && ks.buf <> [] then close_chunk t key ks) t.keys

let violations t = List.rev t.violations
let stats t = t.stats

let pp_violation ppf v = Format.fprintf ppf "%s" v.v_detail
