(** Client-observed operation histories, Jepsen style.

    Each client owns a {!recorder}; the suite's operation hooks record every
    primitive with its invocation time, and the transaction boundary stamps
    the completed {!event} with the client's real-time interval and outcome:
    [`Ok] (committed, results binding), [`Failed] (cleanly aborted, no
    effect), or [`Ambiguous] (the client gave up waiting — the transaction
    may still land later). Events flow to an optional sink as they complete
    (the online checker) and into a bounded ring retained for post-mortem
    dumps. *)

open Repdir_key

type prim =
  | Lookup of Key.t * string option
  | Insert of Key.t * string * bool  (** value, whether it inserted (false: already present) *)
  | Update of Key.t * string * bool  (** value, whether it updated (false: key absent) *)
  | Delete of Key.t * bool  (** whether the key was present *)

val key_of_prim : prim -> Key.t

val prim_is_write : prim -> bool
(** Whether the primitive, with its observed result, mutated the key. *)

val pp_prim : Format.formatter -> prim -> unit

type status = [ `Ok | `Failed | `Ambiguous ]

val pp_status : Format.formatter -> status -> unit

type event = {
  client : int;
  txn : Repdir_txn.Txn.id;
  start_ : float;  (** invocation time of the first recorded primitive *)
  finish : float;  (** time the client learned the outcome (or gave up) *)
  status : status;
  prims : (float * prim) list;  (** invocation-stamped, oldest first *)
}

val pp_event : Format.formatter -> event -> unit

type recorder

val recorder : ?cap:int -> client:int -> now:(unit -> float) -> unit -> recorder
(** [cap] (default 4096) bounds the retained event window; older events are
    dropped (and counted) once it overflows. *)

val set_sink : recorder -> (event -> unit) -> unit
(** Called with every event as it completes, before it enters the window. *)

val client : recorder -> int
val now : recorder -> float

val record : recorder -> txn:Repdir_txn.Txn.id -> prim -> unit
(** Append one primitive (stamped with the current time) to the named
    transaction's accumulating event. *)

val finish : recorder -> txn:Repdir_txn.Txn.id -> status -> unit
(** Close the named transaction's event and emit it. A transaction that
    recorded no primitives emits nothing. *)

val events : recorder -> event list
(** The retained window, oldest first. *)

val emitted : recorder -> int
val dropped : recorder -> int

val dump_to_file : path:string -> recorder list -> unit
(** Merge the recorders' retained windows in finish order and write them,
    one event per line, to [path] — the post-mortem artifact a failing
    campaign leaves behind. *)
