open Repdir_key

(* A client-observed primitive directory operation: what was asked and what
   came back. Result flags are the client's observations (a lookup's value,
   whether an insert found the key already present); for an ambiguous
   transaction they bind only on the committed branch. *)
type prim =
  | Lookup of Key.t * string option
  | Insert of Key.t * string * bool  (** value, whether it inserted (false: already present) *)
  | Update of Key.t * string * bool  (** value, whether it updated (false: key absent) *)
  | Delete of Key.t * bool  (** whether the key was present *)

let key_of_prim = function
  | Lookup (k, _) | Insert (k, _, _) | Update (k, _, _) | Delete (k, _) -> k

let prim_is_write = function
  | Lookup _ -> false
  | Insert (_, _, applied) | Update (_, _, applied) | Delete (_, applied) -> applied

let pp_prim ppf = function
  | Lookup (k, None) -> Format.fprintf ppf "lookup %a -> absent" Key.pp k
  | Lookup (k, Some v) -> Format.fprintf ppf "lookup %a -> %s" Key.pp k v
  | Insert (k, v, ok) ->
      Format.fprintf ppf "insert %a=%s -> %s" Key.pp k v (if ok then "ok" else "already-present")
  | Update (k, v, ok) ->
      Format.fprintf ppf "update %a=%s -> %s" Key.pp k v (if ok then "ok" else "not-present")
  | Delete (k, present) ->
      Format.fprintf ppf "delete %a -> %s" Key.pp k (if present then "ok" else "absent")

type status = [ `Ok | `Failed | `Ambiguous ]

let pp_status ppf = function
  | `Ok -> Format.pp_print_string ppf "ok"
  | `Failed -> Format.pp_print_string ppf "failed"
  | `Ambiguous -> Format.pp_print_string ppf "ambiguous"

(* One completed transaction as the client experienced it. [start_] is the
   invocation time of its first primitive, [finish] the real time at which
   the client learned the outcome (for [`Ambiguous]: gave up waiting — the
   transaction's effect, if any, may land later). Prims carry their own
   invocation times, oldest first. *)
type event = {
  client : int;
  txn : Repdir_txn.Txn.id;
  start_ : float;
  finish : float;
  status : status;
  prims : (float * prim) list;
}

let pp_event ppf e =
  Format.fprintf ppf "@[<h>c%d t%d [%.3f, %.3f] %a:" e.client e.txn e.start_ e.finish pp_status
    e.status;
  List.iter (fun (_, p) -> Format.fprintf ppf " {%a}" pp_prim p) e.prims;
  Format.fprintf ppf "@]"

(* --- per-client recorder -------------------------------------------------------- *)

(* Clients are sequential, so a recorder accumulates the prims of exactly one
   open transaction at a time; keying the accumulator by transaction id makes
   a stray out-of-order hook call harmless rather than corrupting. The
   retained window is a bounded ring (oldest events dropped first) so long
   campaigns keep a recent-history dump without unbounded memory; the
   optional [sink] sees every event as it completes, which is how the online
   checker is fed. *)
type recorder = {
  r_client : int;
  r_now : unit -> float;
  r_cap : int;
  open_txns : (Repdir_txn.Txn.id, float * (float * prim) list ref) Hashtbl.t;
  window : event Queue.t;
  mutable emitted : int;
  mutable dropped : int;
  mutable sink : (event -> unit) option;
}

let recorder ?(cap = 4096) ~client ~now () =
  if cap < 1 then invalid_arg "History.recorder: cap must be positive";
  {
    r_client = client;
    r_now = now;
    r_cap = cap;
    open_txns = Hashtbl.create 4;
    window = Queue.create ();
    emitted = 0;
    dropped = 0;
    sink = None;
  }

let set_sink r sink = r.sink <- Some sink
let client r = r.r_client
let now r = r.r_now ()

let record r ~txn prim =
  let t = r.r_now () in
  match Hashtbl.find_opt r.open_txns txn with
  | Some (_, prims) -> prims := (t, prim) :: !prims
  | None -> Hashtbl.replace r.open_txns txn (t, ref [ (t, prim) ])

let finish r ~txn status =
  match Hashtbl.find_opt r.open_txns txn with
  | None -> () (* transaction recorded nothing: no constraints to check *)
  | Some (start_, prims) ->
      Hashtbl.remove r.open_txns txn;
      let e =
        {
          client = r.r_client;
          txn;
          start_;
          finish = r.r_now ();
          status;
          prims = List.rev !prims;
        }
      in
      r.emitted <- r.emitted + 1;
      Queue.push e r.window;
      if Queue.length r.window > r.r_cap then begin
        ignore (Queue.pop r.window);
        r.dropped <- r.dropped + 1
      end;
      match r.sink with None -> () | Some f -> f e

let events r = List.of_seq (Queue.to_seq r.window)
let emitted r = r.emitted
let dropped r = r.dropped

let dump_to_file ~path recorders =
  let all = List.concat_map events recorders in
  let all = List.sort (fun a b -> compare a.finish b.finish) all in
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Format.fprintf ppf "# history window: %d events (%d more dropped from bounded ring)@."
    (List.length all)
    (List.fold_left (fun acc r -> acc + dropped r) 0 recorders);
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) all;
  Format.pp_print_flush ppf ();
  close_out oc
