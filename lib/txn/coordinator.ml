type decision = Committed | Aborted

let pp_decision ppf = function
  | Committed -> Format.pp_print_string ppf "committed"
  | Aborted -> Format.pp_print_string ppf "aborted"

type counters = {
  mutable commits : int;
  mutable aborts : int;
  mutable resolutions : int;
  mutable presumed_aborts : int;
}

type t = {
  id : int;
  log : Wal.t;
  decisions : (Txn.id, decision) Hashtbl.t;
  counters : counters;
}

let create ?(id = -1) () =
  {
    id;
    log = Wal.create ();
    decisions = Hashtbl.create 32;
    counters = { commits = 0; aborts = 0; resolutions = 0; presumed_aborts = 0 };
  }

let id t = t.id
let counters t = t.counters
let decision t txn = Hashtbl.find_opt t.decisions txn
let log_length t = Wal.length t.log

let decide t txn d =
  match Hashtbl.find_opt t.decisions txn with
  | Some existing -> existing
  | None ->
      (match d with
      | Committed ->
          (* The commit decision is the transaction's point of no return: it
             must be on stable storage before any participant is told to
             commit, or a coordinator crash could forget a half-propagated
             commit and later presume it aborted. *)
          Wal.append t.log (Wal.Commit txn);
          Wal.sync t.log;
          t.counters.commits <- t.counters.commits + 1
      | Aborted ->
          (* Presumed abort: the record is advisory (it speeds up termination
             queries) and never forced — losing it just means a resolver is
             answered by the no-information rule below. *)
          Wal.append t.log (Wal.Abort txn);
          t.counters.aborts <- t.counters.aborts + 1);
      Hashtbl.replace t.decisions txn d;
      d

let resolve t txn =
  t.counters.resolutions <- t.counters.resolutions + 1;
  match Hashtbl.find_opt t.decisions txn with
  | Some d -> d
  | None ->
      (* No decision on file. Presumed abort makes this answer binding: we
         record the abort first-writer-wins, so a decide [Committed] racing
         in later loses and the commit round degrades into an abort. This is
         how an in-doubt participant's query terminates a transaction whose
         coordinator stalled mid-protocol. *)
      t.counters.presumed_aborts <- t.counters.presumed_aborts + 1;
      decide t txn Aborted

let recover t =
  Hashtbl.reset t.decisions;
  ignore (Wal.repair t.log);
  List.iter
    (function
      | Wal.Commit txn -> Hashtbl.replace t.decisions txn Committed
      | Wal.Abort txn -> Hashtbl.replace t.decisions txn Aborted
      | _ -> ())
    (Wal.records t.log)
