open Repdir_key

type record =
  | Begin of Txn.id
  | Insert of Txn.id * Key.t * Version.t * Repdir_gapmap.Gapmap_intf.value
  | Coalesce of Txn.id * Bound.t * Bound.t * Version.t
  | Sync_apply of Txn.id * Repdir_gapmap.Gapmap_intf.sync_op list
  | Prepare of Txn.id * int
  | Commit of Txn.id
  | Abort of Txn.id
  | Recovery_marker
  | Checkpoint of checkpoint
  | Member_epoch of int * string
  | Shard_epoch of int * string

and checkpoint = {
  entries : (Key.t * Version.t * Repdir_gapmap.Gapmap_intf.value * Version.t) list;
  low_gap : Version.t;
}

let pp_record ppf = function
  | Begin id -> Format.fprintf ppf "begin %d" id
  | Insert (id, k, v, _) -> Format.fprintf ppf "insert[%d] %a:%a" id Key.pp k Version.pp v
  | Coalesce (id, lo, hi, v) ->
      Format.fprintf ppf "coalesce[%d] (%a,%a)->%a" id Bound.pp lo Bound.pp hi Version.pp v
  | Sync_apply (id, ops) -> Format.fprintf ppf "sync-apply[%d] (%d ops)" id (List.length ops)
  | Prepare (id, coord) -> Format.fprintf ppf "prepare %d (coord %d)" id coord
  | Recovery_marker -> Format.pp_print_string ppf "recovery-marker"
  | Commit id -> Format.fprintf ppf "commit %d" id
  | Abort id -> Format.fprintf ppf "abort %d" id
  | Checkpoint c -> Format.fprintf ppf "checkpoint (%d entries)" (List.length c.entries)
  | Member_epoch (e, _) -> Format.fprintf ppf "member-epoch %d" e
  | Shard_epoch (e, _) -> Format.fprintf ppf "shard-epoch %d" e

(* --- stable-storage framing ------------------------------------------------------ *)

(* Each record is persisted as a frame: the marshalled record plus an FNV-1a
   checksum of those bytes. The frame bytes — not the in-memory record — are
   what survives a crash, so storage faults injected into a frame genuinely
   corrupt what recovery sees. *)

type frame = { payload : string; crc : int64 }

let fnv1a = Repdir_util.Checksum.fnv1a

let frame_of_record (r : record) =
  let payload = Marshal.to_string r [] in
  { payload; crc = fnv1a payload }

let frame_valid f = Int64.equal (fnv1a f.payload) f.crc

let record_of_frame f : record = Marshal.from_string f.payload 0

type entry = { rec_ : record; frame : frame }

(* Injected storage failure modes for the *write* path: while armed, every
   append is refused. Unlike {!storage_fault} (damage discovered at crash
   time), an io fault is observed synchronously by the writer, which must
   turn it into a clean transaction abort rather than wedging. *)
type io_fault = Disk_full | Io_error

let pp_io_fault ppf = function
  | Disk_full -> Format.pp_print_string ppf "disk-full"
  | Io_error -> Format.pp_print_string ppf "io-error"

type t = {
  mutable log : entry list; (* newest first *)
  mutable len : int;
  mutable synced : int; (* oldest [synced] entries are forced to disk *)
  mutable io_fault : io_fault option;
  (* Derived metadata, maintained incrementally so the per-prepare checks
     ([committed], [ops_before_last_recovery]) cost O(1) instead of scanning
     the whole log. [epoch] counts [Recovery_marker]s; [op_epochs] remembers
     the epoch of each transaction's oldest operation record; [committed_set]
     holds every transaction with a [Commit] record. Rebuilt from scratch
     whenever the log itself is rewritten (repair, truncation, lost tail). *)
  mutable epoch : int;
  op_epochs : (Txn.id, int) Hashtbl.t;
  committed_set : (Txn.id, unit) Hashtbl.t;
}

let index_record t = function
  | Recovery_marker -> t.epoch <- t.epoch + 1
  | Insert (id, _, _, _) | Coalesce (id, _, _, _) | Sync_apply (id, _) ->
      if not (Hashtbl.mem t.op_epochs id) then Hashtbl.replace t.op_epochs id t.epoch
  | Commit id -> Hashtbl.replace t.committed_set id ()
  | Begin _ | Prepare _ | Abort _ | Checkpoint _ | Member_epoch _ | Shard_epoch _ -> ()

let rebuild_index t =
  t.epoch <- 0;
  Hashtbl.reset t.op_epochs;
  Hashtbl.reset t.committed_set;
  List.iter (fun e -> index_record t e.rec_) (List.rev t.log)

let create () =
  {
    log = [];
    len = 0;
    synced = 0;
    io_fault = None;
    epoch = 0;
    op_epochs = Hashtbl.create 64;
    committed_set = Hashtbl.create 64;
  }

let set_io_fault t f = t.io_fault <- f
let io_fault t = t.io_fault

let unchecked_append t r =
  t.log <- { rec_ = r; frame = frame_of_record r } :: t.log;
  t.len <- t.len + 1;
  index_record t r

let try_append t r =
  match t.io_fault with
  | Some f -> Error f
  | None ->
      unchecked_append t r;
      Ok ()

let append t r =
  (* Callers off the representative write paths (tests, replay fixtures) do
     not expect storage failures; fail loudly rather than drop the record. *)
  match try_append t r with
  | Ok () -> ()
  | Error f -> Format.kasprintf failwith "Wal.append under injected %a" pp_io_fault f

let sync t = t.synced <- t.len
let synced_length t = t.synced

let length t = t.len
let records t = List.rev_map (fun e -> e.rec_) t.log

let committed t id = Hashtbl.mem t.committed_set id

let ops_before_last_recovery t id =
  (* A transaction has pre-crash operation records iff its oldest op record
     was appended before the newest marker, i.e. in an earlier epoch. *)
  match Hashtbl.find_opt t.op_epochs id with
  | Some e when e < t.epoch -> not (committed t id)
  | Some _ | None -> false

let in_doubt t =
  let prepared = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e.rec_ with
      | Prepare (id, coord) ->
          if not (Hashtbl.mem prepared id) then Hashtbl.replace prepared id (Some coord)
      | Commit id | Abort id -> Hashtbl.replace prepared id None
      | Begin _ | Insert _ | Coalesce _ | Sync_apply _ | Recovery_marker | Checkpoint _
      | Member_epoch _ | Shard_epoch _ -> ())
    t.log;
  Hashtbl.fold
    (fun id pending acc -> match pending with Some coord -> (id, coord) :: acc | None -> acc)
    prepared []
  |> List.sort compare

(* Key-space footprint of a transaction's redo records, for re-holding its
   locks when recovery restores it as in doubt. One interval per record is
   coarse but safe: it covers at least what the pre-crash RepModify locks
   covered. *)
let write_ranges t txn =
  let span_of_ops ops =
    let bound_of = function
      | Repdir_gapmap.Gapmap_intf.Sync_put (k, _, _) | Repdir_gapmap.Gapmap_intf.Sync_del k ->
          Bound.Key k
      | Repdir_gapmap.Gapmap_intf.Sync_gap (b, _) -> b
    in
    match List.map bound_of ops with
    | [] -> None
    | b :: rest ->
        let lo = List.fold_left Bound.min b rest and hi = List.fold_left Bound.max b rest in
        Some (Bound.Interval.make lo hi)
  in
  List.filter_map
    (fun r ->
      match r with
      | Insert (id, k, _, _) when id = txn -> Some (Bound.Interval.point (Bound.Key k))
      | Coalesce (id, lo, hi, _) when id = txn -> Some (Bound.Interval.make lo hi)
      | Sync_apply (id, ops) when id = txn -> span_of_ops ops
      | _ -> None)
    (records t)

let last_member_epoch t =
  (* log is newest-first, so the first hit is the highest installed epoch
     (installation is monotone). *)
  List.find_map
    (fun e -> match e.rec_ with Member_epoch (ep, r) -> Some (ep, r) | _ -> None)
    t.log

let last_shard_epoch t =
  List.find_map
    (fun e -> match e.rec_ with Shard_epoch (ep, r) -> Some (ep, r) | _ -> None)
    t.log

let checkpoint_of_map entries ~gaps =
  let low_gap =
    match gaps with
    | (Bound.Low, _, v) :: _ -> v
    | _ -> invalid_arg "Wal.checkpoint_of_map: gaps must start at LOW"
  in
  (* Pair each entry with the version of the gap that follows it. *)
  let gap_after k =
    match
      List.find_opt (fun (l, _, _) -> Bound.equal l (Bound.Key k)) gaps
    with
    | Some (_, _, v) -> v
    | None -> invalid_arg "Wal.checkpoint_of_map: entry without following gap"
  in
  {
    entries = List.map (fun (k, v, value) -> (k, v, value, gap_after k)) entries;
    low_gap;
  }

let truncate_to_checkpoint t =
  (* log is newest-first: keep up to and including the first Checkpoint. *)
  let rec take acc = function
    | [] -> None
    | e :: rest -> (
        match e.rec_ with
        | Checkpoint _ -> Some (List.rev (e :: acc))
        | _ -> take (e :: acc) rest)
  in
  match take [] t.log with
  | None -> ()
  | Some kept ->
      (* [take] returns the kept entries newest-first, matching [log]. *)
      t.log <- kept;
      t.len <- List.length kept;
      (* Taking a checkpoint forces the log. *)
      t.synced <- t.len;
      rebuild_index t

(* --- storage fault injection ------------------------------------------------------ *)

type storage_fault =
  | Truncate_tail of int
  | Tear_tail
  | Corrupt_tail

let pp_storage_fault ppf = function
  | Truncate_tail k -> Format.fprintf ppf "truncate-tail(%d)" k
  | Tear_tail -> Format.pp_print_string ppf "torn-tail"
  | Corrupt_tail -> Format.pp_print_string ppf "corrupt-tail"

let rec drop_newest k log = if k <= 0 then log else match log with [] -> [] | _ :: r -> drop_newest (k - 1) r

let damage_tail t mutate =
  match t.log with
  | [] -> ()
  | e :: rest -> t.log <- { e with frame = mutate e.frame } :: rest

(* A crash can only hurt frames that were never forced to disk: anything at
   or below the [synced] watermark survived the last forced write, so every
   fault clamps to the unsynced suffix. This is the torn-write model of a
   real fsynced log — acknowledged commits are durable by construction. *)
let inject t fault =
  let unsynced = t.len - t.synced in
  match fault with
  | Truncate_tail k ->
      if k < 0 then invalid_arg "Wal.inject: negative truncation";
      let k = min k unsynced in
      t.log <- drop_newest k t.log;
      t.len <- t.len - k;
      rebuild_index t
  | Tear_tail when unsynced > 0 ->
      (* A torn write: only a prefix of the frame's bytes reached the disk;
         the checksum (written last) covers the full payload and no longer
         matches. *)
      damage_tail t (fun f ->
          { f with payload = String.sub f.payload 0 (String.length f.payload / 2) })
  | Corrupt_tail when unsynced > 0 ->
      damage_tail t (fun f ->
          let b = Bytes.of_string f.payload in
          let i = Bytes.length b / 2 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
          { f with payload = Bytes.to_string b })
  | Tear_tail | Corrupt_tail -> ()

let repair t =
  (* Scan frames oldest-first; the first bad checksum ends the readable
     prefix (everything after a torn write is unrecoverable in a real
     sequential log). Records are re-decoded from the frame bytes, so the
     surviving view is exactly what stable storage holds. *)
  let rec keep acc n = function
    | [] -> (acc, n, 0)
    | e :: rest ->
        if frame_valid e.frame then
          keep ({ rec_ = record_of_frame e.frame; frame = e.frame } :: acc) (n + 1) rest
        else (acc, n, 1 + List.length rest)
  in
  let kept_newest_first, len, dropped = keep [] 0 (List.rev t.log) in
  if dropped > 0 then begin
    t.log <- kept_newest_first;
    t.len <- len;
    t.synced <- min t.synced len;
    rebuild_index t
  end;
  dropped

let tail_valid t = match t.log with [] -> true | e :: _ -> frame_valid e.frame

(* --- group commit ------------------------------------------------------------- *)

(* Ticket/leader bookkeeping for coalescing concurrent force requests into a
   single [sync]. A "ticket" is simply the log length at request time: a
   record is durable once [synced_length] passes its ticket, so a follower
   never needs its own force — it only waits for the leader's. The timing
   side (the group window, and suspending the calling process) belongs to
   the representative, which owns the clock; this module only tracks who
   leads, who waits, and how many syncs were saved. *)
module Group = struct
  type outcome = Forced | Cancelled

  type group = {
    mutable armed : bool; (* a leader is holding the window open *)
    mutable waiters : (outcome -> unit) list; (* newest first *)
    mutable forces : int;
    mutable absorbed : int;
  }

  let create () = { armed = false; waiters = []; forces = 0; absorbed = 0 }
  let forces g = g.forces
  let absorbed g = g.absorbed
  let armed g = g.armed
  let lead g = g.armed <- true

  let enqueue g k =
    g.absorbed <- g.absorbed + 1;
    g.waiters <- k :: g.waiters

  let count_force g = g.forces <- g.forces + 1

  (* Close the window: wake every waiter in arrival order. [Forced] means the
     leader synced the log (covering every ticket issued so far); [Cancelled]
     means the representative crashed and waiters must re-check for
     themselves. *)
  let settle g outcome =
    g.armed <- false;
    (match outcome with Forced -> count_force g | Cancelled -> ());
    let ws = List.rev g.waiters in
    g.waiters <- [];
    List.iter (fun k -> k outcome) ws
end

module Replay (M : Repdir_gapmap.Gapmap_intf.S) = struct
  let replay ?(decided = fun _ -> false) t =
    let map = M.create () in
    let recs = records t in
    let prepared id =
      List.exists (fun e -> match e.rec_ with Prepare (id', _) -> id' = id | _ -> false) t.log
    in
    let is_committed id = committed t id || (prepared id && decided id) in
    let restore_checkpoint (c : checkpoint) =
      (* Checkpoints replace all prior state. *)
      ignore (M.coalesce map ~lo:Bound.Low ~hi:Bound.High Version.lowest);
      List.iter (fun (k, v, value, _) -> M.insert map k v value) c.entries;
      M.set_gap_after map Bound.Low c.low_gap;
      List.iter (fun (k, _, _, gap_after) -> M.set_gap_after map (Bound.Key k) gap_after) c.entries
    in
    List.iter
      (fun r ->
        match r with
        | Checkpoint c -> restore_checkpoint c
        | Insert (id, k, v, value) when is_committed id -> M.insert map k v value
        | Coalesce (id, lo, hi, v) when is_committed id ->
            ignore (M.coalesce map ~lo ~hi v)
        | Sync_apply (id, ops) when is_committed id ->
            List.iter (M.apply_sync_op map) ops
        | Begin _ | Prepare _ | Commit _ | Abort _ | Insert _ | Coalesce _
        | Sync_apply _ | Recovery_marker | Member_epoch _ | Shard_epoch _ -> ())
      recs;
    map

  (* Re-apply one transaction's redo records to a live map — the deferred
     commit of a recovery-restored in-doubt transaction. Sound only because
     the transaction's write ranges stayed locked since recovery, so no
     later transaction has touched them. *)
  let redo t txn map =
    List.iter
      (fun r ->
        match r with
        | Insert (id, k, v, value) when id = txn -> M.insert map k v value
        | Coalesce (id, lo, hi, v) when id = txn -> ignore (M.coalesce map ~lo ~hi v)
        | Sync_apply (id, ops) when id = txn -> List.iter (M.apply_sync_op map) ops
        | Begin _ | Prepare _ | Commit _ | Abort _ | Insert _ | Coalesce _ | Sync_apply _
        | Recovery_marker | Checkpoint _ | Member_epoch _ | Shard_epoch _ -> ())
      (records t)
end
