(** Two-phase-commit coordinator state: the decision log.

    Replaces the former [Commit_registry] magic cell with the real thing a
    presumed-abort coordinator keeps — a write-ahead log of its own in which
    commit decisions are forced before any participant is acknowledged, plus
    a volatile index over it. The protocol rules:

    - {!decide} is first-writer-wins. A [Committed] decision is appended to
      the log and forced before it is returned; an [Aborted] decision is
      recorded but never forced (presumed abort: no stable record is needed,
      absence of information already means abort).
    - {!resolve} answers a termination query from an in-doubt participant.
      If no decision is on file, the query itself decides [Aborted]
      (first-writer-wins), so a coordinator that stalled between prepare and
      decide loses the race and its late commit attempt degrades into an
      abort — the classical presumed-abort amnesia rule, made safe because a
      commit decision cannot exist without being logged first.

    The coordinator's integer [id] is its network node; participants persist
    it in their [Prepare] WAL frames so crash recovery knows whom to ask. *)

type decision = Committed | Aborted

val pp_decision : Format.formatter -> decision -> unit

type counters = {
  mutable commits : int;  (** commit decisions logged *)
  mutable aborts : int;  (** abort decisions recorded (incl. presumed) *)
  mutable resolutions : int;  (** termination queries served *)
  mutable presumed_aborts : int;
      (** termination queries answered by the no-information rule *)
}

type t

val create : ?id:int -> unit -> t
(** [id] (default -1) is the coordinator's network node id, stamped into
    participants' [Prepare] records. *)

val id : t -> int
val counters : t -> counters

val decide : t -> Txn.id -> decision -> decision
(** Record the decision unless one exists; returns the winning decision.
    [Committed] is durable (force-logged) before this returns. *)

val decision : t -> Txn.id -> decision option

val resolve : t -> Txn.id -> decision
(** Termination query. Answers the logged decision, or — when there is
    none — decides [Aborted] by the presumed-abort rule and answers that.
    The answer is binding either way. *)

val recover : t -> unit
(** Rebuild the volatile decision index from the log's checksum-valid
    prefix. Unforced abort records may be lost; forced commit decisions
    survive, so recovery can never flip a commit into a presumed abort. *)

val log_length : t -> int
