(** Transaction identities and lifecycle.

    The paper assumes "a flexible underlying transaction mechanism" (§1);
    this module provides its client-visible core: globally unique transaction
    ids ordered by age (used for deadlock victim selection), a status
    table, and the exceptions through which aborts propagate. The
    per-representative machinery (undo logs, write-ahead log) lives in
    {!Undo} and {!Wal}; the two-phase-commit decision log lives in
    {!Coordinator}. *)

type id = int

type status = Active | Committed | Aborted

(** Why a transaction aborted. *)
type abort_reason =
  | Deadlock of id list  (** waits-for cycle, victim is this transaction *)
  | Unavailable of string  (** could not collect a quorum *)
  | User  (** explicit abort *)

exception Abort of abort_reason
(** Raised from inside transactional code to unwind to the transaction
    boundary; the executor translates it into an abort. *)

val pp_abort_reason : Format.formatter -> abort_reason -> unit

(** Issues ids and tracks status. One manager per simulated world. *)
module Manager : sig
  type t

  val create : unit -> t

  val begin_txn : t -> id
  (** Ids are strictly increasing; a larger id means a younger transaction. *)

  val status : t -> id -> status
  (** Unknown ids raise [Invalid_argument]. *)

  val commit : t -> id -> unit
  (** Raises [Invalid_argument] unless the transaction is [Active]. *)

  val abort : t -> id -> unit
  (** Raises [Invalid_argument] unless the transaction is [Active]. *)

  val active : t -> id list
  val count : t -> int
end
