(** Write-ahead log for one directory representative.

    Simulates the stable storage the paper assumes each representative's
    transactional storage system provides. Mutating operations append redo
    records before being applied; commit and abort append outcome records.
    After a crash (volatile state lost) the representative's gap map is
    rebuilt by {!replay}: starting from the most recent checkpoint, the redo
    records of committed transactions are re-applied in log order. Strict
    two-phase locking guarantees that records of different transactions that
    touch intersecting ranges appear in serialization order, so redo-only
    replay of committed transactions reconstructs exactly the committed
    state.

    Each record is persisted as a checksummed frame (marshalled bytes +
    FNV-1a checksum), and storage faults can be injected at the tail with
    {!inject} — a torn final write, a corrupted byte, frames that never
    reached the disk. {!repair} models what recovery reads back: the longest
    checksum-valid prefix, re-decoded from the frame bytes. Because a
    transaction's effects replay only when its [Commit] frame survives,
    repair always recovers exactly a committed prefix of history. *)

open Repdir_key

type record =
  | Begin of Txn.id
  | Insert of Txn.id * Key.t * Version.t * Repdir_gapmap.Gapmap_intf.value
  | Coalesce of Txn.id * Bound.t * Bound.t * Version.t
  | Sync_apply of Txn.id * Repdir_gapmap.Gapmap_intf.sync_op list
      (** Anti-entropy merge plan applied to this representative; replays by
          re-running the primitive ops in order. *)
  | Prepare of Txn.id * int
      (** Two-phase commit vote: the transaction's effects are durable and
          its outcome is delegated to the coordinator's decision record. The
          second field is the coordinator's network node id, so crash
          recovery knows whom to query for the outcome. *)
  | Commit of Txn.id
  | Abort of Txn.id
  | Recovery_marker
      (** Appended when the representative finishes crash recovery: records
          written before the marker belong to a previous incarnation whose
          volatile state (locks, undo logs, in-memory effects of active
          transactions) was lost. *)
  | Checkpoint of checkpoint
  | Member_epoch of int * string
      (** Durable membership-epoch installation: the fencing epoch together
          with the encoded membership record it came from. Named to avoid
          confusion with the log's internal recovery epochs (the
          [Recovery_marker] counter). Recovery restores the newest one;
          {!truncate_to_checkpoint} callers must re-append it. *)
  | Shard_epoch of int * string
      (** Durable shard-map-epoch installation: the sharding fence epoch with
          the encoded shard map it came from — the exact analogue of
          [Member_epoch] for the multi-group directory's ownership map.
          Recovery restores the newest one; {!truncate_to_checkpoint} callers
          must re-append it. *)

and checkpoint = {
  entries : (Key.t * Version.t * Repdir_gapmap.Gapmap_intf.value * Version.t) list;
      (** key, entry version, value, gap-after version — ascending keys *)
  low_gap : Version.t;
}

val pp_record : Format.formatter -> record -> unit

type t

val create : unit -> t

(** Injected write-path failure: while armed, appends are refused. Distinct
    from {!storage_fault}, which damages already-written frames and is only
    discovered at crash recovery — an io fault is observed synchronously by
    the writer, which must abort the transaction cleanly and keep serving. *)
type io_fault = Disk_full | Io_error

val pp_io_fault : Format.formatter -> io_fault -> unit

val set_io_fault : t -> io_fault option -> unit
(** Arm ([Some f]) or heal ([None]) the injected write failure. *)

val io_fault : t -> io_fault option

val try_append : t -> record -> (unit, io_fault) result
(** Append one record, or report the injected fault without writing
    anything. The representative write paths use this and translate
    [Error _] into a transaction abort. *)

val append : t -> record -> unit
(** Like {!try_append} but for callers with no storage-failure story
    (tests, fixtures): raises [Failure _] if an io fault is armed. *)

val sync : t -> unit
(** Force every appended frame to disk. Records below this watermark are
    durable: crash-time {!inject} faults can only damage the unsynced
    suffix, exactly as torn writes on a real fsynced log only hurt bytes
    written since the last forced write. Representatives force the log
    before acknowledging a prepare or commit. *)

val synced_length : t -> int
(** Number of records known durable (≤ {!length}). *)

val length : t -> int
val records : t -> record list
(** Oldest first. *)

val committed : t -> Txn.id -> bool
(** Whether a [Commit] record exists for the transaction. O(1): answered
    from an index maintained on append, not by scanning the log. *)

val ops_before_last_recovery : t -> Txn.id -> bool
(** True if the transaction has operation records older than the most recent
    {!Recovery_marker} and no outcome yet: the representative lost that
    transaction's volatile effects in a crash, so it must refuse to prepare
    or commit it. O(1) — this runs on every prepare, so it must not scan. *)

val in_doubt : t -> (Txn.id * int) list
(** Transactions with a [Prepare] record but no [Commit]/[Abort] record,
    each with the coordinator node recorded at prepare time: their outcome
    must be resolved by the termination protocol (ask the coordinator, then
    peers). Sorted by transaction id. *)

val write_ranges : t -> Txn.id -> Bound.Interval.t list
(** Closed key intervals covering the transaction's redo records (one per
    record, possibly overlapping) — the RepModify footprint recovery must
    re-lock when it restores the transaction as in doubt. *)

val last_member_epoch : t -> (int * string) option
(** The newest [Member_epoch] record — the membership epoch a recovering
    representative must resume fencing at. *)

val last_shard_epoch : t -> (int * string) option
(** The newest [Shard_epoch] record — the shard-map epoch a recovering
    representative must resume fencing at. *)

val checkpoint_of_map : (Key.t * Version.t * Repdir_gapmap.Gapmap_intf.value) list
                        -> gaps:(Bound.t * Bound.t * Version.t) list
                        -> checkpoint
(** Package a gap map's [entries]/[gaps] views into a checkpoint record. *)

val truncate_to_checkpoint : t -> unit
(** Discard everything before the most recent [Checkpoint]; no-op if none. *)

(* --- storage fault injection ---------------------------------------------------- *)

(** Damage applied to the persistent image of the log at crash time. *)
type storage_fault =
  | Truncate_tail of int
      (** The last [k] frames never reached the disk (lost buffered writes). *)
  | Tear_tail
      (** The final frame was only partially written; its checksum fails. *)
  | Corrupt_tail  (** A byte of the final frame flipped; its checksum fails. *)

val pp_storage_fault : Format.formatter -> storage_fault -> unit

val inject : t -> storage_fault -> unit
(** Mutate the persistent frames. The in-memory decoded view is refreshed
    only by {!repair} (which crash recovery must run first). *)

val repair : t -> int
(** Validate every frame oldest-first and truncate the log at the first
    invalid one; returns the number of records dropped (0 for a healthy
    log). Surviving records are re-decoded from their frame bytes. *)

val tail_valid : t -> bool
(** Whether the final frame's checksum verifies (true for an empty log). *)

(** Ticket/leader bookkeeping for WAL group commit: concurrent transactions'
    force requests at one representative coalesce into a single {!sync}.

    A ticket is the log {!length} at request time; a record is durable once
    {!synced_length} reaches its ticket. The first force request with
    undurable records becomes the {e leader}: it calls {!lead}, holds a
    group window open (the representative owns the clock and the process
    suspension), then syncs and calls {!settle}. Force requests arriving
    while {!armed} are {e followers}: they {!enqueue} a wake-up callback and
    block; the leader's [settle Forced] covers their tickets. [settle
    Cancelled] (crash) wakes waiters without counting a force; each must
    re-check its ticket against the recovered log. *)
module Group : sig
  type outcome = Forced | Cancelled

  type group

  val create : unit -> group

  val armed : group -> bool
  val lead : group -> unit

  val enqueue : group -> (outcome -> unit) -> unit
  (** Register a follower's wake-up; bumps the absorbed counter. *)

  val settle : group -> outcome -> unit
  (** Disarm and wake every waiter in arrival order. [Forced] bumps the
      force counter. *)

  val count_force : group -> unit
  (** Record a force issued outside the leader protocol (no window
      configured, or a lone leader with no followers still forces once). *)

  val forces : group -> int
  (** Syncs actually issued through the group. *)

  val absorbed : group -> int
  (** Force requests that rode on another transaction's sync. *)
end

(** Rebuild a concrete gap map from the log. *)
module Replay (M : Repdir_gapmap.Gapmap_intf.S) : sig
  val replay : ?decided:(Txn.id -> bool) -> t -> M.t
  (** Fresh map holding exactly the committed state: a transaction's records
      apply when the log holds its [Commit], or when it is prepared and
      [decided] (the coordinator's verdict; default: nobody) says
      committed. *)

  val redo : t -> Txn.id -> M.t -> unit
  (** Apply one transaction's redo records, in log order, to an existing
      map: the deferred commit of a recovery-restored in-doubt transaction.
      Only sound while the transaction's {!write_ranges} have stayed locked
      since the map was rebuilt. *)
end
