open Repdir_util
open Repdir_key
open Repdir_sim
open Repdir_rep
open Repdir_core
open Repdir_sync

(* --- pointwise divergence metrics ---------------------------------------------- *)

(* Version at a single key from a representative's inspection views: its
   entry version, or the version of the gap the key falls in. *)
let version_at entries gaps k =
  match List.find_opt (fun (k', _, _) -> Key.equal k k') entries with
  | Some (_, v, _) -> v
  | None -> (
      let bk = Bound.Key k in
      match
        List.find_opt
          (fun (lo, hi, _) -> Bound.compare lo bk < 0 && Bound.compare bk hi < 0)
          gaps
      with
      | Some (_, _, g) -> g
      | None -> Version.lowest)

(* Number of (key, version, value) triples present in one representative but
   not the other — the size of the pointwise entry difference the sync layer
   must move to reconcile them. *)
let entry_divergence a b =
  let index r =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (k, v, value) -> Hashtbl.replace tbl k (v, value)) (Rep.entries r);
    tbl
  in
  let ta = index a and tb = index b in
  let d = ref 0 in
  let one_way ta tb =
    Hashtbl.iter (fun k s -> if Hashtbl.find_opt tb k <> Some s then incr d) ta
  in
  one_way ta tb;
  one_way tb ta;
  !d

(* Total entries lagging the suite-wide maximum version of their key, summed
   over live representatives — the staleness a read quorum has to paper over. *)
let stale_entries reps =
  let vmax = Hashtbl.create 64 in
  let live = Array.to_list reps |> List.filter (fun r -> not (Rep.is_crashed r)) in
  List.iter
    (fun r ->
      List.iter
        (fun (k, v, _) ->
          match Hashtbl.find_opt vmax k with
          | Some v0 when Version.compare v0 v >= 0 -> ()
          | _ -> Hashtbl.replace vmax k v)
        (Rep.entries r))
    live;
  let stale = ref 0 in
  List.iter
    (fun r ->
      let entries = Rep.entries r and gaps = Rep.gaps r in
      Hashtbl.iter
        (fun k v -> if Version.compare (version_at entries gaps k) v < 0 then incr stale)
        vmax)
    live;
  !stale

let all_digests_equal reps =
  let digests =
    Array.to_list reps
    |> List.filter (fun r -> not (Rep.is_crashed r))
    |> List.map Rep.root_digest
  in
  match digests with
  | [] -> true
  | d :: rest ->
      List.for_all
        (fun (d' : Repdir_gapmap.Gapmap_intf.digest) ->
          Int64.equal d.hash d'.hash && d.n_entries = d'.n_entries)
        rest

(* --- partition-then-heal convergence campaign ----------------------------------- *)

type outcome = {
  seed : int64;
  victim : int;
  directory_size : int;
  diverged_entries : int;
  converged : bool;
  heal_to_converged : float;
  entries_sent : int;
  digest_rpcs : int;
  pull_rpcs : int;
  sessions : int;
  sessions_failed : int;
  ghosts_kept : int;
  sim_events : int;
}

let convergence ?(seed = 1983L) ?(config = Repdir_quorum.Config.simple ~n:3 ~r:2 ~w:2)
    ?(n_entries = 120) ?(partition_writes = 12) ?sync_config ?(deadline = 1500.0) () =
  let n = Repdir_quorum.Config.n_reps config in
  let sync_config =
    match sync_config with
    | Some c -> c
    | None ->
        (* Small leaf ranges keep each pull tight around the actual
           divergence, which is what lets the O(diff) assertion hold with a
           wide margin; the price is a few more digest rounds. *)
        { Sync.period = 25.0; arity = 4; leaf_entries = 2 }
  in
  (* Single RPC attempts and single-phase commit, the paper's defaults: a
     call into the partition fails after one timeout instead of a retry
     storm, and a write commits on the surviving quorum even though the
     transaction brushed the unreachable victim (two-phase commit would
     conservatively abort it, since a timed-out participant might still
     execute a delayed request later). Client-level retries re-run failed
     operations against fresh quorums. *)
  let world =
    Sim_world.create ~seed ~rpc_timeout:10.0 ~rpc_attempts:1 ~n_clients:1 ~config ()
  in
  let sim = Sim_world.sim world in
  let net = Sim_world.net world in
  let reps = Sim_world.reps world in
  let sync = Sim_world.start_sync ~config:sync_config world in
  (* The background actor stays off until the heal, so the post-heal counter
     deltas measure exactly the partition-repair traffic. *)
  Sync.set_enabled sync false;
  let suite = Sim_world.suite_for_client ~sync world 0 in
  let rng = Rng.create (Int64.add seed 3L) in
  let retry_rng = Rng.create (Int64.add seed 4L) in
  let victim = Rng.int rng n in
  let diverged = ref 0 in
  let heal_time = ref 0.0 in
  let presync_ok = ref false in
  let converged_at = ref None in
  let baseline = ref (0, 0, 0, 0, 0, 0) in
  let retried f =
    Suite.with_retries ~attempts:4 ~backoff:2.0 ~sleep:(Sim.sleep sim) ~rng:retry_rng f
  in
  Sim.spawn sim (fun () ->
      (* Build the directory while the suite is healthy. *)
      for k = 0 to n_entries - 1 do
        (try ignore (retried (fun () -> Suite.insert suite (Key.of_int k) (Printf.sprintf "v%d" k)))
         with Suite.Unavailable _ | Repdir_txn.Txn.Abort _ -> ());
        Sim.sleep sim 1.0
      done;
      (* Quorum writes (w < n) scatter entries, so the representatives
         already diverge. Reconcile with explicit full-mesh rounds until the
         digests agree: the partition-repair measurement then starts from
         identical replicas. *)
      let tries = ref 0 in
      while (not (all_digests_equal reps)) && !tries < 12 do
        incr tries;
        Sync.round_all_pairs sync;
        Sim.sleep sim 1.0
      done;
      presync_ok := all_digests_equal reps;
      (* Isolate the victim from every other node (reps, client, syncer). *)
      let everyone_else =
        List.filter (fun j -> j <> victim) (List.init (Net.n_nodes net) Fun.id)
      in
      Net.partition net [ victim ] everyone_else;
      (* Client writes the victim cannot see: updates, fresh inserts and
         deletes, so reconciliation must install, overwrite and coalesce. *)
      for w = 0 to partition_writes - 1 do
        let key = Key.of_int (Rng.int rng (n_entries + (n_entries / 4))) in
        let value = Printf.sprintf "p%d" w in
        (try
           retried (fun () ->
               match Rng.int rng 4 with
               | 0 | 1 -> ignore (Suite.insert suite key value)
               | 2 -> ignore (Suite.update suite key value)
               | _ -> ignore (Suite.delete suite key))
         with Suite.Unavailable _ | Repdir_txn.Txn.Abort _ -> ());
        Sim.sleep sim 2.0
      done;
      Net.heal_partition net;
      heal_time := Sim.now sim;
      let healthy = if victim = 0 then 1 else 0 in
      diverged := entry_divergence reps.(victim) reps.(healthy);
      let c = Sync.counters sync in
      baseline :=
        ( c.Sync.entries_sent,
          c.Sync.digest_rpcs,
          c.Sync.pull_rpcs,
          c.Sync.sessions,
          c.Sync.sessions_failed,
          c.Sync.ghosts_kept );
      (* From here on: zero client traffic. Only the background actor runs,
         with [deadline] virtual time units to converge the suite. *)
      Sync.set_enabled sync true;
      let cutoff = Sim.now sim +. deadline in
      let rec poll () =
        if all_digests_equal reps then converged_at := Some (Sim.now sim)
        else if Sim.now sim < cutoff then begin
          Sim.sleep sim 5.0;
          poll ()
        end
      in
      poll ();
      Sync.stop sync);
  Sim.run sim;
  let c = Sync.counters sync in
  let b_sent, b_digests, b_pulls, b_sessions, b_failed, b_ghosts = !baseline in
  {
    seed;
    victim;
    directory_size = Array.fold_left (fun acc r -> max acc (Rep.size r)) 0 reps;
    diverged_entries = !diverged;
    converged = !presync_ok && Option.is_some !converged_at;
    heal_to_converged =
      (match !converged_at with Some t -> t -. !heal_time | None -> Float.nan);
    entries_sent = c.Sync.entries_sent - b_sent;
    digest_rpcs = c.Sync.digest_rpcs - b_digests;
    pull_rpcs = c.Sync.pull_rpcs - b_pulls;
    sessions = c.Sync.sessions - b_sessions;
    sessions_failed = c.Sync.sessions_failed - b_failed;
    ghosts_kept = c.Sync.ghosts_kept - b_ghosts;
    sim_events = Sim.events_executed sim;
  }

let table_of_outcomes outcomes =
  let t =
    Table.create
      ~header:
        [
          "seed";
          "victim";
          "size";
          "diverged";
          "converged";
          "heal->sync";
          "sent";
          "digests";
          "pulls";
          "sessions";
          "failed";
          "events";
        ]
      ()
  in
  List.iter
    (fun o ->
      Table.add_row t
        [
          Int64.to_string o.seed;
          Table.cell_int o.victim;
          Table.cell_int o.directory_size;
          Table.cell_int o.diverged_entries;
          (if o.converged then "yes" else "NO");
          (if o.converged then Table.cell_float o.heal_to_converged else "-");
          Table.cell_int o.entries_sent;
          Table.cell_int o.digest_rpcs;
          Table.cell_int o.pull_rpcs;
          Table.cell_int o.sessions;
          Table.cell_int o.sessions_failed;
          Table.cell_int o.sim_events;
        ])
    outcomes;
  t

let campaign ?(seeds = [ 1983L; 2024L; 7L; 42L; 1011L ]) ?config ?n_entries
    ?partition_writes ?sync_config ?deadline () =
  List.map
    (fun seed ->
      convergence ~seed ?config ?n_entries ?partition_writes ?sync_config ?deadline ())
    seeds

(* --- staleness / bytes-exchanged sweep ------------------------------------------ *)

type staleness_row = {
  st_period : float;
  st_mean_stale : float;
  st_end_stale : int;
  st_counters : Sync.counters;
  st_digests_equal : bool;
  st_orphan_locks : int;
  st_indoubt_open : int;
}

(* How does the anti-entropy period trade repair traffic against staleness?
   Steady client writes with a repeating partition cycle; the actor runs
   throughout at the given period. Staleness is sampled at fixed virtual
   times; at the end traffic stops and the actor gets a grace window in
   which it must converge the suite. *)
let staleness_row ?(seed = 1983L) ?(config = Repdir_quorum.Config.simple ~n:3 ~r:2 ~w:2)
    ?(lease = 60.0) ?(power_cycle = false) ~period ~duration () =
  let n = Repdir_quorum.Config.n_reps config in
  let grace = 60.0 +. (4.0 *. period) +. lease +. 30.0 in
  let world =
    Sim_world.create ~seed ~rpc_timeout:10.0 ~rpc_attempts:1
      ~n_clients:1 ~lease ~config ()
  in
  let sim = Sim_world.sim world in
  let net = Sim_world.net world in
  let reps = Sim_world.reps world in
  let sync =
    Sim_world.start_sync
      ~config:{ Sync.default_config with period }
      ~until:(duration +. grace) world
  in
  let suite = Sim_world.suite_for_client ~sync world 0 in
  let rng = Rng.create (Int64.add seed 5L) in
  let retry_rng = Rng.create (Int64.add seed 6L) in
  let key_space = 50 in
  (* Client: steady random writes until [duration]. *)
  Sim.spawn sim (fun () ->
      let i = ref 0 in
      while Sim.now sim < duration do
        incr i;
        let key = Key.of_int (Rng.int rng key_space) in
        let value = Printf.sprintf "s%d" !i in
        (try
           Suite.with_retries ~attempts:3 ~backoff:2.0 ~sleep:(Sim.sleep sim)
             ~rng:retry_rng (fun () ->
               match Rng.int rng 4 with
               | 0 | 1 -> ignore (Suite.insert suite key value)
               | 2 -> ignore (Suite.update suite key value)
               | _ -> ignore (Suite.delete suite key))
         with Suite.Unavailable _ | Repdir_txn.Txn.Abort _ -> ());
        Sim.sleep sim (Rng.exponential rng ~mean:4.0)
      done);
  (* Nemesis: repeatedly cut one representative off for a window. *)
  Sim.spawn sim (fun () ->
      let frng = Rng.create (Int64.add seed 7L) in
      while Sim.now sim < duration do
        Sim.sleep sim 60.0;
        if Sim.now sim < duration then begin
          let victim = Rng.int frng n in
          let everyone_else =
            List.filter (fun j -> j <> victim) (List.init (Net.n_nodes net) Fun.id)
          in
          Net.partition net [ victim ] everyone_else;
          Sim.sleep sim 45.0;
          (* A representative cut off mid-transaction is left holding range
             locks for a coordinator that already gave up on it. The lease
             machinery now terminates those transactions in place: an
             unprepared one lease-expires into a unilateral abort (locks
             released), a prepared one goes in doubt and resolves once the
             partition heals. [power_cycle] keeps the retired workaround —
             restart the isolated node before rejoining so volatile locks
             are dropped wholesale — for A/B comparison against the
             termination protocol. *)
          if power_cycle then begin
            Sim_world.crash_rep world victim;
            Sim_world.recover_rep world victim
          end;
          Net.heal_partition net
        end
      done;
      Net.heal_partition net);
  (* Sampler: staleness at fixed virtual times. *)
  let samples = ref [] in
  Sim.spawn sim (fun () ->
      while Sim.now sim < duration do
        Sim.sleep sim 25.0;
        samples := stale_entries reps :: !samples
      done);
  Sim.run sim;
  let c = Sync.counters sync in
  let mean_stale =
    match !samples with
    | [] -> 0.0
    | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  (* Repair signals at the end of the run: [stale_entries] counts entries
     some representative still holds at an out-of-date version — the actor
     must drive this to zero in the grace window. Root digests can stay
     unequal even then: a delete-heavy workload parks mutually dominated
     ghosts (see DESIGN.md, "Ghosts and the representability limit"), which
     version dominance hides from every read. Orphaned locks and open
     in-doubt transactions must both be zero — residue means the
     termination protocol failed to clean up after a partition. *)
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
  {
    st_period = period;
    st_mean_stale = mean_stale;
    st_end_stale = stale_entries reps;
    st_counters = c;
    st_digests_equal = all_digests_equal reps;
    st_orphan_locks = sum Rep.locks_held + sum Rep.lock_waiters;
    st_indoubt_open = sum Rep.in_doubt_count;
  }

let staleness_sweep ?seed ?config ?lease ?power_cycle
    ?(periods = [ 10.0; 30.0; 100.0; 300.0 ]) ?(duration = 900.0) () =
  List.map
    (fun period -> staleness_row ?seed ?config ?lease ?power_cycle ~period ~duration ())
    periods

let table_of_staleness_rows rows =
  let t =
    Table.create
      ~header:
        [
          "period"; "mean stale"; "end stale"; "sessions"; "failed"; "digests"; "pulls";
          "sent"; "digests eq"; "orphans"; "in-doubt";
        ]
      ()
  in
  List.iter
    (fun row ->
      let c = row.st_counters in
      Table.add_row t
        [
          Table.cell_float row.st_period;
          Table.cell_float row.st_mean_stale;
          Table.cell_int row.st_end_stale;
          Table.cell_int c.Sync.sessions;
          Table.cell_int c.Sync.sessions_failed;
          Table.cell_int c.Sync.digest_rpcs;
          Table.cell_int c.Sync.pull_rpcs;
          Table.cell_int c.Sync.entries_sent;
          (if row.st_digests_equal then "yes" else "no");
          Table.cell_int row.st_orphan_locks;
          Table.cell_int row.st_indoubt_open;
        ])
    rows;
  t

let staleness_table ?seed ?config ?lease ?power_cycle ?periods ?duration () =
  table_of_staleness_rows
    (staleness_sweep ?seed ?config ?lease ?power_cycle ?periods ?duration ())
