open Repdir_util
open Repdir_key
open Repdir_sim
open Repdir_core
module Wal = Repdir_txn.Wal
module Rep = Repdir_rep.Rep
module Member = Repdir_member.Member
module Sync = Repdir_sync.Sync
module Config = Repdir_quorum.Config
module Picker = Repdir_quorum.Picker
module Shard_map = Repdir_shard.Shard_map
module Router = Repdir_shard.Router

(* --- fault-plan DSL ---------------------------------------------------------------- *)

type action =
  | Crash of int
  | Recover of int
  | Torn_crash of int * Wal.storage_fault
  | Partition of int list * int list
  | Heal
  | Flaky of Net.faults
  | Flaky_link of int * int * Net.faults
  | Steady
  | Clock_skew of int * float * float
      (* rep, offset, rate: its virtual clock reads offset + rate * now;
         (0, 1) restores the true clock *)
  | Disk_full of int * Wal.io_fault option
      (* arm (Some fault) or heal (None) the rep's WAL write failure *)
  | Slow of int * float
      (* gray failure: every link touching the rep multiplies its latency by
         the factor — the node stays up and answers everything, just late *)

type step = { at : float; action : action }

type plan = { plan_name : string; duration : float; steps : step list }

let pp_action ppf = function
  | Crash i -> Format.fprintf ppf "crash rep%d" i
  | Recover i -> Format.fprintf ppf "recover rep%d" i
  | Torn_crash (i, f) ->
      Format.fprintf ppf "crash rep%d with %a" i Wal.pp_storage_fault f
  | Partition (a, b) ->
      let side ppf g =
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
          Format.pp_print_int ppf g
      in
      Format.fprintf ppf "partition {%a} | {%a}" side a side b
  | Heal -> Format.pp_print_string ppf "heal partitions"
  | Flaky _ -> Format.pp_print_string ppf "flaky links (all)"
  | Flaky_link (a, b, _) -> Format.fprintf ppf "flaky link %d-%d" a b
  | Steady -> Format.pp_print_string ppf "steady network"
  | Clock_skew (i, 0.0, 1.0) -> Format.fprintf ppf "restore rep%d clock" i
  | Clock_skew (i, offset, rate) ->
      Format.fprintf ppf "skew rep%d clock (offset %+.1f, rate %.2fx)" i offset rate
  | Disk_full (i, Some f) -> Format.fprintf ppf "arm %a at rep%d" Wal.pp_io_fault f i
  | Disk_full (i, None) -> Format.fprintf ppf "heal disk at rep%d" i
  | Slow (i, factor) -> Format.fprintf ppf "slow rep%d (%.0fx latency)" i factor

(* --- standard plans ----------------------------------------------------------------- *)

(* Builders draw every choice from a generator seeded by the caller, so a
   plan is a pure function of (seed, n, duration) and runs replay exactly. *)

let crash_storm ~n ~duration ~seed =
  let rng = Rng.create seed in
  let steps = ref [] in
  let t = ref 30.0 in
  while !t < duration -. 60.0 do
    (* A wave: each representative independently crashes with probability
       0.45, staggered a little; everyone recovers before the next wave. *)
    let hold = 20.0 +. Rng.float rng 20.0 in
    for i = 0 to n - 1 do
      if Rng.float rng 1.0 < 0.45 then begin
        let jitter = Rng.float rng 4.0 in
        steps := { at = !t +. jitter; action = Crash i } :: !steps;
        steps := { at = !t +. hold +. Rng.float rng 6.0; action = Recover i } :: !steps
      end
    done;
    t := !t +. hold +. 25.0 +. Rng.float rng 20.0
  done;
  { plan_name = "crash storm"; duration; steps = List.rev !steps }

let rolling_partition ~n ~duration ~seed =
  let rng = Rng.create seed in
  let client = n (* the single client sits on the node after the reps *) in
  let steps = ref [] in
  let t = ref 25.0 in
  let cycle = ref 0 in
  while !t < duration -. 50.0 do
    let window = 25.0 +. Rng.float rng 20.0 in
    let i = !cycle mod n in
    let rest = List.filter (fun j -> j <> i) (List.init n Fun.id) in
    (* Usually isolate one representative from everyone (client included) —
       the suite must keep going on the remaining quorum. Every third cycle,
       trap the client alone with that representative instead: no quorum is
       reachable, every operation must fail cleanly, and healing must leave
       no split-brain. *)
    let groups =
      if !cycle mod 3 = 2 then ([ client; i ], rest) else ([ i ], client :: rest)
    in
    steps := { at = !t; action = Partition (fst groups, snd groups) } :: !steps;
    steps := { at = !t +. window; action = Heal } :: !steps;
    incr cycle;
    t := !t +. window +. 10.0 +. Rng.float rng 10.0
  done;
  { plan_name = "rolling partition"; duration; steps = List.rev !steps }

let flaky_links ~n ~duration ~seed =
  let rng = Rng.create seed in
  let gremlin =
    {
      Net.drop = 0.05;
      duplicate = 0.12;
      reorder = 0.25;
      reorder_delay = 10.0;
      spike = 0.05;
      spike_factor = 4.0;
    }
  in
  let client = n (* the single client sits on the node after the reps *) in
  let steps = ref [] in
  let t = ref 20.0 in
  let phase = ref 0 in
  while !t < duration -. 40.0 do
    let window = 40.0 +. Rng.float rng 20.0 in
    (* Alternate network-wide gremlins with a single very lossy client
       link — the per-link override path. *)
    (if !phase mod 2 = 0 then steps := { at = !t; action = Flaky gremlin } :: !steps
     else
       let victim = Rng.int rng n in
       steps :=
         {
           at = !t;
           action =
             Flaky_link
               (client, victim, { gremlin with drop = 0.35; duplicate = 0.25 });
         }
         :: !steps);
    steps := { at = !t +. window; action = Steady } :: !steps;
    incr phase;
    t := !t +. window +. 10.0 +. Rng.float rng 10.0
  done;
  { plan_name = "flaky links"; duration; steps = List.rev !steps }

let torn_wal_crashes ~n ~duration ~seed =
  let rng = Rng.create seed in
  let faults = [| Wal.Tear_tail; Wal.Corrupt_tail; Wal.Truncate_tail 1; Wal.Truncate_tail 2 |] in
  let steps = ref [] in
  let t = ref 30.0 in
  let k = ref 0 in
  while !t < duration -. 60.0 do
    let victim = Rng.int rng n in
    let fault = faults.(!k mod Array.length faults) in
    let hold = 15.0 +. Rng.float rng 15.0 in
    steps := { at = !t; action = Torn_crash (victim, fault) } :: !steps;
    steps := { at = !t +. hold; action = Recover victim } :: !steps;
    incr k;
    t := !t +. hold +. 20.0 +. Rng.float rng 15.0
  done;
  { plan_name = "torn-WAL crashes"; duration; steps = List.rev !steps }

(* Aim squarely at the two-phase commit window: briefly isolate the client
   (which is also the coordinator) over and over, so some cuts land between
   the prepare round and the decision or between the decision and the commit
   round. Prepared participants are left holding locks with a vanished
   coordinator — exactly what the termination protocol exists to clean up:
   unprepared ones abort unilaterally on lease expiry, prepared ones go in
   doubt and resolve by querying the coordinator after the heal (or a peer
   when only the coordinator link stays cut). Windows are short so the
   client comes back to find its transactions terminated under it. *)
let coordinator_crash ~n ~duration ~seed =
  let rng = Rng.create seed in
  let client = n (* the single client sits on the node after the reps *) in
  let reps = List.init n Fun.id in
  let steps = ref [] in
  let t = ref 20.0 in
  while !t < duration -. 60.0 do
    let window = 3.0 +. Rng.float rng 12.0 in
    steps := { at = !t; action = Partition ([ client ], reps) } :: !steps;
    steps := { at = !t +. window; action = Heal } :: !steps;
    (* Occasionally keep the coordinator cut off across a whole lease period
       while a representative also bounces: in-doubt resolution must fall
       back to peers and to recovery-restored state. *)
    if Rng.float rng 1.0 < 0.3 then begin
      let victim = Rng.int rng n in
      let at = !t +. window +. 2.0 +. Rng.float rng 5.0 in
      steps := { at; action = Crash victim } :: !steps;
      steps := { at = at +. 15.0 +. Rng.float rng 10.0; action = Recover victim } :: !steps
    end;
    t := !t +. window +. 15.0 +. Rng.float rng 15.0
  done;
  { plan_name = "coordinator crash"; duration; steps = List.rev !steps }

(* Skew and drift representative virtual clocks: a fast clock (rate > 1)
   fires lease timers early — spurious unilateral aborts and in-doubt
   resolutions the termination protocol must absorb without losing committed
   work — while a slow one holds leases long past their true deadline, so
   stranded locks linger and other fault windows pile on top. Offsets are
   lease-scale, making absolute deadlines disagree across nodes. The network
   and the client keep the true clock throughout. *)
let clock_skew ~n ~duration ~seed =
  let rng = Rng.create seed in
  let steps = ref [] in
  let t = ref 25.0 in
  while !t < duration -. 80.0 do
    let victim = Rng.int rng n in
    let offset = Rng.float rng 80.0 -. 40.0 in
    let rate = 0.25 +. Rng.float rng 3.75 in
    let hold = 40.0 +. Rng.float rng 40.0 in
    steps := { at = !t; action = Clock_skew (victim, offset, rate) } :: !steps;
    steps := { at = !t +. hold; action = Clock_skew (victim, 0.0, 1.0) } :: !steps;
    t := !t +. hold +. 15.0 +. Rng.float rng 15.0
  done;
  { plan_name = "clock skew"; duration; steps = List.rev !steps }

(* Fill the disk under a running representative: every WAL append fails
   (typed error) until the heal, so mutating transactions must abort cleanly
   while the representative stays up and keeps answering reads. Occasionally
   bounce the victim shortly after the heal — the log it replays must be
   exactly the prefix it acknowledged before the disk filled. *)
let disk_full ~n ~duration ~seed =
  let rng = Rng.create seed in
  let steps = ref [] in
  let t = ref 25.0 in
  let k = ref 0 in
  while !t < duration -. 70.0 do
    let victim = Rng.int rng n in
    let fault = if !k mod 3 = 2 then Wal.Io_error else Wal.Disk_full in
    let hold = 20.0 +. Rng.float rng 25.0 in
    steps := { at = !t; action = Disk_full (victim, Some fault) } :: !steps;
    steps := { at = !t +. hold; action = Disk_full (victim, None) } :: !steps;
    if Rng.float rng 1.0 < 0.35 then begin
      let at = !t +. hold +. 2.0 +. Rng.float rng 4.0 in
      steps := { at; action = Crash victim } :: !steps;
      steps := { at = at +. 10.0 +. Rng.float rng 8.0; action = Recover victim } :: !steps
    end;
    incr k;
    t := !t +. hold +. 20.0 +. Rng.float rng 15.0
  done;
  { plan_name = "disk full"; duration; steps = List.rev !steps }

(* A representative turns gray: alive, answering everything, but an order of
   magnitude slow — the failure mode crash detectors never see. The victims
   rotate so every slot gets its turn as the outlier. A correct client keeps
   its latency flat by reading around the gray node (health-scored quorum
   selection) and hedging the calls that must touch it; a naive one queues
   behind it for the whole window. *)
let slow_replica ~n ~duration ~seed =
  let rng = Rng.create seed in
  let steps = ref [] in
  let t = ref 25.0 in
  let cycle = ref 0 in
  while !t < duration -. 80.0 do
    let victim = !cycle mod n in
    let factor = 6.0 +. Rng.float rng 10.0 in
    let hold = 60.0 +. Rng.float rng 60.0 in
    steps := { at = !t; action = Slow (victim, factor) } :: !steps;
    steps := { at = !t +. hold; action = Steady } :: !steps;
    incr cycle;
    t := !t +. hold +. 20.0 +. Rng.float rng 20.0
  done;
  { plan_name = "slow replica"; duration; steps = List.rev !steps }

(* Metastable-failure bait: repeated short total outages (every representative
   but one crashes) leave each client's retry schedule primed, and recovery
   delivers the accumulated wave to freshly-restarted nodes all at once. The
   overload machinery must absorb it — admission control sheds the excess
   (maintenance first), retry budgets keep clients from amplifying sustained
   unavailability, deadline stamps stop expired work from being served — and
   an occasional duplicate-heavy flaky window exercises the dedup cache's
   bounded eviction in the middle of the storm. *)
let retry_storm ~n ~duration ~seed =
  let rng = Rng.create seed in
  let steps = ref [] in
  let t = ref 25.0 in
  let k = ref 0 in
  while !t < duration -. 80.0 do
    let hold = 6.0 +. Rng.float rng 10.0 in
    let survivor = Rng.int rng n in
    for i = 0 to n - 1 do
      if i <> survivor then begin
        steps := { at = !t +. Rng.float rng 2.0; action = Crash i } :: !steps;
        steps := { at = !t +. hold +. Rng.float rng 4.0; action = Recover i } :: !steps
      end
    done;
    if !k mod 3 = 2 then begin
      let at = !t +. hold +. 6.0 in
      let window = 15.0 +. Rng.float rng 10.0 in
      steps :=
        { at; action = Flaky { Net.no_faults with duplicate = 0.3; drop = 0.1 } }
        :: !steps;
      steps := { at = at +. window; action = Steady } :: !steps
    end;
    incr k;
    t := !t +. hold +. 15.0 +. Rng.float rng 15.0
  done;
  { plan_name = "retry storm"; duration; steps = List.rev !steps }

let standard_plans ?(duration = 1000.0) ~n ~seed () =
  let mix k = Int64.add seed (Int64.mul 7919L (Int64.of_int k)) in
  [
    crash_storm ~n ~duration ~seed:(mix 1);
    rolling_partition ~n ~duration ~seed:(mix 2);
    flaky_links ~n ~duration ~seed:(mix 3);
    torn_wal_crashes ~n ~duration ~seed:(mix 4);
    coordinator_crash ~n ~duration ~seed:(mix 5);
  ]

(* New plans append at the END: {!run_all} derives each plan's world seed
   from its position in this list, so insertion in the middle would silently
   re-seed every later campaign. Mix index 8 is taken by {!reconfig_plan}. *)
let all_plans ?(duration = 1000.0) ~n ~seed () =
  let mix k = Int64.add seed (Int64.mul 7919L (Int64.of_int k)) in
  standard_plans ~duration ~n ~seed ()
  @ [
      clock_skew ~n ~duration ~seed:(mix 6);
      disk_full ~n ~duration ~seed:(mix 7);
      slow_replica ~n ~duration ~seed:(mix 9);
      retry_storm ~n ~duration ~seed:(mix 10);
    ]

(* Faults aimed at the reconfiguration driver: brief single-representative
   partitions (cutting the victim from every node — clients, admin and
   syncer included, hence [n_nodes]) and occasional short bounces, separated
   by calm windows long enough for the driver's retry loops to make
   progress. The joiner and the retiree get no special treatment: the cycle
   hits each slot in turn, so some windows land exactly on the
   representative the driver is trying to catch up or drain. *)
let reconfig_plan ~n ~n_nodes ~duration ~seed =
  let rng = Rng.create seed in
  let steps = ref [] in
  let t = ref 50.0 in
  let cycle = ref 0 in
  while !t < duration -. 80.0 do
    let window = 10.0 +. Rng.float rng 8.0 in
    let victim = !cycle mod n in
    let rest = List.filter (fun j -> j <> victim) (List.init n_nodes Fun.id) in
    steps := { at = !t; action = Partition ([ victim ], rest) } :: !steps;
    steps := { at = !t +. window; action = Heal } :: !steps;
    if !cycle mod 3 = 1 then begin
      let at = !t +. window +. 8.0 +. Rng.float rng 6.0 in
      steps := { at; action = Crash victim } :: !steps;
      steps := { at = at +. 8.0 +. Rng.float rng 6.0; action = Recover victim } :: !steps
    end;
    incr cycle;
    (* The calm gap must fit a whole converge mega-session (a couple hundred
       time units of digest walks and lease heartbeats across every
       participant) or the driver can never make progress. *)
    t := !t +. window +. 240.0 +. Rng.float rng 60.0
  done;
  { plan_name = "reconfig"; duration; steps = List.rev !steps }

(* Faults aimed at the sharded deployment: brief single-representative
   partitions rotating across every group's slots (cutting the victim from
   all nodes — clients, admin and syncer included, hence [n_nodes]) and
   occasional short bounces. The calm windows are shorter than reconfig's:
   the migration driver's catch-up sessions are sliced to the moving range,
   so a modest fault-free stretch lets a whole hub round plus the digest
   gate complete. *)
let shard_plan ~n_reps ~n_nodes ~duration ~seed =
  let rng = Rng.create seed in
  let steps = ref [] in
  let t = ref 50.0 in
  let cycle = ref 0 in
  while !t < duration -. 80.0 do
    let window = 10.0 +. Rng.float rng 8.0 in
    let victim = !cycle mod n_reps in
    let rest = List.filter (fun j -> j <> victim) (List.init n_nodes Fun.id) in
    steps := { at = !t; action = Partition ([ victim ], rest) } :: !steps;
    steps := { at = !t +. window; action = Heal } :: !steps;
    if !cycle mod 3 = 1 then begin
      let at = !t +. window +. 8.0 +. Rng.float rng 6.0 in
      steps := { at; action = Crash victim } :: !steps;
      steps := { at = at +. 8.0 +. Rng.float rng 6.0; action = Recover victim } :: !steps
    end;
    incr cycle;
    t := !t +. window +. 160.0 +. Rng.float rng 40.0
  done;
  { plan_name = "sharded split"; duration; steps = List.rev !steps }

(* The registered campaigns — the single source of truth behind
   [repdir plans]. All but "reconfig" (which needs a membership-armed world
   and runs through {!run_reconfig}) and "sharded split" (a multi-group
   {!Shard_world}, through {!run_shard}) run through {!run_plan} /
   {!run_all} — nine plans there in total. *)
let plan_catalog =
  [
    ("crash storm", "standard", "waves of correlated representative crashes and recoveries");
    ( "rolling partition",
      "standard",
      "each representative isolated in turn; every third cycle traps the client" );
    ( "flaky links",
      "standard",
      "network-wide drop/duplicate/reorder gremlins and a lossy client link" );
    ( "torn-WAL crashes",
      "standard",
      "crashes that tear, corrupt, or truncate the WAL tail at the worst instant" );
    ( "coordinator crash",
      "standard",
      "the coordinator vanishes inside the two-phase-commit window" );
    ("clock skew", "extended", "lease-scale virtual-clock skew and drift on representatives");
    ("disk full", "extended", "WAL appends fail with typed errors until the disk heals");
    ( "slow replica",
      "robustness",
      "one representative turns gray (6-16x latency, never crashed), rotating victims" );
    ( "retry storm",
      "robustness",
      "repeated short total outages deliver the accumulated retry wave to recovering nodes" );
    ( "reconfig",
      "membership",
      "online join and retire under partitions and bounces (runs via `repdir reconfig`)" );
    ( "sharded split",
      "sharding",
      "a shard split migrates half the key range to a new group under partitions \
       and bounces (runs via `repdir shard`)" );
  ]

(* --- running a plan ------------------------------------------------------------------- *)

(* What the consistency auditor saw, when a plan runs with [~audit:true]. *)
type audit = {
  checker_violations : string list;
  scrub_violations : string list;
  checked_ops : int;
  ambiguous_ops : int;
  chunks_closed : int;
  keys_given_up : int;
  dump : string -> unit;
      (* write the retained history window to a file, post mortem *)
}

type outcome = {
  plan : string;
  world_seed : int64;
  attempted : int;
  succeeded : int;
  unavailable : int;
  violations : int;
  final_keys_checked : int;
  rpc_retries : int;
  msgs_dropped : int;
  msgs_duplicated : int;
  msgs_reordered : int;
  wal_records_repaired : int;
  sim_events : int;
  leases_expired : int;
  unilateral_aborts : int;
  indoubt_by_coordinator : int;
  indoubt_by_peer : int;
  indoubt_recovered : int;
  orphan_locks : int;
  indoubt_open : int;
  cache_stats : Repdir_cache.Cache.counters option;
  audit : audit option;
}

(* Apply one fault action to a world — shared by every campaign runner.
   [duration] bounds the torn-crash stalker (it gives up once the campaign
   window has closed). *)
let apply_step world ~duration action =
  let sim = Sim_world.sim world in
  let net = Sim_world.net world in
  let crashed i = Repdir_rep.Rep.is_crashed (Sim_world.reps world).(i) in
  match action with
  | Crash i -> if not (crashed i) then Sim_world.crash_rep world i
  | Torn_crash (i, f) ->
      (* A torn write needs unforced log bytes to tear, and those exist
         only while a transaction is running at the victim (its redo
         records are forced at prepare/commit). Stalk the victim until it
         holds unsynced records — the worst possible instant — then pull
         the plug; give up and crash anyway after a bounded wait. *)
      if not (crashed i) then
        let rep = (Sim_world.reps world).(i) in
        (* Strictly shorter than the plan's crash→recover hold, so the
           victim is down before its scheduled recovery fires. *)
        let deadline = Sim.now sim +. 10.0 in
        Sim.spawn sim (fun () ->
            let rec stalk () =
              if crashed i || Sim.now sim >= duration then ()
              else if Repdir_rep.Rep.wal_unsynced rep > 0 || Sim.now sim >= deadline
              then Sim_world.crash_rep ~wal_fault:f world i
              else begin
                Sim.sleep sim 0.5;
                stalk ()
              end
            in
            stalk ())
  | Recover i ->
      if crashed i then begin
        (* An armed WAL fault would refuse the recovery marker: the
           operator frees disk space before restarting the node. *)
        Sim_world.set_io_fault world i None;
        Sim_world.recover_rep world i
      end
  | Partition (a, b) -> Net.partition net a b
  | Heal -> Net.heal_partition net
  | Flaky f -> Net.set_default_faults net f
  | Flaky_link (a, b, f) -> Net.set_link_faults net a b f
  | Steady -> Net.clear_faults net
  | Clock_skew (i, offset, rate) -> Sim_world.set_clock_skew world i ~offset ~rate
  | Disk_full (i, fault) -> if not (crashed i) then Sim_world.set_io_fault world i fault
  | Slow (i, factor) ->
      (* Every message to or from the victim rides a guaranteed latency
         spike; links are symmetric, so one override per pair covers both
         directions. [Steady] clears the overrides. *)
      let slow = { Net.no_faults with spike = 1.0; spike_factor = factor } in
      for j = 0 to Net.n_nodes net - 1 do
        if j <> i then Net.set_link_faults net i j slow
      done

let audit_violations o =
  match o.audit with
  | None -> 0
  | Some a -> List.length a.checker_violations + List.length a.scrub_violations

let total_violations o = o.violations + audit_violations o

(* Plans whose whole point is the overload/gray-failure machinery run with
   the robustness stack armed by default; every pre-existing plan keeps the
   bare world (and with it its exact historical event stream). *)
let robust_plan_names = [ "slow replica"; "retry storm" ]

let run_plan ?(seed = 1983L) ?(config = Repdir_quorum.Config.simple ~n:3 ~r:2 ~w:2)
    ?(key_space = 30) ?(op_gap = 2.0) ?(lease = 60.0) ?(power_cycle = false)
    ?(audit = false) ?(clients = 1) ?robust ?(cache = false) plan =
  if clients < 1 then invalid_arg "Nemesis.run_plan: need at least one client";
  let n = Repdir_quorum.Config.n_reps config in
  let robust =
    match robust with
    | Some r -> r
    | None -> List.mem plan.plan_name robust_plan_names
  in
  let world =
    Sim_world.create ~seed ~rpc_timeout:10.0 ~rpc_attempts:4 ~rpc_backoff:2.0
      ~two_phase:true ~n_clients:clients ~lease
      ?admission:(if robust then Some Rep.default_admission else None)
      ~config ()
  in
  let sim = Sim_world.sim world in
  let net = Sim_world.net world in
  Net.seed_faults net (Int64.add seed 77L);
  (* Recording and checking are pure observation: recorders draw no
     randomness and schedule no events, so an audited run replays the exact
     event stream of an unaudited one. *)
  let recorders =
    if audit then Array.init clients (fun c -> Sim_world.recorder_for_client world c)
    else [||]
  in
  let checker =
    if audit then begin
      let ch = Repdir_audit.Checker.create ~clients () in
      Array.iter
        (fun r -> Repdir_audit.History.set_sink r (Repdir_audit.Checker.feed ch))
        recorders;
      Some ch
    end
    else None
  in
  (* One shared health table: every client's observations feed it and every
     client's picker reads it, so a gray representative spotted by one
     client is avoided by all. *)
  let health = if robust then Some (Picker.Health.create ~n ()) else None in
  (* Per-client caches: one weak representative per client, so stale lines
     from one client's vantage are validated (and corrected) against the
     same quorums every other client writes through. *)
  let caches =
    if cache then Array.init clients (fun _ -> Repdir_cache.Cache.create ())
    else [||]
  in
  let suites =
    Array.init clients (fun c ->
        Sim_world.suite_for_client
          ?recorder:(if audit then Some recorders.(c) else None)
          ?picker:(Option.map (fun h -> Picker.Healthy h) health)
          ?health
          ?op_deadline:(if robust then Some 30.0 else None)
          ?hedge:(if robust then Some 2.0 else None)
          ?cache:(if cache then Some caches.(c) else None)
          world c)
  in
  let suite = suites.(0) in
  (* Per-client retry budgets: sustained unavailability dries a client's
     retries up instead of letting it amplify the storm. *)
  let budgets =
    Array.init clients (fun _ ->
        if robust then Some (Suite.Retry_budget.create ()) else None)
  in
  let rng = Rng.create (Int64.add seed 1L) in
  let retry_rng = Rng.create (Int64.add seed 2L) in
  let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let attempted = ref 0 and succeeded = ref 0 and unavailable = ref 0 in
  let violations = ref 0 in
  let final_keys_checked = ref 0 in
  let crashed i = Repdir_rep.Rep.is_crashed (Sim_world.reps world).(i) in
  let apply = apply_step world ~duration:plan.duration in
  List.iter
    (fun s -> if s.at < plan.duration then Sim.at sim s.at (fun () -> apply s.action))
    plan.steps;
  (* One random operation checked against the sequential model; transient
     failures retried with backoff, then written off as unavailable. *)
  let one_op () =
    incr attempted;
    let key = Key.of_int (Rng.int rng key_space) in
    let value = Printf.sprintf "v%d-%f" !attempted (Sim.now sim) in
    let kind = Rng.int rng 4 in
    try
      Suite.with_retries ~attempts:4 ~backoff:2.0 ?budget:budgets.(0)
        ~sleep:(Sim.sleep sim) ~rng:retry_rng
        (fun () ->
          match kind with
          | 0 -> (
              match (Suite.lookup suite key, Hashtbl.find_opt model key) with
              | Some (_, v), Some v' when String.equal v v' -> ()
              | None, None -> ()
              | _ -> incr violations)
          | 1 -> (
              match Suite.insert suite key value with
              | Ok () -> Hashtbl.replace model key value
              | Error `Already_present ->
                  if not (Hashtbl.mem model key) then incr violations)
          | 2 -> (
              match Suite.update suite key value with
              | Ok () -> Hashtbl.replace model key value
              | Error `Not_present -> if Hashtbl.mem model key then incr violations)
          | _ ->
              let report = Suite.delete suite key in
              if report.Suite.was_present <> Hashtbl.mem model key then incr violations;
              Hashtbl.remove model key);
      incr succeeded
    with
    | Suite.Unavailable _ -> incr unavailable
    | Suite.Deadline_exceeded _ ->
        (* The operation burned its whole deadline budget (client-side or
           rejected by a representative); it aborted cleanly, no effect. *)
        incr unavailable
    | Repdir_txn.Txn.Abort _ ->
        (* Retries exhausted on a transient abort — e.g. a disk-full window
           outlasting the backoff budget. The operation had no effect. *)
        incr unavailable
  in
  (* With concurrent clients the inline sequential model is meaningless
     (interleavings are exactly what the checker exists to judge), so extra
     clients run an unchecked random workload and the history checker is the
     oracle. *)
  let one_op_free c suite_c rng_c retry_rng_c () =
    incr attempted;
    let key = Key.of_int (Rng.int rng_c key_space) in
    let value = Printf.sprintf "c%d-v%d-%f" c !attempted (Sim.now sim) in
    let kind = Rng.int rng_c 4 in
    try
      Suite.with_retries ~attempts:4 ~backoff:2.0 ?budget:budgets.(c)
        ~sleep:(Sim.sleep sim) ~rng:retry_rng_c (fun () ->
          match kind with
          | 0 -> ignore (Suite.lookup suite_c key : (_ * string) option)
          | 1 -> ignore (Suite.insert suite_c key value : (unit, _) result)
          | 2 -> ignore (Suite.update suite_c key value : (unit, _) result)
          | _ -> ignore (Suite.delete suite_c key : Suite.delete_report));
      incr succeeded
    with Suite.Unavailable _ | Suite.Deadline_exceeded _ | Repdir_txn.Txn.Abort _ ->
      incr unavailable
  in
  let quiesce () =
      (* The dust settles: faults off, everyone up, stragglers delivered. *)
      Net.clear_faults net;
      Net.heal_partition net;
      for i = 0 to n - 1 do
        (* Heal injected io faults and clock skew first: a representative
           cannot replay its log onto a full disk, and the final audit must
           run on true clocks. *)
        Sim_world.set_io_fault world i None;
        Sim_world.set_clock_skew world i ~offset:0.0 ~rate:1.0;
        if crashed i then Sim_world.recover_rep world i
      done;
      Sim.sleep sim 200.0;
      (* Formerly a forced power-cycle of every representative scrubbed
         orphaned locks here. The termination protocol has made that
         workaround obsolete — leases abort abandoned transactions and
         in-doubt ones resolve against the coordinator or a peer — so the
         default is to verify the final answers with whatever volatile
         state the campaign left behind. [power_cycle] keeps the old
         behaviour for A/B comparison. *)
      if power_cycle then
        for i = 0 to n - 1 do
          Sim_world.crash_rep world i;
          Sim_world.recover_rep world i
        done
      else
        (* Give straggler termination work one more lease period to finish
           before the final audit. *)
        Sim.sleep sim (lease +. 30.0);
      (* Every key the workload could have touched must now be readable —
         and, when a single client kept the sequential model, agree with
         it. (The reads also land in the recorded history, so the checker
         judges them against everything that came before.) *)
      for k = 0 to key_space - 1 do
        incr final_keys_checked;
        let key = Key.of_int k in
        match
          Suite.with_retries ~attempts:5 ~backoff:4.0 ~sleep:(Sim.sleep sim)
            ~rng:retry_rng (fun () -> Suite.lookup suite key)
        with
        | result ->
            if clients = 1 then (
              match (result, Hashtbl.find_opt model key) with
              | Some (_, v), Some v' when String.equal v v' -> ()
              | None, None -> ()
              | _ -> incr violations)
        | exception (Suite.Unavailable _ | Suite.Deadline_exceeded _) ->
            (* Everything is healed; failing to read here is itself a bug. *)
            incr violations
      done
  in
  (* The last client to finish its workload runs the quiesce sequence and
     the final audit; with one client this is the seed's exact structure. *)
  let live = ref clients in
  for c = 0 to clients - 1 do
    let rng_c =
      if c = 0 then rng else Rng.create (Int64.add seed (Int64.of_int (100 + c)))
    in
    let retry_rng_c =
      if c = 0 then retry_rng else Rng.create (Int64.add seed (Int64.of_int (200 + c)))
    in
    Sim.spawn sim (fun () ->
        while Sim.now sim < plan.duration do
          (if clients = 1 then one_op () else one_op_free c suites.(c) rng_c retry_rng_c ());
          Sim.sleep sim (Rng.exponential rng_c ~mean:op_gap)
        done;
        decr live;
        if !live = 0 then quiesce ())
  done;
  Sim.run sim;
  let reps = Sim_world.reps world in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
  let wal_repaired = sum Repdir_rep.Rep.wal_records_repaired in
  let sum_counter f = sum (fun r -> f (Repdir_rep.Rep.counters r)) in
  let audit_report =
    match checker with
    | None -> None
    | Some ch ->
        Repdir_audit.Checker.finalize ch;
        let scrub_violations = Repdir_audit.Scrub.run ~config reps in
        let stats = Repdir_audit.Checker.stats ch in
        Some
          {
            checker_violations =
              List.map
                (Format.asprintf "%a" Repdir_audit.Checker.pp_violation)
                (Repdir_audit.Checker.violations ch);
            scrub_violations;
            checked_ops = stats.Repdir_audit.Checker.ops_checked;
            ambiguous_ops = stats.Repdir_audit.Checker.ambiguous_ops;
            chunks_closed = stats.Repdir_audit.Checker.chunks_closed;
            keys_given_up = List.length stats.Repdir_audit.Checker.given_up;
            dump =
              (fun path ->
                Repdir_audit.History.dump_to_file ~path (Array.to_list recorders));
          }
  in
  {
    plan = plan.plan_name;
    world_seed = seed;
    attempted = !attempted;
    succeeded = !succeeded;
    unavailable = !unavailable;
    violations = !violations;
    final_keys_checked = !final_keys_checked;
    rpc_retries = (Suite.transport suite).Transport.retry_count;
    msgs_dropped = Net.messages_dropped net;
    msgs_duplicated = Net.messages_duplicated net;
    msgs_reordered = Net.messages_reordered net;
    wal_records_repaired = wal_repaired;
    sim_events = Sim.events_executed sim;
    leases_expired = sum_counter (fun c -> c.Repdir_rep.Rep.leases_expired);
    unilateral_aborts = sum_counter (fun c -> c.Repdir_rep.Rep.unilateral_aborts);
    indoubt_by_coordinator = sum_counter (fun c -> c.Repdir_rep.Rep.indoubt_by_coordinator);
    indoubt_by_peer = sum_counter (fun c -> c.Repdir_rep.Rep.indoubt_by_peer);
    indoubt_recovered = sum_counter (fun c -> c.Repdir_rep.Rep.indoubt_recovered);
    (* At quiesce every transaction has terminated: any lock still granted
       or queued is an orphan the termination protocol failed to clean up. *)
    orphan_locks = sum Repdir_rep.Rep.locks_held + sum Repdir_rep.Rep.lock_waiters;
    indoubt_open = sum Repdir_rep.Rep.in_doubt_count;
    cache_stats =
      (if cache then
         Some
           (Repdir_cache.Cache.sum_counters
              (Array.to_list (Array.map Repdir_cache.Cache.counters caches)))
       else None);
    audit = audit_report;
  }

(* --- the reconfiguration campaign --------------------------------------------------- *)

type reconfig_report = {
  join_started_at : float;
  joined_at : float option;
  retired_at : float option;
  digest_gate_ok : bool;
  converge_attempts : int;
  drain_attempts : int;
  final_epoch : int;
  steady_ops : int;
  steady_span : float;
  during_join_ops : int;
  during_join_span : float;
}

let pp_reconfig_report ppf r =
  let stamp ppf = function
    | Some t -> Format.fprintf ppf "t=%.1f" t
    | None -> Format.pp_print_string ppf "never"
  in
  Format.fprintf ppf
    "join started t=%.1f, completed %a; retire completed %a; digest gate %s \
     (%d converge, %d drain sessions); final epoch %d; throughput %d ops/%.0fu steady, \
     %d ops/%.0fu during join"
    r.join_started_at stamp r.joined_at stamp r.retired_at
    (if r.digest_gate_ok then "passed" else "FAILED")
    r.converge_attempts r.drain_attempts r.final_epoch r.steady_ops r.steady_span
    r.during_join_ops r.during_join_span

(* One scripted reconfiguration under faults, end to end:

   - the world has four representative slots from the start; slot 3 is a
     zero-vote [Joining] slot (an empty representative no quorum ever
     touches), the active members run the paper's 3-2-2 assignment;
   - at [join_at] the driver moves to a joint record giving slot 3 one vote
     (4 votes total, R=2, W=3), fences the old epoch, catches the joiner up
     with converge mega-sessions until the atomic root-digest gate passes,
     then promotes to the stable 4-member record;
   - after a steady window it drains slot 0 the same way (joint record to
     the 3-member [0;1;1;1] R=2 W=2 view, converge with the retiree as hub,
     stable record), leaving the retiree fenced at zero votes;
   - every step retries through the fault windows of {!reconfig_plan}; the
     workload keeps running (and being recorded) throughout.

   Epoch installation covers the write quorum of every view of both the
   previous and the new record before the driver proceeds, so every quorum
   a straggler could collect at the old epoch crosses a fencing
   representative; completed transitions are additionally broadcast to all
   representatives before the next one begins, which bounds any client's
   staleness at one record. *)
let run_reconfig ?(seed = 1983L) ?(duration = 1500.0) ?(key_space = 24) ?(op_gap = 2.0)
    ?(lease = 60.0) ?(audit = true) ?(clients = 2) ?(faults = true) ?(join_at = 80.0) () =
  if clients < 1 then invalid_arg "Nemesis.run_reconfig: need at least one client";
  let n = 4 in
  (* Slot 3 is the joiner: zero votes and an empty directory until the join
     promotes it. Slot 0 retires at the end, shrinking the roster back to
     three active members. *)
  let initial_config =
    Config.make_exn ~votes:[| 1; 1; 1; 0 |] ~read_quorum:2 ~write_quorum:2
  in
  let m0 =
    Member.initial ~config:initial_config
      ~roster:[| Member.Active; Member.Active; Member.Active; Member.Joining |]
  in
  (* Node layout: reps 0-3, workload clients, the admin (one more client
     slot), the anti-entropy node. The plan cuts victims from all of them. *)
  let n_nodes = n + clients + 2 in
  let plan =
    reconfig_plan ~n ~n_nodes ~duration ~seed:(Int64.add seed (Int64.mul 7919L 8L))
  in
  let world =
    Sim_world.create ~seed ~rpc_timeout:10.0 ~rpc_attempts:4 ~rpc_backoff:2.0
      ~two_phase:true ~n_clients:(clients + 1) ~lease ~config:initial_config ()
  in
  let sim = Sim_world.sim world in
  let net = Sim_world.net world in
  Net.seed_faults net (Int64.add seed 77L);
  let recorders =
    if audit then Array.init clients (fun c -> Sim_world.recorder_for_client world c)
    else [||]
  in
  let checker =
    if audit then begin
      let ch = Repdir_audit.Checker.create ~clients () in
      Array.iter
        (fun r -> Repdir_audit.History.set_sink r (Repdir_audit.Checker.feed ch))
        recorders;
      Some ch
    end
    else None
  in
  let suites =
    Array.init clients (fun c ->
        Sim_world.suite_for_client
          ?recorder:(if audit then Some recorders.(c) else None)
          ~membership:m0 world c)
  in
  let suite = suites.(0) in
  (* The admin drives the reconfiguration from its own client slot (and
     node): record writes go through an ordinary membership-armed suite, so
     they collect joint quorums and commit with two-phase commit like any
     other directory write. *)
  let admin = Sim_world.suite_for_client ~membership:m0 world clients in
  let syncer = Sim_world.make_sync world in
  let rng = Rng.create (Int64.add seed 1L) in
  let retry_rng = Rng.create (Int64.add seed 2L) in
  let admin_rng = Rng.create (Int64.add seed 5L) in
  let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let attempted = ref 0 and succeeded = ref 0 and unavailable = ref 0 in
  let violations = ref 0 in
  let final_keys_checked = ref 0 in
  let crashed i = Repdir_rep.Rep.is_crashed (Sim_world.reps world).(i) in
  if faults then
    List.iter
      (fun s ->
        if s.at < plan.duration then
          Sim.at sim s.at (fun () -> apply_step world ~duration:plan.duration s.action))
      plan.steps;
  (* --- the reconfiguration driver ---------------------------------------- *)
  let record = ref m0 in
  let phase = ref `Steady in
  let steady_ops = ref 0 and during_join_ops = ref 0 in
  let join_started = ref 0.0 and join_ended = ref 0.0 in
  let joined_at = ref None and retired_at = ref None in
  let digest_ok = ref false in
  let converge_attempts = ref 0 and drain_attempts = ref 0 in
  let driver_deadline = plan.duration -. 30.0 in
  let tr = Suite.transport admin in
  let install r m =
    match
      Transport.send tr r (fun rep ->
          Rep.install_epoch rep ~epoch:(Member.epoch_of m) ~record:(Member.encode m))
    with
    | Ok acked -> acked
    | Error _ -> false
  in
  let votes_covered acked (v : Member.view) =
    let sum = ref 0 in
    Array.iteri (fun i ok -> if ok then sum := !sum + Config.votes_of v.Member.config i) acked;
    !sum >= v.Member.config.Config.write_quorum
  in
  (* Install [next]'s epoch on representatives until the acknowledging set
     covers the write quorum of every view of [prev] and [next]: from then
     on any quorum collected at a stale epoch must cross a fencing
     representative. [all] waits for every representative instead — run
     after each completed transition so no client ends up more than one
     record behind. *)
  let install_fencing ?(all = false) ~prev next =
    let views = Member.views prev @ Member.views next in
    let acked = Array.make n false in
    let covered () =
      if all then Array.for_all Fun.id acked
      else List.for_all (votes_covered acked) views
    in
    let rec loop () =
      if not (covered ()) && Sim.now sim < driver_deadline then begin
        for r = 0 to n - 1 do
          if not acked.(r) then acked.(r) <- install r next
        done;
        if not (covered ()) then begin
          Sim.sleep sim 6.0;
          loop ()
        end
      end
    in
    loop ();
    covered ()
  in
  (* Write the encoded record to the distinguished directory entry through
     the admin suite — under whatever quorums the suite's current membership
     record demands (the joint ones, at every call site below). *)
  let rec write_record m =
    let enc = Member.encode m in
    match
      Suite.with_retries ~attempts:5 ~backoff:3.0 ~sleep:(Sim.sleep sim) ~rng:admin_rng
        (fun () ->
          match Suite.update admin Member.key enc with
          | Ok () -> ()
          | Error `Not_present -> (
              match Suite.insert admin Member.key enc with
              | Ok () -> ()
              | Error `Already_present ->
                  raise (Suite.Unavailable "membership record write raced")))
    with
    | () -> true
    | exception (Suite.Unavailable _ | Repdir_txn.Txn.Abort _) ->
        if Sim.now sim < driver_deadline then begin
          Sim.sleep sim 8.0;
          write_record m
        end
        else false
  in
  (* Converge participant sets for a joint record: the hub plus enough old-
     view members to cover a read quorum of the old view — every committed
     write's quorum intersects such a set, so the hub ends up dominating
     every committed version. The full suite comes first (it also converges
     the bystanders); the minimal subsets let an attempt dodge a partitioned
     or crashed victim. *)
  let converge_subsets ~hub joint =
    let old_view = List.hd (Member.views joint) in
    let votes i = Config.votes_of old_view.Member.config i in
    let voters = List.filter (fun i -> i <> hub && votes i > 0) (List.init n Fun.id) in
    let pairs =
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if b > a && votes a + votes b >= old_view.Member.config.Config.read_quorum
              then Some [ hub; a; b ]
              else None)
            voters)
        voters
    in
    List.init n Fun.id :: pairs
  in
  (* One two-step transition: write the joint record (under joint quorums),
     fence the old epoch, run [converge] sessions until the atomic digest
     gate passes, then write and fully broadcast the stable record. A
     transition that cannot pass the gate leaves the record joint — joint
     quorums keep governing, which is safe indefinitely. *)
  let transition ~joint ~hub ~attempts ~gate =
    (* Narrow the hub's divergence with ordinary pairwise digest sessions
       while the old record still governs — the paper-side of "catches up
       while holding zero votes". A joining hub pulls from each voter; a
       retiring hub pushes its surplus out. The converge mega-session that
       actually gates the transition then holds its whole-directory locks
       only briefly, so client traffic keeps flowing through most of the
       change. Failed sessions (faults, lost deadlocks) are fine: converge
       is the correctness gate, this is a warm-up. *)
    (let pre_view = Member.current !record in
     let votes i = Config.votes_of pre_view.Member.config i in
     let as_src = votes hub > 0 in
     let voters = List.filter (fun i -> i <> hub && votes i > 0) (List.init n Fun.id) in
     (* Quarter the key space: each slice session holds its range locks only
        briefly, so client traffic flows between the slices. The first slice
        starts at [Bound.Low] and therefore carries the membership entry
        too. *)
     let cuts =
       [
         Bound.Low;
         Bound.Key (Key.of_int (key_space / 4));
         Bound.Key (Key.of_int (key_space / 2));
         Bound.Key (Key.of_int (3 * key_space / 4));
         Bound.High;
       ]
     in
     let rec slices = function
       | a :: (b :: _ as rest) -> (a, b) :: slices rest
       | _ -> []
     in
     List.iter
       (fun v ->
         List.iter
           (fun (lo, hi) ->
             if Sim.now sim < driver_deadline then begin
               ignore
                 ((if as_src then Sync.session_between syncer ~lo ~hi ~src:hub ~dst:v
                   else Sync.session_between syncer ~lo ~hi ~src:v ~dst:hub)
                   : bool);
               Sim.sleep sim 4.0
             end)
           (slices cuts))
       voters);
    Suite.set_membership admin joint;
    let ok = write_record joint in
    let ok = ok && install_fencing ~prev:!record joint in
    record := joint;
    let subsets = converge_subsets ~hub joint in
    let rec converge_until k =
      incr attempts;
      let among = List.nth subsets (k mod List.length subsets) in
      match Sync.converge syncer ~hub ~among with
      | Some ds when Sync.digests_equal ds -> true
      | _ ->
          if Sim.now sim < driver_deadline then begin
            Sim.sleep sim 10.0;
            converge_until (k + 1)
          end
          else false
    in
    let ok = ok && converge_until 0 in
    if gate then digest_ok := ok;
    if not ok then false
    else
      match Member.finish_change joint with
      | Error _ -> false
      | Ok stable ->
          (* Written while the admin suite still holds the joint record, so
             the write collects quorums in both views. *)
          let wrote = write_record stable in
          Suite.set_membership admin stable;
          let installed = install_fencing ~all:true ~prev:joint stable in
          record := stable;
          wrote && installed
  in
  Sim.spawn sim (fun () ->
      Sim.sleep sim join_at;
      join_started := Sim.now sim;
      phase := `Join;
      (match Member.join !record ~slot:3 ~votes:1 ~read_quorum:2 ~write_quorum:3 with
      | Error _ -> ()
      | Ok joint ->
          if transition ~joint ~hub:3 ~attempts:converge_attempts ~gate:true then
            joined_at := Some (Sim.now sim));
      join_ended := Sim.now sim;
      phase := `After;
      (* A steady window between the two changes, then drain slot 0. *)
      Sim.sleep sim 60.0;
      match Member.retire !record ~slot:0 ~read_quorum:2 ~write_quorum:2 with
      | Error _ -> ()
      | Ok joint ->
          if transition ~joint ~hub:0 ~attempts:drain_attempts ~gate:false then
            retired_at := Some (Sim.now sim));
  (* --- the workload ------------------------------------------------------- *)
  let bucket_op () =
    match !phase with
    | `Steady -> incr steady_ops
    | `Join -> incr during_join_ops
    | `After -> ()
  in
  let one_op () =
    incr attempted;
    let key = Key.of_int (Rng.int rng key_space) in
    let value = Printf.sprintf "v%d-%f" !attempted (Sim.now sim) in
    let kind = Rng.int rng 4 in
    try
      Suite.with_retries ~attempts:4 ~backoff:2.0 ~sleep:(Sim.sleep sim) ~rng:retry_rng
        (fun () ->
          match kind with
          | 0 -> (
              match (Suite.lookup suite key, Hashtbl.find_opt model key) with
              | Some (_, v), Some v' when String.equal v v' -> ()
              | None, None -> ()
              | _ -> incr violations)
          | 1 -> (
              match Suite.insert suite key value with
              | Ok () -> Hashtbl.replace model key value
              | Error `Already_present ->
                  if not (Hashtbl.mem model key) then incr violations)
          | 2 -> (
              match Suite.update suite key value with
              | Ok () -> Hashtbl.replace model key value
              | Error `Not_present -> if Hashtbl.mem model key then incr violations)
          | _ ->
              let report = Suite.delete suite key in
              if report.Suite.was_present <> Hashtbl.mem model key then incr violations;
              Hashtbl.remove model key);
      incr succeeded;
      bucket_op ()
    with
    | Suite.Unavailable _ -> incr unavailable
    | Repdir_txn.Txn.Abort _ -> incr unavailable
  in
  let one_op_free c suite_c rng_c retry_rng_c () =
    incr attempted;
    let key = Key.of_int (Rng.int rng_c key_space) in
    let value = Printf.sprintf "c%d-v%d-%f" c !attempted (Sim.now sim) in
    let kind = Rng.int rng_c 4 in
    try
      Suite.with_retries ~attempts:4 ~backoff:2.0 ~sleep:(Sim.sleep sim)
        ~rng:retry_rng_c (fun () ->
          match kind with
          | 0 -> ignore (Suite.lookup suite_c key : (_ * string) option)
          | 1 -> ignore (Suite.insert suite_c key value : (unit, _) result)
          | 2 -> ignore (Suite.update suite_c key value : (unit, _) result)
          | _ -> ignore (Suite.delete suite_c key : Suite.delete_report));
      incr succeeded;
      bucket_op ()
    with Suite.Unavailable _ | Repdir_txn.Txn.Abort _ -> incr unavailable
  in
  let quiesce () =
    Net.clear_faults net;
    Net.heal_partition net;
    for i = 0 to n - 1 do
      Sim_world.set_io_fault world i None;
      if crashed i then Sim_world.recover_rep world i
    done;
    Sim.sleep sim 200.0;
    Sim.sleep sim (lease +. 30.0);
    (* Every representative must settle at the final epoch before the audit
       — the scrubber insists on a single agreed epoch at quiesce. The
       network is healed, so this terminates. *)
    let rec broadcast r tries =
      if r < n then
        if install r !record || tries > 20 then broadcast (r + 1) 0
        else begin
          Sim.sleep sim 3.0;
          broadcast r (tries + 1)
        end
    in
    broadcast 0 0;
    for k = 0 to key_space - 1 do
      incr final_keys_checked;
      let key = Key.of_int k in
      match
        Suite.with_retries ~attempts:5 ~backoff:4.0 ~sleep:(Sim.sleep sim)
          ~rng:retry_rng (fun () -> Suite.lookup suite key)
      with
      | result ->
          if clients = 1 then (
            match (result, Hashtbl.find_opt model key) with
            | Some (_, v), Some v' when String.equal v v' -> ()
            | None, None -> ()
            | _ -> incr violations)
      | exception Suite.Unavailable _ -> incr violations
    done
  in
  let live = ref clients in
  for c = 0 to clients - 1 do
    let rng_c =
      if c = 0 then rng else Rng.create (Int64.add seed (Int64.of_int (100 + c)))
    in
    let retry_rng_c =
      if c = 0 then retry_rng else Rng.create (Int64.add seed (Int64.of_int (200 + c)))
    in
    Sim.spawn sim (fun () ->
        while Sim.now sim < plan.duration do
          (if clients = 1 then one_op () else one_op_free c suites.(c) rng_c retry_rng_c ());
          Sim.sleep sim (Rng.exponential rng_c ~mean:op_gap)
        done;
        decr live;
        if !live = 0 then quiesce ())
  done;
  Sim.run sim;
  let reps = Sim_world.reps world in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
  let sum_counter f = sum (fun r -> f (Repdir_rep.Rep.counters r)) in
  (* Scrub under the settled configuration. If a transition could not pass
     its gate the campaign quiesced at a joint record: the old view's
     quorums are the ones still guaranteed to see every committed write
     (the new view's only become sufficient after the converge), so the
     scrubber sweeps those. *)
  let scrub_view =
    match !record with Member.Stable v -> v | Member.Joint (o, _) -> o
  in
  let audit_report =
    match checker with
    | None -> None
    | Some ch ->
        Repdir_audit.Checker.finalize ch;
        let scrub_violations =
          Repdir_audit.Scrub.run ~expected_epoch:(Member.epoch_of !record)
            ~config:scrub_view.Member.config reps
        in
        let stats = Repdir_audit.Checker.stats ch in
        Some
          {
            checker_violations =
              List.map
                (Format.asprintf "%a" Repdir_audit.Checker.pp_violation)
                (Repdir_audit.Checker.violations ch);
            scrub_violations;
            checked_ops = stats.Repdir_audit.Checker.ops_checked;
            ambiguous_ops = stats.Repdir_audit.Checker.ambiguous_ops;
            chunks_closed = stats.Repdir_audit.Checker.chunks_closed;
            keys_given_up = List.length stats.Repdir_audit.Checker.given_up;
            dump =
              (fun path ->
                Repdir_audit.History.dump_to_file ~path (Array.to_list recorders));
          }
  in
  let outcome =
    {
      plan = plan.plan_name;
      world_seed = seed;
      attempted = !attempted;
      succeeded = !succeeded;
      unavailable = !unavailable;
      violations = !violations;
      final_keys_checked = !final_keys_checked;
      rpc_retries = (Suite.transport suite).Transport.retry_count;
      msgs_dropped = Net.messages_dropped net;
      msgs_duplicated = Net.messages_duplicated net;
      msgs_reordered = Net.messages_reordered net;
      wal_records_repaired = sum Repdir_rep.Rep.wal_records_repaired;
      sim_events = Sim.events_executed sim;
      leases_expired = sum_counter (fun c -> c.Repdir_rep.Rep.leases_expired);
      unilateral_aborts = sum_counter (fun c -> c.Repdir_rep.Rep.unilateral_aborts);
      indoubt_by_coordinator =
        sum_counter (fun c -> c.Repdir_rep.Rep.indoubt_by_coordinator);
      indoubt_by_peer = sum_counter (fun c -> c.Repdir_rep.Rep.indoubt_by_peer);
      indoubt_recovered = sum_counter (fun c -> c.Repdir_rep.Rep.indoubt_recovered);
      orphan_locks = sum Repdir_rep.Rep.locks_held + sum Repdir_rep.Rep.lock_waiters;
      indoubt_open = sum Repdir_rep.Rep.in_doubt_count;
      cache_stats = None;
      audit = audit_report;
    }
  in
  let report =
    {
      join_started_at = !join_started;
      joined_at = !joined_at;
      retired_at = !retired_at;
      digest_gate_ok = !digest_ok;
      converge_attempts = !converge_attempts;
      drain_attempts = !drain_attempts;
      final_epoch = Member.epoch_of !record;
      steady_ops = !steady_ops;
      steady_span = !join_started;
      during_join_ops = !during_join_ops;
      during_join_span = !join_ended -. !join_started;
    }
  in
  (outcome, report)

(* --- the sharding campaign ----------------------------------------------------------- *)

type shard_report = {
  split_started_at : float;
  flipped_at : float option;
  shard_gate_ok : bool;
  catchup_sessions : int;
  gate_attempts : int;
  final_shard_epoch : int;
  epoch_agreed : bool;
  n_groups : int;
  n_shards : int;
  split_steady_ops : int;
  split_steady_span : float;
  during_split_ops : int;
  during_split_span : float;
}

let pp_shard_report ppf r =
  let stamp ppf = function
    | Some t -> Format.fprintf ppf "t=%.1f" t
    | None -> Format.pp_print_string ppf "never"
  in
  Format.fprintf ppf
    "split started t=%.1f, flipped %a; slice digest gate %s (%d rounds, \
     %d catch-up sessions); final shard epoch %d (%s across %d groups / %d shards); \
     throughput %d ops/%.0fu steady, %d ops/%.0fu during split"
    r.split_started_at stamp r.flipped_at
    (if r.shard_gate_ok then "passed" else "FAILED")
    r.gate_attempts r.catchup_sessions r.final_shard_epoch
    (if r.epoch_agreed then "agreed" else "DISAGREED")
    r.n_groups r.n_shards r.split_steady_ops r.split_steady_span
    r.during_split_ops r.during_split_span

(* {!apply_step} for a {!Shard_world}: the plan's node indices map to
   (group, slot) through the grouped layout. {!shard_plan} only emits the
   four actions handled below; anything else is a no-op on this world. *)
let apply_shard_step world action =
  let net = Shard_world.net world in
  let n = Shard_world.reps_per_group world in
  let rep_of node = (node / n, node mod n) in
  let crashed node =
    let g, i = rep_of node in
    Rep.is_crashed (Shard_world.group_reps world g).(i)
  in
  match action with
  | Crash node ->
      if not (crashed node) then
        let g, i = rep_of node in
        Shard_world.crash_rep world ~g i
  | Recover node ->
      if crashed node then
        let g, i = rep_of node in
        Shard_world.recover_rep world ~g i
  | Partition (a, b) -> Net.partition net a b
  | Heal -> Net.heal_partition net
  | Torn_crash _ | Flaky _ | Flaky_link _ | Steady | Clock_skew _ | Disk_full _
  | Slow _ ->
      ()

(* One scripted shard split under faults, end to end:

   - [groups] replica groups share one simulated network; groups
     [0 .. groups-2] serve equal slices of the key space from epoch 0 and
     group [groups-1] starts empty;
   - at [split_at] the driver splits the last shard at the [groups-1]/[groups]
     point of the key space: {!Shard_map.begin_split} puts the upper slice
     into [Moving], and the new epoch is installed on a write quorum of the
     source group's votes BEFORE the copy starts — from then on any write
     quorum a stale client collects on the slice crosses a fencing
     representative and aborts wholesale, so the slice is frozen;
   - sliced {!Sync.session_between} hub rounds copy the slice into the
     target group (and converge the source group's own replicas on it),
     until the digest gate — every replica of both groups reports the same
     {!Rep.digest_interior_range} over the slice — passes;
   - {!Shard_map.finish_move} lands the slice on the target group; the new
     epoch is installed on the source group FIRST (fencing the stale readers
     still routed there), then the target, then broadcast to everyone at
     quiesce, which bounds any client's staleness at one map.

   The workload keeps running (and being recorded) throughout: single-key
   operations, boundary [next] probes across the seam, and cross-shard
   read-write transactions committed with the router's two-phase protocol.
   A split that cannot pass its gate leaves the map [Moving] — reads keep
   flowing from the source group, which is safe indefinitely. *)
let run_shard ?(seed = 1983L) ?(duration = 1500.0) ?(key_space = 24) ?(op_gap = 2.0)
    ?(lease = 60.0) ?(audit = true) ?(clients = 2) ?(faults = true) ?(groups = 2)
    ?(split_at = 80.0) ?(config = Repdir_quorum.Config.simple ~n:3 ~r:2 ~w:2) () =
  if clients < 1 then invalid_arg "Nemesis.run_shard: need at least one client";
  if groups < 2 then invalid_arg "Nemesis.run_shard: need at least two groups";
  if key_space < 2 * groups then invalid_arg "Nemesis.run_shard: key space too small";
  let n = Config.n_reps config in
  let n_reps = groups * n in
  let n_nodes = n_reps + clients + 2 in
  let plan =
    shard_plan ~n_reps ~n_nodes ~duration ~seed:(Int64.add seed (Int64.mul 7919L 11L))
  in
  let world =
    Shard_world.create ~seed ~rpc_timeout:10.0 ~rpc_attempts:4 ~rpc_backoff:2.0
      ~n_clients:(clients + 1) ~lease ~config ~groups ()
  in
  let sim = Shard_world.sim world in
  let net = Shard_world.net world in
  Net.seed_faults net (Int64.add seed 77L);
  let recorders =
    if audit then Array.init clients (fun c -> Shard_world.recorder_for_client world c)
    else [||]
  in
  let checker =
    if audit then begin
      let ch = Repdir_audit.Checker.create ~clients () in
      Array.iter
        (fun r -> Repdir_audit.History.set_sink r (Repdir_audit.Checker.feed ch))
        recorders;
      Some ch
    end
    else None
  in
  (* Groups [0 .. groups-2] each serve an equal initial slice; the split cut
     sits at the [groups-1]/[groups] point, so after the flip every group —
     the newcomer included — serves a 1/[groups] slice. *)
  let cuts = List.init (groups - 2) (fun i -> Key.of_int ((i + 1) * key_space / groups)) in
  let m0 = Shard_map.initial ~cuts in
  let cut_int = (groups - 1) * key_space / groups in
  let src_g = groups - 2 and dst_g = groups - 1 in
  let routers =
    Array.init clients (fun c ->
        Shard_world.router_for_client
          ?recorder:(if audit then Some recorders.(c) else None)
          world c ~map:m0)
  in
  let router = routers.(0) in
  (* The admin drives the migration from its own client slot (and node):
     epoch installs and gate digests ride its per-group transports. *)
  let admin = Shard_world.router_for_client world clients ~map:m0 in
  let cross = Shard_world.make_cross_sync world ~from_g:src_g ~to_g:dst_g in
  let rng = Rng.create (Int64.add seed 1L) in
  let retry_rng = Rng.create (Int64.add seed 2L) in
  let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let attempted = ref 0 and succeeded = ref 0 and unavailable = ref 0 in
  let violations = ref 0 in
  let final_keys_checked = ref 0 in
  if faults then
    List.iter
      (fun s ->
        if s.at < plan.duration then Sim.at sim s.at (fun () -> apply_shard_step world s.action))
      plan.steps;
  (* --- the migration driver ---------------------------------------------- *)
  let map = ref m0 in
  let phase = ref `Steady in
  let steady_ops = ref 0 and during_split_ops = ref 0 in
  let split_started = ref 0.0 and split_ended = ref 0.0 in
  let flipped_at = ref None in
  let gate_ok = ref false in
  let gate_attempts = ref 0 and catchup_sessions = ref 0 in
  let epoch_agreed = ref true in
  let driver_deadline = plan.duration -. 30.0 in
  let tr g = Suite.transport (Router.suite admin g) in
  let install g r m =
    match
      Transport.send (tr g) r (fun rep ->
          Rep.install_shard_epoch rep ~epoch:(Shard_map.epoch_of m)
            ~record:(Shard_map.encode m))
    with
    | Ok acked -> acked
    | Error _ -> false
  in
  (* Install [m]'s epoch on group [g] until the acknowledging set covers the
     group's write quorum of votes: from then on any quorum a stale client
     collects there crosses a fencing representative (reads too, since
     R + W exceeds the total). *)
  let install_group g m =
    let cfg = Shard_world.group_config world g in
    let acked = Array.make n false in
    let covered () =
      let sum = ref 0 in
      Array.iteri (fun i ok -> if ok then sum := !sum + Config.votes_of cfg i) acked;
      !sum >= cfg.Config.write_quorum
    in
    let rec loop () =
      if not (covered ()) && Sim.now sim < driver_deadline then begin
        for r = 0 to n - 1 do
          if not acked.(r) then acked.(r) <- install g r m
        done;
        if not (covered ()) then begin
          Sim.sleep sim 6.0;
          loop ()
        end
      end
    in
    loop ();
    covered ()
  in
  (* The copy slice: {!Sync.session_between} and {!Rep.digest_range} work on
     half-open-at-the-low-side ranges [(lo, hi]], while the moving shard owns
     [[cut, HIGH)] — so the slice starts just below the cut. The workload
     only mints [Key.of_int] keys, so nothing lives strictly between
     [cut - 1] and [cut] and the slice is exactly the frozen range. *)
  let slice_lo = Bound.Key (Key.of_int (cut_int - 1)) in
  let slice_hi = Bound.High in
  let slice_digest g r =
    let txns = Shard_world.txns world in
    let txn = Repdir_txn.Txn.Manager.begin_txn txns in
    let res =
      Transport.send (tr g) r (fun rep ->
          (* The interior digest: the gap immediately above [slice_lo]
             extends below the cut, so its version keeps moving with live
             deletions in the un-frozen half and would never agree between
             source (bumped continuously) and target (as of the last
             session). The fence freezes everything the flip hands over —
             entries and interior absence proofs — and that is exactly what
             this digest covers. *)
          let d = Rep.digest_interior_range rep ~txn ~lo:slice_lo ~hi:slice_hi in
          Rep.abort rep ~txn;
          d)
    in
    Repdir_txn.Txn.Manager.abort txns txn;
    match res with Ok d -> Some d | Error _ -> None
  in
  (* The gate: EVERY replica of both groups reports the same slice digest —
     all of the source's (they may have diverged before the freeze; a read
     quorum of any divergent pair dominates, and the hub rounds below push
     the merged slice back out) and all of the target's (so after the flip
     any read quorum there holds the full slice). Source-side writes are
     frozen by the fence, so the per-replica snapshots compose soundly. *)
  let gate_pass () =
    let peers = List.init n (fun r -> (src_g, r)) @ List.init n (fun r -> (dst_g, r)) in
    let ds =
      List.filter_map
        (fun (g, r) -> Option.map (fun d -> ((g * n) + r, d)) (slice_digest g r))
        peers
    in
    List.length ds = 2 * n && Sync.digests_equal ds
  in
  (* One hub round: pull every peer's slice onto target replica 0, then push
     the union back onto everyone — source and target replicas alike end up
     holding the merged slice. *)
  let hub = n in
  let catchup_round () =
    for p = 0 to (2 * n) - 1 do
      if p <> hub && Sim.now sim < driver_deadline then begin
        incr catchup_sessions;
        ignore (Sync.session_between cross ~lo:slice_lo ~hi:slice_hi ~src:p ~dst:hub : bool);
        Sim.sleep sim 3.0
      end
    done;
    for p = 0 to (2 * n) - 1 do
      if p <> hub && Sim.now sim < driver_deadline then begin
        incr catchup_sessions;
        ignore (Sync.session_between cross ~lo:slice_lo ~hi:slice_hi ~src:hub ~dst:p : bool);
        Sim.sleep sim 3.0
      end
    done
  in
  let rec catchup_until () =
    incr gate_attempts;
    catchup_round ();
    if gate_pass () then true
    else if Sim.now sim < driver_deadline then begin
      Sim.sleep sim 10.0;
      catchup_until ()
    end
    else false
  in
  Sim.spawn sim (fun () ->
      Sim.sleep sim split_at;
      split_started := Sim.now sim;
      phase := `Split;
      (match
         Shard_map.begin_split !map ~shard:(Shard_map.n_shards !map - 1)
           ~at:(Key.of_int cut_int) ~to_g:dst_g
       with
      | Error _ -> ()
      | Ok moving ->
          let fenced = install_group src_g moving in
          map := moving;
          Router.set_map admin moving;
          let ok = fenced && catchup_until () in
          gate_ok := ok;
          if ok then
            match Shard_map.finish_move moving ~shard:(Shard_map.n_shards moving - 1) with
            | Error _ -> ()
            | Ok landed ->
                (* Source first: stale readers of the slice — still routed to
                   the source group while their map says [Moving] — are fenced
                   into adopting the landed map before the target serves. *)
                let on_src = install_group src_g landed in
                let on_dst = install_group dst_g landed in
                map := landed;
                Router.set_map admin landed;
                if on_src && on_dst then flipped_at := Some (Sim.now sim));
      split_ended := Sim.now sim;
      phase := `After);
  (* --- the workload ------------------------------------------------------- *)
  let bucket_op () =
    match !phase with
    | `Steady -> incr steady_ops
    | `Split -> incr during_split_ops
    | `After -> ()
  in
  let model_next probe =
    Hashtbl.fold
      (fun k v acc ->
        if String.compare k probe > 0 then
          match acc with
          | Some (kb, _) when String.compare kb k <= 0 -> acc
          | _ -> Some (k, v)
        else acc)
      model None
  in
  let cross_keys rng_c =
    ( Key.of_int (Rng.int rng_c (max 1 cut_int)),
      Key.of_int (cut_int + Rng.int rng_c (max 1 (key_space - cut_int))) )
  in
  let one_op () =
    incr attempted;
    let key = Key.of_int (Rng.int rng key_space) in
    let value = Printf.sprintf "v%d-%f" !attempted (Sim.now sim) in
    let kind = Rng.int rng 6 in
    try
      Suite.with_retries ~attempts:4 ~backoff:2.0 ~sleep:(Sim.sleep sim) ~rng:retry_rng
        (fun () ->
          match kind with
          | 0 -> (
              match (Router.lookup router key, Hashtbl.find_opt model key) with
              | Some (_, v), Some v' when String.equal v v' -> ()
              | None, None -> ()
              | _ -> incr violations)
          | 1 -> (
              match Router.insert router key value with
              | Ok () -> Hashtbl.replace model key value
              | Error `Already_present ->
                  if not (Hashtbl.mem model key) then incr violations)
          | 2 -> (
              match Router.update router key value with
              | Ok () -> Hashtbl.replace model key value
              | Error `Not_present -> if Hashtbl.mem model key then incr violations)
          | 3 ->
              let report = Router.delete router key in
              if report.Suite.was_present <> Hashtbl.mem model key then incr violations;
              Hashtbl.remove model key
          | 4 ->
              (* Boundary probe: a [next] walk from just below the split cut
                 crosses the shard seam mid-migration. *)
              let probe = Key.of_int (max 0 (cut_int - 1 - Rng.int rng 2)) in
              (match (Router.next router probe, model_next probe) with
              | Some (k1, _, v1), Some (k2, v2)
                when String.equal k1 k2 && String.equal v1 v2 ->
                  ()
              | None, None -> ()
              | _ -> incr violations)
          | _ ->
              (* Cross-shard transaction: read a low-half key and write a
                 high-half key atomically across two groups' suites. *)
              let k1, k2 = cross_keys rng in
              let seen, wrote =
                Router.with_txn router (fun txn ->
                    let seen = Router.lookup ~txn router k1 in
                    (seen, Router.update ~txn router k2 value))
              in
              (match (seen, Hashtbl.find_opt model k1) with
              | Some (_, v), Some v' when String.equal v v' -> ()
              | None, None -> ()
              | _ -> incr violations);
              (match wrote with
              | Ok () -> Hashtbl.replace model k2 value
              | Error `Not_present -> if Hashtbl.mem model k2 then incr violations));
      incr succeeded;
      bucket_op ()
    with
    | Suite.Unavailable _ -> incr unavailable
    | Repdir_txn.Txn.Abort _ -> incr unavailable
  in
  let one_op_free c router_c rng_c retry_rng_c () =
    incr attempted;
    let key = Key.of_int (Rng.int rng_c key_space) in
    let value = Printf.sprintf "c%d-v%d-%f" c !attempted (Sim.now sim) in
    let kind = Rng.int rng_c 6 in
    try
      Suite.with_retries ~attempts:4 ~backoff:2.0 ~sleep:(Sim.sleep sim)
        ~rng:retry_rng_c (fun () ->
          match kind with
          | 0 -> ignore (Router.lookup router_c key : (_ * string) option)
          | 1 -> ignore (Router.insert router_c key value : (unit, _) result)
          | 2 -> ignore (Router.update router_c key value : (unit, _) result)
          | 3 -> ignore (Router.delete router_c key : Suite.delete_report)
          | 4 ->
              let probe = Key.of_int (max 0 (cut_int - 1 - Rng.int rng_c 2)) in
              ignore (Router.next router_c probe : (_ * _ * string) option)
          | _ ->
              let k1, k2 = cross_keys rng_c in
              ignore
                (Router.with_txn router_c (fun txn ->
                     ignore (Router.lookup ~txn router_c k1 : (_ * string) option);
                     (Router.update ~txn router_c k2 value : (unit, _) result))));
      incr succeeded;
      bucket_op ()
    with Suite.Unavailable _ | Repdir_txn.Txn.Abort _ -> incr unavailable
  in
  let quiesce () =
    Net.clear_faults net;
    Net.heal_partition net;
    for g = 0 to groups - 1 do
      for i = 0 to n - 1 do
        if Rep.is_crashed (Shard_world.group_reps world g).(i) then
          Shard_world.recover_rep world ~g i
      done
    done;
    Sim.sleep sim 200.0;
    Sim.sleep sim (lease +. 30.0);
    (* Every representative of every group settles at the final map before
       the audit — a single agreed shard epoch at quiesce is part of the
       campaign's acceptance. The network is healed, so this terminates. *)
    let rec broadcast g r tries =
      if g < groups then
        if r >= n then broadcast (g + 1) 0 0
        else if install g r !map || tries > 20 then broadcast g (r + 1) 0
        else begin
          Sim.sleep sim 3.0;
          broadcast g r (tries + 1)
        end
    in
    broadcast 0 0 0;
    let final_e = Shard_map.epoch_of !map in
    for g = 0 to groups - 1 do
      Array.iter
        (fun rep -> if Rep.shard_epoch rep <> final_e then epoch_agreed := false)
        (Shard_world.group_reps world g)
    done;
    for k = 0 to key_space - 1 do
      incr final_keys_checked;
      let key = Key.of_int k in
      match
        Suite.with_retries ~attempts:5 ~backoff:4.0 ~sleep:(Sim.sleep sim)
          ~rng:retry_rng (fun () -> Router.lookup router key)
      with
      | result ->
          if clients = 1 then (
            match (result, Hashtbl.find_opt model key) with
            | Some (_, v), Some v' when String.equal v v' -> ()
            | None, None -> ()
            | _ -> incr violations)
      | exception Suite.Unavailable _ -> incr violations
    done
  in
  let live = ref clients in
  for c = 0 to clients - 1 do
    let rng_c =
      if c = 0 then rng else Rng.create (Int64.add seed (Int64.of_int (100 + c)))
    in
    let retry_rng_c =
      if c = 0 then retry_rng else Rng.create (Int64.add seed (Int64.of_int (200 + c)))
    in
    Sim.spawn sim (fun () ->
        while Sim.now sim < plan.duration do
          (if clients = 1 then one_op () else one_op_free c routers.(c) rng_c retry_rng_c ());
          Sim.sleep sim (Rng.exponential rng_c ~mean:op_gap)
        done;
        decr live;
        if !live = 0 then quiesce ())
  done;
  Sim.run sim;
  let reps =
    Array.concat (List.init groups (fun g -> Shard_world.group_reps world g))
  in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
  let sum_counter f = sum (fun r -> f (Repdir_rep.Rep.counters r)) in
  let audit_report =
    match checker with
    | None -> None
    | Some ch ->
        Repdir_audit.Checker.finalize ch;
        (* Each group is a complete directory in its own right (own
           sentinels, own quorum invariants, frozen residue included), so
           the scrubber sweeps them independently. *)
        let scrub_violations =
          List.concat
            (List.init groups (fun g ->
                 List.map
                   (Printf.sprintf "g%d: %s" g)
                   (Repdir_audit.Scrub.run
                      ~config:(Shard_world.group_config world g)
                      (Shard_world.group_reps world g))))
        in
        let stats = Repdir_audit.Checker.stats ch in
        Some
          {
            checker_violations =
              List.map
                (Format.asprintf "%a" Repdir_audit.Checker.pp_violation)
                (Repdir_audit.Checker.violations ch);
            scrub_violations;
            checked_ops = stats.Repdir_audit.Checker.ops_checked;
            ambiguous_ops = stats.Repdir_audit.Checker.ambiguous_ops;
            chunks_closed = stats.Repdir_audit.Checker.chunks_closed;
            keys_given_up = List.length stats.Repdir_audit.Checker.given_up;
            dump =
              (fun path ->
                Repdir_audit.History.dump_to_file ~path (Array.to_list recorders));
          }
  in
  let rpc_retries =
    let acc = ref 0 in
    for g = 0 to groups - 1 do
      acc := !acc + (Suite.transport (Router.suite router g)).Transport.retry_count
    done;
    !acc
  in
  let outcome =
    {
      plan = plan.plan_name;
      world_seed = seed;
      attempted = !attempted;
      succeeded = !succeeded;
      unavailable = !unavailable;
      violations = !violations;
      final_keys_checked = !final_keys_checked;
      rpc_retries;
      msgs_dropped = Net.messages_dropped net;
      msgs_duplicated = Net.messages_duplicated net;
      msgs_reordered = Net.messages_reordered net;
      wal_records_repaired = sum Repdir_rep.Rep.wal_records_repaired;
      sim_events = Sim.events_executed sim;
      leases_expired = sum_counter (fun c -> c.Repdir_rep.Rep.leases_expired);
      unilateral_aborts = sum_counter (fun c -> c.Repdir_rep.Rep.unilateral_aborts);
      indoubt_by_coordinator =
        sum_counter (fun c -> c.Repdir_rep.Rep.indoubt_by_coordinator);
      indoubt_by_peer = sum_counter (fun c -> c.Repdir_rep.Rep.indoubt_by_peer);
      indoubt_recovered = sum_counter (fun c -> c.Repdir_rep.Rep.indoubt_recovered);
      orphan_locks = sum Repdir_rep.Rep.locks_held + sum Repdir_rep.Rep.lock_waiters;
      indoubt_open = sum Repdir_rep.Rep.in_doubt_count;
      cache_stats = None;
      audit = audit_report;
    }
  in
  let report =
    {
      split_started_at = !split_started;
      flipped_at = !flipped_at;
      shard_gate_ok = !gate_ok;
      catchup_sessions = !catchup_sessions;
      gate_attempts = !gate_attempts;
      final_shard_epoch = Shard_map.epoch_of !map;
      epoch_agreed = !epoch_agreed;
      n_groups = groups;
      n_shards = Shard_map.n_shards !map;
      split_steady_ops = !steady_ops;
      split_steady_span = !split_started;
      during_split_ops = !during_split_ops;
      during_split_span = !split_ended -. !split_started;
    }
  in
  (outcome, report)

let run_all ?(seed = 1983L) ?(config = Repdir_quorum.Config.simple ~n:3 ~r:2 ~w:2)
    ?(duration = 1000.0) ?key_space ?op_gap ?lease ?power_cycle ?audit ?clients ?cache
    ?(all = false) () =
  let n = Repdir_quorum.Config.n_reps config in
  let plans =
    if all then all_plans ~duration ~n ~seed () else standard_plans ~duration ~n ~seed ()
  in
  List.mapi
    (fun i plan ->
      let world_seed = Int64.add seed (Int64.mul 1000003L (Int64.of_int i)) in
      run_plan ~seed:world_seed ~config ?key_space ?op_gap ?lease ?power_cycle ?audit
        ?clients ?cache plan)
    plans

let table_of_outcomes outcomes =
  let t =
    Table.create
      ~header:
        [
          "Plan";
          "Ops";
          "Ok";
          "Unavail";
          "Retries";
          "Dropped";
          "Dup'd";
          "Reordered";
          "WAL repaired";
          "Leases";
          "Unilat";
          "ByCoord";
          "ByPeer";
          "Orphans";
          "InDoubt";
          "Events";
          "Violations";
          "Checked";
          "Ambig";
          "AuditViol";
        ]
      ()
  in
  List.iter
    (fun o ->
      Table.add_row t
        [
          o.plan;
          string_of_int o.attempted;
          string_of_int o.succeeded;
          string_of_int o.unavailable;
          string_of_int o.rpc_retries;
          string_of_int o.msgs_dropped;
          string_of_int o.msgs_duplicated;
          string_of_int o.msgs_reordered;
          string_of_int o.wal_records_repaired;
          string_of_int o.leases_expired;
          string_of_int o.unilateral_aborts;
          string_of_int o.indoubt_by_coordinator;
          string_of_int o.indoubt_by_peer;
          string_of_int o.orphan_locks;
          string_of_int o.indoubt_open;
          string_of_int o.sim_events;
          string_of_int o.violations;
          (match o.audit with None -> "-" | Some a -> string_of_int a.checked_ops);
          (match o.audit with None -> "-" | Some a -> string_of_int a.ambiguous_ops);
          (match o.audit with None -> "-" | Some _ -> string_of_int (audit_violations o));
        ])
    outcomes;
  Table.add_separator t;
  Table.add_row t
    [
      "total violations";
      string_of_int (List.fold_left (fun a o -> a + total_violations o) 0 outcomes);
    ];
  t

let table ?seed ?config ?duration ?key_space ?op_gap ?lease ?power_cycle ?audit ?clients
    ?all () =
  table_of_outcomes
    (run_all ?seed ?config ?duration ?key_space ?op_gap ?lease ?power_cycle ?audit
       ?clients ?all ())
