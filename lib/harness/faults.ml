open Repdir_util
open Repdir_key
open Repdir_sim
open Repdir_core

type phase = {
  label : string;
  up_reps : int;
  attempted : int;
  succeeded : int;
  unavailable : int;
}

type outcome = { phases : phase list; consistency_violations : int }

let run ?(seed = 33L) ?(ops_per_phase = 150) ?(retries = 1)
    ?(config = Repdir_quorum.Config.simple ~n:3 ~r:2 ~w:2) () =
  let n = Repdir_quorum.Config.n_reps config in
  if n < 2 then invalid_arg "Faults.run: need at least two representatives";
  let world = Sim_world.create ~seed ~rpc_timeout:30.0 ~n_clients:1 ~config () in
  let sim = Sim_world.sim world in
  let suite = Sim_world.suite_for_client world 0 in
  let rng = Rng.create (Int64.add seed 1L) in
  let retry_rng = Rng.create (Int64.add seed 2L) in
  let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref 0 in
  let phases = ref [] in
  let up_count () =
    Array.fold_left
      (fun acc r -> if Repdir_rep.Rep.is_crashed r then acc else acc + 1)
      0 (Sim_world.reps world)
  in
  (* One operation against suite and model; true if it completed. Transient
     failures are retried with backoff before the attempt is written off. *)
  let one_op () =
    let key = Key.of_int (Rng.int rng 30) in
    let value = Printf.sprintf "v%f" (Sim.now sim) in
    (* Drawn outside the retried closure so a retry repeats the same op. *)
    let kind = Rng.int rng 4 in
    try
      Suite.with_retries ~attempts:retries ~backoff:2.0 ~sleep:(Sim.sleep sim)
        ~rng:retry_rng (fun () ->
          match kind with
          | 0 -> (
              match (Suite.lookup suite key, Hashtbl.find_opt model key) with
              | Some (_, v), Some v' when String.equal v v' -> ()
              | None, None -> ()
              | _ -> incr violations)
          | 1 -> (
              match Suite.insert suite key value with
              | Ok () -> Hashtbl.replace model key value
              | Error `Already_present ->
                  if not (Hashtbl.mem model key) then incr violations)
          | 2 -> (
              match Suite.update suite key value with
              | Ok () -> Hashtbl.replace model key value
              | Error `Not_present -> if Hashtbl.mem model key then incr violations)
          | _ ->
              let report = Suite.delete suite key in
              if report.Suite.was_present <> Hashtbl.mem model key then incr violations;
              Hashtbl.remove model key);
      true
    with Suite.Unavailable _ -> false
  in
  let run_phase label =
    let succeeded = ref 0 and unavailable = ref 0 in
    for _ = 1 to ops_per_phase do
      if one_op () then incr succeeded else incr unavailable
    done;
    phases :=
      {
        label;
        up_reps = up_count ();
        attempted = ops_per_phase;
        succeeded = !succeeded;
        unavailable = !unavailable;
      }
      :: !phases
  in
  Sim.spawn sim (fun () ->
      run_phase "all representatives up";
      Sim_world.crash_rep world 0;
      run_phase "rep0 crashed";
      Sim_world.crash_rep world 1;
      run_phase "rep0 and rep1 crashed";
      Sim_world.recover_rep world 1;
      run_phase "rep1 recovered (stale)";
      Sim_world.recover_rep world 0;
      run_phase "all recovered");
  Sim.run sim;
  { phases = List.rev !phases; consistency_violations = !violations }

let table ?seed ?ops_per_phase ?retries ?config () =
  let o = run ?seed ?ops_per_phase ?retries ?config () in
  let t =
    Table.create
      ~header:[ "Phase"; "Up reps"; "Attempted"; "Succeeded"; "Unavailable" ]
      ()
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.label;
          string_of_int p.up_reps;
          string_of_int p.attempted;
          string_of_int p.succeeded;
          string_of_int p.unavailable;
        ])
    o.phases;
  Table.add_separator t;
  Table.add_row t
    [ "consistency violations"; string_of_int o.consistency_violations ];
  t
