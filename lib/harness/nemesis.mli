(** Nemesis: deterministic fault-injection campaigns over the simulator.

    A {!plan} is a declarative, timed schedule of adversarial actions —
    crash storms, rolling partitions, probabilistic link gremlins
    (drop/duplicate/reorder/latency spikes), and crashes that tear or
    corrupt the write-ahead log's tail. {!run_plan} drives a live
    random workload through the plan on a {!Sim_world}, checking every
    response against a sequential model, then heals the world, lets the
    transaction-termination protocol drain (leases expire abandoned
    transactions; in-doubt ones resolve against the coordinator or a peer),
    and verifies the whole key space again — with {i no} power-cycle: any
    lock still held at quiesce is reported as an orphan. All randomness —
    the plan builders,
    the workload, the link gremlins, the retry jitter — derives from
    explicit seeds, so a run is bit-reproducible.

    The transport is the hardened one: at-most-once RPC with request-id
    deduplication and bounded exponential-backoff retries, two-phase commit,
    and client-level retries via {!Repdir_core.Suite.with_retries} — the
    point of the exercise is that {i zero} sequential-model violations
    survive all five standard plans, and every lock manager drains to
    zero without anyone pulling a power plug. *)

open Repdir_sim
module Wal = Repdir_txn.Wal

(* --- fault-plan DSL ------------------------------------------------------------ *)

type action =
  | Crash of int  (** representative index *)
  | Recover of int
  | Torn_crash of int * Wal.storage_fault
      (** crash with tail damage hitting the victim's WAL *)
  | Partition of int list * int list  (** cut every link between the groups *)
  | Heal  (** restore all links *)
  | Flaky of Net.faults  (** network-wide probabilistic gremlins *)
  | Flaky_link of int * int * Net.faults  (** per-link override *)
  | Steady  (** clear all link gremlins *)
  | Clock_skew of int * float * float
      (** skew a representative's virtual clock: it reads
          [offset + rate * now]; [(i, 0.0, 1.0)] restores the true clock *)
  | Disk_full of int * Wal.io_fault option
      (** arm ([Some fault]) or heal ([None]) the representative's WAL write
          failure; while armed, mutating transactions abort cleanly and the
          representative stays up *)
  | Slow of int * float
      (** gray failure: every link touching the representative multiplies
          its latency by the factor — the node stays up and answers
          everything, just late. [Steady] restores it. *)

type step = { at : float; action : action }

type plan = { plan_name : string; duration : float; steps : step list }
(** Steps fire at their absolute virtual times; steps at or after
    [duration] are ignored by the runner (the cleanup phase owns that
    window). *)

val pp_action : Format.formatter -> action -> unit

(* --- standard plans ------------------------------------------------------------- *)

val crash_storm : n:int -> duration:float -> seed:int64 -> plan
(** Repeated waves in which each representative independently crashes (and
    later recovers), including waves that take the whole suite down. *)

val rolling_partition : n:int -> duration:float -> seed:int64 -> plan
(** Isolates each representative in turn from all the others. *)

val flaky_links : n:int -> duration:float -> seed:int64 -> plan
(** Windows of network-wide drop/duplication/reordering/latency spikes
    alternating with a very lossy single client link. *)

val torn_wal_crashes : n:int -> duration:float -> seed:int64 -> plan
(** Crashes that tear, corrupt, or truncate the victim's WAL tail; recovery
    must come back with exactly the committed prefix. *)

val coordinator_crash : n:int -> duration:float -> seed:int64 -> plan
(** Repeated short isolations of the client/coordinator node, aimed at the
    window between the prepare round and the decision (and between decision
    and commit round), sometimes combined with a representative bounce.
    Participants stranded mid-protocol must terminate on their own: lease
    expiry aborts unprepared transactions unilaterally; prepared ones go in
    doubt and resolve by querying the coordinator after the heal, a peer, or
    via crash recovery. *)

val clock_skew : n:int -> duration:float -> seed:int64 -> plan
(** Windows of per-representative virtual-clock skew and drift: fast clocks
    fire lease timers early (spurious unilateral aborts and in-doubt
    resolutions), slow ones hold leases past their true deadline. The
    network and the clients keep the true clock. *)

val disk_full : n:int -> duration:float -> seed:int64 -> plan
(** Windows in which one representative's WAL refuses every append
    ([Disk_full] or [Io_error]): mutating transactions must abort cleanly
    while reads keep flowing, and a post-heal bounce must replay exactly the
    acknowledged prefix. *)

val slow_replica : n:int -> duration:float -> seed:int64 -> plan
(** One representative at a time turns gray — alive and answering, but 6-16x
    slow on every link — for long windows, rotating victims. {!run_plan}
    arms the robustness stack for this plan by default, so health-scored
    quorum selection and hedging must keep the workload's latency flat. *)

val retry_storm : n:int -> duration:float -> seed:int64 -> plan
(** Repeated short total outages (all representatives but one crash) leave
    every client's retry schedule primed; recovery delivers the accumulated
    wave to freshly-restarted nodes. Admission control, retry budgets and
    deadline propagation (armed by default via {!run_plan}) must absorb it
    without a metastable collapse; occasional duplicate-heavy windows stress
    the dedup cache's bounded eviction mid-storm. *)

val standard_plans : ?duration:float -> n:int -> seed:int64 -> unit -> plan list
(** The five original plans (crash storm, rolling partition, flaky links,
    torn-WAL crashes, coordinator crash), with seeds derived from [seed]. *)

val all_plans : ?duration:float -> n:int -> seed:int64 -> unit -> plan list
(** {!standard_plans} plus {!clock_skew}, {!disk_full}, {!slow_replica} and
    {!retry_storm} — nine plans. New plans append at the end: {!run_all}
    seeds each plan's world from its position in this list. *)

val reconfig_plan : n:int -> n_nodes:int -> duration:float -> seed:int64 -> plan
(** Faults aimed at a running reconfiguration: brief single-representative
    partitions (the victim is cut from {i every} node — clients, admin and
    anti-entropy actor included, hence [n_nodes]) and occasional short
    bounces, separated by calm windows the driver's retry loops can make
    progress in. Used by {!run_reconfig}. *)

val shard_plan : n_reps:int -> n_nodes:int -> duration:float -> seed:int64 -> plan
(** Faults aimed at a sharded deployment: the {!reconfig_plan} shape over
    the grouped node layout — victims rotate across every group's [n_reps]
    representative slots, with calm windows sized for the migration driver's
    sliced catch-up rounds. Used by {!run_shard}. *)

val plan_catalog : (string * string * string) list
(** Every registered campaign as [(name, family, description)] — the single
    source of truth behind [repdir plans]. Families: ["standard"] (run by
    default), ["extended"] (opt-in via [--all]), ["robustness"] (opt-in via
    [--all]; runs with the overload/gray-failure stack armed),
    ["membership"] (the reconfiguration campaign, which needs its own
    runner), and ["sharding"] (the shard-split campaign, ditto). *)

(* --- running -------------------------------------------------------------------- *)

type audit = {
  checker_violations : string list;
      (** strict-serializability violations, pretty-printed *)
  scrub_violations : string list;  (** replica-scrubber findings *)
  checked_ops : int;  (** definite per-key projections the checker proved *)
  ambiguous_ops : int;  (** timed-out writes carried as optional *)
  chunks_closed : int;
  keys_given_up : int;  (** keys left unchecked by state-space caps *)
  dump : string -> unit;
      (** write the retained history window to the given path — the
          post-mortem artifact a failing campaign leaves behind *)
}
(** What the consistency auditor saw, when the plan ran with [~audit:true]:
    the recorded multi-client history judged by the strict-serializability
    checker ({!Repdir_audit.Checker}) and the quiesce-time replica scrubber
    ({!Repdir_audit.Scrub}). *)

type outcome = {
  plan : string;
  world_seed : int64;  (** the seed this plan's world ran under — the repro handle *)
  attempted : int;
  succeeded : int;
  unavailable : int;  (** ops that failed even after client-level retries *)
  violations : int;  (** responses disagreeing with the sequential model *)
  final_keys_checked : int;
  rpc_retries : int;  (** transport retransmissions *)
  msgs_dropped : int;
  msgs_duplicated : int;
  msgs_reordered : int;
  wal_records_repaired : int;  (** log records scrubbed by recoveries *)
  sim_events : int;  (** total simulator events — a reproducibility fingerprint *)
  leases_expired : int;  (** transaction leases that ran out, all reps *)
  unilateral_aborts : int;  (** lease expiries terminated alone (unprepared) *)
  indoubt_by_coordinator : int;  (** in-doubt resolutions answered by the coordinator *)
  indoubt_by_peer : int;  (** in-doubt resolutions answered by a peer rep *)
  indoubt_recovered : int;  (** resolved in-doubt transactions restored by recovery *)
  orphan_locks : int;
      (** locks still granted or queued anywhere at quiesce — must be 0 *)
  indoubt_open : int;  (** transactions still in doubt at quiesce — must be 0 *)
  cache_stats : Repdir_cache.Cache.counters option;
      (** aggregated client-cache counters; present iff [~cache:true] *)
  audit : audit option;  (** present iff the plan ran with [~audit:true] *)
}

val audit_violations : outcome -> int
(** Checker plus scrubber violations (0 when the plan was not audited). *)

val total_violations : outcome -> int
(** Sequential-model violations plus {!audit_violations}. *)

val run_plan :
  ?seed:int64 ->
  ?config:Repdir_quorum.Config.t ->
  ?key_space:int ->
  ?op_gap:float ->
  ?lease:float ->
  ?power_cycle:bool ->
  ?audit:bool ->
  ?clients:int ->
  ?robust:bool ->
  ?cache:bool ->
  plan ->
  outcome
(** Defaults: the paper's 3-2-2 suite, 30 keys, exponential think time with
    mean 2.0 between operations, a 60-unit transaction lease. [power_cycle]
    (default false) restores the retired cleanup behaviour — restarting
    every representative before the final audit — for A/B comparison
    against the termination protocol.

    [robust] arms the whole overload/gray-failure stack: representative
    admission control ({!Repdir_rep.Rep.default_admission}), a shared
    health-score table driving the [Healthy] picker, hedged reads (2.0-unit
    floor), a 30-unit per-operation deadline budget, and per-client retry
    budgets. It defaults to [true] exactly for the plans whose point that
    stack is ({!slow_replica}, {!retry_storm}) and [false] for every
    pre-existing plan, whose historical event streams are unchanged.

    [audit] (default false) attaches a history recorder to every client and
    feeds the completed events to the online strict-serializability checker;
    at quiesce the replica scrubber sweeps the settled representatives. The
    findings land in the outcome's [audit] field. Recording is pure
    observation: an audited run replays the exact event stream of an
    unaudited one.

    [clients] (default 1) runs that many concurrent clients. With one
    client every response is checked against the inline sequential model
    (the seed behaviour); with more, the interleavings make that model
    meaningless, so the inline checks are skipped and the history checker
    is the oracle (run with [~audit:true]).

    [cache] (default false) attaches a version-validated client cache
    ({!Repdir_cache.Cache}) to every client's suite — the whole point being
    that the inline model, the checker, and the scrubber must stay exactly
    as clean as without it. Aggregated cache counters land in
    [cache_stats]. *)

(* --- the reconfiguration campaign ----------------------------------------------- *)

type reconfig_report = {
  join_started_at : float;  (** virtual time the join began *)
  joined_at : float option;
      (** when the joiner's promotion (stable record, fully broadcast)
          completed; [None] if the driver could not finish in time *)
  retired_at : float option;  (** same, for the retirement of slot 0 *)
  digest_gate_ok : bool;
      (** the promotion gate held: a converge mega-session saw the joiner's
          gap-map root digest equal every peer's, atomically, before the
          epoch bump *)
  converge_attempts : int;  (** catch-up sessions run for the joiner *)
  drain_attempts : int;  (** drain sessions run for the retiree *)
  final_epoch : int;  (** 4 for a completed join + retire *)
  steady_ops : int;  (** workload ops completed before the join began *)
  steady_span : float;  (** length of that window, virtual time *)
  during_join_ops : int;  (** ops completed while the join was in flight *)
  during_join_span : float;
}
(** What the reconfiguration driver achieved — the campaign's liveness side,
    complementing the safety verdict in the {!outcome}'s audit. *)

val pp_reconfig_report : Format.formatter -> reconfig_report -> unit

val run_reconfig :
  ?seed:int64 ->
  ?duration:float ->
  ?key_space:int ->
  ?op_gap:float ->
  ?lease:float ->
  ?audit:bool ->
  ?clients:int ->
  ?faults:bool ->
  ?join_at:float ->
  unit ->
  outcome * reconfig_report
(** One scripted online reconfiguration under the faults of
    {!reconfig_plan}, end to end, with a live recorded workload throughout:

    the world starts as the paper's 3-2-2 suite plus a zero-vote [Joining]
    slot; the driver moves to a joint record giving the joiner one vote
    (4 votes, R=2, W=3), fences the old epoch (installation covers the
    write quorum of every governing view before the driver proceeds),
    catches the joiner up with {!Repdir_sync.Sync.converge} mega-sessions
    until the atomic root-digest gate passes, promotes to the stable
    4-member record, and later drains slot 0 back out the same way
    (ending at the 3-member [0;1;1;1] R=2 W=2 view, epoch 4). Completed
    transitions are broadcast to every representative before the next
    begins, so no client is ever more than one record behind.

    [audit] defaults to {b true} here: the point of the campaign is that
    the strict-serializability checker and the replica scrubber (which
    also demands a single agreed epoch, equal to the driver's final one)
    stay clean across epoch changes. Defaults: duration 1500, 24 keys,
    2 clients, op gap 2.0, lease 60.

    [faults] (default true) runs the {!reconfig_plan} schedule; [false]
    gives the fault-free variant the throughput benchmark measures
    (steady-state versus during-join ops must not be confounded by
    partition-induced unavailability). [join_at] (default 80) is the
    virtual time the driver starts the join — the benchmark raises it to
    widen the steady-state measurement window. *)

(* --- the sharding campaign ------------------------------------------------------- *)

type shard_report = {
  split_started_at : float;  (** virtual time the split began *)
  flipped_at : float option;
      (** when the landed map's epoch covered a write quorum of both the
          source and target groups' votes; [None] if the driver could not
          finish in time (the map stays [Moving] — safe indefinitely) *)
  shard_gate_ok : bool;
      (** the copy gate held: every replica of both groups reported the same
          {!Repdir_rep.Rep.digest_range} over the (write-frozen) moving
          slice before the flip *)
  catchup_sessions : int;  (** sliced cross-group sync sessions run *)
  gate_attempts : int;  (** hub rounds (each ends with a gate check) *)
  final_shard_epoch : int;  (** 2 for a completed split *)
  epoch_agreed : bool;
      (** every representative of every group held the final map's epoch
          after the quiesce broadcast *)
  n_groups : int;
  n_shards : int;  (** shards in the final map *)
  split_steady_ops : int;  (** workload ops completed before the split began *)
  split_steady_span : float;  (** length of that window, virtual time *)
  during_split_ops : int;  (** ops completed while the slice was in flight *)
  during_split_span : float;
}
(** What the shard-migration driver achieved — the campaign's liveness side,
    complementing the safety verdict in the {!outcome}'s audit. *)

val pp_shard_report : Format.formatter -> shard_report -> unit

val run_shard :
  ?seed:int64 ->
  ?duration:float ->
  ?key_space:int ->
  ?op_gap:float ->
  ?lease:float ->
  ?audit:bool ->
  ?clients:int ->
  ?faults:bool ->
  ?groups:int ->
  ?split_at:float ->
  ?config:Repdir_quorum.Config.t ->
  unit ->
  outcome * shard_report
(** One scripted shard split under the faults of {!shard_plan}, end to end,
    with a live recorded workload throughout.

    The world is a {!Shard_world} of [groups] (default 2, must be [>= 2])
    replica groups, each running [config] (default the paper's 3-2-2).
    Groups [0 .. groups-2] serve equal slices of the key space from epoch 0;
    group [groups-1] starts empty. At [split_at] (default 80) the driver
    splits the last shard at the [(groups-1)/groups] point:
    {!Repdir_shard.Shard_map.begin_split} puts the upper slice into
    [Moving], and the new epoch is installed on a write quorum of the source
    group's votes before the copy starts, freezing writes to the slice.
    Sliced cross-group sync sessions (hub rounds through the target's first
    replica) copy the slice until every replica of both groups reports the
    same slice digest, then {!Repdir_shard.Shard_map.finish_move} lands it —
    installed on the source group first (fencing the stale readers still
    routed there), then the target, then broadcast to every representative
    at quiesce.

    The workload runs through per-client {!Repdir_shard.Router}s: single-key
    operations, boundary [next] probes across the seam, and cross-shard
    read-write transactions committed with the router's two-phase protocol.
    With one client every response is checked against the inline sequential
    model; with more, [audit] (default {b true}) makes the
    strict-serializability checker the oracle, and the replica scrubber
    sweeps each group independently at quiesce. [faults] (default true) runs
    the {!shard_plan} schedule; [false] gives the fault-free variant the
    throughput benchmark measures. Defaults: duration 1500, 24 keys,
    2 clients, op gap 2.0, lease 60. *)

val run_all :
  ?seed:int64 ->
  ?config:Repdir_quorum.Config.t ->
  ?duration:float ->
  ?key_space:int ->
  ?op_gap:float ->
  ?lease:float ->
  ?power_cycle:bool ->
  ?audit:bool ->
  ?clients:int ->
  ?cache:bool ->
  ?all:bool ->
  unit ->
  outcome list
(** Run the standard plans — all nine (adding {!clock_skew}, {!disk_full},
    {!slow_replica} and {!retry_storm}) when [all] is true — each in a fresh
    world with a seed derived from [seed]. *)

val table_of_outcomes : outcome list -> Repdir_util.Table.t

val table :
  ?seed:int64 ->
  ?config:Repdir_quorum.Config.t ->
  ?duration:float ->
  ?key_space:int ->
  ?op_gap:float ->
  ?lease:float ->
  ?power_cycle:bool ->
  ?audit:bool ->
  ?clients:int ->
  ?all:bool ->
  unit ->
  Repdir_util.Table.t
(** {!run_all} rendered as one row per plan plus a violation total. *)
