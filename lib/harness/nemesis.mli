(** Nemesis: deterministic fault-injection campaigns over the simulator.

    A {!plan} is a declarative, timed schedule of adversarial actions —
    crash storms, rolling partitions, probabilistic link gremlins
    (drop/duplicate/reorder/latency spikes), and crashes that tear or
    corrupt the write-ahead log's tail. {!run_plan} drives a live
    random workload through the plan on a {!Sim_world}, checking every
    response against a sequential model, then heals the world, lets the
    transaction-termination protocol drain (leases expire abandoned
    transactions; in-doubt ones resolve against the coordinator or a peer),
    and verifies the whole key space again — with {i no} power-cycle: any
    lock still held at quiesce is reported as an orphan. All randomness —
    the plan builders,
    the workload, the link gremlins, the retry jitter — derives from
    explicit seeds, so a run is bit-reproducible.

    The transport is the hardened one: at-most-once RPC with request-id
    deduplication and bounded exponential-backoff retries, two-phase commit,
    and client-level retries via {!Repdir_core.Suite.with_retries} — the
    point of the exercise is that {i zero} sequential-model violations
    survive all five standard plans, and every lock manager drains to
    zero without anyone pulling a power plug. *)

open Repdir_sim
module Wal = Repdir_txn.Wal

(* --- fault-plan DSL ------------------------------------------------------------ *)

type action =
  | Crash of int  (** representative index *)
  | Recover of int
  | Torn_crash of int * Wal.storage_fault
      (** crash with tail damage hitting the victim's WAL *)
  | Partition of int list * int list  (** cut every link between the groups *)
  | Heal  (** restore all links *)
  | Flaky of Net.faults  (** network-wide probabilistic gremlins *)
  | Flaky_link of int * int * Net.faults  (** per-link override *)
  | Steady  (** clear all link gremlins *)

type step = { at : float; action : action }

type plan = { plan_name : string; duration : float; steps : step list }
(** Steps fire at their absolute virtual times; steps at or after
    [duration] are ignored by the runner (the cleanup phase owns that
    window). *)

val pp_action : Format.formatter -> action -> unit

(* --- standard plans ------------------------------------------------------------- *)

val crash_storm : n:int -> duration:float -> seed:int64 -> plan
(** Repeated waves in which each representative independently crashes (and
    later recovers), including waves that take the whole suite down. *)

val rolling_partition : n:int -> duration:float -> seed:int64 -> plan
(** Isolates each representative in turn from all the others. *)

val flaky_links : n:int -> duration:float -> seed:int64 -> plan
(** Windows of network-wide drop/duplication/reordering/latency spikes
    alternating with a very lossy single client link. *)

val torn_wal_crashes : n:int -> duration:float -> seed:int64 -> plan
(** Crashes that tear, corrupt, or truncate the victim's WAL tail; recovery
    must come back with exactly the committed prefix. *)

val coordinator_crash : n:int -> duration:float -> seed:int64 -> plan
(** Repeated short isolations of the client/coordinator node, aimed at the
    window between the prepare round and the decision (and between decision
    and commit round), sometimes combined with a representative bounce.
    Participants stranded mid-protocol must terminate on their own: lease
    expiry aborts unprepared transactions unilaterally; prepared ones go in
    doubt and resolve by querying the coordinator after the heal, a peer, or
    via crash recovery. *)

val standard_plans : ?duration:float -> n:int -> seed:int64 -> unit -> plan list
(** The five plans above, with seeds derived from [seed]. *)

(* --- running -------------------------------------------------------------------- *)

type outcome = {
  plan : string;
  attempted : int;
  succeeded : int;
  unavailable : int;  (** ops that failed even after client-level retries *)
  violations : int;  (** responses disagreeing with the sequential model *)
  final_keys_checked : int;
  rpc_retries : int;  (** transport retransmissions *)
  msgs_dropped : int;
  msgs_duplicated : int;
  msgs_reordered : int;
  wal_records_repaired : int;  (** log records scrubbed by recoveries *)
  sim_events : int;  (** total simulator events — a reproducibility fingerprint *)
  leases_expired : int;  (** transaction leases that ran out, all reps *)
  unilateral_aborts : int;  (** lease expiries terminated alone (unprepared) *)
  indoubt_by_coordinator : int;  (** in-doubt resolutions answered by the coordinator *)
  indoubt_by_peer : int;  (** in-doubt resolutions answered by a peer rep *)
  indoubt_recovered : int;  (** resolved in-doubt transactions restored by recovery *)
  orphan_locks : int;
      (** locks still granted or queued anywhere at quiesce — must be 0 *)
  indoubt_open : int;  (** transactions still in doubt at quiesce — must be 0 *)
}

val run_plan :
  ?seed:int64 ->
  ?config:Repdir_quorum.Config.t ->
  ?key_space:int ->
  ?op_gap:float ->
  ?lease:float ->
  ?power_cycle:bool ->
  plan ->
  outcome
(** Defaults: the paper's 3-2-2 suite, 30 keys, exponential think time with
    mean 2.0 between operations, a 60-unit transaction lease. [power_cycle]
    (default false) restores the retired cleanup behaviour — restarting
    every representative before the final audit — for A/B comparison
    against the termination protocol. *)

val run_all :
  ?seed:int64 ->
  ?config:Repdir_quorum.Config.t ->
  ?duration:float ->
  ?key_space:int ->
  ?op_gap:float ->
  ?lease:float ->
  ?power_cycle:bool ->
  unit ->
  outcome list
(** Run the five standard plans, each in a fresh world with a seed derived
    from [seed]. *)

val table_of_outcomes : outcome list -> Repdir_util.Table.t

val table :
  ?seed:int64 ->
  ?config:Repdir_quorum.Config.t ->
  ?duration:float ->
  ?key_space:int ->
  ?op_gap:float ->
  ?lease:float ->
  ?power_cycle:bool ->
  unit ->
  Repdir_util.Table.t
(** {!run_all} rendered as one row per plan plus a violation total. *)
