open Repdir_util
open Repdir_quorum

(* For every replication degree: read-one/write-all, the balanced minimal
   write quorum, and read-all with the minimal write quorum. *)
let figure14_configs =
  let per_n n =
    let w_min = (n / 2) + 1 in
    let cands = [ (1, n); (n + 1 - w_min, w_min); (n, w_min) ] in
    List.sort_uniq compare cands
    |> List.map (fun (r, w) -> Config.simple ~n ~r ~w)
  in
  List.concat_map per_n [ 1; 2; 3; 4; 5 ]

let f = Table.cell_float

let figure14 ?(seed = 1983L) ?(ops = 10_000) ?(entries = 100) () =
  let table =
    Table.create
      ~header:
        [
          "Configuration";
          "Entries in ranges coalesced";
          "Deletions while coalescing";
          "Insertions while coalescing";
        ]
      ()
  in
  List.iter
    (fun config ->
      let o = Experiment.run ~seed ~config ~n_entries:entries ~ops () in
      Table.add_row table
        [
          Config.to_string config;
          f (Stats.mean o.stats.entries_coalesced);
          f (Stats.mean o.stats.deletions_while_coalescing);
          f (Stats.mean o.stats.insertions_while_coalescing);
        ])
    figure14_configs;
  table

let figure15 ?(seed = 1983L) ?(ops = 100_000) ?(sizes = [ 100; 1_000; 10_000 ]) () =
  let table =
    Table.create
      ~header:[ "Statistic"; "Entries"; "Avg"; "Max"; "Std Dev" ]
      ()
  in
  let outcomes =
    List.map
      (fun size ->
        (size, Experiment.run ~seed ~config:(Config.simple ~n:3 ~r:2 ~w:2) ~n_entries:size ~ops ()))
      sizes
  in
  let row label pick =
    List.iter
      (fun (size, (o : Experiment.outcome)) ->
        let s : Stats.t = pick o.Experiment.stats in
        Table.add_row table
          [
            label;
            string_of_int size;
            f (Stats.mean s);
            Printf.sprintf "%g" (Stats.max s);
            f (Stats.stddev s);
          ])
      outcomes;
    Table.add_separator table
  in
  row "Entries in ranges coalesced" (fun s -> s.Experiment.entries_coalesced);
  row "Deletions while coalescing" (fun s -> s.Experiment.deletions_while_coalescing);
  row "Insertions while coalescing" (fun s -> s.Experiment.insertions_while_coalescing);
  table

let quorum_stability ?(seed = 1983L) ?(ops = 10_000) ?(entries = 100) () =
  let table =
    Table.create
      ~header:
        [
          "Quorum policy";
          "Entries in ranges coalesced";
          "Deletions while coalescing";
          "Insertions while coalescing";
        ]
      ()
  in
  let config = Config.simple ~n:3 ~r:2 ~w:2 in
  let run label picker =
    let o = Experiment.run ~seed ~picker ~config ~n_entries:entries ~ops () in
    Table.add_row table
      [
        label;
        f (Stats.mean o.stats.entries_coalesced);
        f (Stats.mean o.stats.deletions_while_coalescing);
        f (Stats.mean o.stats.insertions_while_coalescing);
      ]
  in
  run "random (paper §4)" Picker.Random;
  run "stable (fixed order)" (Picker.Fixed [| 0; 1; 2 |]);
  table

let availability ?(p_ups = [ 0.5; 0.9; 0.95; 0.99 ]) () =
  let header =
    "Configuration"
    :: List.concat_map
         (fun p -> [ Printf.sprintf "R avail p=%.2f" p; Printf.sprintf "W avail p=%.2f" p ])
         p_ups
  in
  let table = Table.create ~header () in
  List.iter
    (fun config ->
      let cells =
        List.concat_map
          (fun p_up ->
            [
              Printf.sprintf "%.4f" (Availability.read_availability config ~p_up);
              Printf.sprintf "%.4f" (Availability.write_availability config ~p_up);
            ])
          p_ups
      in
      Table.add_row table (Config.to_string config :: cells))
    figure14_configs;
  table

(* Shared traffic runner: drives the §4 workload mix against one suite and
   reports, per operation kind, the average representative calls and the
   average true wire messages (calls + batch rounds + deferred notices that
   had to travel on their own). Deferred commit notices ride on later
   operations' messages, so with batching the steady-state per-op delta
   already charges each op for the traffic it induces; a final flush clears
   the tail so nothing is left unaccounted. *)
let traffic_run ?(seed = 1983L) ?(ops = 4_000) ?(entries = 100) ?(two_phase = false)
    ?(batching = false) ~config () =
  let open Repdir_core in
  let root = Rng.create seed in
  let workload_rng = Rng.split root in
  let n = Config.n_reps config in
  let reps =
    Array.init n (fun i -> Repdir_rep.Rep.create ~name:(Printf.sprintf "rep%d" i) ())
  in
  let transport = Transport.local reps in
  let txns = Repdir_txn.Txn.Manager.create () in
  let suite =
    Suite.create ~seed:(Rng.int64 root) ~two_phase ~batching ~config ~transport ~txns ()
  in
  let workload =
    Repdir_workload.Workload.create ~lookup_fraction:0.25 ~update_fraction:0.25
      ~rng:workload_rng ~target_size:entries ()
  in
  List.iter
    (fun op ->
      match op with
      | Repdir_workload.Workload.Insert (k, v) -> ignore (Suite.insert suite k v)
      | _ -> assert false)
    (Repdir_workload.Workload.initial_fill workload);
  Suite.flush_notices suite;
  let call_sums = Hashtbl.create 4 in
  let msg_sums = Hashtbl.create 4 in
  let counts = Hashtbl.create 4 in
  let bump tbl kind v =
    Hashtbl.replace tbl kind (v + Option.value ~default:0 (Hashtbl.find_opt tbl kind))
  in
  for _ = 1 to ops do
    let calls_before = transport.Transport.rpc_count in
    let msgs_before = transport.Transport.msg_count in
    let kind =
      match Repdir_workload.Workload.next workload with
      | Repdir_workload.Workload.Lookup k ->
          ignore (Suite.lookup suite k);
          "lookup"
      | Repdir_workload.Workload.Insert (k, v) ->
          ignore (Suite.insert suite k v);
          "insert"
      | Repdir_workload.Workload.Update (k, v) ->
          ignore (Suite.update suite k v);
          "update"
      | Repdir_workload.Workload.Delete k ->
          ignore (Suite.delete suite k);
          "delete"
    in
    bump call_sums kind (transport.Transport.rpc_count - calls_before);
    bump msg_sums kind (transport.Transport.msg_count - msgs_before);
    bump counts kind 1
  done;
  Suite.flush_notices suite;
  let avg tbl kind =
    match (Hashtbl.find_opt tbl kind, Hashtbl.find_opt counts kind) with
    | Some s, Some c when c > 0 -> Some (float_of_int s /. float_of_int c)
    | _ -> None
  in
  List.map
    (fun kind -> (kind, (avg call_sums kind, avg msg_sums kind)))
    [ "lookup"; "insert"; "update"; "delete" ]

let messages_per_op ?seed ?ops ?entries ?two_phase ?batching ~config () =
  traffic_run ?seed ?ops ?entries ?two_phase ?batching ~config ()
  |> List.filter_map (fun (kind, (_, msgs)) ->
         Option.map (fun m -> (kind, m)) msgs)

(* Per-operation traffic: representative calls (the paper's unit — quantifies
   "there is no performance penalty ... except on Delete operations", §1
   abstract) next to true wire messages for a two-phase suite, unbatched vs
   batched. *)
let messages ?(seed = 1983L) ?(ops = 4_000) ?(entries = 100) () =
  let table =
    Table.create
      ~header:[ "Configuration"; "Metric"; "Lookup"; "Insert"; "Update"; "Delete" ]
      ()
  in
  let cell = function Some v -> f v | None -> "-" in
  List.iter
    (fun config ->
      let row label pick stats =
        Table.add_row table
          (Config.to_string config :: label
          :: List.map (fun (_, pair) -> cell (pick pair)) stats)
      in
      let calls = traffic_run ~seed ~ops ~entries ~config () in
      row "calls/op (1-phase)" fst calls;
      let unbatched = traffic_run ~seed ~ops ~entries ~two_phase:true ~config () in
      row "msgs/op (2pc)" snd unbatched;
      let batched =
        traffic_run ~seed ~ops ~entries ~two_phase:true ~batching:true ~config ()
      in
      row "msgs/op (2pc, batched)" snd batched;
      Table.add_separator table)
    figure14_configs;
  table

(* Storage and write-traffic across strategies under identical churn. *)
let space_and_traffic ?(seed = 1983L) ?(ops = 3_000) ?(entries = 100) () =
  let open Repdir_baselines in
  let config = Config.simple ~n:3 ~r:2 ~w:2 in
  let table =
    Table.create
      ~header:
        [
          "Strategy";
          "Live entries";
          "Physical entries (max replica)";
          "Entries shipped per modification";
        ]
      ()
  in
  let churn ~insert ~update ~delete =
    (* The §4 mix, shared by every strategy via its own workload mirror. *)
    let w =
      Repdir_workload.Workload.create ~rng:(Rng.create seed) ~target_size:entries ()
    in
    let mods = ref 0 in
    let apply op =
      incr mods;
      match op with
      | Repdir_workload.Workload.Insert (k, v) -> insert k v
      | Repdir_workload.Workload.Update (k, v) -> update k v
      | Repdir_workload.Workload.Delete k -> delete k
      | Repdir_workload.Workload.Lookup _ -> decr mods
    in
    List.iter apply (Repdir_workload.Workload.initial_fill w);
    for _ = 1 to ops do
      apply (Repdir_workload.Workload.next w)
    done;
    !mods
  in
  let row name ~live ~physical ~shipped ~mods =
    Table.add_row table
      [
        name;
        string_of_int live;
        string_of_int physical;
        Table.cell_float (float_of_int shipped /. float_of_int mods);
      ]
  in
  (* The paper's algorithm over real representatives. *)
  let () =
    let open Repdir_rep in
    let open Repdir_core in
    let reps = Array.init 3 (fun i -> Rep.create ~name:(Printf.sprintf "r%d" i) ()) in
    let suite =
      Suite.create ~seed ~config ~transport:(Transport.local reps)
        ~txns:(Repdir_txn.Txn.Manager.create ())
        ()
    in
    let mods =
      churn
        ~insert:(fun k v -> ignore (Suite.insert suite k v))
        ~update:(fun k v -> ignore (Suite.update suite k v))
        ~delete:(fun k -> ignore (Suite.delete suite k))
    in
    let physical = Array.fold_left (fun acc r -> max acc (Rep.size r)) 0 reps in
    let shipped =
      Array.fold_left (fun acc r -> acc + (Rep.counters r).Rep.inserts) 0 reps
    in
    let live =
      (* per quorum reads; the workload keeps it at the target *)
      entries
    in
    row "gap-versioned (this paper)" ~live ~physical ~shipped ~mods
  in
  let () =
    let tb = Tombstone.create ~seed ~config () in
    let mods =
      churn
        ~insert:(fun k v -> ignore (Tombstone.insert tb k v))
        ~update:(fun k v -> ignore (Tombstone.update tb k v))
        ~delete:(fun k -> ignore (Tombstone.delete tb k))
    in
    row "tombstones (never reclaimed)" ~live:(Tombstone.size tb)
      ~physical:(Tombstone.physical_size tb)
      ~shipped:(2 * mods) (* one entry to each of W = 2 members *)
      ~mods
  in
  let () =
    let fv = File_voting.create ~seed ~config () in
    let mods =
      churn
        ~insert:(fun k v -> ignore (File_voting.insert fv k v))
        ~update:(fun k v -> ignore (File_voting.update fv k v))
        ~delete:(fun k -> ignore (File_voting.delete fv k))
    in
    row "file voting (whole directory)" ~live:(File_voting.size fv)
      ~physical:(File_voting.size fv)
      ~shipped:(File_voting.entries_written fv) ~mods
  in
  let () =
    let sp = Static_partition.create ~seed ~config ~partitions:8 () in
    let mods =
      churn
        ~insert:(fun k v -> ignore (Static_partition.insert sp k v))
        ~update:(fun k v -> ignore (Static_partition.update sp k v))
        ~delete:(fun k -> ignore (Static_partition.delete sp k))
    in
    row "static partitions (8)" ~live:(Static_partition.size sp)
      ~physical:(Static_partition.size sp)
      ~shipped:(Static_partition.entries_written sp) ~mods
  in
  let () =
    let u = Unanimous.create ~seed ~n:3 () in
    let mods =
      churn
        ~insert:(fun k v -> ignore (Unanimous.insert u k v))
        ~update:(fun k v -> ignore (Unanimous.update u k v))
        ~delete:(fun k -> ignore (Unanimous.delete u k))
    in
    row "unanimous update" ~live:(Unanimous.size u) ~physical:(Unanimous.size u)
      ~shipped:(3 * mods) ~mods
  in
  table

(* §4 batching: representative calls per delete with chained neighbour
   requests of increasing depth. *)
let batching ?(seed = 1983L) ?(ops = 4_000) ?(entries = 100) ?(depths = [ 1; 3; 5 ]) () =
  let open Repdir_core in
  let table =
    Table.create ~header:[ "Configuration"; "Batch depth"; "Calls per delete" ] ()
  in
  List.iter
    (fun config ->
      List.iter
        (fun depth ->
          let root = Rng.create seed in
          let workload_rng = Rng.split root in
          let n = Config.n_reps config in
          let reps =
            Array.init n (fun i -> Repdir_rep.Rep.create ~name:(Printf.sprintf "rep%d" i) ())
          in
          let transport = Transport.local reps in
          let suite =
            Suite.create ~seed:(Rng.int64 root) ~batch_depth:depth ~config ~transport
              ~txns:(Repdir_txn.Txn.Manager.create ())
              ()
          in
          let workload =
            Repdir_workload.Workload.create ~rng:workload_rng ~target_size:entries ()
          in
          List.iter
            (function
              | Repdir_workload.Workload.Insert (k, v) -> ignore (Suite.insert suite k v)
              | _ -> assert false)
            (Repdir_workload.Workload.initial_fill workload);
          let delete_calls = ref 0 and deletes = ref 0 in
          for _ = 1 to ops do
            match Repdir_workload.Workload.next workload with
            | Repdir_workload.Workload.Delete k ->
                let before = transport.Transport.rpc_count in
                ignore (Suite.delete suite k);
                incr deletes;
                delete_calls := !delete_calls + (transport.Transport.rpc_count - before)
            | Repdir_workload.Workload.Insert (k, v) -> ignore (Suite.insert suite k v)
            | Repdir_workload.Workload.Update (k, v) -> ignore (Suite.update suite k v)
            | Repdir_workload.Workload.Lookup k -> ignore (Suite.lookup suite k)
          done;
          Table.add_row table
            [
              Config.to_string config;
              string_of_int depth;
              f (float_of_int !delete_calls /. float_of_int (max 1 !deletes));
            ])
        depths;
      Table.add_separator table)
    [ Config.simple ~n:3 ~r:2 ~w:2; Config.simple ~n:5 ~r:3 ~w:3 ];
  table
