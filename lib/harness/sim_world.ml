open Repdir_sim
open Repdir_rep
open Repdir_quorum
open Repdir_core
open Repdir_txn

type t = {
  sim : Sim.t;
  net : Net.t;
  reps : Rep.t array;
  servers : Rpc.server array;
  txns : Txn.Manager.t;
  config : Config.t;
  rpc_timeout : float;
  rpc_attempts : int;
  rpc_backoff : float;
  seed : int64;
  n_clients : int;
  parallel_rpc : bool;
  coordinators : Coordinator.t array;
  two_phase : bool;
  lock_group : Repdir_lock.Lock_manager.group;
  (* Per-representative virtual-clock skew: representative [i] reads
     [offset.(i) + rate.(i) * Sim.now] and schedules a delay [d] as
     [d / rate.(i)] of simulated time. Defaults (0, 1) reproduce the shared
     clock bit-for-bit, so pre-existing event streams are unchanged. *)
  clock_offset : float array;
  clock_rate : float array;
}

(* Fork/join over simulator processes: every branch runs concurrently; the
   caller suspends until all complete. The first (lowest-index) exception is
   re-raised after the join, so no branch is abandoned mid-flight. *)
let parallel_fanout sim =
  let map : 'a 'b. ('a -> 'b) -> 'a array -> 'b array =
   fun f arr ->
    let n = Array.length arr in
    if n = 0 then [||]
    else begin
      let results = Array.make n None in
      let remaining = ref n in
      let wake = ref ignore in
      Array.iteri
        (fun i x ->
          Sim.spawn sim (fun () ->
              let r = try Ok (f x) with e -> Error e in
              results.(i) <- Some r;
              decr remaining;
              if !remaining = 0 then !wake ()))
        arr;
      Sim.suspend sim (fun w -> wake := w);
      Array.map
        (function Some (Ok r) -> r | Some (Error e) -> raise e | None -> assert false)
        results
    end
  in
  { Transport.map }

(* First-success-wins race between a primary call and a hedge that starts
   only after a delay ({!Transport.race}). Both branches run as simulator
   processes; the caller suspends until one succeeds or every started branch
   has failed. The losing branch runs to completion in the background — its
   result and exceptions are discarded, as a real hedged RPC's late reply
   would be. *)
let parallel_race sim =
  let run : 'r. (unit -> 'r) -> after:float -> (unit -> 'r) -> 'r =
   fun primary ~after backup ->
    let result = ref None in
    let primary_error = ref None in
    let primary_done = ref false in
    let backup_started = ref false in
    let backup_done = ref false in
    let wake = ref ignore in
    let settled () = Option.is_some !result in
    Sim.spawn sim (fun () ->
        (match primary () with
        | r -> if not (settled ()) then result := Some r
        | exception e -> primary_error := Some e);
        primary_done := true;
        !wake ());
    Sim.at sim
      (Sim.now sim +. after)
      (fun () ->
        if not (!primary_done || settled ()) then begin
          backup_started := true;
          Sim.spawn sim (fun () ->
              (match backup () with
              | r -> if not (settled ()) then result := Some r
              | exception _ -> ());
              backup_done := true;
              !wake ())
        end);
    let finished () =
      settled () || (!primary_done && ((not !backup_started) || !backup_done))
    in
    while not (finished ()) do
      Sim.suspend sim (fun w -> wake := w)
    done;
    (* A branch still running must not resume the caller again after the
       race is decided: neutralize the stored continuation. *)
    wake := ignore;
    match !result with
    | Some r -> r
    | None -> (
        match !primary_error with Some e -> raise e | None -> assert false)
  in
  { Transport.run }

(* Termination queries from an in-doubt representative [r]: ask the
   coordinator for its decision; if it is unreachable, ask the peer
   representatives what they know. Runs inside a simulator process (it
   blocks on RPC). Peer answers are final — see {!Rep.outcome_of}. *)
let resolver_for t r ~coord txn =
  let n = Config.n_reps t.config in
  let from_coordinator =
    if coord >= n && coord < n + t.n_clients then
      match
        Rpc.call t.net ~src:r ~dst:coord ~timeout:t.rpc_timeout (fun () ->
            Coordinator.resolve t.coordinators.(coord - n) txn)
      with
      | Ok Coordinator.Committed -> Some (`Committed, Rep.By_coordinator)
      | Ok Coordinator.Aborted -> Some (`Aborted, Rep.By_coordinator)
      | Error Rpc.Timeout -> None
    else None
  in
  match from_coordinator with
  | Some _ as answer -> answer
  | None ->
      let rec ask p =
        if p >= n then None
        else if p = r then ask (p + 1)
        else
          match
            Rpc.call t.net ~src:r ~dst:p ~timeout:t.rpc_timeout (fun () ->
                Rep.outcome_of t.reps.(p) txn)
          with
          | Ok `Committed -> Some (`Committed, Rep.By_peer)
          | Ok `Aborted -> Some (`Aborted, Rep.By_peer)
          | Ok `Unknown | Error Rpc.Timeout -> ask (p + 1)
          | exception Rep.Crashed _ -> ask (p + 1)
      in
      ask 0

let create ?(seed = 1L) ?latency ?(rpc_timeout = 50.0) ?(rpc_attempts = 1)
    ?(rpc_backoff = 5.0) ?(n_clients = 1) ?(parallel_rpc = true) ?(two_phase = false)
    ?lease ?group_commit ?admission ~config () =
  if rpc_attempts < 1 then invalid_arg "Sim_world: need at least one RPC attempt";
  let sim = Sim.create ~seed () in
  let n = Config.n_reps config in
  (* One extra node for the anti-entropy actor, allocated after the clients
     so client node ids (and with them every pre-existing experiment's event
     stream) are unchanged; the node is silent unless [make_sync] is used. *)
  let net = Net.create sim ~n_nodes:(n + n_clients + 1) ?latency () in
  let waiter register = Sim.suspend sim register in
  let lock_group = Repdir_lock.Lock_manager.new_group () in
  let clock_offset = Array.make n 0.0 in
  let clock_rate = Array.make n 1.0 in
  (* Timer callbacks must run as full simulator processes ([Sim.spawn], not
     [Sim.at]): lease expiry and termination queries block on locks and
     RPC. Each representative reads the virtual clock through its own skew
     parameters — a node with a fast clock sees leases run out early, a slow
     one holds them too long — which is exactly the fault family the
     clock-skew nemesis plan injects. *)
  let timers_for i =
    {
      Rep.now = (fun () -> clock_offset.(i) +. (clock_rate.(i) *. Sim.now sim));
      after =
        (fun d k -> Sim.spawn sim ~at:(Sim.now sim +. (d /. clock_rate.(i))) k);
    }
  in
  let reps =
    Array.init n (fun i ->
        Rep.create ~waiter ~lock_group ~timers:(timers_for i) ?lease ?group_commit
          ?admission ~name:(Printf.sprintf "rep%d" i) ())
  in
  let t =
    {
      sim;
      net;
      reps;
      servers = Array.init n (fun _ -> Rpc.server ());
      txns = Txn.Manager.create ();
      config;
      rpc_timeout;
      rpc_attempts;
      rpc_backoff;
      seed;
      n_clients;
      parallel_rpc;
      (* Each client doubles as the coordinator of its own transactions; the
         coordinator id is the client's network node. *)
      coordinators = Array.init n_clients (fun i -> Coordinator.create ~id:(n + i) ());
      two_phase;
      lock_group;
      clock_offset;
      clock_rate;
    }
  in
  (* The resolver is always installed — in-doubt transactions can arise from
     any crash between prepare and decision, lease or no lease, and blocking
     them forever would wedge their key ranges. *)
  Array.iteri (fun r rep -> Rep.set_resolver rep (resolver_for t r)) reps;
  t

let sim t = t.sim
let net t = t.net
let config t = t.config
let txns t = t.txns
let reps t = t.reps

let client_node t i =
  if i < 0 || i >= t.n_clients then invalid_arg "Sim_world: no such client";
  Config.n_reps t.config + i

let client_transport ?health t i =
  let src = client_node t i in
  (* Backoff jitter draws only happen on retries, so the stream (and with it
     every pre-existing single-attempt experiment) is untouched unless
     messages are actually lost. *)
  let jitter_rng = Repdir_util.Rng.create (Int64.add t.seed (Int64.of_int (0x5e7 + src))) in
  (* Health observations see the call as the client does: latency includes
     retransmissions and timeout waits, [ok] means "the representative
     answered" (an application exception is a timely answer; a timeout,
     crash or overload rejection is not a useful one). *)
  let observe r t0 ok =
    match health with
    | None -> ()
    | Some h -> Picker.Health.observe h r ~latency:(Sim.now t.sim -. t0) ~ok
  in
  let rec transport =
    lazy
      {
        Transport.n_reps = Config.n_reps t.config;
        is_up = (fun r -> Net.up t.net r);
        incarnation = (fun r -> Rep.incarnation t.reps.(r));
        call =
          (fun r f ->
            let t0 = Sim.now t.sim in
            match
              Rpc.call_at_most_once t.net ~src ~dst:r ~server:t.servers.(r)
                ~timeout:t.rpc_timeout ~attempts:t.rpc_attempts ~backoff:t.rpc_backoff
                ~rng:jitter_rng
                ~on_retry:(fun () ->
                  let tr = Lazy.force transport in
                  tr.Transport.retry_count <- tr.Transport.retry_count + 1;
                  (* A retransmission is a real wire message even though it is
                     not a fresh call. *)
                  tr.Transport.msg_count <- tr.Transport.msg_count + 1;
                  (* Each timeout is an early gray-failure signal: feed it to
                     the score table now rather than waiting out the whole
                     retry schedule, so one bad call is enough to demote a
                     slow representative. *)
                  observe r t0 false)
                (fun () -> f t.reps.(r))
            with
            | Ok v ->
                observe r t0 true;
                Ok v
            | Error Rpc.Timeout ->
                observe r t0 false;
                Error Transport.Timeout
            | exception Rep.Crashed name ->
                observe r t0 false;
                Error (Transport.Down name)
            | exception Rep.Overloaded name ->
                observe r t0 false;
                Error (Transport.Overloaded name)
            | exception e ->
                observe r t0 true;
                raise e);
        fanout =
          (if t.parallel_rpc then parallel_fanout t.sim else Transport.sequential_fanout);
        race = (if t.parallel_rpc then Some (parallel_race t.sim) else None);
        rpc_count = 0;
        retry_count = 0;
        msg_count = 0;
        bytes_count = 0;
      }
  in
  Lazy.force transport

let coordinator t i =
  if i < 0 || i >= t.n_clients then invalid_arg "Sim_world: no such client";
  t.coordinators.(i)

let suite_for_client ?picker ?seed ?sync ?batching ?notice_window ?recorder ?membership
    ?health ?op_deadline ?hedge ?cache t i =
  let timers =
    {
      Rep.now = (fun () -> Sim.now t.sim);
      after = (fun d k -> Sim.spawn t.sim ~at:(Sim.now t.sim +. d) k);
    }
  in
  Suite.create ?picker ?seed ?sync ?batching ?notice_window ?recorder ?membership
    ?op_deadline ?hedge ?cache ~timers ~two_phase:t.two_phase
    ~coordinator:t.coordinators.(i) ~config:t.config
    ~transport:(client_transport ?health t i) ~txns:t.txns ()

let recorder_for_client ?cap t i =
  ignore (client_node t i);
  Repdir_audit.History.recorder ?cap ~client:i ~now:(fun () -> Sim.now t.sim) ()

(* --- anti-entropy -------------------------------------------------------------- *)

let syncer_node t = Config.n_reps t.config + t.n_clients

let make_sync ?config ?(seed = 0xa11_075eedL) t =
  let src = syncer_node t in
  let jitter_rng = Repdir_util.Rng.create (Int64.add t.seed (Int64.of_int (0x5e7 + src))) in
  let peer r =
    {
      Repdir_sync.Sync.p_index = r;
      p_name = Rep.name t.reps.(r);
      p_incarnation = (fun () -> Rep.incarnation t.reps.(r));
      p_call =
        (fun f ->
          match
            Rpc.call_at_most_once t.net ~src ~dst:r ~server:t.servers.(r)
              ~timeout:t.rpc_timeout ~attempts:t.rpc_attempts ~backoff:t.rpc_backoff
              ~rng:jitter_rng
              (fun () -> f t.reps.(r))
          with
          | Ok v -> v
          | Error Rpc.Timeout ->
              raise
                (Repdir_sync.Sync.Unreachable (Printf.sprintf "rep%d: rpc timeout" r))
          | exception Rep.Overloaded name ->
              (* Anti-entropy is exactly the maintenance work the admission
                 controller sheds first; the session fails cleanly and a
                 later round retries when the pressure is off. *)
              raise (Repdir_sync.Sync.Unreachable (name ^ ": overloaded")));
    }
  in
  Repdir_sync.Sync.create ?config ~seed
    ~mark_senior:(fun txn high ->
      Repdir_lock.Lock_manager.set_senior t.lock_group ~txn high)
    ~peers:(Array.init (Config.n_reps t.config) peer)
    ~txns:t.txns ()

let start_sync ?config ?seed ?until t =
  let s = make_sync ?config ?seed t in
  Repdir_sync.Sync.run ?until s t.sim;
  s

let set_clock_skew t i ~offset ~rate =
  if rate <= 0.0 then invalid_arg "Sim_world.set_clock_skew: rate must be positive";
  t.clock_offset.(i) <- offset;
  t.clock_rate.(i) <- rate

let clock_skew t i = (t.clock_offset.(i), t.clock_rate.(i))
let set_io_fault t i fault = Rep.set_io_fault t.reps.(i) fault

let crash_rep ?wal_fault t i =
  Option.iter (Rep.inject_storage_fault t.reps.(i)) wal_fault;
  Net.crash t.net i;
  Rep.crash t.reps.(i);
  (* The dedup cache is volatile server memory: it dies with the node. *)
  Rpc.reset_server t.servers.(i)

let recover_rep t i =
  Rep.recover t.reps.(i);
  Net.recover t.net i
