(** Anti-entropy experiments: partition-then-heal convergence and the
    period-vs-staleness tradeoff.

    The convergence campaign is the subsystem's acceptance test: build a
    directory, cut one representative off, keep writing on the surviving
    quorum, heal — then stop {i all} client traffic and let the background
    actor reconcile. The suite must reach identical root digests at every
    representative, and the sync counters must show the repair moved O(diff)
    entries, not a full copy. Everything derives from the explicit seed, so
    runs are bit-reproducible. *)

open Repdir_rep
open Repdir_sync

val entry_divergence : Rep.t -> Rep.t -> int
(** Size of the symmetric difference of the two representatives'
    (key, version, value) entry sets. *)

val stale_entries : Rep.t array -> int
(** Entries (summed over live representatives) whose version at that
    representative lags the suite-wide maximum for their key. *)

val all_digests_equal : Rep.t array -> bool
(** Whether every live representative has the same root digest. *)

type outcome = {
  seed : int64;
  victim : int;  (** the representative that was partitioned away *)
  directory_size : int;  (** entries per representative at the end *)
  diverged_entries : int;  (** entry divergence measured at heal time *)
  converged : bool;  (** all root digests equal before the deadline *)
  heal_to_converged : float;  (** virtual time from heal to convergence *)
  entries_sent : int;  (** total entries moved by range transfers *)
  digest_rpcs : int;
  pull_rpcs : int;
  sessions : int;
  sessions_failed : int;
  ghosts_kept : int;
  sim_events : int;  (** reproducibility fingerprint *)
}

val convergence :
  ?seed:int64 ->
  ?config:Repdir_quorum.Config.t ->
  ?n_entries:int ->
  ?partition_writes:int ->
  ?sync_config:Sync.config ->
  ?deadline:float ->
  unit ->
  outcome
(** One partition-then-heal run. Defaults: the paper's 3-2-2 suite, 120
    entries, 12 writes during the partition, sync period 25.0, and a
    [deadline] of 1500.0 virtual time units measured from heal (a budget
    for reconciliation, not an absolute clock). The run uses single-phase
    commit — under two-phase commit every transaction that so much as
    probes the partitioned representative aborts at prepare, so the
    surviving quorum could not diverge. Quorum writes (w < n) scatter
    entries even without a partition, so the harness first drives explicit
    sync rounds until all digests agree, and the traffic counters in the
    {!outcome} are deltas measured from heal time. *)

val campaign :
  ?seeds:int64 list ->
  ?config:Repdir_quorum.Config.t ->
  ?n_entries:int ->
  ?partition_writes:int ->
  ?sync_config:Sync.config ->
  ?deadline:float ->
  unit ->
  outcome list
(** {!convergence} over several seeds (default: five fixed ones). *)

val table_of_outcomes : outcome list -> Repdir_util.Table.t

type staleness_row = {
  st_period : float;  (** the actor's sync period for this row *)
  st_mean_stale : float;  (** stale entries averaged over fixed-time samples *)
  st_end_stale : int;  (** stale entries left after the no-traffic grace window *)
  st_counters : Sync.counters;
  st_digests_equal : bool;  (** all root digests equal at the end *)
  st_orphan_locks : int;
      (** granted locks + queued waiters left across all representatives at
          quiesce; must be 0 — residue means the lease/termination machinery
          failed to clean up after a partition *)
  st_indoubt_open : int;  (** unresolved in-doubt transactions at quiesce; must be 0 *)
}

val staleness_sweep :
  ?seed:int64 ->
  ?config:Repdir_quorum.Config.t ->
  ?lease:float ->
  ?power_cycle:bool ->
  ?periods:float list ->
  ?duration:float ->
  unit ->
  staleness_row list
(** Sweep the actor's period under steady client writes and a repeating
    one-representative partition cycle: shorter periods keep replicas
    fresher (lower mean staleness) at the cost of more sessions and digest
    traffic. Each row also reports the end-of-run state after a grace
    window with no traffic: the stale-entry count the actor must drive to
    zero, whether root digests equalized outright (a delete-heavy workload
    can park mutually dominated ghosts that keep digests apart without any
    entry being stale — see DESIGN.md, "Ghosts and the representability
    limit"), and the orphan-lock / open-in-doubt residue that must be zero.

    The partitioned representative is {i not} restarted before rejoining:
    transactions orphaned by the partition terminate through the lease
    machinery ([lease], default 60.0 — unprepared work aborts unilaterally,
    prepared work resolves through coordinator/peer queries after heal).
    [power_cycle] (default false) reinstates the retired crash-and-recover
    workaround for A/B comparison. *)

val table_of_staleness_rows : staleness_row list -> Repdir_util.Table.t

val staleness_table :
  ?seed:int64 ->
  ?config:Repdir_quorum.Config.t ->
  ?lease:float ->
  ?power_cycle:bool ->
  ?periods:float list ->
  ?duration:float ->
  unit ->
  Repdir_util.Table.t
(** {!staleness_sweep} rendered with {!table_of_staleness_rows}. *)
