(** A horizontally sharded deployment on the discrete-event simulator:
    [groups] independent replica groups of [n] representatives each, all on
    one simulated network with shared clients and one shared cross-group
    syncer node.

    Node layout: group [g]'s representative [i] occupies global node
    [g*n + i]; clients follow at [groups*n ..]; the syncer node is last. One
    transaction manager and one lock group span the whole deployment, so
    cross-shard client transactions and cross-group migration sessions
    serialize against single-group traffic exactly as they would inside one
    group.

    This is the sharded sibling of {!Sim_world}: where that module wires one
    replica group to a {!Repdir_core.Suite}, this one wires [groups] of them
    to a {!Repdir_shard.Router}. *)

open Repdir_sim
open Repdir_rep
open Repdir_quorum
open Repdir_txn
open Repdir_shard

type t

val create :
  ?seed:int64 ->
  ?latency:(Repdir_util.Rng.t -> float) ->
  ?rpc_timeout:float ->
  ?rpc_attempts:int ->
  ?rpc_backoff:float ->
  ?n_clients:int ->
  ?parallel_rpc:bool ->
  ?two_phase:bool ->
  ?lease:float ->
  ?group_commit:float ->
  ?admission:Rep.admission ->
  ?configs:Config.t array ->
  config:Config.t ->
  groups:int ->
  unit ->
  t
(** [create ~config ~groups ()] builds a [groups]-group deployment where
    every group runs [config]. [configs] (length [groups], every entry with
    the same representative count) overrides per-group vote assignments.
    Remaining options mirror {!Sim_world.create}: RPC discipline, client
    count, lock leases, group commit and admission control are shared by all
    groups. *)

(* --- accessors --------------------------------------------------------------- *)

val sim : t -> Sim.t
val net : t -> Net.t
val txns : t -> Txn.Manager.t

val groups : t -> int
(** Number of replica groups. *)

val reps_per_group : t -> int
(** Representatives per group (equal across groups by construction). *)

val group_reps : t -> int -> Rep.t array
(** Group [g]'s representatives, for scrubbing and direct inspection at
    quiesce. *)

val group_config : t -> int -> Config.t
val coordinator : t -> int -> Coordinator.t

val rep_node : t -> int -> int -> int
(** [rep_node t g i] is the global network node of group [g]'s
    representative [i]. *)

val client_node : t -> int -> int
(** Global network node of client [i]; raises [Invalid_argument] for an
    out-of-range client. *)

val syncer_node : t -> int
(** Global network node the sync actors call from. *)

(* --- clients ----------------------------------------------------------------- *)

val client_transport : t -> int -> int -> Repdir_core.Transport.t
(** [client_transport t i g] is client [i]'s transport to group [g]: the
    suite sees a plain [n]-representative world whose member [r] lives at
    global node [g*n + r], with the deployment's at-most-once RPC
    discipline. *)

val recorder_for_client : ?cap:int -> t -> int -> Repdir_audit.History.recorder
(** A history recorder stamped with client [i]'s id and the simulator
    clock, for the strict-serializability checker. *)

val shard_view_peek : t -> int -> int -> string option
(** [shard_view_peek t i g]: client [i] asks group [g]'s representatives in
    turn for their installed shard map record, returning the first non-empty
    answer — how a router blocked on a [Moving] range learns the flip landed
    without waiting to be fenced. *)

val router_for_client :
  ?picker:Picker.strategy ->
  ?seed:int64 ->
  ?batching:bool ->
  ?notice_window:float ->
  ?recorder:Repdir_audit.History.recorder ->
  ?cache:bool ->
  t ->
  int ->
  map:Shard_map.t ->
  Router.t
(** [router_for_client t i ~map] wires a {!Repdir_shard.Router} for client
    [i]: one suite per replica group of the deployment (not merely of
    [map] — see {!Router.create}'s [groups]), all sharing client [i]'s
    coordinator, the deployment transaction manager and (optionally) one
    recorder. [cache:true] attaches a version-validated client cache to
    every per-group suite; the router flushes them on shard-map epoch
    changes. *)

(* --- anti-entropy ------------------------------------------------------------ *)

val make_cross_sync :
  ?config:Repdir_sync.Sync.config -> ?seed:int64 -> t -> from_g:int -> to_g:int ->
  Repdir_sync.Sync.t
(** A sync actor spanning a migration's source and target groups: peers
    [0 .. n-1] are [from_g]'s representatives, [n .. 2n-1] are [to_g]'s, so
    [Sync.session_between ~src:i ~dst:(n+j)] is a sliced source-to-target
    catch-up session. Shares the deployment's lock group, so sessions
    serialize after in-flight client writers on the slice. *)

val make_group_sync : ?config:Repdir_sync.Sync.config -> ?seed:int64 -> t -> int ->
  Repdir_sync.Sync.t
(** Per-group anti-entropy actor (peers = that group only), for steady-state
    reconciliation during a campaign. *)

(* --- fault injection ---------------------------------------------------------- *)

val crash_rep : ?wal_fault:Repdir_txn.Wal.storage_fault -> t -> g:int -> int -> unit
(** Crash group [g]'s representative [i]: network down, volatile state lost,
    RPC dedup table reset; [wal_fault] injects WAL damage to be discovered
    on recovery. *)

val recover_rep : t -> g:int -> int -> unit
