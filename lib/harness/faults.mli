(** Availability under a crash/recovery timeline, on the discrete-event
    simulator.

    A client applies operations continuously while representatives crash and
    recover on schedule. Per phase we report attempted, succeeded and
    unavailable operations; a 3-2-2 suite must keep operating with one
    representative down, refuse service (rather than give wrong answers)
    with two down, and resume when quorums return. The client's view is
    checked against a sequential model throughout: no phase may return a
    stale or phantom answer. *)

type phase = {
  label : string;
  up_reps : int;
  attempted : int;
  succeeded : int;
  unavailable : int;
}

type outcome = {
  phases : phase list;
  consistency_violations : int;
      (** lookups disagreeing with the sequential model; must be 0 *)
}

val run :
  ?seed:int64 ->
  ?ops_per_phase:int ->
  ?retries:int ->
  ?config:Repdir_quorum.Config.t ->
  unit ->
  outcome
(** [retries] (default 1, i.e. none) bounds client-level attempts per
    operation via {!Repdir_core.Suite.with_retries}; [config] (default the
    paper's 3-2-2 suite) picks the vote assignment — the crash schedule
    always downs representatives 0 and then 1, so e.g. a 5-3-3 suite keeps
    succeeding where 3-2-2 refuses service. *)

val table :
  ?seed:int64 ->
  ?ops_per_phase:int ->
  ?retries:int ->
  ?config:Repdir_quorum.Config.t ->
  unit ->
  Repdir_util.Table.t
