(** A complete simulated deployment: representative servers on network nodes,
    suite clients calling them by RPC, and failure injection.

    Node layout: representatives occupy nodes [0 .. n-1]; each client created
    with {!client_transport} gets its own node. Representative lock waits
    suspend the server-side RPC process, so concurrent client transactions
    contend exactly as §3.1 prescribes. *)

open Repdir_sim
open Repdir_rep
open Repdir_quorum
open Repdir_core
open Repdir_txn

type t

val create :
  ?seed:int64 ->
  ?latency:(Repdir_util.Rng.t -> float) ->
  ?rpc_timeout:float ->
  ?rpc_attempts:int ->
  ?rpc_backoff:float ->
  ?n_clients:int ->
  ?parallel_rpc:bool ->
  ?two_phase:bool ->
  ?lease:float ->
  ?group_commit:float ->
  ?admission:Rep.admission ->
  config:Config.t ->
  unit ->
  t
(** [latency] defaults to exponential with mean 1.0; [rpc_timeout] to 50.0
    time units; [n_clients] to 1. [parallel_rpc] (default true) fans quorum
    requests out concurrently (the §5 latency optimization); when false,
    quorum members are contacted one at a time as in the paper's
    pseudo-code. [two_phase] (default false) commits suite transactions with
    presumed-abort two-phase commit; each client doubles as the coordinator
    of its own transactions, keeping its decision log at its own node
    ({!coordinator}), which participants query to resolve in-doubt
    transactions. [lease] (default: none) arms a sliding virtual-clock lease
    over every transaction at every representative: an unprepared
    transaction idle for a lease period is unilaterally aborted (presumed
    abort) and its locks released; a prepared one goes in doubt and is
    resolved by querying its coordinator, then peers. The resolver is
    installed regardless of [lease], so crash-recovered in-doubt
    transactions always terminate.

    [group_commit] (default: none — every force syncs immediately, the seed
    behaviour) gives each representative's write-ahead log a group-commit
    window: a force that finds no sync pending becomes the group leader,
    waits that long in sim time, and syncs once for every force that arrived
    meanwhile (see {!Repdir_rep.Rep.create}). Keep it well below [lease].

    [admission] (default: none — every request is admitted, the seed
    behaviour) arms the sliding-window admission controller at every
    representative (see {!Repdir_rep.Rep.create}): requests beyond the
    window cap are rejected with {!Repdir_rep.Rep.Overloaded}, which client
    transports surface as [Error (Transport.Overloaded _)] and the suite
    treats as a non-quorum-eligible representative; maintenance traffic
    (anti-entropy, keepalives) is shed first.

    All client RPCs go through {!Repdir_sim.Rpc.call_at_most_once}: each
    representative node keeps a request-id dedup cache (reset when it
    crashes), and a call timing out is retransmitted up to [rpc_attempts]
    times total (default 1 — no retries, the paper's behaviour) with
    exponential backoff starting at [rpc_backoff] (default 5.0) and
    deterministic jitter. *)

val parallel_fanout : Sim.t -> Transport.fanout
(** Fork/join quorum fan-out over simulator processes — the concurrent
    [fanout] this world's client transports use. Exposed so other worlds
    (e.g. the sharded one) can build transports over the same simulator. *)

val parallel_race : Sim.t -> Transport.race
(** First-success-wins hedged-call race over simulator processes — the
    [race] primitive of this world's client transports. *)

val sim : t -> Sim.t
val net : t -> Net.t
val config : t -> Config.t
val txns : t -> Txn.Manager.t
val reps : t -> Rep.t array

val coordinator : t -> int -> Coordinator.t
(** Client [i]'s two-phase-commit decision log (it lives at the client's
    node; in-doubt participants reach it by RPC). *)

val client_transport : ?health:Picker.Health.t -> t -> int -> Transport.t
(** Transport for client [i] (0-based, [i < n_clients]). Calls must be made
    from inside a simulator process. [health] (default: none — no
    observations, the seed behaviour) feeds every call's outcome into a
    gray-failure score table (see {!Picker.Health}): latency is measured as
    the client saw it (retransmissions and timeout waits included) and a
    call counts as ok when the representative answered — an application
    exception is a timely answer; a timeout, crash or overload rejection is
    not. When the world runs with [parallel_rpc] (the default) the transport
    also offers {!Transport.race}, so suites created with a hedge delay can
    race a spare against a suspected-slow representative. *)

val suite_for_client :
  ?picker:Picker.strategy ->
  ?seed:int64 ->
  ?sync:Repdir_sync.Sync.t ->
  ?batching:bool ->
  ?notice_window:float ->
  ?recorder:Repdir_audit.History.recorder ->
  ?membership:Repdir_member.Member.record ->
  ?health:Picker.Health.t ->
  ?op_deadline:float ->
  ?hedge:float ->
  ?cache:Repdir_cache.Cache.t ->
  t ->
  int ->
  Suite.t
(** [batching] (default false) turns on the suite's per-representative
    message batching (see {!Suite.create}); the suite's deferred-notice
    flush timer runs on this world's simulator clock, with [notice_window]
    bounding how long a commit notice may ride unflushed. [recorder]
    attaches a consistency-audit history recorder to the suite (see
    {!Suite.create}); build one with {!recorder_for_client}. [membership]
    arms dynamic membership on the suite: quorums follow the record's
    view(s) and every representative call is epoch-stamped and fenced (see
    {!Suite.create}). [health] is threaded to {!client_transport} so the
    suite's transport feeds the score table; pair it with
    [~picker:(Picker.Healthy health)] to let quorum selection avoid
    suspected-gray representatives. [op_deadline] and [hedge] are passed to
    {!Suite.create} verbatim (per-operation deadline budget; hedged
    slowest-member reads — the latter requires the [Healthy] picker), as is
    [cache] (the version-validated client cache). *)

val recorder_for_client : ?cap:int -> t -> int -> Repdir_audit.History.recorder
(** A history recorder for client [i], stamping events with this world's
    (unskewed) simulator clock. *)

(* --- anti-entropy ----------------------------------------------------------- *)

val syncer_node : t -> int
(** The network node the anti-entropy actor calls from (allocated after the
    clients, so it never perturbs client node ids). *)

val make_sync :
  ?config:Repdir_sync.Sync.config -> ?seed:int64 -> t -> Repdir_sync.Sync.t
(** An anti-entropy actor whose peers reach every representative over the
    at-most-once RPC layer from {!syncer_node} (same timeout/retry settings
    as client transports; an exhausted retry budget surfaces as an
    unreachable peer and fails the session). The actor is not scheduled:
    drive it with {!Repdir_sync.Sync.round} from a simulator process, or use
    {!start_sync}. *)

val start_sync :
  ?config:Repdir_sync.Sync.config -> ?seed:int64 -> ?until:float -> t ->
  Repdir_sync.Sync.t
(** {!make_sync} plus {!Repdir_sync.Sync.run}: the periodic background actor
    is spawned on the simulator before [run] is next called. *)

val set_clock_skew : t -> int -> offset:float -> rate:float -> unit
(** Skew representative [i]'s virtual clock: it reads
    [offset + rate * Sim.now] and sees scheduled delays divided by [rate]
    (a fast clock, [rate > 1], fires lease timers early). The defaults
    [(0, 1)] reproduce the shared clock exactly. Affects everything driven
    by the representative's own timers — leases, termination retries,
    group-commit windows — while the network and the clients keep the true
    clock. Raises [Invalid_argument] if [rate] is not positive. *)

val clock_skew : t -> int -> float * float
(** Current [(offset, rate)] of representative [i]'s clock. *)

val set_io_fault : t -> int -> Repdir_txn.Wal.io_fault option -> unit
(** Arm or heal a WAL write failure at representative [i] (see
    {!Repdir_rep.Rep.set_io_fault}): while armed, operations needing a log
    record abort their transaction cleanly and the representative stays
    up. *)

val crash_rep : ?wal_fault:Repdir_txn.Wal.storage_fault -> t -> int -> unit
(** Crash both the node (messages drop) and the representative (volatile
    state lost, RPC dedup cache reset). [wal_fault] additionally damages the
    write-ahead log's tail at the moment of the crash (torn write). *)

val recover_rep : t -> int -> unit
(** Bring the node back and replay the representative's write-ahead log. *)
