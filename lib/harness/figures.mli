(** Reproduction of the paper's evaluation tables and §5 claims.

    Each function runs the necessary simulations and returns a rendered
    table whose rows match what the paper reports. [ops] and [seed] default
    to the paper's parameters (10 000 operations for Figure 14, 100 000 for
    Figure 15); smaller values are useful for quick checks and are used by
    the test suite. *)

open Repdir_util

val figure14_configs : Repdir_quorum.Config.t list
(** The suite-configuration sweep: for every replication degree 1–5, the
    read-one/write-all, balanced, and write-minimal quorum choices that
    satisfy Gifford's constraints (the scanned paper's Figure 14 body is
    illegible; §4 specifies only "varying numbers of directory
    representatives and varying sizes of read and write quorums" at ~100
    entries). *)

val figure14 : ?seed:int64 -> ?ops:int -> ?entries:int -> unit -> Table.t
(** Average of the three deletion statistics per configuration. *)

val figure15 : ?seed:int64 -> ?ops:int -> ?sizes:int list -> unit -> Table.t
(** Avg/Max/Std Dev of the three statistics for 3-2-2 suites of 100, 1 000
    and 10 000 entries. *)

val quorum_stability : ?seed:int64 -> ?ops:int -> ?entries:int -> unit -> Table.t
(** §5 ablation: the same 3-2-2 workload under random vs fixed (stable)
    quorums. With stable write quorums, entries live on the same
    representatives, so deletes find no ghosts and need no repairs. *)

val availability : ?p_ups:float list -> unit -> Table.t
(** Exact read/write availability for the Figure 14 configurations across
    per-representative up-probabilities. *)

val messages : ?seed:int64 -> ?ops:int -> ?entries:int -> unit -> Table.t
(** Per-operation traffic across configurations: representative calls per
    operation (the paper's unit — its "no performance penalty except on
    Delete" claim quantified) alongside true wire messages per operation for
    a two-phase suite, unbatched vs batched. The batched rows show the
    effect of one [Rep.execute] message per member per round, the
    piggybacked prepare, and commit notices riding on later calls. *)

val messages_per_op :
  ?seed:int64 ->
  ?ops:int ->
  ?entries:int ->
  ?two_phase:bool ->
  ?batching:bool ->
  config:Repdir_quorum.Config.t ->
  unit ->
  (string * float) list
(** Average true wire messages ([Transport.msg_count]) per operation kind
    ("lookup" / "insert" / "update" / "delete") for one configuration under
    the §4 workload mix. [two_phase] and [batching] default to [false].
    Deferred commit notices ride on later operations' calls, so each kind is
    charged for the steady-state traffic it induces; any tail is flushed
    before the averages are taken. Programmatic twin of [messages], used by
    the bench smoke check. *)

val space_and_traffic : ?seed:int64 -> ?ops:int -> ?entries:int -> unit -> Table.t
(** Storage and write-traffic comparison across replication strategies after
    a churn workload: the gap scheme reclaims deleted entries (unlike
    tombstones) and writes single entries (unlike whole-file or
    whole-partition voting). All strategies run a 3-2-2 configuration except
    unanimous update (read-one/write-all). *)

val batching : ?seed:int64 -> ?ops:int -> ?entries:int -> ?depths:int list -> unit -> Table.t
(** §4 batching: "the real predecessor and real successor will often be
    located using one remote procedure call to each member of the quorum" —
    representative calls per delete as the neighbour-chain depth grows. *)
