open Repdir_sim
open Repdir_rep
open Repdir_quorum
open Repdir_core
open Repdir_txn
open Repdir_shard

(* A horizontally sharded deployment: [groups] independent replica groups of
   [n] representatives each, all on one simulated network with shared
   clients. Node layout: group [g]'s representative [i] occupies node
   [g*n + i]; clients follow at [groups*n ..]; the cross-group syncer node
   is last. One transaction manager and one lock group span the deployment,
   so cross-shard transactions and cross-group migration sessions serialize
   against client traffic exactly as single-group ones do. *)

type t = {
  sim : Sim.t;
  net : Net.t;
  groups : int;
  n : int;  (* representatives per group *)
  reps : Rep.t array array;  (* [g].(i) *)
  servers : Rpc.server array;  (* indexed by global node *)
  txns : Txn.Manager.t;
  configs : Config.t array;  (* per group *)
  rpc_timeout : float;
  rpc_attempts : int;
  rpc_backoff : float;
  seed : int64;
  n_clients : int;
  parallel_rpc : bool;
  coordinators : Coordinator.t array;
  two_phase : bool;
  lock_group : Repdir_lock.Lock_manager.group;
}

let rep_node t g i = (g * t.n) + i
let client_node t i =
  if i < 0 || i >= t.n_clients then invalid_arg "Shard_world: no such client";
  (t.groups * t.n) + i

let syncer_node t = (t.groups * t.n) + t.n_clients

(* Termination queries from an in-doubt representative: the coordinator's
   decision log first, then the peers of its own group — a cross-shard
   transaction's outcome is settled by the one shared coordinator record,
   and within a group any peer that saw the decision is authoritative. *)
let resolver_for t g r ~coord txn =
  let src = rep_node t g r in
  let client_base = t.groups * t.n in
  let from_coordinator =
    if coord >= client_base && coord < client_base + t.n_clients then
      match
        Rpc.call t.net ~src ~dst:coord ~timeout:t.rpc_timeout (fun () ->
            Coordinator.resolve t.coordinators.(coord - client_base) txn)
      with
      | Ok Coordinator.Committed -> Some (`Committed, Rep.By_coordinator)
      | Ok Coordinator.Aborted -> Some (`Aborted, Rep.By_coordinator)
      | Error Rpc.Timeout -> None
    else None
  in
  match from_coordinator with
  | Some _ as answer -> answer
  | None ->
      let rec ask p =
        if p >= t.n then None
        else if p = r then ask (p + 1)
        else
          match
            Rpc.call t.net ~src ~dst:(rep_node t g p) ~timeout:t.rpc_timeout
              (fun () -> Rep.outcome_of t.reps.(g).(p) txn)
          with
          | Ok `Committed -> Some (`Committed, Rep.By_peer)
          | Ok `Aborted -> Some (`Aborted, Rep.By_peer)
          | Ok `Unknown | Error Rpc.Timeout -> ask (p + 1)
          | exception Rep.Crashed _ -> ask (p + 1)
      in
      ask 0

let create ?(seed = 1L) ?latency ?(rpc_timeout = 50.0) ?(rpc_attempts = 1)
    ?(rpc_backoff = 5.0) ?(n_clients = 1) ?(parallel_rpc = true) ?(two_phase = true)
    ?lease ?group_commit ?admission ?configs ~config ~groups () =
  if groups < 1 then invalid_arg "Shard_world: need at least one group";
  if rpc_attempts < 1 then invalid_arg "Shard_world: need at least one RPC attempt";
  let n = Config.n_reps config in
  let configs =
    match configs with
    | None -> Array.make groups config
    | Some cs ->
        if Array.length cs <> groups then
          invalid_arg "Shard_world: configs length must equal groups";
        Array.iter
          (fun c ->
            if Config.n_reps c <> n then
              invalid_arg "Shard_world: all groups must have the same representative count")
          cs;
        cs
  in
  let sim = Sim.create ~seed () in
  let net = Net.create sim ~n_nodes:((groups * n) + n_clients + 1) ?latency () in
  let waiter register = Sim.suspend sim register in
  let lock_group = Repdir_lock.Lock_manager.new_group () in
  let timers =
    { Rep.now = (fun () -> Sim.now sim);
      after = (fun d k -> Sim.spawn sim ~at:(Sim.now sim +. d) k) }
  in
  let reps =
    Array.init groups (fun g ->
        Array.init n (fun i ->
            Rep.create ~waiter ~lock_group ~timers ?lease ?group_commit ?admission
              ~name:(Printf.sprintf "g%d.rep%d" g i) ()))
  in
  let t =
    {
      sim;
      net;
      groups;
      n;
      reps;
      servers = Array.init ((groups * n) + n_clients + 1) (fun _ -> Rpc.server ());
      txns = Txn.Manager.create ();
      configs;
      rpc_timeout;
      rpc_attempts;
      rpc_backoff;
      seed;
      n_clients;
      parallel_rpc;
      coordinators =
        Array.init n_clients (fun i -> Coordinator.create ~id:((groups * n) + i) ());
      two_phase;
      lock_group;
    }
  in
  Array.iteri
    (fun g grp -> Array.iteri (fun r rep -> Rep.set_resolver rep (resolver_for t g r)) grp)
    reps;
  t

let sim t = t.sim
let net t = t.net
let txns t = t.txns
let groups t = t.groups
let reps_per_group t = t.n
let group_reps t g = t.reps.(g)
let group_config t g = t.configs.(g)
let coordinator t i = t.coordinators.(i)

(* Transport for client [i] talking to group [g]: the suite sees a plain
   n-representative world whose member [r] lives at global node [g*n + r]. *)
let client_transport t i g =
  let src = client_node t i in
  let jitter_rng =
    Repdir_util.Rng.create (Int64.add t.seed (Int64.of_int (0x5e7 + src + (0x9e3 * g))))
  in
  let transport =
    {
      Transport.n_reps = t.n;
      is_up = (fun r -> Net.up t.net (rep_node t g r));
      incarnation = (fun r -> Rep.incarnation t.reps.(g).(r));
      call =
        (fun r f ->
          let dst = rep_node t g r in
          match
            Rpc.call_at_most_once t.net ~src ~dst ~server:t.servers.(dst)
              ~timeout:t.rpc_timeout ~attempts:t.rpc_attempts ~backoff:t.rpc_backoff
              ~rng:jitter_rng
              (fun () -> f t.reps.(g).(r))
          with
          | Ok v -> Ok v
          | Error Rpc.Timeout -> Error Transport.Timeout
          | exception Rep.Crashed name -> Error (Transport.Down name)
          | exception Rep.Overloaded name -> Error (Transport.Overloaded name));
      fanout = (if t.parallel_rpc then Sim_world.parallel_fanout t.sim else Transport.sequential_fanout);
      race = (if t.parallel_rpc then Some (Sim_world.parallel_race t.sim) else None);
      rpc_count = 0;
      retry_count = 0;
      msg_count = 0;
      bytes_count = 0;
    }
  in
  transport

let recorder_for_client ?cap t i =
  ignore (client_node t i);
  Repdir_audit.History.recorder ?cap ~client:i ~now:(fun () -> Sim.now t.sim) ()

(* How a router blocked on a [Moving] range learns the flip landed: peek the
   installed shard view of any reachable representative of the group (the
   flip lands on the migration's source group first). Runs inside the
   client's simulator process. *)
let shard_view_peek t i g =
  let src = client_node t i in
  let rec go r =
    if r >= t.n then None
    else
      let dst = rep_node t g r in
      match
        Rpc.call t.net ~src ~dst ~timeout:t.rpc_timeout (fun () ->
            Rep.shard_view t.reps.(g).(r))
      with
      | Ok (e, record) when e > 0 && record <> "" -> Some record
      | Ok _ -> go (r + 1)
      | Error Rpc.Timeout -> go (r + 1)
      | exception Rep.Crashed _ -> go (r + 1)
      | exception Rep.Overloaded _ -> go (r + 1)
  in
  go 0

let router_for_client ?picker ?seed ?batching ?notice_window ?recorder ?cache t i ~map =
  let timers =
    { Rep.now = (fun () -> Sim.now t.sim);
      after = (fun d k -> Sim.spawn t.sim ~at:(Sim.now t.sim +. d) k) }
  in
  Router.create
    ~refresh:(fun g -> shard_view_peek t i g)
    ~groups:t.groups ~map ~txns:t.txns
    ~make_suite:(fun g info ->
      let cache =
        match cache with
        | Some true -> Some (Repdir_cache.Cache.create ())
        | Some false | None -> None
      in
      Suite.create ?picker ?seed ?batching ?notice_window ?recorder ?cache
        ~shard:info ~timers ~two_phase:t.two_phase ~coordinator:t.coordinators.(i)
        ~config:t.configs.(g)
        ~transport:(client_transport t i g)
        ~txns:t.txns ())
    ()

(* --- cross-group anti-entropy ----------------------------------------------------- *)

(* A sync actor spanning a migration's source and target groups: peers
   [0 .. n-1] are the source group's representatives, [n .. 2n-1] the
   target's, so [Sync.session_between ~src:i ~dst:(n+j)] is a sliced
   source-to-target catch-up session. Shares the deployment's lock group, so
   sessions serialize after in-flight client writers on the slice. *)
let make_cross_sync ?config ?(seed = 0xc0_55eedL) t ~from_g ~to_g =
  let src = syncer_node t in
  let jitter_rng = Repdir_util.Rng.create (Int64.add t.seed (Int64.of_int (0x5e7 + src))) in
  let rep_of p = if p < t.n then t.reps.(from_g).(p) else t.reps.(to_g).(p - t.n) in
  let node_of p = if p < t.n then rep_node t from_g p else rep_node t to_g (p - t.n) in
  let peer p =
    {
      Repdir_sync.Sync.p_index = p;
      p_name = Rep.name (rep_of p);
      p_incarnation = (fun () -> Rep.incarnation (rep_of p));
      p_call =
        (fun f ->
          let dst = node_of p in
          match
            Rpc.call_at_most_once t.net ~src ~dst ~server:t.servers.(dst)
              ~timeout:t.rpc_timeout ~attempts:t.rpc_attempts ~backoff:t.rpc_backoff
              ~rng:jitter_rng
              (fun () -> f (rep_of p))
          with
          | Ok v -> v
          | Error Rpc.Timeout ->
              raise
                (Repdir_sync.Sync.Unreachable
                   (Printf.sprintf "%s: rpc timeout" (Rep.name (rep_of p))))
          | exception Rep.Overloaded name ->
              raise (Repdir_sync.Sync.Unreachable (name ^ ": overloaded")));
    }
  in
  Repdir_sync.Sync.create ?config ~seed
    ~mark_senior:(fun txn high ->
      Repdir_lock.Lock_manager.set_senior t.lock_group ~txn high)
    ~peers:(Array.init (2 * t.n) peer)
    ~txns:t.txns ()

(* Per-group anti-entropy actor (peers = that group only), for steady-state
   reconciliation during a campaign. *)
let make_group_sync ?config ?seed t g =
  let seed =
    match seed with Some s -> s | None -> Int64.of_int (0xa11_075 + (31 * g))
  in
  let src = syncer_node t in
  let jitter_rng =
    Repdir_util.Rng.create (Int64.add t.seed (Int64.of_int (0x5e7 + src + g)))
  in
  let peer p =
    {
      Repdir_sync.Sync.p_index = p;
      p_name = Rep.name t.reps.(g).(p);
      p_incarnation = (fun () -> Rep.incarnation t.reps.(g).(p));
      p_call =
        (fun f ->
          let dst = rep_node t g p in
          match
            Rpc.call_at_most_once t.net ~src ~dst ~server:t.servers.(dst)
              ~timeout:t.rpc_timeout ~attempts:t.rpc_attempts ~backoff:t.rpc_backoff
              ~rng:jitter_rng
              (fun () -> f t.reps.(g).(p))
          with
          | Ok v -> v
          | Error Rpc.Timeout ->
              raise
                (Repdir_sync.Sync.Unreachable
                   (Printf.sprintf "%s: rpc timeout" (Rep.name t.reps.(g).(p))))
          | exception Rep.Overloaded name ->
              raise (Repdir_sync.Sync.Unreachable (name ^ ": overloaded")));
    }
  in
  Repdir_sync.Sync.create ?config ~seed
    ~mark_senior:(fun txn high ->
      Repdir_lock.Lock_manager.set_senior t.lock_group ~txn high)
    ~peers:(Array.init t.n peer)
    ~txns:t.txns ()

(* --- fault injection --------------------------------------------------------------- *)

let crash_rep ?wal_fault t ~g i =
  Option.iter (Rep.inject_storage_fault t.reps.(g).(i)) wal_fault;
  let node = rep_node t g i in
  Net.crash t.net node;
  Rep.crash t.reps.(g).(i);
  Rpc.reset_server t.servers.(node)

let recover_rep t ~g i =
  Rep.recover t.reps.(g).(i);
  Net.recover t.net (rep_node t g i)
