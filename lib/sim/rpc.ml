open Repdir_util

type error = Timeout

exception Timed_out_marker
(* Internal sentinel distinguishing the timeout path from a server-side
   exception; never escapes this module. *)

let call net ~src ~dst ~timeout f =
  if timeout <= 0.0 then invalid_arg "Rpc.call: timeout must be positive";
  let sim = Net.sim net in
  let outcome = ref None in
  let wake = ref (fun () -> ()) in
  (* Request: run [f] at the destination, ship the outcome back. *)
  Net.send net ~src ~dst (fun () ->
      let result = try Ok (f ()) with e -> Error e in
      Net.send net ~src:dst ~dst:src (fun () ->
          if !outcome = None then begin
            outcome := Some result;
            !wake ()
          end));
  Sim.suspend sim (fun resume ->
      wake := resume;
      Sim.at sim
        (Sim.now sim +. timeout)
        (fun () ->
          if !outcome = None then begin
            outcome := Some (Error Timed_out_marker);
            resume ()
          end));
  match !outcome with
  | Some (Ok r) -> Ok r
  | Some (Error Timed_out_marker) -> Error Timeout
  | Some (Error e) -> raise e
  | None -> assert false

(* --- at-most-once calls -------------------------------------------------------- *)

(* The server-side dedup cache maps request ids to either a marker that the
   request is currently executing (a duplicate arriving meanwhile is simply
   discarded: the execution in flight will answer) or a closure that resends
   the finished reply. The cache is volatile: it must be reset when the node
   crashes, which re-opens the (harmless, because representative operations
   are idempotent) re-execution window — exactly the at-most-once story real
   RPC systems tell.

   Finished entries cannot live forever: every call adds one, so an unbounded
   table grows linearly with server lifetime. Completion order is recorded in
   a FIFO; arriving requests opportunistically expire entries older than [ttl]
   sim-time (any retransmission of those requests is long since abandoned —
   the client's whole retry schedule fits well inside the TTL) and enforce the
   [cap] backstop. Evicting early only re-opens the idempotent re-execution
   window, the same degradation a crash-reset causes, so a conservative
   TTL/cap trades a sliver of duplicate work for bounded memory. Eviction
   piggybacks on request arrival: no timers, no RNG draws, so pre-existing
   event traces are unchanged. *)

type server_entry = In_flight | Done of (unit -> unit)

type server = {
  tbl : (int, server_entry) Hashtbl.t;
  completed : (int * float) Queue.t;
      (* (request id, completion sim-time); sim time is monotone, so the queue
         is expiry-ordered and each id appears at most once per incarnation *)
  cap : int;
  ttl : float;
}

let server ?(cap = 512) ?(ttl = 300.0) () : server =
  if cap < 1 then invalid_arg "Rpc.server: cap must be positive";
  if ttl <= 0.0 then invalid_arg "Rpc.server: ttl must be positive";
  { tbl = Hashtbl.create 64; completed = Queue.create (); cap; ttl }

let reset_server (s : server) =
  Hashtbl.reset s.tbl;
  Queue.clear s.completed

let server_entries (s : server) = Hashtbl.length s.tbl

(* TTL expiry is bounded per arrival: a retry storm hitting a server whose
   cache sat idle past its TTL would otherwise make the first arrival drain
   the whole stale backlog in one scan — an O(cap) stall on the storm's
   critical path, exactly when the server can least afford it. A few pops
   per arrival drain the same backlog across the storm instead. The cap
   backstop stays unconditional (memory safety cannot be amortized), but it
   pops at most one entry per arrival in steady state, since each arrival
   enqueues at most one. *)
let max_ttl_evictions_per_arrival = 8

let evict (s : server) ~now =
  let drop () =
    let id, _ = Queue.pop s.completed in
    (* Queue ids always map to [Done] entries: an id is enqueued exactly when
       its entry turns [Done], and a crash reset clears both structures. *)
    Hashtbl.remove s.tbl id
  in
  while Queue.length s.completed > s.cap do
    drop ()
  done;
  let stale () =
    let _, finished = Queue.peek s.completed in
    finished +. s.ttl <= now
  in
  let pops = ref 0 in
  while
    !pops < max_ttl_evictions_per_arrival && (not (Queue.is_empty s.completed)) && stale ()
  do
    incr pops;
    drop ()
  done

let call_at_most_once net ~src ~dst ~server ~timeout ?(attempts = 1) ?(backoff = 1.0) ?rng
    ?(on_retry = fun () -> ()) f =
  if timeout <= 0.0 then invalid_arg "Rpc.call_at_most_once: timeout must be positive";
  if attempts < 1 then invalid_arg "Rpc.call_at_most_once: need at least one attempt";
  if backoff <= 0.0 then invalid_arg "Rpc.call_at_most_once: backoff must be positive";
  let sim = Net.sim net in
  let id = Net.fresh_rpc_id net in
  (* One outcome cell shared by every attempt: whichever request or reply
     copy survives the network first fills it; later copies are ignored. *)
  let outcome = ref None in
  let wake = ref (fun () -> ()) in
  let handler () =
    evict server ~now:(Sim.now sim);
    match Hashtbl.find_opt server.tbl id with
    | Some In_flight -> ()
    | Some (Done resend) -> resend ()
    | None ->
        Hashtbl.replace server.tbl id In_flight;
        let result = try Ok (f ()) with e -> Error e in
        let resend () =
          Net.send net ~src:dst ~dst:src (fun () ->
              if !outcome = None then begin
                outcome := Some result;
                !wake ()
              end)
        in
        Hashtbl.replace server.tbl id (Done resend);
        Queue.push (id, Sim.now sim) server.completed;
        resend ()
  in
  let rec attempt k =
    Net.send net ~src ~dst handler;
    Sim.suspend sim (fun resume ->
        wake := resume;
        Sim.at sim
          (Sim.now sim +. timeout)
          (fun () -> if !outcome = None then resume ()));
    if !outcome = None && k + 1 < attempts then begin
      on_retry ();
      (* Exponential backoff with jitter in [0.5, 1.5) of the nominal pause;
         no [rng] means no jitter (and no generator perturbation). *)
      let jitter = match rng with Some r -> 0.5 +. Rng.float r 1.0 | None -> 1.0 in
      Sim.sleep sim (backoff *. (2.0 ** float_of_int k) *. jitter);
      (* A straggler reply may have landed during the pause. *)
      if !outcome = None then attempt (k + 1)
    end
  in
  attempt 0;
  match !outcome with
  | Some (Ok r) -> Ok r
  | Some (Error e) -> raise e
  | None -> Error Timeout
