open Repdir_util

type node_id = int

type faults = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_delay : float;
  spike : float;
  spike_factor : float;
}

let no_faults =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_delay = 0.0;
    spike = 0.0;
    spike_factor = 1.0;
  }

let check_faults f =
  let prob name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Net: fault probability %s = %g outside [0,1]" name p)
  in
  prob "drop" f.drop;
  prob "duplicate" f.duplicate;
  prob "reorder" f.reorder;
  prob "spike" f.spike;
  if f.reorder_delay < 0.0 then invalid_arg "Net: negative reorder_delay";
  if f.spike_factor < 1.0 then invalid_arg "Net: spike_factor must be >= 1"

type t = {
  sim : Sim.t;
  n : int;
  up : bool array;
  cut : (node_id * node_id, unit) Hashtbl.t; (* normalized (min, max) pairs *)
  latency : Rng.t -> float;
  lat_rng : Rng.t;
  (* Fault plan: per-link overrides beat the default; [None] everywhere means
     the fault path is never entered and [fault_rng] is never consumed, so
     fault-free runs replay exactly the pre-nemesis event stream. *)
  link_faults : (node_id * node_id, faults) Hashtbl.t;
  mutable default_faults : faults option;
  mutable fault_rng : Rng.t;
  mutable rpc_ids : int;
  mutable sent : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable spiked : int;
}

let default_latency rng = Rng.exponential rng ~mean:1.0

let create sim ~n_nodes ?(latency = default_latency) () =
  if n_nodes <= 0 then invalid_arg "Net.create: need at least one node";
  {
    sim;
    n = n_nodes;
    up = Array.make n_nodes true;
    cut = Hashtbl.create 8;
    latency;
    lat_rng = Rng.split (Sim.rng sim);
    link_faults = Hashtbl.create 8;
    default_faults = None;
    fault_rng = Rng.create 0x6e656d657369735fL;
    rpc_ids = 0;
    sent = 0;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    spiked = 0;
  }

let sim t = t.sim
let n_nodes t = t.n

let fresh_rpc_id t =
  t.rpc_ids <- t.rpc_ids + 1;
  t.rpc_ids

let check_node t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Net: no such node %d" i)

let up t i =
  check_node t i;
  t.up.(i)

let crash t i =
  check_node t i;
  t.up.(i) <- false

let recover t i =
  check_node t i;
  t.up.(i) <- true

let norm a b = if a <= b then (a, b) else (b, a)

let set_link t a b connected =
  check_node t a;
  check_node t b;
  if connected then Hashtbl.remove t.cut (norm a b) else Hashtbl.replace t.cut (norm a b) ()

let linked t a b =
  check_node t a;
  check_node t b;
  a = b || not (Hashtbl.mem t.cut (norm a b))

let partition t group_a group_b =
  List.iter (fun a -> List.iter (fun b -> if a <> b then set_link t a b false) group_b) group_a

let heal_partition t = Hashtbl.reset t.cut

(* --- fault plans ---------------------------------------------------------------- *)

let seed_faults t seed = t.fault_rng <- Rng.create seed

let set_default_faults t ?seed f =
  check_faults f;
  Option.iter (seed_faults t) seed;
  t.default_faults <- Some f

let set_link_faults t a b f =
  check_node t a;
  check_node t b;
  check_faults f;
  Hashtbl.replace t.link_faults (norm a b) f

let clear_faults t =
  t.default_faults <- None;
  Hashtbl.reset t.link_faults

let faults_for t src dst =
  match Hashtbl.find_opt t.link_faults (norm src dst) with
  | Some f -> Some f
  | None -> t.default_faults

let deliver t ~dst delay handler =
  if delay < 0.0 then invalid_arg "Net: negative latency drawn";
  Sim.at t.sim
    (Sim.now t.sim +. delay)
    (fun () -> if t.up.(dst) then Sim.spawn t.sim handler else t.dropped <- t.dropped + 1)

let send t ~src ~dst handler =
  check_node t src;
  check_node t dst;
  t.sent <- t.sent + 1;
  if (not t.up.(src)) || not (linked t src dst) then t.dropped <- t.dropped + 1
  else
    match faults_for t src dst with
    | None -> deliver t ~dst (t.latency t.lat_rng) handler
    | Some f ->
        let rng = t.fault_rng in
        if f.drop > 0.0 && Rng.float rng 1.0 < f.drop then t.dropped <- t.dropped + 1
        else begin
          (* Each copy draws its own transit time; a reordering fault adds a
             delay long enough to leapfrog later traffic, a latency spike
             stretches the base draw without changing its order of
             magnitude. *)
          let one_copy () =
            let delay = t.latency t.lat_rng in
            let delay =
              if f.spike > 0.0 && Rng.float rng 1.0 < f.spike then begin
                t.spiked <- t.spiked + 1;
                delay *. f.spike_factor
              end
              else delay
            in
            let delay =
              if f.reorder > 0.0 && Rng.float rng 1.0 < f.reorder then begin
                t.reordered <- t.reordered + 1;
                delay +. Rng.float rng f.reorder_delay
              end
              else delay
            in
            deliver t ~dst delay handler
          in
          one_copy ();
          if f.duplicate > 0.0 && Rng.float rng 1.0 < f.duplicate then begin
            t.duplicated <- t.duplicated + 1;
            one_copy ()
          end
        end

let messages_sent t = t.sent
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let messages_reordered t = t.reordered
let messages_spiked t = t.spiked
