(** Remote procedure calls over the simulated network.

    The paper writes representative operations as
    ["Send(<invocation>) to(<instance>)"] with ARGUS-like semantics; this is
    that primitive with explicit failure handling: the caller blocks until a
    reply arrives or the timeout expires. Server-side exceptions (transaction
    deadlock aborts, representative errors) travel back in the reply and are
    re-raised at the caller, matching local-call semantics.

    Two flavours: {!call} is the bare single-shot primitive; {!call_at_most_once}
    adds bounded retransmission with exponential backoff and jitter on the
    client and request-id deduplication on the server, so a request executes
    at most once per server incarnation no matter how often the network
    duplicates it or the client retries — lost replies are answered from the
    dedup cache instead of re-running the operation. *)

open Repdir_util

type error = Timeout

val call :
  Net.t ->
  src:Net.node_id ->
  dst:Net.node_id ->
  timeout:float ->
  (unit -> 'r) ->
  ('r, error) result
(** Must be invoked from inside a simulator process. The handler runs as a
    process at [dst] (and may itself block, e.g. on locks); its result or
    exception is shipped back. Late replies after a timeout are dropped. *)

(* --- at-most-once calls -------------------------------------------------------- *)

type server
(** Per-destination dedup state: request id -> in-flight marker or cached
    reply. Volatile — reset it when the node crashes. *)

val server : ?cap:int -> ?ttl:float -> unit -> server
(** A dedup cache whose finished entries expire: each arriving request first
    drops cached replies older than [ttl] sim-time units (default 300.0) and
    then enforces the [cap] backstop (default 512, oldest first), so the
    cache is bounded at [cap] finished entries plus whatever is in flight no
    matter how long the server lives. Eviction happens only on request
    arrival — it schedules no timer events and draws no randomness — and its
    per-arrival cost is constant: the cap backstop pops at most one entry
    per arrival in steady state, and TTL expiry is limited to a handful of
    pops per arrival, so a retry storm arriving after an idle stretch drains
    a stale backlog across the storm instead of stalling its first request
    on an O(cap) scan. Choose
    [ttl] comfortably above the client's worst-case retransmission horizon
    ([timeout] and backoff sum across [attempts]); an evicted entry merely
    re-opens the idempotent re-execution window that a crash-reset opens
    anyway. *)

val reset_server : server -> unit
(** Forget all cached replies (the node's volatile memory was lost). A
    retried request whose execution predates the reset re-executes; callers
    rely on representative operations being idempotent. *)

val server_entries : server -> int
(** Current cache size: finished (unexpired) plus in-flight entries. *)

val call_at_most_once :
  Net.t ->
  src:Net.node_id ->
  dst:Net.node_id ->
  server:server ->
  timeout:float ->
  ?attempts:int ->
  ?backoff:float ->
  ?rng:Rng.t ->
  ?on_retry:(unit -> unit) ->
  (unit -> 'r) ->
  ('r, error) result
(** Like {!call}, but the request carries a fresh id from
    {!Net.fresh_rpc_id} and is retransmitted up to [attempts] times total
    (default 1, i.e. no retries — in which case the event trace is identical
    to {!call}). Between attempts the caller sleeps
    [backoff * 2^k * jitter] virtual time, jitter uniform in [0.5, 1.5) when
    [rng] is supplied and 1 otherwise. [on_retry] runs before each
    retransmission (for statistics). Every attempt shares one reply slot, so
    a straggler reply to an earlier attempt completes the call; duplicate
    requests hit the server's dedup cache and are answered without
    re-executing the operation. *)
