(** Simulated message network: named nodes, per-message latency, node
    crashes, link-level partitions, and probabilistic link faults.

    Delivery rules: a message is dropped if the source is down or the link
    is cut when it is sent, or if the destination is down when it would be
    delivered. Delivered messages run as fresh simulator processes at the
    destination, so handlers may block (e.g. on representative locks).

    Fault plans add a probabilistic adversary on top: per-link (or
    network-wide) message drop, duplication, reordering and latency spikes.
    All fault randomness is drawn from a dedicated deterministic generator,
    so a run with a given seed and fault plan replays bit-for-bit — and a
    run with no fault plan never touches that generator, so pre-existing
    experiments are unperturbed. *)

open Repdir_util

type node_id = int

(** Per-message fault probabilities for one link direction-insensitively.
    [drop], [duplicate], [reorder] and [spike] are probabilities in [0,1];
    a reordered message gets up to [reorder_delay] extra transit time
    (uniform), a spiked message's base latency is multiplied by
    [spike_factor] (>= 1). *)
type faults = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_delay : float;
  spike : float;
  spike_factor : float;
}

val no_faults : faults
(** All probabilities zero; [{no_faults with drop = 0.1}] style updates are
    the intended way to build plans. *)

type t

val create : Sim.t -> n_nodes:int -> ?latency:(Rng.t -> float) -> unit -> t
(** [latency] draws each message's transit time; the default is exponential
    with mean 1.0 time units. *)

val sim : t -> Sim.t
val n_nodes : t -> int

val fresh_rpc_id : t -> int
(** Next network-unique request id (used by {!Rpc} for at-most-once
    deduplication). Deterministic: a simple counter. *)

val up : t -> node_id -> bool
val crash : t -> node_id -> unit
val recover : t -> node_id -> unit

val set_link : t -> node_id -> node_id -> bool -> unit
(** Cut or restore the (symmetric) link between two nodes. *)

val linked : t -> node_id -> node_id -> bool

val partition : t -> node_id list -> node_id list -> unit
(** Cut every link between the two groups. *)

val heal_partition : t -> unit
(** Restore all links. *)

(* --- fault plans --------------------------------------------------------------- *)

val seed_faults : t -> int64 -> unit
(** Re-seed the fault generator; equal seeds and plans give equal runs. *)

val set_default_faults : t -> ?seed:int64 -> faults -> unit
(** Apply [faults] to every link without a per-link override. *)

val set_link_faults : t -> node_id -> node_id -> faults -> unit
(** Override the fault plan for one (symmetric) link. *)

val clear_faults : t -> unit
(** Remove the default and all per-link fault plans. *)

val send : t -> src:node_id -> dst:node_id -> (unit -> unit) -> unit
(** Fire-and-forget message carrying a handler to run at the destination. *)

(* --- counters ----------------------------------------------------------------- *)

val messages_sent : t -> int
val messages_dropped : t -> int

val messages_duplicated : t -> int
(** Messages delivered twice by the fault plan. *)

val messages_reordered : t -> int
(** Messages given extra reordering delay by the fault plan. *)

val messages_spiked : t -> int
(** Messages whose latency was stretched by the fault plan. *)
