(** Anti-entropy: background pairwise reconciliation of representatives.

    The paper's weighted-voting algorithm only repairs a stale representative
    when a read quorum happens to touch the stale range, so a representative
    that misses writes during a partition stays out of date indefinitely.
    This actor closes that gap: it periodically picks a pair of
    representatives and reconciles them by comparing hierarchical range
    digests (an FNV-1a fold of entry and gap version numbers over a key
    range, served by {!Repdir_rep.Rep.digest_range}), recursing only into
    mismatched sub-ranges, and transferring just the diverged ranges —
    O(diff) entries moved in O(log n) digest rounds, not a full copy.

    Merges are version-monotone (see {!Repdir_gapmap.Gapmap_intf.Sync_ops}):
    a representative only ever learns state the peer holds at strictly higher
    version numbers, so reconciliation commutes with client traffic and
    repeated sessions are idempotent. All work happens inside ordinary
    transactions under the paper's range locks, and sessions fence on peer
    incarnation numbers, so crashes mid-session abort cleanly. *)

open Repdir_txn
open Repdir_rep
open Repdir_sim

exception Unreachable of string
(** Raised by a peer's [p_call] when the representative cannot be reached;
    fails the session (counted, aborted, retried on a later round). *)

exception Session_failed of string
(** Internal session abort (e.g. an incarnation fence tripped). *)

(** How the actor reaches one representative. [p_call] raises {!Unreachable}
    on transport failure and re-raises representative exceptions
    ({!Repdir_rep.Rep.Crashed}, transaction aborts). [p_incarnation] reads
    the current incarnation out of band, as reply metadata would carry it. *)
type peer = {
  p_index : int;
  p_name : string;
  p_incarnation : unit -> int;
  p_call : 'r. (Rep.t -> 'r) -> 'r;
}

type config = {
  period : float;  (** mean virtual time between rounds *)
  arity : int;  (** fan-out when recursing into a digest mismatch *)
  leaf_entries : int;
      (** ranges holding at most this many entries (on either side) are
          transferred instead of subdivided *)
}

val default_config : config
(** period 200.0, arity 4, leaf_entries 8. *)

(** Cumulative sync-traffic counters; [entries_sent] is the total entries
    carried by range transfers — the O(diff) bound the convergence tests
    assert against directory size. *)
type counters = {
  mutable rounds : int;
  mutable sessions : int;  (** directed sessions attempted *)
  mutable sessions_failed : int;  (** aborted: peer down, restart, deadlock *)
  mutable digest_rpcs : int;
  mutable pull_rpcs : int;
  mutable entries_sent : int;
  mutable entries_installed : int;
  mutable entries_updated : int;
  mutable entries_deleted : int;
  mutable gaps_raised : int;
  mutable ghosts_kept : int;
}

val pp_counters : Format.formatter -> counters -> unit

type t

val create :
  ?config:config ->
  ?seed:int64 ->
  ?mark_senior:(Txn.id -> bool -> unit) ->
  peers:peer array ->
  txns:Txn.Manager.t ->
  unit ->
  t
(** [seed] drives peer-pair selection and period jitter only; every other
    source of nondeterminism is the simulation's own.

    [mark_senior] (default: nothing) flags a transaction as a senior
    deadlock winner for the duration of a {!converge} mega-session — see
    {!Repdir_lock.Lock_manager.set_senior}. Without it converge loses every
    deadlock against client traffic: it acquires locks for its whole (long)
    lifetime, so it is nearly always the requester that closes a cycle. *)

val counters : t -> counters
val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** A disabled actor keeps ticking but skips its rounds; re-enabling resumes
    reconciliation on the next tick. *)

val stop : t -> unit
(** Terminate the background actor for good at its next tick (so a simulation
    whose other processes have finished can drain its event queue and end).
    Unlike {!set_enabled}, this is irreversible. *)

val session :
  ?lo:Repdir_key.Bound.t -> ?hi:Repdir_key.Bound.t -> t -> src:peer -> dst:peer -> bool
(** One directed session: [dst] pulls every range where its digest disagrees
    with [src]'s, inside one transaction spanning both peers (RepLookup locks
    at the source, RepModify at the destination, strict 2PL). Returns false
    if the session aborted — peer unreachable or crashed, a restart tripped
    the incarnation fence, or a deadlock victim — in which case both sides
    were rolled back and nothing was learned. Must run inside a simulator
    process when the peers' [p_call] goes over RPC.

    [lo]/[hi] (default: the whole key space) restrict the session to the
    range [(lo, hi]]: the locks taken never exceed the slice, so a sequence
    of slice sessions reconciles a pair while letting client traffic through
    between the slices — the shape the reconfiguration driver's catch-up
    rounds use. *)

val session_between :
  ?lo:Repdir_key.Bound.t -> ?hi:Repdir_key.Bound.t -> t -> src:int -> dst:int -> bool
(** {!session} addressed by [p_index] instead of peer values — the form the
    reconfiguration driver uses for pre-transition catch-up rounds. *)

val converge :
  t ->
  hub:int ->
  among:int list ->
  (int * Repdir_gapmap.Gapmap_intf.digest) list option
(** The joiner catch-up mega-session: one transaction that pulls every
    [among] peer's divergence onto the [hub] peer (peer/hub given as
    [p_index] values), pushes the hub's now-dominating state back onto each
    peer, and reads every participant's gap-map root digest while the
    transaction still holds the whole key space locked at every
    participant — so the returned digests are an {e atomic} snapshot: all
    equal on success, live traffic notwithstanding. This is the promotion
    gate for a zero-vote joining representative (make [hub] the joiner) and
    the drain step for a retiring one (make [hub] the retiree).

    [None] means the session aborted (unreachable peer, restart fence,
    deadlock against a client transaction — locking everything everywhere
    makes those ordinary); everything was rolled back or left as a
    harmless convergent partial merge, and the driver should retry.
    Check the result with {!digests_equal}. *)

val digests_equal : (int * Repdir_gapmap.Gapmap_intf.digest) list -> bool

val round : t -> unit
(** Pick a random pair and run one session in each direction. *)

val round_all_pairs : t -> unit
(** Reconcile every ordered pair once — a full mesh round, used by the
    convergence harness. *)

val run : ?until:float -> t -> Sim.t -> unit
(** Spawn the background actor: every [config.period] (jittered ±25%) it
    runs {!round} while enabled, stopping once virtual time reaches [until]
    (never, if omitted). *)
