open Repdir_key
open Repdir_util
open Repdir_txn
open Repdir_rep
open Repdir_sim
module Gm = Repdir_gapmap.Gapmap_intf

exception Unreachable of string

exception Session_failed of string

type peer = {
  p_index : int;
  p_name : string;
  p_incarnation : unit -> int;
  p_call : 'r. (Rep.t -> 'r) -> 'r;
}

type config = {
  period : float;
  arity : int;
  leaf_entries : int;
}

let default_config = { period = 200.0; arity = 4; leaf_entries = 8 }

type counters = {
  mutable rounds : int;
  mutable sessions : int;
  mutable sessions_failed : int;
  mutable digest_rpcs : int;
  mutable pull_rpcs : int;
  mutable entries_sent : int;
  mutable entries_installed : int;
  mutable entries_updated : int;
  mutable entries_deleted : int;
  mutable gaps_raised : int;
  mutable ghosts_kept : int;
}

let pp_counters ppf c =
  Format.fprintf ppf
    "rounds=%d sessions=%d (failed %d) digests=%d pulls=%d sent=%d installed=%d updated=%d \
     deleted=%d gaps-raised=%d ghosts-kept=%d"
    c.rounds c.sessions c.sessions_failed c.digest_rpcs c.pull_rpcs c.entries_sent
    c.entries_installed c.entries_updated c.entries_deleted c.gaps_raised c.ghosts_kept

type t = {
  config : config;
  peers : peer array;
  txns : Txn.Manager.t;
  rng : Rng.t;
  mutable enabled : bool;
  mutable stopped : bool;
  counters : counters;
}

let create ?(config = default_config) ?(seed = 0x5a11c_aa7L) ~peers ~txns () =
  if config.arity < 2 then invalid_arg "Sync.create: arity must be >= 2";
  if config.leaf_entries < 1 then invalid_arg "Sync.create: leaf_entries must be >= 1";
  if config.period <= 0.0 then invalid_arg "Sync.create: period must be positive";
  {
    config;
    peers;
    txns;
    rng = Rng.create seed;
    enabled = true;
    stopped = false;
    counters =
      {
        rounds = 0;
        sessions = 0;
        sessions_failed = 0;
        digest_rpcs = 0;
        pull_rpcs = 0;
        entries_sent = 0;
        entries_installed = 0;
        entries_updated = 0;
        entries_deleted = 0;
        gaps_raised = 0;
        ghosts_kept = 0;
      };
  }

let counters t = t.counters
let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let stop t = t.stopped <- true

(* --- one directed session ----------------------------------------------------- *)

(* [dst] pulls what it is missing from [src]. Both sides work inside one
   transaction: digests and transfers are served under RepLookup locks at the
   source, merges applied under RepModify locks at the destination, so the
   session serializes against client transactions like any other 2PL
   participant (the shared lock group detects cross-rep deadlocks, which
   surface as a Txn.Abort here and simply fail the session).

   Incarnation fencing: a peer that restarts mid-session has lost the
   session's locks and undo state, so any evidence of a changed incarnation
   fails the session before it can commit half-applied work — the same rule
   the suite applies to client transactions. *)
let session t ~(src : peer) ~(dst : peer) =
  let c = t.counters in
  c.sessions <- c.sessions + 1;
  let txn = Txn.Manager.begin_txn t.txns in
  let src_inc = src.p_incarnation () and dst_inc = dst.p_incarnation () in
  let fence () =
    if src.p_incarnation () <> src_inc || dst.p_incarnation () <> dst_inc then
      raise (Session_failed "peer restarted mid-session")
  in
  let add (a : Gm.applied) =
    c.entries_installed <- c.entries_installed + a.installed;
    c.entries_updated <- c.entries_updated + a.updated;
    c.entries_deleted <- c.entries_deleted + a.deleted;
    c.gaps_raised <- c.gaps_raised + a.gaps_raised;
    c.ghosts_kept <- c.ghosts_kept + a.ghosts_kept
  in
  let pull lo hi =
    let tr = src.p_call (fun rep -> Rep.pull_range rep ~txn ~lo ~hi) in
    fence ();
    c.pull_rpcs <- c.pull_rpcs + 1;
    c.entries_sent <-
      c.entries_sent + List.length tr.Gm.t_items
      + (match tr.Gm.t_hi_state with Gm.Hi_entry _ -> 1 | _ -> 0);
    let applied = dst.p_call (fun rep -> Rep.apply_range rep ~txn tr) in
    fence ();
    add applied
  in
  let rec walk lo hi =
    let d_src = src.p_call (fun rep -> Rep.digest_range rep ~txn ~lo ~hi) in
    fence ();
    let d_dst = dst.p_call (fun rep -> Rep.digest_range rep ~txn ~lo ~hi) in
    fence ();
    c.digest_rpcs <- c.digest_rpcs + 2;
    if Int64.equal d_src.Gm.hash d_dst.Gm.hash && d_src.Gm.n_entries = d_dst.Gm.n_entries
    then ()
    else if max d_src.Gm.n_entries d_dst.Gm.n_entries <= t.config.leaf_entries then
      pull lo hi
    else begin
      let cuts =
        src.p_call (fun rep -> Rep.split_range rep ~txn ~lo ~hi ~arity:t.config.arity)
      in
      fence ();
      match cuts with
      | [] -> pull lo hi (* the source cannot subdivide: transfer directly *)
      | cuts ->
          let rec over = function
            | a :: (b :: _ as rest) ->
                walk a b;
                over rest
            | _ -> ()
          in
          over ((lo :: cuts) @ [ hi ])
    end
  in
  match
    walk Bound.Low Bound.High;
    fence ();
    (* The destination holds the writes; commit it first so a failure between
       the two commits can only leave the read-only source to abort. *)
    dst.p_call (fun rep -> Rep.commit rep ~txn);
    src.p_call (fun rep -> Rep.commit rep ~txn)
  with
  | () ->
      Txn.Manager.commit t.txns txn;
      true
  | exception e ->
      c.sessions_failed <- c.sessions_failed + 1;
      (* Best-effort release at both peers; a crashed peer has already lost
         its locks with the rest of its volatile state. *)
      (try dst.p_call (fun rep -> Rep.abort rep ~txn) with _ -> ());
      (try src.p_call (fun rep -> Rep.abort rep ~txn) with _ -> ());
      Txn.Manager.abort t.txns txn;
      (match e with
      | Unreachable _ | Session_failed _ | Rep.Crashed _ | Txn.Abort _ -> ()
      | e -> raise e);
      false

(* --- rounds -------------------------------------------------------------------- *)

let random_pair t =
  let n = Array.length t.peers in
  if n < 2 then None
  else begin
    let i = Rng.int t.rng n in
    let j = (i + 1 + Rng.int t.rng (n - 1)) mod n in
    Some (t.peers.(i), t.peers.(j))
  end

let round t =
  t.counters.rounds <- t.counters.rounds + 1;
  match random_pair t with
  | None -> ()
  | Some (a, b) ->
      (* Both directions, so one round fully reconciles the chosen pair. *)
      ignore (session t ~src:a ~dst:b);
      ignore (session t ~src:b ~dst:a)

let round_all_pairs t =
  t.counters.rounds <- t.counters.rounds + 1;
  let n = Array.length t.peers in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then ignore (session t ~src:t.peers.(i) ~dst:t.peers.(j))
    done
  done

let run ?until t sim =
  Sim.spawn sim ~name:"sync-actor" (fun () ->
      let stop () =
        t.stopped || match until with Some u -> Sim.now sim >= u | None -> false
      in
      let rec loop () =
        if not (stop ()) then begin
          (* Jitter the period so the actor does not phase-lock with
             periodic client traffic. *)
          Sim.sleep sim (t.config.period *. (0.75 +. (0.5 *. Rng.float t.rng 1.0)));
          if not (stop ()) then begin
            if t.enabled then round t;
            loop ()
          end
        end
      in
      loop ())
