open Repdir_key
open Repdir_util
open Repdir_txn
open Repdir_rep
open Repdir_sim
module Gm = Repdir_gapmap.Gapmap_intf

exception Unreachable of string

exception Session_failed of string

type peer = {
  p_index : int;
  p_name : string;
  p_incarnation : unit -> int;
  p_call : 'r. (Rep.t -> 'r) -> 'r;
}

type config = {
  period : float;
  arity : int;
  leaf_entries : int;
}

let default_config = { period = 200.0; arity = 4; leaf_entries = 8 }

type counters = {
  mutable rounds : int;
  mutable sessions : int;
  mutable sessions_failed : int;
  mutable digest_rpcs : int;
  mutable pull_rpcs : int;
  mutable entries_sent : int;
  mutable entries_installed : int;
  mutable entries_updated : int;
  mutable entries_deleted : int;
  mutable gaps_raised : int;
  mutable ghosts_kept : int;
}

let pp_counters ppf c =
  Format.fprintf ppf
    "rounds=%d sessions=%d (failed %d) digests=%d pulls=%d sent=%d installed=%d updated=%d \
     deleted=%d gaps-raised=%d ghosts-kept=%d"
    c.rounds c.sessions c.sessions_failed c.digest_rpcs c.pull_rpcs c.entries_sent
    c.entries_installed c.entries_updated c.entries_deleted c.gaps_raised c.ghosts_kept

type t = {
  config : config;
  peers : peer array;
  txns : Txn.Manager.t;
  rng : Rng.t;
  mark_senior : Txn.id -> bool -> unit;
  mutable enabled : bool;
  mutable stopped : bool;
  counters : counters;
}

let create ?(config = default_config) ?(seed = 0x5a11c_aa7L) ?(mark_senior = fun _ _ -> ())
    ~peers ~txns () =
  if config.arity < 2 then invalid_arg "Sync.create: arity must be >= 2";
  if config.leaf_entries < 1 then invalid_arg "Sync.create: leaf_entries must be >= 1";
  if config.period <= 0.0 then invalid_arg "Sync.create: period must be positive";
  {
    config;
    peers;
    txns;
    rng = Rng.create seed;
    mark_senior;
    enabled = true;
    stopped = false;
    counters =
      {
        rounds = 0;
        sessions = 0;
        sessions_failed = 0;
        digest_rpcs = 0;
        pull_rpcs = 0;
        entries_sent = 0;
        entries_installed = 0;
        entries_updated = 0;
        entries_deleted = 0;
        gaps_raised = 0;
        ghosts_kept = 0;
      };
  }

let counters t = t.counters
let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let stop t = t.stopped <- true

(* --- one directed session ----------------------------------------------------- *)

(* [dst] pulls what it is missing from [src]. Both sides work inside one
   transaction: digests and transfers are served under RepLookup locks at the
   source, merges applied under RepModify locks at the destination, so the
   session serializes against client transactions like any other 2PL
   participant (the shared lock group detects cross-rep deadlocks, which
   surface as a Txn.Abort here and simply fail the session).

   Incarnation fencing: a peer that restarts mid-session has lost the
   session's locks and undo state, so any evidence of a changed incarnation
   fails the session before it can commit half-applied work — the same rule
   the suite applies to client transactions. *)
(* The digest-walk of one directed [src -> dst] reconciliation, inside the
   caller's transaction. Shared by two-peer {!session}s and the multi-peer
   {!converge} mega-session, which runs several walks under one
   transaction. *)
let directed_walk ?(lo = Bound.Low) ?(hi = Bound.High) t ~txn ~fence ~(src : peer)
    ~(dst : peer) =
  let c = t.counters in
  let add (a : Gm.applied) =
    c.entries_installed <- c.entries_installed + a.installed;
    c.entries_updated <- c.entries_updated + a.updated;
    c.entries_deleted <- c.entries_deleted + a.deleted;
    c.gaps_raised <- c.gaps_raised + a.gaps_raised;
    c.ghosts_kept <- c.ghosts_kept + a.ghosts_kept
  in
  let pull lo hi =
    let tr = src.p_call (fun rep -> Rep.pull_range rep ~txn ~lo ~hi) in
    fence ();
    c.pull_rpcs <- c.pull_rpcs + 1;
    c.entries_sent <-
      c.entries_sent + List.length tr.Gm.t_items
      + (match tr.Gm.t_hi_state with Gm.Hi_entry _ -> 1 | _ -> 0);
    let applied = dst.p_call (fun rep -> Rep.apply_range rep ~txn tr) in
    fence ();
    add applied
  in
  let rec walk lo hi =
    let d_src = src.p_call (fun rep -> Rep.digest_range rep ~txn ~lo ~hi) in
    fence ();
    let d_dst = dst.p_call (fun rep -> Rep.digest_range rep ~txn ~lo ~hi) in
    fence ();
    c.digest_rpcs <- c.digest_rpcs + 2;
    if Int64.equal d_src.Gm.hash d_dst.Gm.hash && d_src.Gm.n_entries = d_dst.Gm.n_entries
    then ()
    else if max d_src.Gm.n_entries d_dst.Gm.n_entries <= t.config.leaf_entries then
      pull lo hi
    else begin
      let cuts =
        src.p_call (fun rep -> Rep.split_range rep ~txn ~lo ~hi ~arity:t.config.arity)
      in
      fence ();
      match cuts with
      | [] -> pull lo hi (* the source cannot subdivide: transfer directly *)
      | cuts ->
          let rec over = function
            | a :: (b :: _ as rest) ->
                walk a b;
                over rest
            | _ -> ()
          in
          over ((lo :: cuts) @ [ hi ])
    end
  in
  walk lo hi

let session ?lo ?hi t ~(src : peer) ~(dst : peer) =
  let c = t.counters in
  c.sessions <- c.sessions + 1;
  let txn = Txn.Manager.begin_txn t.txns in
  let src_inc = src.p_incarnation () and dst_inc = dst.p_incarnation () in
  let fence () =
    if src.p_incarnation () <> src_inc || dst.p_incarnation () <> dst_inc then
      raise (Session_failed "peer restarted mid-session")
  in
  match
    directed_walk ?lo ?hi t ~txn ~fence ~src ~dst;
    fence ();
    (* The destination holds the writes; commit it first so a failure between
       the two commits can only leave the read-only source to abort. *)
    dst.p_call (fun rep -> Rep.commit rep ~txn);
    src.p_call (fun rep -> Rep.commit rep ~txn)
  with
  | () ->
      Txn.Manager.commit t.txns txn;
      true
  | exception e ->
      c.sessions_failed <- c.sessions_failed + 1;
      (* Best-effort release at both peers; a crashed peer has already lost
         its locks with the rest of its volatile state. *)
      (try dst.p_call (fun rep -> Rep.abort rep ~txn) with _ -> ());
      (try src.p_call (fun rep -> Rep.abort rep ~txn) with _ -> ());
      Txn.Manager.abort t.txns txn;
      (match e with
      | Unreachable _ | Session_failed _ | Rep.Crashed _ | Txn.Abort _ -> ()
      | e -> raise e);
      false

let peer_by_index t i =
  match Array.to_list t.peers |> List.find_opt (fun p -> p.p_index = i) with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Sync: no peer with index %d" i)

let session_between ?lo ?hi t ~src ~dst =
  session ?lo ?hi t ~src:(peer_by_index t src) ~dst:(peer_by_index t dst)

(* --- multi-peer convergence (the joiner catch-up mega-session) ------------------ *)

(* One transaction that makes every participant's map equal: pull each
   peer's divergence onto the hub (the hub then dominates everyone under the
   version-monotone merge), push the hub back onto each peer (merging with a
   superset of yourself makes you exactly that superset), then read every
   root digest while the transaction still holds the whole key space locked
   at every participant. The digests are therefore an *atomic* equality
   gate: live client traffic either serialized before the session (and is
   included) or blocks until it commits. The promotion rule for a joining
   representative — "root digest equals its peers' before the epoch bump" —
   needs exactly this; a sequence of pairwise sessions cannot provide it,
   because peers keep diverging behind the sequence's back.

   The price of locking everything everywhere is paid in deadlocks against
   client transactions; they surface as [Txn.Abort], fail the session
   cleanly, and the driver retries. *)
let converge t ~hub ~among =
  let hub_p = peer_by_index t hub in
  let others = List.filter (fun i -> i <> hub) among |> List.map (peer_by_index t) in
  if others = [] then invalid_arg "Sync.converge: need at least one peer besides the hub";
  let c = t.counters in
  c.sessions <- c.sessions + 1;
  let participants = hub_p :: others in
  let txn = Txn.Manager.begin_txn t.txns in
  (* Locking the whole key space at every participant for a long session
     means closing waits-for cycles against short client transactions
     constantly; as the requester-is-victim default would abort this session
     every time, it runs as a senior transaction and wounds the (retrying)
     clients instead. *)
  t.mark_senior txn true;
  let incs = List.map (fun p -> (p, p.p_incarnation ())) participants in
  (* The walks leave every participant but the current pair idle, and an
     untouched participant's transaction lease expires — unilaterally
     aborting the session from under us. Heartbeat all participants every few
     RPCs (the fence runs after each one) so every lease stays renewed for as
     long as the session makes progress. *)
  let rpcs = ref 0 in
  let fence () =
    if List.exists (fun (p, i0) -> p.p_incarnation () <> i0) incs then
      raise (Session_failed "peer restarted mid-session");
    incr rpcs;
    if !rpcs mod 8 = 0 then
      List.iter (fun p -> p.p_call (fun rep -> Rep.keepalive rep ~txn)) participants
  in
  match
    List.iter (fun p -> directed_walk t ~txn ~fence ~src:p ~dst:hub_p) others;
    List.iter (fun p -> directed_walk t ~txn ~fence ~src:hub_p ~dst:p) others;
    let digests =
      List.map (fun p -> (p.p_index, p.p_call (fun rep -> Rep.root_digest rep))) participants
    in
    fence ();
    (* All participants hold writes; any commit that fails leaves a
       convergent partial merge (never a lost update), and the caller
       retries the whole session. *)
    List.iter (fun p -> p.p_call (fun rep -> Rep.commit rep ~txn)) participants;
    digests
  with
  | digests ->
      t.mark_senior txn false;
      Txn.Manager.commit t.txns txn;
      Some digests
  | exception e ->
      t.mark_senior txn false;
      c.sessions_failed <- c.sessions_failed + 1;
      List.iter
        (fun p -> try p.p_call (fun rep -> Rep.abort rep ~txn) with _ -> ())
        participants;
      Txn.Manager.abort t.txns txn;
      (match e with
      | Unreachable _ | Session_failed _ | Rep.Crashed _ | Txn.Abort _ -> ()
      | e -> raise e);
      None

let digests_equal = function
  | [] -> true
  | (_, d) :: rest ->
      List.for_all
        (fun (_, d') ->
          Int64.equal d.Gm.hash d'.Gm.hash && d.Gm.n_entries = d'.Gm.n_entries)
        rest

(* --- rounds -------------------------------------------------------------------- *)

let random_pair t =
  let n = Array.length t.peers in
  if n < 2 then None
  else begin
    let i = Rng.int t.rng n in
    let j = (i + 1 + Rng.int t.rng (n - 1)) mod n in
    Some (t.peers.(i), t.peers.(j))
  end

let round t =
  t.counters.rounds <- t.counters.rounds + 1;
  match random_pair t with
  | None -> ()
  | Some (a, b) ->
      (* Both directions, so one round fully reconciles the chosen pair. *)
      ignore (session t ~src:a ~dst:b);
      ignore (session t ~src:b ~dst:a)

let round_all_pairs t =
  t.counters.rounds <- t.counters.rounds + 1;
  let n = Array.length t.peers in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then ignore (session t ~src:t.peers.(i) ~dst:t.peers.(j))
    done
  done

let run ?until t sim =
  Sim.spawn sim ~name:"sync-actor" (fun () ->
      let stop () =
        t.stopped || match until with Some u -> Sim.now sim >= u | None -> false
      in
      let rec loop () =
        if not (stop ()) then begin
          (* Jitter the period so the actor does not phase-lock with
             periodic client traffic. *)
          Sim.sleep sim (t.config.period *. (0.75 +. (0.5 *. Rng.float t.rng 1.0)));
          if not (stop ()) then begin
            if t.enabled then round t;
            loop ()
          end
        end
      in
      loop ())
